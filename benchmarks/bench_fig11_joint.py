"""Figure 11 — ROC of the joint end-to-end model.

The paper's joint model (band-wise CNNs + classifier fine-tuned together)
reaches AUC 0.897 on single-epoch *images* — below the ground-truth
feature classifier (0.958) because flux estimation errors propagate, but
far above chance and competitive with photometric baselines.
"""

import numpy as np

from repro.core import TrainConfig
from repro.eval import roc_curve
from repro.utils import format_table


def test_fig11_joint_model(benchmark, trained_pipeline, image_splits):
    pipe, _, _ = trained_pipeline

    def run():
        history = pipe.fine_tune(
            image_splits.train,
            image_splits.val,
            TrainConfig(epochs=2, batch_size=32, learning_rate=3e-4, seed=31),
        )
        # The paper's single-epoch protocol: every epoch window of every
        # test sample is scored as an independent sub-sample.
        pairs, dates, labels = pipe._joint_inputs(image_splits.test, windowed=True)
        scores = pipe.joint.predict_proba(pairs, dates)
        return history, scores, labels

    history, scores, labels = benchmark.pedantic(run, rounds=1, iterations=1)
    curve = roc_curve(labels, scores)

    rows = [
        [f"{fpr:.2f}", f"{curve.tpr_at_fpr(fpr):.3f}"]
        for fpr in (0.05, 0.1, 0.2, 0.4)
    ]
    print()
    print(
        format_table(
            ["FPR", "TPR"],
            rows,
            title="Fig. 11: joint-model ROC points (single-epoch images)",
        )
    )
    two_stage = pipe.evaluate_auc(image_splits.test, use_joint=False, windowed=True)
    print(
        f"joint AUC {curve.auc:.3f} (paper: 0.897); "
        f"two-stage CNN-features + classifier AUC {two_stage:.3f}"
    )

    # The joint model must be clearly informative.
    assert curve.auc > 0.7
    # Fine-tuning kept a usable validation loss trajectory.
    assert all(np.isfinite(v) for v in history.train_loss)
