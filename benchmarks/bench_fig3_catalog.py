"""Figure 3 — spatial and redshift distributions of host galaxies.

The paper's Fig. 3 shows (left) the sky positions of catalogue and
dataset hosts covering the COSMOS area and (right) their photo-z
distributions.  This benchmark regenerates both as summary statistics:
footprint coverage fractions and a redshift histogram.
"""

import numpy as np

from repro.catalog import COSMOS_FOOTPRINT, CosmosCatalog, HostSelector
from repro.utils import format_table


def _fig3_stats(n_catalog: int = 5000, n_dataset: int = 1000, seed: int = 0):
    catalog = CosmosCatalog(n_catalog, seed=seed)
    selector = HostSelector(catalog)
    rng = np.random.default_rng(seed + 1)
    dataset_hosts = [selector.select_host(rng) for _ in range(n_dataset)]

    cat_z = catalog.photo_zs()
    ds_z = np.array([g.photo_z for g in dataset_hosts])

    # Sky coverage: fraction of a 10x10 footprint grid containing hosts.
    def coverage(ras, decs):
        ra_bins = np.linspace(COSMOS_FOOTPRINT["ra_min"], COSMOS_FOOTPRINT["ra_max"], 11)
        dec_bins = np.linspace(COSMOS_FOOTPRINT["dec_min"], COSMOS_FOOTPRINT["dec_max"], 11)
        grid, _, _ = np.histogram2d(ras, decs, bins=[ra_bins, dec_bins])
        return float((grid > 0).mean())

    cat_pos = catalog.positions()
    ds_pos = np.array([[g.ra, g.dec] for g in dataset_hosts])
    return {
        "catalog_coverage": coverage(cat_pos[:, 0], cat_pos[:, 1]),
        "dataset_coverage": coverage(ds_pos[:, 0], ds_pos[:, 1]),
        "catalog_z": cat_z,
        "dataset_z": ds_z,
    }


def test_fig3_catalog_distributions(benchmark):
    stats = benchmark.pedantic(_fig3_stats, rounds=1, iterations=1)

    bins = np.arange(0.0, 2.2, 0.2)
    cat_hist, _ = np.histogram(stats["catalog_z"], bins=bins, density=True)
    ds_hist, _ = np.histogram(stats["dataset_z"], bins=bins, density=True)
    rows = [
        [f"{lo:.1f}-{lo + 0.2:.1f}", f"{c:.3f}", f"{d:.3f}"]
        for lo, c, d in zip(bins[:-1], cat_hist, ds_hist)
    ]
    print()
    print(
        format_table(
            ["z bin", "catalog n(z)", "dataset n(z)"],
            rows,
            title="Fig. 3 (right): photo-z distributions (density)",
        )
    )
    print(
        f"Fig. 3 (left): footprint coverage catalog={stats['catalog_coverage']:.2f} "
        f"dataset={stats['dataset_coverage']:.2f} (fraction of COSMOS grid cells hit)"
    )

    # Paper claim: both catalog and dataset cover almost the entire area,
    # and the dataset's n(z) tracks the catalogue's.
    assert stats["catalog_coverage"] > 0.95
    assert stats["dataset_coverage"] > 0.9
    assert abs(np.median(stats["catalog_z"]) - np.median(stats["dataset_z"])) < 0.15
