"""Extension benchmark — cross-check on SNPCC-style data.

The baselines the paper quotes in Table 2 (Lochner 2016, Charnock 2016)
were measured on the Supernova Photometric Classification Challenge
dataset, not the paper's own.  This benchmark generates an SNPCC-style
dataset (irregular 4-40-observation light curves, ~25% SNIa) from the
same light-curve substrate and runs our implementations of those
methods, checking they reach the strong-multi-epoch regime reported in
the literature (AUC ~0.94-0.98 at challenge scale).
"""

import numpy as np

from repro.baselines import (
    RandomForestClassifier,
    TemplateFitClassifier,
    TemplateFluxGrid,
    karpenka_features,
    snpcc_features,
)
from repro.core import LightCurveClassifier, TrainConfig, fit_classifier
from repro.eval import auc_score
from repro.datasets import SNPCCConfig, generate_snpcc
from repro.utils import format_table


def test_snpcc_crosscheck(benchmark):
    def run():
        train_set = generate_snpcc(SNPCCConfig(n_samples=800, seed=51))
        test_set = generate_snpcc(SNPCCConfig(n_samples=400, seed=52))
        results = {}

        # Feature-based methods.
        x_train, y_train = snpcc_features(train_set)
        x_test, y_test = snpcc_features(test_set)
        forest = RandomForestClassifier(n_trees=100, seed=1).fit(x_train, y_train)
        results["random forest (Lochner-style)"] = auc_score(
            y_test, forest.predict_proba(x_test)
        )
        clf = LightCurveClassifier(
            input_dim=x_train.shape[1], units=100, rng=np.random.default_rng(2)
        )
        fit_classifier(
            clf, x_train, y_train,
            TrainConfig(epochs=60, batch_size=64, seed=3, early_stopping_patience=12),
        )
        results["highway network (proposed arch.)"] = auc_score(
            y_test, clf.predict_proba(x_test)
        )

        # Karpenka-style: per-band parametric fits feeding a network.
        k_train = np.stack(
            [karpenka_features(s.flux, s.flux_err, s.mjd, s.band) for s in train_set.samples]
        ).astype(np.float32)
        k_test = np.stack(
            [karpenka_features(s.flux, s.flux_err, s.mjd, s.band) for s in test_set.samples]
        ).astype(np.float32)
        k_clf = LightCurveClassifier(
            input_dim=k_train.shape[1], units=100, rng=np.random.default_rng(4)
        )
        fit_classifier(
            k_clf, k_train, y_train,
            TrainConfig(epochs=60, batch_size=64, seed=5, early_stopping_patience=12),
        )
        results["parametric fit + NN (Karpenka-style)"] = auc_score(
            y_test, k_clf.predict_proba(k_test)
        )

        # Template fitting works on the irregular series natively.
        grid = TemplateFluxGrid()
        tf = TemplateFitClassifier(grid)
        scores = np.array(
            [
                tf.score_sample(s.flux, s.flux_err, s.mjd, s.band)
                for s in test_set.samples
            ]
        )
        results["template fit (Sullivan-style)"] = auc_score(y_test, scores)
        return results, y_test

    results, y_test = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[name, f"{auc:.3f}"] for name, auc in results.items()]
    print()
    print(
        format_table(
            ["Method", "AUC"],
            rows,
            title="SNPCC-style cross-check (4-40 obs, ~25% SNIa)",
        )
    )
    print("literature on real SNPCC: Lochner RF 0.976, Charnock RNN 0.981")

    # Multi-epoch methods must be in the strong regime on SNPCC-like data.
    for name, auc in results.items():
        assert auc > 0.8, f"{name} below the multi-epoch regime"
