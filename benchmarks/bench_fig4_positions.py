"""Figure 4 — distribution of supernova positions within their hosts.

The paper's Fig. 4 shows the raw offsets (left) and the offsets
normalised by the host size (right).  This benchmark regenerates the
radial profile of the normalised offsets and checks the sampling is
confined to the fitted host ellipse.
"""

import numpy as np

from repro.catalog import CosmosCatalog, HostSelector
from repro.utils import format_table


def _sample_offsets(n: int = 5000, seed: int = 0):
    catalog = CosmosCatalog(2000, seed=seed)
    selector = HostSelector(catalog, max_radius_fraction=2.0)
    rng = np.random.default_rng(seed + 1)
    raw = np.empty(n)
    normalized = np.empty(n)
    for i in range(n):
        placement = selector.sample(rng)
        raw[i] = placement.offset_radius
        nx, ny = placement.normalized_offset()
        normalized[i] = np.hypot(nx, ny)
    return raw, normalized


def test_fig4_sn_positions(benchmark):
    raw, normalized = benchmark.pedantic(_sample_offsets, rounds=1, iterations=1)

    bins = np.linspace(0.0, 2.0, 9)
    hist, _ = np.histogram(normalized, bins=bins, density=True)
    rows = [
        [f"{lo:.2f}-{hi:.2f}", f"{v:.3f}"]
        for lo, hi, v in zip(bins[:-1], bins[1:], hist)
    ]
    print()
    print(
        format_table(
            ["r / R_e", "density"],
            rows,
            title="Fig. 4 (right): SN offset from host centre, in half-light radii",
        )
    )
    print(f"raw offsets: median {np.median(raw):.2f}\" , 95%  < {np.percentile(raw, 95):.2f}\"")

    # SNe stay inside the (elliptical) 2 R_e placement region; since the
    # ellipse minor axis is squeezed, normalised radii can only reach 2 on
    # the major axis.
    assert normalized.max() <= 2.0 + 1e-6
    # Uniform-in-area sampling concentrates most SNe inside ~1.5 R_e.
    assert np.median(normalized) < 1.4
