"""Sustained-load benchmark of the serving daemon — latency vs offered QPS.

Drives an in-process :class:`~repro.serve.ServingDaemon` with a
deterministic open-loop arrival schedule
(:class:`~repro.runtime.faults.BurstSchedule`) at increasing offered
rates and reports, per tier:

* ``p50_ms`` / ``p99_ms`` — served-request latency percentiles;
* ``goodput_rps`` — scored 200s per second of offered traffic;
* ``shed_rate`` — fraction of requests refused by admission control
  (a loaded daemon must shed predictably, not grow its queue).

Every tier runs once per configured scoring-worker setting: ``0`` is
the in-process scorer, ``>= 1`` routes micro-batches through a
``repro.serve.pool.ScoringPool`` (the ``serve --scoring-workers``
path), so the committed file carries a single-process and a
multi-process QPS curve side by side.

The highest tier deliberately offers more than the scorer can absorb,
so the committed numbers pin both capacity *and* overload behaviour.
Results are written next to the other tracked benchmarks in
``BENCH_throughput.json`` (sections ``serve_smoke`` / ``serve_full``).

Acceptance-scale run::

    PYTHONPATH=src python benchmarks/bench_serve_load.py

CI smoke with the regression gate::

    PYTHONPATH=src python benchmarks/bench_serve_load.py --smoke --check --no-write
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
import time
import urllib.error
import urllib.request

import numpy as np

from repro.core import SupernovaPipeline
from repro.nn import blas_backend_info, blas_env_settings, cpu_count
from repro.runtime import BurstSchedule
from repro.serve import DaemonConfig, FluxPrior, InferenceEngine, ServingDaemon

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_throughput.json")

#: Metrics tracked by the regression guard (rates: higher = better).
TRACKED_METRICS = ("sustained_goodput_rps", "sustained_goodput_mp_rps")


def _build_engine(input_size: int, units: int, seed: int = 0) -> InferenceEngine:
    pipeline = SupernovaPipeline(
        input_size=input_size, units=units, epochs_used=1, seed=seed
    )
    pipeline.cnn.eval()
    pipeline.classifier.eval()
    return InferenceEngine(pipeline, prior=FluxPrior.neutral())


def _request_body(engine: InferenceEngine, stamp: int, seed: int = 0) -> bytes:
    rng = np.random.default_rng(seed)
    visits = engine._n_used_visits
    pairs = rng.normal(0.0, 30.0, size=(visits, 2, stamp, stamp)).astype(np.float32)
    mjd = 57000.0 + np.arange(visits) * 0.01
    return json.dumps(
        {"pairs": pairs.tolist(), "mjd": mjd.tolist(), "deadline_ms": 10000}
    ).encode()


def _post(port: int, body: bytes) -> int:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/classify",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            response.read()
            return response.status
    except urllib.error.HTTPError as exc:
        with exc:
            exc.read()
            return exc.code
    except (urllib.error.URLError, OSError):
        return -1


def run_tier(
    engine: InferenceEngine, qps: float, duration_s: float, daemon_config: DaemonConfig,
    body: bytes,
) -> dict:
    """Offer ``qps`` for ``duration_s`` against a fresh daemon; measure."""
    schedule = BurstSchedule(qps, duration_s)
    offsets = schedule.offsets()
    daemon = ServingDaemon(engine, daemon_config)
    daemon.start()
    statuses: list[int | None] = [None] * len(offsets)
    latencies: list[float | None] = [None] * len(offsets)
    try:
        start = time.monotonic()

        def fire(k: int, offset: float) -> None:
            delay = start + offset - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            sent = time.monotonic()
            statuses[k] = _post(daemon.port, body)
            latencies[k] = time.monotonic() - sent

        threads = [
            threading.Thread(target=fire, args=(k, offset), daemon=True)
            for k, offset in enumerate(offsets)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        elapsed = time.monotonic() - start
    finally:
        daemon.drain(reason="bench-tier")
        daemon.wait()

    ok = sum(1 for status in statuses if status == 200)
    shed = sum(1 for status in statuses if status == 429)
    timeout = sum(1 for status in statuses if status == 504)
    errors = len(offsets) - ok - shed - timeout
    served_ms = sorted(
        latency * 1000.0
        for status, latency in zip(statuses, latencies)
        if status == 200 and latency is not None
    )
    percentile = (
        lambda q: round(float(np.percentile(served_ms, q)), 2) if served_ms else None
    )
    return {
        "offered_qps": qps,
        "duration_s": duration_s,
        "sent": len(offsets),
        "ok": ok,
        "shed": shed,
        "timeout": timeout,
        "errors": errors,
        "p50_ms": percentile(50),
        "p99_ms": percentile(99),
        "goodput_rps": round(ok / elapsed, 2),
        "shed_rate": round(shed / len(offsets), 4),
    }


def run_benchmark(smoke: bool) -> dict:
    if smoke:
        config = {
            "input_size": 36, "units": 8, "stamp": 40,
            "tiers_qps": [20.0, 60.0], "duration_s": 1.0,
            "queue_depth": 32, "batch_max_size": 16, "batch_deadline_ms": 10.0,
            "scoring_workers": [0, 2],
        }
    else:
        config = {
            "input_size": 36, "units": 8, "stamp": 40,
            "tiers_qps": [50.0, 120.0, 250.0], "duration_s": 3.0,
            "queue_depth": 64, "batch_max_size": 32, "batch_deadline_ms": 10.0,
            "scoring_workers": [0, 2, 4],
        }
    engine = _build_engine(config["input_size"], config["units"])
    body = _request_body(engine, config["stamp"])
    # Warm BLAS / allocator so tier 1 is not paying first-touch costs.
    doc = json.loads(body)
    engine.classify_arrays(
        np.asarray(doc["pairs"], dtype=np.float32)[None],
        np.asarray(doc["mjd"], dtype=np.float32)[None],
    )

    tiers = []
    for workers in config["scoring_workers"]:
        daemon_config = DaemonConfig(
            queue_depth=config["queue_depth"],
            batch_max_size=config["batch_max_size"],
            batch_deadline_ms=config["batch_deadline_ms"],
            request_deadline_ms=10000.0,
            scoring_workers=workers,
        )
        for qps in config["tiers_qps"]:
            tier = run_tier(engine, qps, config["duration_s"], daemon_config, body)
            tier["scoring_workers"] = workers
            tiers.append(tier)
            print(
                f"workers {workers}  qps {qps:6.0f}: "
                f"goodput {tier['goodput_rps']:7.2f} rps  "
                f"p50 {tier['p50_ms']} ms  p99 {tier['p99_ms']} ms  "
                f"shed {tier['shed_rate']:.1%}  timeout {tier['timeout']}"
            )
            if tier["errors"]:
                print(f"  WARNING: {tier['errors']} untyped transport errors")

    # Capacity = best goodput across tiers; the top tier may be past the
    # knee where shedding dominates, so take the max rather than the last.
    goodput = max(
        tier["goodput_rps"] for tier in tiers if tier["scoring_workers"] == 0
    )
    mp_goodputs = [
        tier["goodput_rps"] for tier in tiers if tier["scoring_workers"] > 0
    ]
    metrics = {"sustained_goodput_rps": goodput}
    if mp_goodputs:
        metrics["sustained_goodput_mp_rps"] = max(mp_goodputs)
    return {
        "config": config,
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": cpu_count(),
            "blas": blas_backend_info(),
            "blas_env": blas_env_settings(),
            "scoring_workers": config["scoring_workers"],
        },
        "tiers": tiers,
        "metrics": metrics,
    }


def check_regression(section: dict, baseline_section: dict, tolerance: float) -> list[str]:
    """Names of metrics that regressed more than ``tolerance`` vs baseline."""
    failures = []
    base_metrics = baseline_section.get("metrics", {})
    for name in TRACKED_METRICS:
        base = base_metrics.get(name)
        current = section["metrics"].get(name)
        if base is None or current is None:
            continue
        floor = base * (1.0 - tolerance)
        status = "OK" if current >= floor else "REGRESSION"
        print(
            f"  {name}: {current:.2f} vs baseline {base:.2f} "
            f"(floor {floor:.2f}) {status}"
        )
        if current < floor:
            failures.append(name)
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny tiers for CI (a few seconds of traffic)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) on a goodput regression vs the committed baseline",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.50, metavar="FRAC",
        help="allowed fractional goodput drop before --check fails "
        "(default 0.50 — thread-scheduling noise on shared runners is large)",
    )
    parser.add_argument(
        "--out", default=DEFAULT_BASELINE, metavar="PATH",
        help="benchmark JSON to read the baseline from and write results to",
    )
    parser.add_argument(
        "--no-write", action="store_true",
        help="measure (and --check) without updating the JSON",
    )
    args = parser.parse_args(argv)

    mode = "serve_smoke" if args.smoke else "serve_full"
    print(f"mode: {mode} (numpy {np.__version__})")
    section = run_benchmark(args.smoke)

    document: dict = {}
    if os.path.exists(args.out):
        with open(args.out) as handle:
            document = json.load(handle)

    failures: list[str] = []
    if args.check:
        baseline_section = document.get(mode)
        if baseline_section is None:
            print(f"no committed '{mode}' baseline in {args.out}; nothing to check")
        else:
            print(f"regression check vs {args.out} (tolerance {args.tolerance:.0%}):")
            failures = check_regression(section, baseline_section, args.tolerance)

    if not args.no_write and not failures:
        document[mode] = section
        tmp = args.out + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, args.out)
        print(f"wrote {args.out} [{mode}]")

    if failures:
        print(f"FAIL: regression in {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
