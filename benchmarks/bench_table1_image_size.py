"""Table 1 — flux-CNN loss versus input image size (36..65).

Trains the band-wise CNN at each of the paper's five crop sizes and
reports train/validation/test MSE (in the paper's normalised units the
losses are ~1e-2; here raw magnitude-squared).  The paper's observation
is that larger crops do better because background context helps — the
ordering, not the absolute loss, is the reproduction target.

Also runs the two design ablations DESIGN.md calls out on the smallest
size: linear instead of signed-log input, and average instead of max
pooling.
"""

import os

import numpy as np

from repro.core import BandwiseCNN, TrainConfig, fit_regressor, make_pair_augmenter
from repro.utils import format_table

SIZES = (36, 44, 52, 60, 65)
EPOCHS = int(os.environ.get("REPRO_BENCH_T1_EPOCHS", 8))


def _train_once(splits, size, input_transform="signed_log", pool="max", seed=7):
    x_train, y_train, m_train = splits.train.flux_pairs(min_flux=2.0)
    x_val, y_val, m_val = splits.val.flux_pairs(min_flux=2.0)
    x_test, y_test, m_test = splits.test.flux_pairs(min_flux=2.0)

    cnn = BandwiseCNN(
        input_size=size,
        input_transform=input_transform,
        pool=pool,
        rng=np.random.default_rng(seed),
    )
    history = fit_regressor(
        cnn,
        x_train[m_train],
        y_train[m_train],
        TrainConfig(
            epochs=EPOCHS, batch_size=64, learning_rate=5e-4, seed=seed,
            early_stopping_patience=4,
        ),
        x_val[m_val],
        y_val[m_val],
        augment_fn=make_pair_augmenter(size),
    )
    pred = cnn.predict(x_test[m_test])
    test_mse = float(np.mean((pred - y_test[m_test]) ** 2))
    return {
        "train": history.train_loss[-1],
        "val": history.best_val_loss,
        "test": test_mse,
    }


def test_table1_image_size_sweep(benchmark, image_splits):
    def run():
        return {size: _train_once(image_splits, size) for size in SIZES}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [f"{s}x{s}", f"{r['train']:.4f}", f"{r['val']:.4f}", f"{r['test']:.4f}"]
        for s, r in results.items()
    ]
    print()
    print(
        format_table(
            ["Size", "Train loss", "Val loss", "Test loss"],
            rows,
            title="Table 1: mean squared magnitude loss vs input size",
        )
    )

    # Paper trend: the largest crops are never the worst and the 60/65
    # sizes beat the smallest.  (Exact per-size ordering is noisy at CPU
    # scale, so assert the envelope.)
    tests = {s: results[s]["test"] for s in SIZES}
    assert min(tests[60], tests[65]) <= tests[36] * 1.25
    assert all(np.isfinite(v) for v in tests.values())


def test_table1_ablations(benchmark, image_splits):
    def run():
        return {
            "paper (signed_log, max)": _train_once(image_splits, 36),
            "linear input": _train_once(image_splits, 36, input_transform="linear"),
            "avg pooling": _train_once(image_splits, 36, pool="avg"),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, f"{r['train']:.4f}", f"{r['val']:.4f}", f"{r['test']:.4f}"]
        for name, r in results.items()
    ]
    print()
    print(
        format_table(
            ["Variant", "Train loss", "Val loss", "Test loss"],
            rows,
            title="Table 1 ablations (input transform, pooling) at 36x36",
        )
    )
    assert all(np.isfinite(r["test"]) for r in results.values())
