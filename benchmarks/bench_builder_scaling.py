"""Builder scaling — wall-clock speedup of the parallel dataset builder.

The dataset build is the slowest stage of the whole pipeline (the paper
renders 12,000 supernovae into host cutouts); version 2 of the builder
gives every sample slot its own ``SeedSequence`` child so slots can be
rendered concurrently across a process pool with bit-identical output.
This benchmark measures the speedup of ``BuildConfig.workers`` on an
imaging build and verifies the parallel dataset equals the serial one.

Run directly for the acceptance-scale measurement (200 samples at the
paper's 65x65 stamps, workers 1/2/4)::

    PYTHONPATH=src python benchmarks/bench_builder_scaling.py

Environment overrides:

``REPRO_BENCH_BUILDER_SAMPLES``
    Total samples of the __main__ run (default 200).
``REPRO_BENCH_BUILDER_WORKERS``
    Maximum worker count of the __main__ sweep (default 4).

The pytest entry uses a scaled-down build and only asserts the speedup
when the machine actually has the cores to show it; the bit-identity
assertion always runs.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.datasets import BuildConfig, DatasetBuilder
from repro.datasets.io import _FIELDS
from repro.survey import ImagingConfig
from repro.utils import format_table


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def _datasets_equal(a, b) -> bool:
    return all(np.array_equal(getattr(a, f), getattr(b, f)) for f in _FIELDS)


def _timed_build(n_total: int, stamp_size: int, workers: int):
    config = BuildConfig(
        n_ia=n_total // 2,
        n_non_ia=n_total - n_total // 2,
        seed=2024,
        catalog_size=2000,
        imaging=ImagingConfig(stamp_size=stamp_size),
        workers=workers,
    )
    start = time.perf_counter()
    dataset = DatasetBuilder(config).build()
    return dataset, time.perf_counter() - start


def _scaling_table(n_total: int, stamp_size: int, worker_counts: list[int]):
    """Build at each worker count; return rows and the datasets' parity."""
    results = {}
    for workers in worker_counts:
        results[workers] = _timed_build(n_total, stamp_size, workers)
    reference, serial_time = results[worker_counts[0]]
    rows = []
    identical = True
    for workers, (dataset, elapsed) in results.items():
        identical &= _datasets_equal(reference, dataset)
        rows.append(
            [
                str(workers),
                f"{elapsed:.1f}s",
                f"{serial_time / elapsed:.2f}x",
                f"{n_total / elapsed:.1f}/s",
            ]
        )
    return rows, identical, results


def test_builder_scaling():
    """Parallel build is bit-identical; faster when cores are available."""
    cores = os.cpu_count() or 1
    workers = min(4, max(2, cores))
    rows, identical, results = _scaling_table(
        n_total=20, stamp_size=33, worker_counts=[1, workers]
    )
    print()
    print(
        format_table(
            ["workers", "wall clock", "speedup", "samples/s"],
            rows,
            title=f"Builder scaling (20 samples, 33px stamps, {cores} cores)",
        )
    )
    assert identical, "parallel dataset must be bit-identical to serial"
    if cores >= 4:
        _, serial_time = results[1]
        _, parallel_time = results[workers]
        assert parallel_time < serial_time, (
            f"{workers} workers ({parallel_time:.1f}s) should beat serial "
            f"({serial_time:.1f}s) on a {cores}-core machine"
        )


def main() -> int:
    n_total = _env_int("REPRO_BENCH_BUILDER_SAMPLES", 200)
    max_workers = _env_int("REPRO_BENCH_BUILDER_WORKERS", 4)
    cores = os.cpu_count() or 1
    worker_counts = [1]
    w = 2
    while w <= max_workers:
        worker_counts.append(w)
        w *= 2
    rows, identical, results = _scaling_table(
        n_total=n_total, stamp_size=65, worker_counts=worker_counts
    )
    print(
        format_table(
            ["workers", "wall clock", "speedup", "samples/s"],
            rows,
            title=(
                f"Builder scaling ({n_total} samples, 65px stamps, "
                f"{cores} cores available)"
            ),
        )
    )
    if not identical:
        print("FAIL: parallel dataset differs from serial build")
        return 1
    print("all worker counts produced bit-identical datasets")
    if cores < max_workers:
        print(
            f"note: only {cores} cores available; speedup at "
            f"{max_workers} workers needs >= {max_workers} cores"
        )
        return 0
    _, serial_time = results[1]
    _, parallel_time = results[worker_counts[-1]]
    speedup = serial_time / parallel_time
    if speedup <= 2.0:
        print(f"FAIL: expected >2x speedup at {worker_counts[-1]} workers, got {speedup:.2f}x")
        return 1
    print(f"OK: {speedup:.2f}x speedup at {worker_counts[-1]} workers")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
