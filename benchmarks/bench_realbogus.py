"""Extension benchmark — real/bogus rejection (paper Section 2 context).

Not a table/figure of the paper itself, but the pipeline stage its
introduction leans on: random-forest real/bogus classifiers in the
literature reach TPR ~92% at FPR 1% (Brink et al. 2013), and deep
networks FPR 0.85% at TPR 90% (Morii et al. 2016).  This benchmark
measures our from-scratch feature + random-forest implementation on
simulated candidates and reports the same operating points.
"""

import numpy as np

from repro.baselines import RealBogusClassifier
from repro.catalog import CosmosCatalog, HostSelector
from repro.eval import roc_curve
from repro.photometry import band_by_name
from repro.survey import StampSimulator, difference_images, make_bogus_stamp
from repro.utils import format_table


def _build_candidates(n_per_class, seed):
    rng = np.random.default_rng(seed)
    catalog = CosmosCatalog(800, seed=seed)
    selector = HostSelector(catalog)
    sim = StampSimulator()
    band = band_by_name("i")
    noise = sim.noise.pixel_sigma(band, sim.config.pixel_scale)

    def sn_free_difference(local_rng):
        """Difference stamp of a galaxy with no transient: residuals only."""
        placement = selector.sample(local_rng)
        night = sim.conditions.sample(57000.0, local_rng)
        obs = sim.observe(placement, band, 0.0, night, local_rng)
        ref = sim.reference(placement, band, local_rng)
        return placement, night, ref, difference_images(
            ref.pixels.astype(float), obs.pixels.astype(float),
            ref.conditions.seeing_fwhm, night.seeing_fwhm,
        ).difference

    from repro.survey import inject_cosmic_ray, inject_dipole, inject_hot_pixel

    stamps, labels = [], []
    for _ in range(n_per_class):
        # Real: a supernova in its host's difference image.
        placement = selector.sample(rng)
        night = sim.conditions.sample(57000.0, rng)
        flux = rng.uniform(10, 100)
        obs = sim.observe(placement, band, flux, night, rng)
        ref = sim.reference(placement, band, rng)
        diff = difference_images(
            ref.pixels.astype(float), obs.pixels.astype(float),
            ref.conditions.seeing_fwhm, night.seeing_fwhm,
        ).difference
        stamps.append(diff)
        labels.append(1.0)

        # Bogus: the same kind of residual background plus an artefact —
        # harder than artefacts on pure noise.
        _, _, _, clean_diff = sn_free_difference(rng)
        kind = int(rng.integers(3))
        if kind == 0:
            bogus = inject_cosmic_ray(clean_diff, rng, amplitude=noise * rng.uniform(6, 30))
        elif kind == 1:
            bogus = inject_dipole(clean_diff, rng, amplitude=noise * rng.uniform(5, 20))
        else:
            bogus = inject_hot_pixel(clean_diff, rng, amplitude=noise * rng.uniform(10, 40))
        stamps.append(bogus)
        labels.append(0.0)
    return np.array(stamps), np.array(labels)


def test_realbogus_rejection(benchmark):
    def run():
        train_stamps, train_labels = _build_candidates(150, seed=5)
        test_stamps, test_labels = _build_candidates(100, seed=6)
        clf = RealBogusClassifier(n_trees=80, seed=7).fit(train_stamps, train_labels)
        return test_labels, clf.predict_proba(test_stamps)

    labels, scores = benchmark.pedantic(run, rounds=1, iterations=1)
    curve = roc_curve(labels, scores)

    rows = [
        ["0.01", f"{curve.tpr_at_fpr(0.01):.3f}", "0.92 (Brink et al. 2013)"],
        ["0.05", f"{curve.tpr_at_fpr(0.05):.3f}", "-"],
        ["0.10", f"{curve.tpr_at_fpr(0.10):.3f}", "-"],
    ]
    print()
    print(
        format_table(
            ["FPR", "TPR (ours)", "TPR (literature)"],
            rows,
            title="Real/bogus rejection operating points",
        )
    )
    print(f"AUC {curve.auc:.3f}")

    assert curve.auc > 0.9
    assert curve.tpr_at_fpr(0.10) > 0.7
