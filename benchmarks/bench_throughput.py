"""Hot-path throughput benchmark — the repo's tracked perf trajectory.

The ROADMAP's north star is a production-scale system that "runs as fast
as the hardware allows"; this benchmark pins that claim to numbers.  It
measures the three serving/training hot paths:

* ``train_steps_per_s`` — full forward + backward + Adam step of the
  band-wise flux CNN (batch 64);
* ``cnn_predict_samples_per_s`` — inference over raw ``(N, 2, S, S)``
  stamp pairs through :meth:`BandwiseCNN.predict`;
* ``classify_arrays_samples_per_s`` — end-to-end serving throughput of
  :meth:`InferenceEngine.classify_arrays` (validate/repair + fused CNN +
  features + classifier) on clean traffic;
* ``classify_arrays_float16_samples_per_s`` — the same path with
  half-precision activation storage (float32 GEMM accumulation);
* ``classify_arrays_mp{W}_samples_per_s`` — the same clean-traffic
  workload scattered over a ``repro.serve.pool.ScoringPool`` of W
  BLAS-pinned worker processes (W in ``MP_WORKER_COUNTS``), the
  ``repro classify --mp`` / ``repro serve --scoring-workers`` path.

``--check`` additionally runs the deterministic accuracy gates: the
fused float32 path must match chunked ``predict`` bit for bit, the
float16 path's AUC on a labelled synthetic batch must stay within
``AUC_GATE`` of float32, and a two-worker scoring pool must reproduce
the single-process scores at wire precision.  On machines with at
least ``MP_GATE_MIN_CORES`` cores it also enforces the
``MP_SPEEDUP_GATE``x multi-process speedup at four workers; on smaller
machines the speedup gate is reported but skipped (process scatter
cannot beat one core), while the parity gate always runs.

Results are written to ``BENCH_throughput.json`` at the repo root (one
section per mode, so the committed file carries both the ``full``
acceptance numbers and the tiny ``smoke`` CI point).  The perf-timer
breakdown of the classify section rides along for drill-down.

Run the acceptance-scale measurement::

    PYTHONPATH=src python benchmarks/bench_throughput.py

CI smoke mode with the regression guard (fails when any metric drops
more than ``--tolerance`` below the committed baseline)::

    PYTHONPATH=src python benchmarks/bench_throughput.py --smoke --check
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

from repro import nn
from repro.core import SupernovaPipeline
from repro.core.flux_cnn import BandwiseCNN
from repro.nn import blas_backend_info, blas_env_settings, cpu_count
from repro.perf import instrument as perf
from repro.serve import FluxPrior, InferenceEngine
from repro.serve.pool import PoolConfig, ScoringPool

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_throughput.json")

#: Metrics tracked by the regression guard (all are rates: higher = better).
TRACKED_METRICS = (
    "train_steps_per_s",
    "cnn_predict_samples_per_s",
    "classify_arrays_samples_per_s",
    "classify_arrays_float16_samples_per_s",
    "classify_arrays_mp4_samples_per_s",
)

#: The float16 fast path may not shift AUC by more than this vs float32.
AUC_GATE = 2e-3

#: Scoring-pool sizes measured for the multi-process scaling curve.
MP_WORKER_COUNTS = (1, 2, 4)

#: Required mp4 speedup over single-process classify, and the core count
#: below which the speedup gate is informational only (a 1-2 core box
#: cannot express 4-way process parallelism; parity still gates there).
MP_SPEEDUP_GATE = 3.0
MP_GATE_MIN_CORES = 4


def env_block(scoring_workers: tuple[int, ...] = MP_WORKER_COUNTS) -> dict:
    """Hardware/runtime provenance committed next to every measurement."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": cpu_count(),
        "blas": blas_backend_info(),
        "blas_env": blas_env_settings(),
        "scoring_workers": list(scoring_workers),
    }


def _synth_pairs(
    n: int, stamp: int, rng: np.random.Generator, visits: int | None = None
) -> np.ndarray:
    """Clean synthetic (reference, observation) stamps with a point source."""
    shape = (n, 2, stamp, stamp) if visits is None else (n, visits, 2, stamp, stamp)
    pairs = rng.normal(0.0, 30.0, size=shape).astype(np.float32)
    # A faint PSF-ish blob on the observation channel keeps the difference
    # image non-trivial for the sigma-clip stage.
    yy, xx = np.mgrid[0:stamp, 0:stamp]
    blob = 200.0 * np.exp(
        -((yy - stamp // 2) ** 2 + (xx - stamp // 2) ** 2) / (2 * 2.5**2)
    ).astype(np.float32)
    pairs[..., 1, :, :] += blob
    return pairs


def _timeit(fn, repeats: int) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` runs (1 warmup)."""
    fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def bench_train_steps(
    input_size: int, steps: int, batch: int, repeats: int, seed: int = 0
) -> float:
    """Forward + backward + Adam steps per second on the flux CNN."""
    rng = np.random.default_rng(seed)
    cnn = BandwiseCNN(input_size=input_size, rng=rng)
    cnn.train()
    pairs = _synth_pairs(batch, input_size, rng)
    mags = rng.uniform(20.0, 25.0, size=batch).astype(np.float32)
    optimizer = nn.Adam(cnn.parameters(), lr=1e-4)
    loss_fn = nn.MSELoss()
    x = nn.Tensor(pairs)
    y = nn.Tensor(mags)

    def run() -> None:
        for _ in range(steps):
            optimizer.zero_grad()
            loss = loss_fn(cnn.forward(x), y)
            loss.backward()
            optimizer.step()

    elapsed = _timeit(run, repeats)
    return steps / elapsed


def bench_cnn_predict(
    input_size: int, n: int, repeats: int, seed: int = 1
) -> float:
    """Raw CNN inference throughput in stamp pairs per second."""
    rng = np.random.default_rng(seed)
    cnn = BandwiseCNN(input_size=input_size, rng=rng)
    cnn.eval()
    pairs = _synth_pairs(n, input_size, rng)
    elapsed = _timeit(lambda: cnn.predict(pairs), repeats)
    return n / elapsed


def _classify_inputs(
    input_size: int, stamp: int, n: int, seed: int, precision: str = "float32"
):
    """Engine + synthetic traffic shared by the serving benchmarks."""
    rng = np.random.default_rng(seed)
    pipeline = SupernovaPipeline(input_size=input_size, epochs_used=1, seed=seed)
    pipeline.cnn.eval()
    pipeline.classifier.eval()
    engine = InferenceEngine(pipeline, prior=FluxPrior.neutral(), precision=precision)
    visits = engine._n_used_visits
    pairs = _synth_pairs(n, stamp, rng, visits=visits)
    mjd = (57000.0 + np.arange(n * visits).reshape(n, visits) * 0.01).astype(
        np.float64
    )
    return engine, pairs, mjd


def _classify_workload(
    input_size: int,
    stamp: int,
    n: int,
    batch: int,
    seed: int,
    precision: str = "float32",
):
    """Build the end-to-end serving workload; returns its ``run()`` closure."""
    engine, pairs, mjd = _classify_inputs(
        input_size, stamp, n, seed, precision=precision
    )

    def run() -> list:
        results = []
        for start in range(0, n, batch):
            results.extend(
                engine.classify_arrays(
                    pairs[start : start + batch], mjd[start : start + batch]
                )
            )
        return results

    return run


def bench_classify(
    input_size: int,
    stamp: int,
    n: int,
    batch: int,
    repeats: int,
    seed: int = 2,
    precision: str = "float32",
) -> tuple[float, dict]:
    """End-to-end serving throughput in samples per second.

    Also returns the perf-timer breakdown of one instrumented pass.
    """
    run = _classify_workload(input_size, stamp, n, batch, seed, precision=precision)
    elapsed = _timeit(run, repeats)

    perf.reset()
    perf.enable()
    try:
        run()
        timers = perf.report()
    finally:
        perf.disable()
        perf.reset()
    return n / elapsed, timers


def bench_classify_mp(
    input_size: int,
    stamp: int,
    n: int,
    batch: int,
    repeats: int,
    workers: int,
    seed: int = 2,
) -> tuple[float, dict]:
    """Multi-process serving throughput through a :class:`ScoringPool`.

    Each dispatch hands the pool ``batch x workers`` samples so every
    worker's shard matches the single-process benchmark's GEMM batch;
    pool startup (spawn + per-worker numpy import) is excluded from the
    timed region, mirroring a warm ``repro serve`` daemon.  Returns the
    rate plus the pool's own stats for the drill-down section.
    """
    engine, pairs, mjd = _classify_inputs(input_size, stamp, n, seed)
    dispatch = batch * workers
    with ScoringPool(engine=engine, config=PoolConfig(workers=workers)) as pool:

        def run() -> list:
            results = []
            for start in range(0, n, dispatch):
                results.extend(
                    pool.classify_arrays(
                        pairs[start : start + dispatch],
                        mjd[start : start + dispatch],
                    )
                )
            return results

        elapsed = _timeit(run, repeats)
        stats = pool.stats()
    keep = (
        "workers", "blas_threads", "slots", "slot_bytes",
        "batches", "samples", "shm_overflow",
        "scatter_s_total", "gather_s_total",
    )
    return n / elapsed, {key: stats[key] for key in keep}


def pool_parity_gate(
    input_size: int, stamp: int, n: int, seed: int = 11, workers: int = 2
) -> list[str]:
    """Deterministic gate: pool scores == single-process at wire precision.

    Probability/confidence are compared at the daemon's round-6 wire
    precision (raw float32 GEMM output varies at the last ulp with
    batch shape — see ``TestCleanTrafficParity``); degraded flags and
    usable bands must match exactly.  Returns failure strings.
    """
    engine, pairs, mjd = _classify_inputs(input_size, stamp, n, seed)
    solo = engine.classify_arrays(pairs, mjd)
    with ScoringPool(engine=engine, config=PoolConfig(workers=workers)) as pool:
        pooled = pool.classify_arrays(pairs, mjd)
    bad = [
        i
        for i, (a, b) in enumerate(zip(solo, pooled))
        if round(a.probability, 6) != round(b.probability, 6)
        or round(a.confidence, 6) != round(b.confidence, 6)
        or a.degraded != b.degraded
        or a.usable_bands != b.usable_bands
    ]
    status = "OK" if not bad else "FAIL"
    print(f"pool parity: {workers} workers vs single-process, {n} samples {status}")
    if bad:
        return [
            f"scoring pool ({workers} workers) diverged from single-process "
            f"scores at wire precision for samples {bad[:5]}"
        ]
    return []


def _rank_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Mann-Whitney AUC from average ranks (tie-aware, no sklearn)."""
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels).astype(bool)
    order = np.argsort(scores, kind="stable")
    _, inverse, counts = np.unique(scores[order], return_inverse=True, return_counts=True)
    average_rank = np.cumsum(counts) - (counts - 1) / 2.0
    ranks = np.empty(scores.size, dtype=np.float64)
    ranks[order] = average_rank[inverse]
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        return float("nan")
    return float((ranks[labels].sum() - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def _labeled_pairs(n: int, stamp: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Stamp pairs with a bright blob on half the samples (the labels)."""
    pairs = rng.normal(0.0, 30.0, size=(n, 2, stamp, stamp)).astype(np.float32)
    labels = (np.arange(n) % 2).astype(bool)
    yy, xx = np.mgrid[0:stamp, 0:stamp]
    psf = np.exp(
        -((yy - stamp // 2) ** 2 + (xx - stamp // 2) ** 2) / (2 * 2.5**2)
    ).astype(np.float32)
    amplitude = np.where(
        labels,
        rng.uniform(200.0, 600.0, size=n),
        rng.uniform(0.0, 60.0, size=n),
    ).astype(np.float32)
    pairs[:, 1] += amplitude[:, None, None] * psf
    return pairs, labels


def accuracy_gates(input_size: int, n: int, seed: int = 7) -> list[str]:
    """Deterministic correctness gates on the fused/reduced-precision paths.

    1. ``fused_forward`` at float32 must be bit-identical to the chunked
       ``predict`` reference on a labelled synthetic batch;
    2. the float16 path's AUC over that batch must sit within
       :data:`AUC_GATE` of the float32 AUC (magnitudes are the score —
       brighter transient, smaller magnitude).

    Returns failure strings (empty = all gates pass).
    """
    rng = np.random.default_rng(seed)
    cnn = BandwiseCNN(input_size=input_size, rng=rng)
    cnn.eval()
    pairs, labels = _labeled_pairs(n, input_size, rng)

    failures: list[str] = []
    fused = cnn.fused_forward(pairs)
    chunked = cnn.predict(pairs)
    if not np.array_equal(fused, chunked):
        delta = float(np.max(np.abs(fused - chunked)))
        failures.append(
            f"fused float32 path diverged from chunked predict (max |delta| {delta:g})"
        )

    half = cnn.fused_forward(pairs, precision="float16")
    auc32 = _rank_auc(-fused, labels)
    auc16 = _rank_auc(-half, labels)
    drift = abs(auc16 - auc32)
    status = "OK" if drift <= AUC_GATE else "FAIL"
    print(
        f"accuracy: fused parity {'OK' if not failures else 'FAIL'}, "
        f"AUC f32 {auc32:.4f} vs f16 {auc16:.4f} "
        f"(|drift| {drift:.2e}, gate {AUC_GATE:.0e}) {status}"
    )
    if not np.isfinite(drift) or drift > AUC_GATE:
        failures.append(
            f"float16 AUC drifted {drift:.2e} from float32 (gate {AUC_GATE:.0e})"
        )
    return failures


def bench_telemetry(
    input_size: int, stamp: int, n: int, batch: int, repeats: int, seed: int = 3
) -> tuple[dict, list[str]]:
    """Telemetry overhead smoke on the classify hot path.

    The interesting regression class is the *disabled* path silently
    growing a cost — a session leaking active after ``stop()``, or the
    ``obs.active()`` check turning into real work.  Wall-clock A/B
    timing of that path is hopeless on shared runners (CPU frequency
    drift alone exceeds any honest gate), so the gate is deterministic:

    1. no session is active before or leaked after the enabled rounds;
    2. classify outputs are bit-identical with telemetry off and on;
    3. the disabled hook itself — ``obs.active()`` plus the branch,
       the *entire* cost classify pays when telemetry is off — is
       microbenchmarked and its per-batch cost must stay under 2% of
       the measured per-batch classify time;
    4. enabled rounds emit at least one event per served sample;
    5. the disabled *tracing* hook (``repro.obs.trace.span`` returning
       ``NULL_SPAN``) is microbenchmarked the same way — three
       instrumented engine stages per batch must also stay under the
       2% gate — and fully-traced rounds (``trace="always"`` with a
       root span over each run) report the enabled-with-sampling
       overhead informationally.

    Off/on rounds still interleave and the enabled overhead is reported
    informationally (median of paired per-round ratios, robust to
    drift); absolute throughput stays gated by ``--check``.
    """
    import statistics
    import tempfile

    from repro import obs

    run = _classify_workload(input_size, stamp, n, batch, seed)
    rounds = max(2 * repeats, 4)
    failures: list[str] = []

    if obs.active() is not None:
        failures.append("a telemetry session was already active before the bench")

    for _ in range(2):  # warm caches, allocator and BLAS threads
        run()

    times_off: list[float] = []
    times_on: list[float] = []
    n_events = 0
    results_off = results_on = None
    with tempfile.TemporaryDirectory() as tmp:
        for index in range(rounds):
            start = time.perf_counter()
            results_off = run()
            times_off.append(time.perf_counter() - start)

            round_dir = os.path.join(tmp, f"round{index}")
            obs.start(round_dir, command="bench-telemetry")
            try:
                start = time.perf_counter()
                results_on = run()
                times_on.append(time.perf_counter() - start)
            finally:
                obs.stop()
            n_events += sum(
                1 for _ in obs.read_events(os.path.join(round_dir, obs.EVENTS_FILE))
            )

    if obs.active() is not None:
        failures.append("telemetry session leaked: obs.active() is not None after stop()")

    mismatched = [
        i
        for i, (a, b) in enumerate(zip(results_off, results_on))
        if a.probability != b.probability or a.degraded != b.degraded
    ]
    if mismatched:
        failures.append(
            f"telemetry changed classify outputs for samples {mismatched[:5]}"
        )

    # The whole disabled path is one ``obs.active()`` call per
    # classify_arrays() batch; time it directly.
    hook_iters = 200_000
    start = time.perf_counter()
    for _ in range(hook_iters):
        if obs.active() is not None:  # pragma: no cover - never taken here
            raise AssertionError
    hook_cost = (time.perf_counter() - start) / hook_iters
    batches_per_run = (n + batch - 1) // batch
    batch_time = min(times_off) / batches_per_run
    disabled_overhead = hook_cost / batch_time

    # The disabled tracing hook: span() reads one module reference and
    # returns NULL_SPAN; each scored batch pays it once per instrumented
    # engine stage (repair, cnn, features).
    from repro.obs import trace as trace_mod

    if trace_mod.tracer() is not None:
        failures.append("a tracer was already installed before the bench")
    start = time.perf_counter()
    for _ in range(hook_iters):
        with trace_mod.span("bench.hook"):
            pass
    trace_hook_cost = (time.perf_counter() - start) / hook_iters
    trace_disabled_overhead = 3 * trace_hook_cost / batch_time

    # Fully-traced rounds: telemetry + trace="always", with a root span
    # over each run so every engine stage records a span.  Reported
    # informationally — sampling policies (rate:F / slow:MS) only ever
    # cost less than this ceiling.
    times_traced: list[float] = []
    n_spans = 0
    with tempfile.TemporaryDirectory() as tmp:
        for index in range(max(repeats, 2)):
            round_dir = os.path.join(tmp, f"trace{index}")
            session = obs.start(round_dir, command="bench-trace", trace="always")
            try:
                root = session.tracer.start_trace(f"bench/round{index}")
                start = time.perf_counter()
                with root:
                    run()
                times_traced.append(time.perf_counter() - start)
            finally:
                obs.stop()
            n_spans += sum(
                1
                for event in obs.read_events(
                    os.path.join(round_dir, obs.EVENTS_FILE)
                )
                if event.get("event") == trace_mod.SPAN_EVENT
            )

    rate_off = n / min(times_off)
    rate_on = n / min(times_on)
    rate_traced = n / min(times_traced)
    enabled_overhead = statistics.median(
        t_on / t_off for t_on, t_off in zip(times_on, times_off)
    ) - 1.0
    traced_overhead = min(times_traced) / min(times_off) - 1.0

    print(f"telemetry off:      {rate_off:8.2f} samples/s")
    print(f"telemetry on:       {rate_on:8.2f} samples/s ({n_events} events)")
    print(f"traced (always):    {rate_traced:8.2f} samples/s ({n_spans} spans)")
    print(
        f"disabled hook cost  {hook_cost * 1e9:6.0f} ns/batch = "
        f"{disabled_overhead:.4%} of batch time (gate <2%), "
        f"enabled overhead {enabled_overhead:6.2%}"
    )
    print(
        f"disabled trace hook {trace_hook_cost * 1e9:6.0f} ns/span x3 = "
        f"{trace_disabled_overhead:.4%} of batch time (gate <2%), "
        f"traced overhead {traced_overhead:6.2%}"
    )

    if disabled_overhead > 0.02:
        failures.append(
            f"disabled telemetry hook costs {disabled_overhead:.2%} of classify "
            "batch time (gate 2%)"
        )
    if trace_disabled_overhead > 0.02:
        failures.append(
            f"disabled tracing hooks cost {trace_disabled_overhead:.2%} of "
            "classify batch time (gate 2%)"
        )
    # Every enabled round serves n samples -> at least that many
    # serve.request events plus session bookkeeping.
    if n_events <= n * len(times_on):
        failures.append(
            f"telemetry-enabled rounds emitted only {n_events} events for "
            f"{n * len(times_on)} served samples"
        )
    # Each traced round must record the root plus the per-batch engine
    # stage spans.
    if n_spans < len(times_traced) * (1 + batches_per_run):
        failures.append(
            f"traced rounds recorded only {n_spans} spans for "
            f"{len(times_traced)} runs of {batches_per_run} batches"
        )
    section = {
        "disabled_samples_per_s": round(rate_off, 2),
        "enabled_samples_per_s": round(rate_on, 2),
        "traced_samples_per_s": round(rate_traced, 2),
        "disabled_hook_ns": round(hook_cost * 1e9, 1),
        "disabled_overhead": round(disabled_overhead, 6),
        "enabled_overhead": round(enabled_overhead, 4),
        "trace_hook_ns": round(trace_hook_cost * 1e9, 1),
        "trace_disabled_overhead": round(trace_disabled_overhead, 6),
        "traced_overhead": round(traced_overhead, 4),
        "n_events": n_events,
        "n_spans": n_spans,
    }
    return section, failures


def run_benchmark(smoke: bool) -> dict:
    """Measure all tracked metrics; returns the JSON-ready section."""
    if smoke:
        config = {
            "input_size": 36,
            "stamp": 40,
            "train_steps": 3,
            "train_batch": 16,
            "predict_n": 64,
            "classify_n": 32,
            "classify_batch": 16,
            "repeats": 2,
        }
    else:
        config = {
            "input_size": 60,
            "stamp": 60,
            "train_steps": 10,
            "train_batch": 64,
            "predict_n": 256,
            "classify_n": 192,
            "classify_batch": 64,
            "repeats": 3,
        }

    train_rate = bench_train_steps(
        config["input_size"],
        config["train_steps"],
        config["train_batch"],
        config["repeats"],
    )
    print(f"train:    {train_rate:8.2f} steps/s  (batch {config['train_batch']})")
    predict_rate = bench_cnn_predict(
        config["input_size"], config["predict_n"], config["repeats"]
    )
    print(f"predict:  {predict_rate:8.2f} pairs/s")
    classify_rate, timers = bench_classify(
        config["input_size"],
        config["stamp"],
        config["classify_n"],
        config["classify_batch"],
        config["repeats"],
    )
    print(f"classify: {classify_rate:8.2f} samples/s (batch {config['classify_batch']})")
    classify16_rate, _ = bench_classify(
        config["input_size"],
        config["stamp"],
        config["classify_n"],
        config["classify_batch"],
        config["repeats"],
        precision="float16",
    )
    print(
        f"classify (float16): {classify16_rate:8.2f} samples/s "
        f"(batch {config['classify_batch']})"
    )

    mp_metrics: dict = {}
    mp_scaling: dict = {}
    for workers in MP_WORKER_COUNTS:
        mp_rate, pool_stats = bench_classify_mp(
            config["input_size"],
            config["stamp"],
            config["classify_n"],
            config["classify_batch"],
            config["repeats"],
            workers,
        )
        speedup = mp_rate / classify_rate if classify_rate else float("nan")
        print(
            f"classify (mp, {workers} worker{'s' if workers > 1 else ''}): "
            f"{mp_rate:8.2f} samples/s ({speedup:.2f}x single-process)"
        )
        mp_metrics[f"classify_arrays_mp{workers}_samples_per_s"] = round(mp_rate, 2)
        mp_scaling[str(workers)] = {
            "samples_per_s": round(mp_rate, 2),
            "speedup_vs_single": round(speedup, 3),
            "pool": pool_stats,
        }

    return {
        "config": config,
        "env": env_block(MP_WORKER_COUNTS),
        "metrics": {
            "train_steps_per_s": round(train_rate, 2),
            "cnn_predict_samples_per_s": round(predict_rate, 2),
            "classify_arrays_samples_per_s": round(classify_rate, 2),
            "classify_arrays_float16_samples_per_s": round(classify16_rate, 2),
            **mp_metrics,
        },
        "mp_scaling": mp_scaling,
        "timers": timers.get("timers", {}),
    }


def check_regression(section: dict, baseline_section: dict, tolerance: float) -> list[str]:
    """Names of metrics that regressed more than ``tolerance`` vs baseline."""
    failures = []
    base_metrics = baseline_section.get("metrics", {})
    for name in TRACKED_METRICS:
        base = base_metrics.get(name)
        current = section["metrics"].get(name)
        if base is None or current is None:
            continue
        floor = base * (1.0 - tolerance)
        status = "OK" if current >= floor else "REGRESSION"
        print(
            f"  {name}: {current:.2f} vs baseline {base:.2f} "
            f"(floor {floor:.2f}) {status}"
        )
        if current < floor:
            failures.append(name)
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes for CI (seconds, not minutes)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) on a throughput regression vs the committed baseline",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.30, metavar="FRAC",
        help="allowed fractional drop per metric before --check fails (default 0.30)",
    )
    parser.add_argument(
        "--out", default=DEFAULT_BASELINE, metavar="PATH",
        help="benchmark JSON to read the baseline from and write results to",
    )
    parser.add_argument(
        "--no-write", action="store_true",
        help="measure (and --check) without updating the JSON",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="also smoke the telemetry overhead gate: classify off/on/off, "
        "fail (exit 1) if the disabled path drifts more than 2%%",
    )
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    print(f"mode: {mode} (numpy {np.__version__})")
    section = run_benchmark(args.smoke)

    telemetry_failures: list[str] = []
    if args.telemetry:
        config = section["config"]
        telemetry_section, telemetry_failures = bench_telemetry(
            config["input_size"],
            config["stamp"],
            config["classify_n"],
            config["classify_batch"],
            config["repeats"],
        )
        section["telemetry"] = telemetry_section

    document: dict = {}
    if os.path.exists(args.out):
        with open(args.out) as handle:
            document = json.load(handle)

    failures: list[str] = []
    if args.check:
        baseline_section = document.get(mode)
        if baseline_section is None:
            print(f"no committed '{mode}' baseline in {args.out}; nothing to check")
        else:
            print(f"regression check vs {args.out} (tolerance {args.tolerance:.0%}):")
            failures = check_regression(section, baseline_section, args.tolerance)
        # The accuracy gates are deterministic (no timing), so they run
        # on every --check: fused parity and the float16 AUC budget.
        # The batch is sized for AUC resolution, not for timing — with
        # fewer than ~128 samples a single rank flip already exceeds
        # the gate (1 / (n/2)^2 > AUC_GATE), so smoke mode must not
        # shrink it.
        failures += accuracy_gates(
            section["config"]["input_size"],
            n=max(section["config"]["classify_n"], 160),
        )
        failures += pool_parity_gate(
            section["config"]["input_size"],
            section["config"]["stamp"],
            n=section["config"]["classify_n"],
        )
        # The speedup gate only means something when the hardware can
        # express 4-way process parallelism; the committed env block
        # records the core count either way.
        cores = cpu_count()
        single = section["metrics"]["classify_arrays_samples_per_s"]
        mp4 = section["metrics"].get("classify_arrays_mp4_samples_per_s")
        if cores < MP_GATE_MIN_CORES:
            print(
                f"mp speedup gate skipped: {cores} core(s) < "
                f"{MP_GATE_MIN_CORES} (mp4 {mp4} vs single {single} samples/s)"
            )
        elif mp4 is not None and single:
            ratio = mp4 / single
            status = "OK" if ratio >= MP_SPEEDUP_GATE else "FAIL"
            print(
                f"mp speedup gate: mp4 {mp4:.2f} / single {single:.2f} = "
                f"{ratio:.2f}x (gate {MP_SPEEDUP_GATE:.1f}x) {status}"
            )
            if ratio < MP_SPEEDUP_GATE:
                failures.append(
                    f"mp4 throughput {mp4:.2f} samples/s is only {ratio:.2f}x "
                    f"single-process (gate {MP_SPEEDUP_GATE:.1f}x)"
                )

    if not args.no_write and not failures:
        document[mode] = section
        tmp = args.out + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, args.out)
        print(f"wrote {args.out} [{mode}]")

    if failures:
        print(f"FAIL: regression in {', '.join(failures)}", file=sys.stderr)
        return 1
    if telemetry_failures:
        for failure in telemetry_failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
