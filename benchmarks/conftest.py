"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper.  Dataset
sizes and training epochs are scaled down from the paper's GPU-scale run
(12,000 samples, hundreds of epochs) to CPU-friendly defaults; override
through environment variables:

``REPRO_BENCH_SAMPLES``
    Image-dataset samples per class (default 120; paper 6,000).
``REPRO_BENCH_LC_SAMPLES``
    Light-curve-only samples per class (default 1500).
``REPRO_BENCH_CNN_EPOCHS``
    Flux-CNN training epochs for the shared pipeline (default 24, with
    early stopping).
``REPRO_BENCH_T1_EPOCHS``
    Flux-CNN epochs for the Table-1 size sweep (default 8; the sweep
    trains five networks).

Both dataset flavours are built once per pytest session and shared.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.datasets import BuildConfig, DatasetBuilder, train_val_test_split
from repro.survey import ImagingConfig


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


N_IMAGE_SAMPLES = _env_int("REPRO_BENCH_SAMPLES", 150)
N_LC_SAMPLES = _env_int("REPRO_BENCH_LC_SAMPLES", 1500)
CNN_EPOCHS = _env_int("REPRO_BENCH_CNN_EPOCHS", 24)


@pytest.fixture(scope="session")
def image_splits():
    """Rendered 65x65 dataset, split 80/10/10 (used by Table 1, Figs 8/11/12)."""
    config = BuildConfig(
        n_ia=N_IMAGE_SAMPLES,
        n_non_ia=N_IMAGE_SAMPLES,
        seed=1234,
        catalog_size=4000,
        imaging=ImagingConfig(stamp_size=65),
    )
    dataset = DatasetBuilder(config).build()
    return train_val_test_split(dataset, seed=99)


@pytest.fixture(scope="session")
def lc_splits():
    """Light-curve-only dataset (used by Figs 9/10 and Table 2)."""
    config = BuildConfig(
        n_ia=N_LC_SAMPLES,
        n_non_ia=N_LC_SAMPLES,
        seed=4321,
        catalog_size=8000,
        render_images=False,
    )
    dataset = DatasetBuilder(config).build()
    return train_val_test_split(dataset, seed=77)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(2024)


@pytest.fixture(scope="session")
def trained_pipeline(image_splits):
    """A pipeline with stages 1-2 trained (shared by Figs. 8, 11, 12).

    Stage 1 (flux CNN) dominates benchmark runtime, so it is trained once
    per session at the paper's input size of 60.
    """
    from repro.core import SupernovaPipeline, TrainConfig

    pipe = SupernovaPipeline(input_size=60, units=100, epochs_used=1, seed=5)
    cnn_history = pipe.fit_flux_cnn(
        image_splits.train,
        image_splits.val,
        TrainConfig(
            epochs=CNN_EPOCHS,
            batch_size=64,
            learning_rate=5e-4,
            seed=11,
            early_stopping_patience=8,
        ),
        min_flux=3.0,
    )
    clf_history = pipe.fit_classifier(
        image_splits.train,
        image_splits.val,
        TrainConfig(epochs=60, batch_size=64, seed=12, early_stopping_patience=12),
        use_ground_truth=False,
    )
    return pipe, cnn_history, clf_history
