"""Figure 9 — classification with ground-truth features versus the number
of hidden units.

The paper sweeps the classifier width and finds ~100 units sufficient:
performance saturates rather than keeps improving.  Reproduced with the
single-epoch windowed protocol on ground-truth light-curve features.
"""

import numpy as np

from repro.core import LightCurveClassifier, TrainConfig, fit_classifier
from repro.core.features import dataset_windowed_features
from repro.eval import auc_score
from repro.utils import format_table

UNITS = (10, 30, 100, 300)


def test_fig9_units_sweep(benchmark, lc_splits):
    x_train, y_train = dataset_windowed_features(lc_splits.train, k_epochs=1)
    x_val, y_val = dataset_windowed_features(lc_splits.val, k_epochs=1)
    x_test, y_test = dataset_windowed_features(lc_splits.test, k_epochs=1)

    def run():
        aucs = {}
        for units in UNITS:
            clf = LightCurveClassifier(
                input_dim=x_train.shape[1], units=units, rng=np.random.default_rng(3)
            )
            fit_classifier(
                clf,
                x_train,
                y_train,
                TrainConfig(epochs=40, batch_size=128, seed=4, early_stopping_patience=8),
                x_val,
                y_val,
                metric=auc_score,
            )
            aucs[units] = auc_score(y_test, clf.predict_proba(x_test))
        return aucs

    aucs = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[str(u), f"{aucs[u]:.3f}"] for u in UNITS]
    print()
    print(
        format_table(
            ["hidden units", "test AUC"],
            rows,
            title="Fig. 9: single-epoch ROC AUC vs classifier width (GT features)",
        )
    )
    print("paper: AUC 0.958 with 100 units; >=100 units saturates")

    # Saturation: 100 units within a hair of the best; all widths decent.
    best = max(aucs.values())
    assert aucs[100] >= best - 0.02
    assert aucs[300] <= aucs[100] + 0.02
    assert best > 0.9
