"""Ablation — sharing CNN weights across bands (paper design choice).

Section 4: "All the parameters of the band-wise CNNs are shared with all
the bands."  This ablation trains (a) one shared CNN on all band pairs
(the paper) versus (b) five per-band CNNs on their own band's pairs,
under the same total epoch budget, and compares test magnitude error.

With CPU-scale data the shared model should win clearly: each per-band
model sees ~5x fewer pairs.
"""

import os

import numpy as np

from repro.core import BandwiseCNN, TrainConfig, fit_regressor, make_pair_augmenter
from repro.utils import format_table

SIZE = 44  # smaller input keeps the 6-model ablation affordable
EPOCHS = int(os.environ.get("REPRO_BENCH_T1_EPOCHS", 8))


def _flatten(split, min_flux=3.0):
    pairs, mags, mask = split.flux_pairs(min_flux)
    bands = np.tile(np.tile(np.arange(5), split.n_epochs), len(split))
    return pairs[mask], mags[mask], bands[mask]


def _train(x, y, x_val, y_val, seed):
    cnn = BandwiseCNN(input_size=SIZE, rng=np.random.default_rng(seed))
    fit_regressor(
        cnn, x, y,
        TrainConfig(
            epochs=EPOCHS, batch_size=64, learning_rate=5e-4, seed=seed,
            early_stopping_patience=4,
        ),
        x_val, y_val,
        augment_fn=make_pair_augmenter(SIZE),
    )
    return cnn


def test_ablation_weight_sharing(benchmark, image_splits):
    x_train, y_train, b_train = _flatten(image_splits.train)
    x_val, y_val, b_val = _flatten(image_splits.val)
    x_test, y_test, b_test = _flatten(image_splits.test)

    def run():
        shared = _train(x_train, y_train, x_val, y_val, seed=61)
        shared_err = float(np.mean(np.abs(shared.predict(x_test) - y_test)))

        per_band_pred = np.empty_like(y_test)
        for band in range(5):
            tr = b_train == band
            va = b_val == band
            te = b_test == band
            if tr.sum() < 10 or te.sum() == 0:
                per_band_pred[te] = y_train[tr].mean() if tr.any() else y_train.mean()
                continue
            model = _train(
                x_train[tr], y_train[tr],
                x_val[va] if va.sum() > 1 else None,
                y_val[va] if va.sum() > 1 else None,
                seed=62 + band,
            )
            per_band_pred[te] = model.predict(x_test[te])
        per_band_err = float(np.mean(np.abs(per_band_pred - y_test)))
        return shared_err, per_band_err

    shared_err, per_band_err = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["Variant", "test mean |err| (mag)"],
            [
                ["shared weights (paper)", f"{shared_err:.3f}"],
                ["per-band CNNs", f"{per_band_err:.3f}"],
            ],
            title="Ablation: band-wise weight sharing",
        )
    )
    # The shared model must not lose to the data-starved per-band models.
    assert shared_err <= per_band_err * 1.1
