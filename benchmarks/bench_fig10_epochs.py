"""Figure 10 — classification performance versus number of observation
epochs.

The paper's Fig. 10: more epochs improve the ROC markedly (AUC 0.958 at
one epoch to 0.995 at four), but a single epoch is already "sufficiently
good".  Reproduced with the windowed protocol: k-epoch windows of the
ground-truth light curve, a fresh classifier per k.
"""

import numpy as np

from repro.core import LightCurveClassifier, TrainConfig, fit_classifier
from repro.core.features import dataset_windowed_features
from repro.eval import auc_score
from repro.utils import format_table


def test_fig10_epoch_sweep(benchmark, lc_splits):
    def run():
        aucs = {}
        for k in (1, 2, 3, 4):
            x_train, y_train = dataset_windowed_features(lc_splits.train, k_epochs=k)
            x_val, y_val = dataset_windowed_features(lc_splits.val, k_epochs=k)
            x_test, y_test = dataset_windowed_features(lc_splits.test, k_epochs=k)
            clf = LightCurveClassifier(
                input_dim=x_train.shape[1], units=100, rng=np.random.default_rng(5)
            )
            fit_classifier(
                clf,
                x_train,
                y_train,
                TrainConfig(epochs=40, batch_size=128, seed=6, early_stopping_patience=8),
                x_val,
                y_val,
                metric=auc_score,
            )
            aucs[k] = auc_score(y_test, clf.predict_proba(x_test))
        return aucs

    aucs = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[str(k), f"{aucs[k]:.3f}"] for k in sorted(aucs)]
    print()
    print(
        format_table(
            ["epochs", "test AUC"],
            rows,
            title="Fig. 10: ROC AUC vs number of observation epochs (GT features)",
        )
    )
    print("paper: 0.958 (1 epoch) -> 0.995 (4 epochs), monotone improvement")

    # Monotone improvement (small tolerance for CPU-scale noise) and a
    # single epoch already strong.
    assert aucs[4] > aucs[1]
    assert aucs[2] >= aucs[1] - 0.01
    assert aucs[3] >= aucs[2] - 0.01
    assert aucs[1] > 0.9
    assert aucs[4] > 0.97
