"""Figure 5 — example reference / observation / difference stamps.

The paper's Fig. 5 shows stamp triplets for a low-z and a high-z sample.
This benchmark renders both cases and verifies the difference image
isolates the supernova: the central aperture of the difference recovers
the injected flux while the host light cancels.
"""

import numpy as np

from repro.catalog import CosmosCatalog, HostSelector
from repro.lightcurves import LightCurve, SALT2LikeModel, SALT2Parameters
from repro.photometry import band_by_name
from repro.survey import StampSimulator, difference_images
from repro.utils import format_table


def _render_case(redshift: float, seed: int):
    rng = np.random.default_rng(seed)
    catalog = CosmosCatalog(500, seed=seed)
    # Pick a host near the requested redshift for the illustration.
    host = min(catalog.galaxies, key=lambda g: abs(g.photo_z - redshift))
    selector = HostSelector(catalog)
    placement = selector.place_supernova(host, rng)

    curve = LightCurve(SALT2LikeModel(SALT2Parameters()), host.photo_z, peak_mjd=57000.0)
    band = band_by_name("i")
    flux = float(curve.flux(band, 57000.0))

    sim = StampSimulator()
    night = sim.conditions.sample(57000.0, rng)
    obs = sim.observe(placement, band, flux, night, rng)
    ref = sim.reference(placement, band, rng)
    diff = difference_images(
        ref.pixels.astype(float),
        obs.pixels.astype(float),
        ref.conditions.seeing_fwhm,
        night.seeing_fwhm,
    ).difference

    size = diff.shape[0]
    c = size // 2
    rows, cols = np.mgrid[:size, :size]
    aperture = (rows - c) ** 2 + (cols - c) ** 2 <= 9**2
    return {
        "z": host.photo_z,
        "true_flux": flux,
        "recovered_flux": float(diff[aperture].sum()),
        "host_peak_obs": float(np.max(obs.pixels)),
        "diff_background_rms": float(diff[~aperture].std()),
    }


def test_fig5_stamp_triplets(benchmark):
    def run():
        return _render_case(0.4, seed=11), _render_case(1.3, seed=23)

    low_z, high_z = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, case in (("low photo-z", low_z), ("high photo-z", high_z)):
        rows.append(
            [
                name,
                f"{case['z']:.2f}",
                f"{case['true_flux']:.1f}",
                f"{case['recovered_flux']:.1f}",
                f"{case['diff_background_rms']:.2f}",
            ]
        )
    print()
    print(
        format_table(
            ["case", "z", "true SN flux", "flux in diff aperture", "diff bkg rms"],
            rows,
            title="Fig. 5: reference/observation/difference stamp summary",
        )
    )

    # The difference isolates the SN: recovered flux ~ true flux for the
    # low-z (bright) case, and the high-z SN is much fainter.
    assert low_z["recovered_flux"] > 0.5 * low_z["true_flux"]
    assert low_z["recovered_flux"] < 1.6 * low_z["true_flux"] + 5.0
    assert high_z["true_flux"] < low_z["true_flux"] / 3.0
