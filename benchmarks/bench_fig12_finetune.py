"""Figure 12 — fine-tuning versus training the joint model from scratch.

The paper's Fig. 12 shows the fine-tuned joint model (solid) converging
faster and to better loss/accuracy than the same architecture trained
from scratch (dashed).  Reproduced by running both arms for the same
number of epochs from the same pre-trained components / fresh weights.
"""

import numpy as np

from repro.core import SupernovaPipeline, TrainConfig
from repro.eval import auc_score
from repro.utils import format_table

EPOCHS = 2


def test_fig12_finetune_vs_scratch(benchmark, trained_pipeline, image_splits):
    pretrained_pipe, _, _ = trained_pipeline

    def run():
        config = TrainConfig(epochs=EPOCHS, batch_size=32, learning_rate=3e-4, seed=41)
        # Fine-tuning arm: copies of the pre-trained CNN + classifier.
        finetune_pipe = SupernovaPipeline(input_size=60, units=100, epochs_used=1, seed=5)
        finetune_pipe.cnn.load_state_dict(pretrained_pipe.cnn.state_dict())
        finetune_pipe.classifier.load_state_dict(pretrained_pipe.classifier.state_dict())
        h_finetune = finetune_pipe.fine_tune(image_splits.train, image_splits.val, config)
        auc_finetune = finetune_pipe.evaluate_auc(image_splits.test)

        # Scratch arm: identical architecture, random weights.
        scratch_pipe = SupernovaPipeline(input_size=60, units=100, epochs_used=1, seed=6)
        h_scratch = scratch_pipe.fine_tune(
            image_splits.train, image_splits.val, config, from_scratch=True
        )
        auc_scratch = scratch_pipe.evaluate_auc(image_splits.test)
        return h_finetune, auc_finetune, h_scratch, auc_scratch

    h_ft, auc_ft, h_sc, auc_sc = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for epoch in range(EPOCHS):
        rows.append(
            [
                str(epoch + 1),
                f"{h_ft.train_loss[epoch]:.4f}" if epoch < len(h_ft.train_loss) else "-",
                f"{h_ft.val_loss[epoch]:.4f}" if epoch < len(h_ft.val_loss) else "-",
                f"{h_sc.train_loss[epoch]:.4f}" if epoch < len(h_sc.train_loss) else "-",
                f"{h_sc.val_loss[epoch]:.4f}" if epoch < len(h_sc.val_loss) else "-",
            ]
        )
    print()
    print(
        format_table(
            ["epoch", "FT train", "FT val", "scratch train", "scratch val"],
            rows,
            title="Fig. 12: fine-tuning (FT) vs from-scratch joint training",
        )
    )
    print(f"test AUC: fine-tuned {auc_ft:.3f} vs scratch {auc_sc:.3f}")

    # Paper claims: fine-tuning starts lower and stays ahead.
    assert h_ft.train_loss[0] < h_sc.train_loss[0]
    assert auc_ft >= auc_sc - 0.02
    assert h_ft.val_loss[0] <= h_sc.val_loss[0] + 0.05
