"""Degraded-input sweep — AUC under corruption, never a crash.

The serving north star is graceful degradation: as survey traffic rots
(missing bands, NaN pixels, saturated bleeds, half-transferred cutouts),
:class:`repro.serve.InferenceEngine` must keep answering, with AUC
decaying smoothly from the clean baseline down to the all-bands-masked
prior floor (0.5) — never an uncaught exception, never NaN
probabilities.

This benchmark trains the two-stage pipeline on a clean dataset, then
sweeps every :class:`~repro.runtime.faults.InputCorruption` injector
across at least three severities plus the full 0..5 dropped-band ladder.
The sweep is scored on the *full* dataset (not the small held-out
split): clean and corrupted AUCs are compared on identical samples, so
the measurement is of relative degradation, where the larger sample
count matters far more than held-out purity. The benchmark asserts

* every corrupted sample is served with a finite probability in [0, 1];
* per injector, AUC is monotone non-increasing in severity (within a
  small-sample tolerance) and bounded below;
* with all five bands masked the engine scores every sample identically
  (the pure prior), i.e. AUC lands on the 0.5 floor.

Run directly for the acceptance-scale measurement::

    PYTHONPATH=src python benchmarks/bench_degraded_inputs.py

Environment overrides:

``REPRO_BENCH_DEGRADED_SAMPLES``
    Samples per class (default 80).
``REPRO_BENCH_DEGRADED_CNN_EPOCHS``
    Flux-CNN training epochs (default 12).
"""

from __future__ import annotations

import os

import numpy as np

from repro.core import SupernovaPipeline, TrainConfig
from repro.datasets import BuildConfig, DatasetBuilder, train_val_test_split
from repro.eval import auc_score
from repro.runtime import DropBand, NaNPixels, SaturateRegion, TruncateCutout
from repro.serve import FluxPrior, InferenceEngine
from repro.survey import ImagingConfig
from repro.utils import format_table

#: Slack for monotonicity (AUC sampling noise at benchmark scale).
MONO_TOL = 0.08
#: No corruption severity may push AUC below this floor.
AUC_FLOOR = 0.35


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def build_served_pipeline(n_per_class: int, cnn_epochs: int, seed: int = 31):
    """Train stages 1-2 on a clean build; return (engine, eval_dataset).

    The evaluation dataset is the *full* build: the sweep compares clean
    vs corrupted AUC on the same samples, so sample count (AUC noise)
    dominates held-out purity for the degradation measurement.
    """
    config = BuildConfig(
        n_ia=n_per_class,
        n_non_ia=n_per_class,
        seed=seed,
        catalog_size=max(1000, 20 * n_per_class),
        imaging=ImagingConfig(stamp_size=41),
    )
    dataset = DatasetBuilder(config).build()
    splits = train_val_test_split(dataset, seed=7)
    pipe = SupernovaPipeline(input_size=36, units=32, epochs_used=1, seed=1)
    pipe.fit_flux_cnn(
        splits.train,
        splits.val,
        TrainConfig(
            epochs=cnn_epochs, batch_size=64, learning_rate=5e-4, seed=2,
            early_stopping_patience=5,
        ),
        min_flux=3.0,
    )
    pipe.fit_classifier(
        splits.train,
        splits.val,
        TrainConfig(epochs=40, batch_size=64, seed=3, early_stopping_patience=10),
        use_ground_truth=False,
    )
    engine = InferenceEngine(pipe, prior=FluxPrior.from_dataset(splits.train))
    return engine, dataset


def corruption_grid() -> dict[str, list[tuple[str, object]]]:
    """Every injector with >= 3 severities, mildest first."""
    return {
        "drop-band": [
            (f"{k} band(s)", DropBand(list(range(k)))) for k in (1, 2, 4)
        ],
        "nan-pixels": [
            (f"{f:.0%} pixels", NaNPixels(f, seed=11)) for f in (0.02, 0.10, 0.40)
        ],
        "saturate": [
            (f"{s}px block", SaturateRegion(s, seed=12)) for s in (3, 8, 16)
        ],
        "truncate": [
            (f"{f:.0%} rows", TruncateCutout(f)) for f in (0.10, 0.30, 0.60)
        ],
    }


def served_auc(engine: InferenceEngine, test, pairs: np.ndarray) -> float:
    """Classify possibly-corrupted pairs; assert the serving contract."""
    results = engine.classify_arrays(pairs, test.visit_mjd)
    probs = np.array([r.probability for r in results])
    assert np.isfinite(probs).all(), "served a non-finite probability"
    assert ((probs >= 0) & (probs <= 1)).all(), "probability outside [0, 1]"
    return auc_score(test.labels, probs)


def sweep(engine: InferenceEngine, test) -> tuple[float, dict, list[float]]:
    """Run the full grid; returns (clean_auc, per-injector aucs, band ladder)."""
    clean_auc = served_auc(engine, test, test.pairs)
    per_injector: dict[str, list[tuple[str, float]]] = {}
    for family, severities in corruption_grid().items():
        rows = []
        for label, injector in severities:
            rows.append((label, served_auc(engine, test, injector(test.pairs))))
        per_injector[family] = rows
    band_ladder = [
        served_auc(
            engine, test,
            test.pairs if k == 0 else DropBand(list(range(k)))(test.pairs),
        )
        for k in range(6)
    ]
    return clean_auc, per_injector, band_ladder


def assert_graceful(clean_auc: float, per_injector: dict, band_ladder: list[float]) -> None:
    """The acceptance contract: smooth, bounded, floor-seeking decay."""
    assert clean_auc > 0.55, f"clean baseline too weak to measure decay ({clean_auc:.3f})"
    for family, rows in per_injector.items():
        aucs = [auc for _, auc in rows]
        assert all(a >= AUC_FLOOR for a in aucs), f"{family}: AUC fell through the floor: {aucs}"
        for mild, severe in zip(aucs, aucs[1:]):
            assert severe <= mild + MONO_TOL, (
                f"{family}: AUC rose with severity ({mild:.3f} -> {severe:.3f})"
            )
    for mild, severe in zip(band_ladder, band_ladder[1:]):
        assert severe <= mild + MONO_TOL
    assert abs(band_ladder[-1] - 0.5) < 0.02, (
        f"all-bands-masked prior must sit on the 0.5 floor, got {band_ladder[-1]:.3f}"
    )


# ----------------------------------------------------------------------
# pytest entry
# ----------------------------------------------------------------------
import pytest  # noqa: E402

pytestmark = pytest.mark.faults


@pytest.fixture(scope="module")
def served():
    return build_served_pipeline(
        n_per_class=_env_int("REPRO_BENCH_DEGRADED_SAMPLES", 80),
        cnn_epochs=_env_int("REPRO_BENCH_DEGRADED_CNN_EPOCHS", 12),
    )


def test_degradation_sweep_is_graceful(served):
    engine, test = served
    clean_auc, per_injector, band_ladder = sweep(engine, test)
    assert_graceful(clean_auc, per_injector, band_ladder)


def test_strict_mode_refuses_every_family(served):
    from repro.serve import DegradedInputError

    engine, test = served
    for _, severities in corruption_grid().items():
        _, injector = severities[-1]
        with pytest.raises(DegradedInputError):
            engine.classify_arrays(
                injector(test.pairs), test.visit_mjd, strict=True
            )


# ----------------------------------------------------------------------
# direct run
# ----------------------------------------------------------------------
def main() -> None:
    engine, test = build_served_pipeline(
        n_per_class=_env_int("REPRO_BENCH_DEGRADED_SAMPLES", 80),
        cnn_epochs=_env_int("REPRO_BENCH_DEGRADED_CNN_EPOCHS", 12),
    )
    clean_auc, per_injector, band_ladder = sweep(engine, test)

    rows = [["clean", "-", f"{clean_auc:.3f}"]]
    for family, family_rows in per_injector.items():
        for label, auc in family_rows:
            rows.append([family, label, f"{auc:.3f}"])
    print(format_table(["corruption", "severity", "AUC"], rows,
                       title="Degraded-input sweep (full dataset)"))
    print()
    print(format_table(
        ["bands masked", "AUC"],
        [[str(k), f"{auc:.3f}"] for k, auc in enumerate(band_ladder)],
        title="Band-masking ladder (prior imputation)",
    ))
    assert_graceful(clean_auc, per_injector, band_ladder)
    print("\ngraceful-degradation contract: PASS "
          "(monotone within tolerance, bounded, prior floor reached)")


if __name__ == "__main__":
    main()
