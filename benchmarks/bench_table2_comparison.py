"""Table 2 — comparison with existing methods.

Regenerates every row group of the paper's Table 2 on the same synthetic
test set:

* Poznanski-style Bayesian single-epoch classification, with and without
  a known redshift (paper ref [14]);
* classical multi-epoch photometric approaches: chi^2 template fitting
  (Sullivan-style) with and without redshift, a random forest on
  light-curve features (Lochner-style) and a GRU sequence model
  (Charnock-style);
* the proposed highway-network classifier with single-epoch and
  four-epoch features, no redshift.

The reproduction target is the ordering: the proposed single-epoch
method beats single-epoch Bayesian classification without redshift and
approaches the multi-epoch methods; with four epochs it tops the table.
"""

import numpy as np

from repro.baselines import (
    PoznanskiClassifier,
    RandomForestClassifier,
    RecurrentClassifier,
    TemplateFitClassifier,
    TemplateFluxGrid,
    sequence_features,
)
from repro.core import LightCurveClassifier, TrainConfig, fit_classifier
from repro.core.features import dataset_windowed_features, features_from_arrays
from repro.core.training import fit
from repro.eval import auc_score, best_accuracy
from repro.nn import BCEWithLogitsLoss, Tensor
from repro.utils import format_table

FLUX_ERR = 1.5


def _measured_flux(dataset, rng):
    """Simulated photometric measurements: true flux + Gaussian error."""
    flux = dataset.true_flux + rng.normal(0.0, FLUX_ERR, dataset.true_flux.shape)
    return flux, np.full(flux.shape, FLUX_ERR)


def _proposed(lc_splits, k_epochs, seed):
    x_train, y_train = dataset_windowed_features(lc_splits.train, k_epochs)
    x_val, y_val = dataset_windowed_features(lc_splits.val, k_epochs)
    x_test, y_test = dataset_windowed_features(lc_splits.test, k_epochs)
    clf = LightCurveClassifier(
        input_dim=x_train.shape[1], units=100, rng=np.random.default_rng(seed)
    )
    fit_classifier(
        clf,
        x_train,
        y_train,
        TrainConfig(epochs=40, batch_size=128, seed=seed, early_stopping_patience=8),
        x_val,
        y_val,
        metric=auc_score,
    )
    scores = clf.predict_proba(x_test)
    return auc_score(y_test, scores), best_accuracy(y_test, scores)


def test_table2_method_comparison(benchmark, lc_splits):
    rng = np.random.default_rng(123)
    test = lc_splits.test
    labels = test.labels

    def run():
        results = {}
        grid = TemplateFluxGrid()
        flux_test, err_test = _measured_flux(test, rng)

        # --- Poznanski single-epoch (epoch 1: SN usually active) ---
        idx = np.arange(5, 10)
        args = (
            flux_test[:, idx], err_test[:, idx],
            test.visit_mjd[:, idx], test.visit_band[:, idx],
        )
        poz = PoznanskiClassifier(grid).predict_proba(*args)
        results["Poznanski2007 single-epoch, w/o redshift"] = (
            auc_score(labels, poz), best_accuracy(labels, poz)
        )
        poz_z = PoznanskiClassifier(grid, known_redshift=True).predict_proba(
            *args, test.redshifts
        )
        results["Poznanski2007 single-epoch + redshift"] = (
            auc_score(labels, poz_z), best_accuracy(labels, poz_z)
        )

        # --- Template fitting, multi-epoch (Sullivan-style) ---
        tf = TemplateFitClassifier(grid).predict_proba(
            flux_test, err_test, test.visit_mjd, test.visit_band
        )
        results["Template fit multi-epoch (4), w/o redshift"] = (
            auc_score(labels, tf), best_accuracy(labels, tf)
        )
        tf_z = TemplateFitClassifier(grid, known_redshift=True).predict_proba(
            flux_test, err_test, test.visit_mjd, test.visit_band, test.redshifts
        )
        results["Template fit multi-epoch (4) + redshift"] = (
            auc_score(labels, tf_z), best_accuracy(labels, tf_z)
        )

        # --- Random forest on 4-epoch features (Lochner-style) ---
        flux_train, _ = _measured_flux(lc_splits.train, rng)
        x_train_rf = features_from_arrays(flux_train, lc_splits.train.visit_mjd, 4)
        x_test_rf = features_from_arrays(flux_test, test.visit_mjd, 4)
        forest = RandomForestClassifier(n_trees=100, seed=9).fit(
            x_train_rf, lc_splits.train.labels
        )
        rf_scores = forest.predict_proba(x_test_rf)
        results["Random forest multi-epoch (4), w/o redshift"] = (
            auc_score(labels, rf_scores), best_accuracy(labels, rf_scores)
        )

        # --- GRU sequence model (Charnock-style) ---
        seq_train = sequence_features(x_train_rf, 4).astype(np.float32)
        seq_test = sequence_features(x_test_rf, 4).astype(np.float32)
        gru = RecurrentClassifier(input_dim=10, hidden_dim=32, rng=np.random.default_rng(10))
        bce = BCEWithLogitsLoss()

        def loss_fn(model, inputs, target):
            return bce(model(Tensor(inputs[0])), target)

        fit(
            gru,
            [seq_train],
            lc_splits.train.labels.astype(np.float32),
            loss_fn,
            TrainConfig(epochs=40, batch_size=128, seed=11, learning_rate=3e-3),
        )
        gru_scores = gru.predict_proba(seq_test)
        results["RNN multi-epoch (4), w/o redshift"] = (
            auc_score(labels, gru_scores), best_accuracy(labels, gru_scores)
        )

        # --- Proposed method ---
        results["Proposed single-epoch, w/o redshift"] = _proposed(lc_splits, 1, seed=21)
        results["Proposed multi-epoch (4), w/o redshift"] = _proposed(lc_splits, 4, seed=22)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [name, f"{auc:.3f}", f"{acc:.3f}"] for name, (auc, acc) in results.items()
    ]
    print()
    print(
        format_table(
            ["Method", "AUC", "best acc"],
            rows,
            title="Table 2: comparison with existing methods (same synthetic test set)",
        )
    )
    print(
        "paper: proposed single-epoch 0.958 / multi-epoch 0.995; "
        "Poznanski w/o z accuracy 0.60; multi-epoch baselines 0.97-0.98"
    )

    proposed_1 = results["Proposed single-epoch, w/o redshift"][0]
    proposed_4 = results["Proposed multi-epoch (4), w/o redshift"][0]
    poznanski = results["Poznanski2007 single-epoch, w/o redshift"][0]

    # Claim (1): same conditions (single-epoch, no z) -> proposed wins.
    assert proposed_1 > poznanski
    # Claim (2)/(3): multi-epoch proposed tops every baseline.
    for name, (auc, _) in results.items():
        if name.startswith("Proposed"):
            continue
        assert proposed_4 >= auc - 0.005, f"{name} beat the 4-epoch proposed method"
