"""Figure 8 — ground-truth versus estimated magnitudes on test data.

The paper reports a mean estimation error of 0.087 mag with 60x60 inputs,
higher variance for dark (large-magnitude) objects, and a slight
dim-ward bias for bright objects.  At CPU scale the absolute error is
larger (the training corpus is ~100x smaller), but the *structure* —
error growing toward faint magnitudes — is the reproduction target.
"""

import numpy as np

from repro.utils import format_table


def test_fig8_magnitude_scatter(benchmark, trained_pipeline, image_splits):
    pipe, cnn_history, _ = trained_pipeline

    def run():
        x_test, y_test, m_test = image_splits.test.flux_pairs(min_flux=2.0)
        pred = pipe.cnn.predict(x_test[m_test])
        return pred, y_test[m_test]

    pred, truth = benchmark.pedantic(run, rounds=1, iterations=1)
    err = pred - truth

    bins = [(20.0, 23.0), (23.0, 24.0), (24.0, 25.0), (25.0, 26.5)]
    rows = []
    for lo, hi in bins:
        mask = (truth >= lo) & (truth < hi)
        if mask.sum() == 0:
            continue
        rows.append(
            [
                f"{lo:.1f}-{hi:.1f}",
                str(int(mask.sum())),
                f"{np.mean(np.abs(err[mask])):.3f}",
                f"{np.std(err[mask]):.3f}",
                f"{np.mean(err[mask]):+.3f}",
            ]
        )
    print()
    print(
        format_table(
            ["true mag", "n", "mean |err|", "std err", "bias"],
            rows,
            title="Fig. 8: ground-truth vs estimated magnitudes (test set)",
        )
    )
    print(
        f"overall: mean|err| {np.mean(np.abs(err)):.3f} mag "
        f"(paper: 0.087 at 100x training scale), "
        f"final train loss {cnn_history.train_loss[-1]:.4f}"
    )

    # Structure checks: finite predictions within the survey range and the
    # faintest bin noisier than the brightest.
    assert np.all(np.isfinite(pred))
    bright = np.abs(err[truth < 23.5])
    faint = np.abs(err[truth >= 24.5])
    if len(bright) > 10 and len(faint) > 10:
        assert faint.mean() >= bright.mean() * 0.8
    assert np.mean(np.abs(err)) < 1.0
