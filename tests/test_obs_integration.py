"""Telemetry end-to-end: serving audit records, concurrent stream() writes,
drift tripping on the dropped-band ladder, and the CLI obs-smoke path."""

from dataclasses import replace

import numpy as np
import pytest

from repro import obs
from repro.cli import EXIT_BAD_INPUT, main
from repro.core import SupernovaPipeline
from repro.datasets import BuildConfig, DatasetBuilder, N_BANDS, save_dataset
from repro.obs import EVENTS_FILE, read_events, validate_file
from repro.runtime import DropBand, SaturateRegion
from repro.serve import DegradedInputError, FluxPrior, InferenceEngine
from repro.survey import ImagingConfig

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def no_leaked_session():
    assert obs.active() is None
    yield
    if obs.active() is not None:
        obs.stop()
        pytest.fail("test leaked an active telemetry session")


@pytest.fixture(scope="module")
def dataset():
    config = BuildConfig(
        n_ia=6, n_non_ia=6, seed=29, catalog_size=80,
        imaging=ImagingConfig(stamp_size=41),
    )
    return DatasetBuilder(config).build()


@pytest.fixture(scope="module")
def engine(dataset):
    pipe = SupernovaPipeline(input_size=36, units=8, epochs_used=1, seed=0)
    return InferenceEngine(pipe, prior=FluxPrior.from_dataset(dataset))


def _events(directory, name=None):
    records = list(read_events(directory / EVENTS_FILE))
    return records if name is None else [r for r in records if r["event"] == name]


class TestServeAudit:
    def test_per_request_audit_records(self, engine, dataset, tmp_path):
        directory = tmp_path / "t"
        session = obs.start(directory, run_id="run-audit")
        try:
            results = list(engine.stream(dataset, batch_size=4))
        finally:
            snapshot = obs.stop()
        requests = _events(directory, "serve.request")
        assert len(requests) == len(dataset)
        for record in requests:
            assert record["request_id"] == f"run-audit/r{record['index']}"
            assert 0.0 <= record["probability"] <= 1.0
            assert isinstance(record["degraded"], bool)
            assert isinstance(record["usable_bands"], list)
            assert isinstance(record["diagnostics"], list)
            assert record["latency_s"] >= 0.0
            assert record["latency_bucket"].startswith("le=")
        assert snapshot["counters"]["serve.requests"] == len(dataset)
        latency = snapshot["histograms"]["serve.latency_s"]
        assert latency["count"] == len(dataset)
        confidence = snapshot["histograms"]["serve.confidence"]
        assert confidence["count"] == len(dataset)
        # with telemetry on and off the served outputs are identical
        plain = list(engine.stream(dataset, batch_size=4))
        assert [r.probability for r in results] == [r.probability for r in plain]

    def test_degraded_request_flagged_with_masked_bands(self, engine, dataset, tmp_path):
        degraded = replace(dataset, pairs=DropBand(1)(dataset.pairs))
        directory = tmp_path / "t"
        obs.start(directory)
        try:
            list(engine.stream(degraded, batch_size=4))
        finally:
            snapshot = obs.stop()
        requests = _events(directory, "serve.request")
        assert all(r["degraded"] for r in requests)
        assert all(r["level"] == "warning" for r in requests)
        assert all("r" in r["masked_bands"] for r in requests)
        assert snapshot["counters"]["serve.degraded"] == len(dataset)

    def test_concurrent_stream_audit_is_consistent(self, engine, dataset, tmp_path):
        directory = tmp_path / "t"
        obs.start(directory)
        try:
            results = list(engine.stream(dataset, batch_size=2, workers=4))
        finally:
            obs.stop()
        assert len(results) == len(dataset)
        n, errors = validate_file(directory / EVENTS_FILE)
        assert errors == []  # no interleaved/torn lines, seq strictly monotonic
        requests = _events(directory, "serve.request")
        assert len(requests) == len(dataset)
        assert len({r["request_id"] for r in requests}) == len(dataset)
        assert sorted(r["index"] for r in requests) == list(range(len(dataset)))

    def test_strict_rejection_carries_request_provenance(self, engine, dataset, tmp_path):
        damaged = replace(dataset, pairs=SaturateRegion(size=12)(dataset.pairs))
        directory = tmp_path / "t"
        obs.start(directory, run_id="run-strict")
        try:
            with pytest.raises(DegradedInputError) as excinfo:
                list(engine.stream(damaged, strict=True))
        finally:
            obs.stop()
        assert excinfo.value.index == 0
        assert excinfo.value.request_id == "run-strict/r0"
        rejected = _events(directory, "serve.rejected")
        assert rejected and rejected[0]["request_id"] == "run-strict/r0"
        assert rejected[0]["level"] == "error"


class TestDriftLadder:
    def test_clean_silent_all_dropped_flagged(self, dataset, tmp_path):
        pipe = SupernovaPipeline(input_size=36, units=8, epochs_used=1, seed=0)
        engine = InferenceEngine(pipe, prior=FluxPrior.from_dataset(dataset))
        engine.fit_drift_baseline(dataset)
        assert engine.drift_monitor is not None

        directory = tmp_path / "t"
        obs.start(directory)
        try:
            for _ in range(8):  # clean traffic: past min_samples, still silent
                engine.classify(dataset)
            assert not engine.drift_monitor.flagged
            assert _events(directory, "drift.flagged") == []

            pairs = dataset.pairs
            for band in range(N_BANDS):  # the full dropped-band ladder
                pairs = DropBand(band)(pairs)
            all_dropped = replace(dataset, pairs=pairs)
            for _ in range(10):
                engine.classify(all_dropped)
        finally:
            snapshot = obs.stop()

        assert engine.drift_monitor.flagged
        flagged = _events(directory, "drift.flagged")
        assert flagged and flagged[0]["level"] == "warning"
        assert flagged[0]["reasons"]
        assert snapshot["counters"]["drift.flagged"] >= 1
        assert snapshot["gauges"]["drift.score_psi"] > 0.25

    def test_baseline_persists_through_save_load(self, dataset, tmp_path):
        pipe = SupernovaPipeline(input_size=36, units=8, epochs_used=1, seed=0)
        engine = InferenceEngine(pipe, prior=FluxPrior.from_dataset(dataset))
        engine.fit_drift_baseline(dataset)
        engine.save(str(tmp_path / "model"))
        reloaded = InferenceEngine.from_directory(str(tmp_path / "model"))
        assert reloaded.drift_monitor is not None
        np.testing.assert_allclose(
            reloaded.drift_baseline.score_probs, engine.drift_baseline.score_probs
        )


class TestCliTelemetry:
    def test_build_train_metrics_round_trip(self, tmp_path, capsys):
        ds = tmp_path / "ds.npz"
        t_build = tmp_path / "t_build"
        t_train = tmp_path / "t_train"
        assert main([
            "build-dataset", "--n-ia", "6", "--n-non-ia", "6", "--no-images",
            "--out", str(ds), "--telemetry", str(t_build),
        ]) == 0
        assert main([
            "train-classifier", "--dataset", str(ds), "--epochs", "2",
            "--out", str(tmp_path / "clf.npz"), "--telemetry", str(t_train),
        ]) == 0
        capsys.readouterr()

        for directory in (t_build, t_train):
            assert main(["metrics", str(directory), "--validate"]) == 0
            out = capsys.readouterr().out
            assert "validated" in out and "schema v" in out
            assert "telemetry report" in out
            assert "events by type" in out
        build_events = {r["event"] for r in _events(t_build)}
        assert {"session.start", "build.start", "build.end", "session.end"} <= build_events
        train_events = {r["event"] for r in _events(t_train)}
        assert "train.epoch" in train_events

    def test_classify_telemetry_and_prometheus(self, engine, dataset, tmp_path, capsys):
        model_dir = tmp_path / "model"
        engine.save(str(model_dir))
        ds = tmp_path / "ds.npz"
        save_dataset(dataset, ds)
        t_serve = tmp_path / "t_serve"
        assert main([
            "classify", "--model", str(model_dir), "--dataset", str(ds),
            "--out", str(tmp_path / "results.jsonl"), "--telemetry", str(t_serve),
        ]) == 0
        n, errors = validate_file(t_serve / EVENTS_FILE)
        assert errors == [] and n >= len(dataset) + 2
        capsys.readouterr()
        assert main(["metrics", str(t_serve)]) == 0
        out = capsys.readouterr().out
        assert "serve.requests" in out and "serve.latency_s" in out
        assert main(["metrics", str(t_serve), "--prometheus"]) == 0
        prom = capsys.readouterr().out
        assert 'serve_latency_s_bucket{le="+Inf"}' in prom
        assert "serve_requests" in prom

    def test_strict_exit_2_leaves_terminal_error_event(self, engine, dataset, tmp_path, capsys):
        model_dir = tmp_path / "model"
        engine.save(str(model_dir))
        damaged = replace(dataset, pairs=SaturateRegion(size=12)(dataset.pairs))
        ds = tmp_path / "damaged.npz"
        save_dataset(damaged, ds)
        t_dir = tmp_path / "t"
        assert main([
            "classify", "--model", str(model_dir), "--dataset", str(ds),
            "--strict", "--out", str(tmp_path / "out.jsonl"),
            "--telemetry", str(t_dir),
        ]) == EXIT_BAD_INPUT
        assert "error:" in capsys.readouterr().err
        errors = _events(t_dir, "cli.error")
        assert len(errors) == 1
        assert errors[0]["exit_code"] == EXIT_BAD_INPUT
        assert errors[0]["index"] == 0
        assert errors[0]["request_id"].endswith("/r0")
        last = _events(t_dir)[-1]
        assert last["event"] == "session.end" and last["status"] == "error"
        assert obs.active() is None  # session closed despite the failure

    def test_metrics_validate_rejects_corrupt_stream(self, tmp_path, capsys):
        t_dir = tmp_path / "t"
        t_dir.mkdir()
        (t_dir / EVENTS_FILE).write_text(
            '{"schema": 1, "ts": 1.0, "seq": 1, "level": "info", "event": "x"}\n'
        )
        assert main(["metrics", str(t_dir), "--validate"]) == EXIT_BAD_INPUT
        assert "neither run_id nor request_id" in capsys.readouterr().err

    def test_metrics_on_missing_directory_exits_2(self, tmp_path, capsys):
        assert main(["metrics", str(tmp_path / "nope")]) == EXIT_BAD_INPUT
        assert "error:" in capsys.readouterr().err
