"""Tests for SALT2-like fitting and the Karpenka parametric baseline."""

import numpy as np
import pytest

from repro.baselines import (
    KARPENKA_FEATURE_DIM,
    fit_karpenka_band,
    karpenka_features,
    karpenka_model,
)
from repro.lightcurves import (
    LightCurve,
    SALT2LikeModel,
    SALT2Parameters,
    fit_salt2,
)
from repro.photometry import GRIZY


def _observations(x1=0.0, c=0.0, z=0.4, peak=57000.0, noise=0.5, seed=0, n_per_band=6):
    """Simulate multi-band photometry of a known Ia."""
    rng = np.random.default_rng(seed)
    curve = LightCurve(SALT2LikeModel(SALT2Parameters(x1=x1, c=c)), z, peak)
    mjds, bands, fluxes = [], [], []
    for band in GRIZY:
        for t in np.linspace(peak - 15, peak + 40, n_per_band):
            mjds.append(t)
            bands.append(band.index)
            fluxes.append(float(curve.flux(band, t)))
    mjd = np.array(mjds)
    band_idx = np.array(bands)
    flux = np.array(fluxes) + rng.normal(0, noise, len(fluxes))
    err = np.full(len(fluxes), max(noise, 1e-3))
    return flux, err, mjd, band_idx


class TestSalt2Fit:
    def test_recovers_peak_date(self):
        flux, err, mjd, band_idx = _observations(noise=0.3)
        result = fit_salt2(flux, err, mjd, band_idx, redshift=0.4)
        assert result.peak_mjd == pytest.approx(57000.0, abs=4.0)

    def test_recovers_amplitude_near_unity(self):
        flux, err, mjd, band_idx = _observations(noise=0.3)
        result = fit_salt2(flux, err, mjd, band_idx, redshift=0.4)
        assert result.amplitude == pytest.approx(1.0, abs=0.35)

    def test_recovers_color_sign(self):
        red_flux, err, mjd, band_idx = _observations(c=0.3, noise=0.2, seed=1)
        blue_flux, _, _, _ = _observations(c=-0.3, noise=0.2, seed=2)
        red_fit = fit_salt2(red_flux, err, mjd, band_idx, redshift=0.4)
        blue_fit = fit_salt2(blue_flux, err, mjd, band_idx, redshift=0.4)
        assert red_fit.c > blue_fit.c

    def test_good_fit_has_reasonable_chi2(self):
        flux, err, mjd, band_idx = _observations(noise=0.4, seed=3)
        result = fit_salt2(flux, err, mjd, band_idx, redshift=0.4)
        assert result.reduced_chi2 < 5.0

    def test_wrong_type_fits_worse(self):
        # A IIP light curve should fit the Ia model worse than an Ia does.
        from repro.lightcurves import NonIaRealization, SNType, TEMPLATES

        rng = np.random.default_rng(4)
        curve = LightCurve(
            NonIaRealization(TEMPLATES[SNType.IIP], 0.0, 1.0), 0.4, 57000.0
        )
        mjds, bands, fluxes = [], [], []
        for band in GRIZY:
            for t in np.linspace(56985.0, 57100.0, 8):
                mjds.append(t)
                bands.append(band.index)
                fluxes.append(float(curve.flux(band, t)))
        flux = np.array(fluxes) + rng.normal(0, 0.3, len(fluxes))
        err = np.full(len(fluxes), 0.3)
        iip_fit = fit_salt2(flux, err, np.array(mjds), np.array(bands), redshift=0.4)

        ia_flux, ia_err, ia_mjd, ia_bands = _observations(noise=0.3, seed=5)
        ia_fit = fit_salt2(ia_flux, ia_err, ia_mjd, ia_bands, redshift=0.4)
        assert iip_fit.reduced_chi2 > ia_fit.reduced_chi2

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_salt2(np.ones(3), np.ones(3), np.ones(3), np.zeros(3), redshift=0.4)
        with pytest.raises(ValueError):
            fit_salt2(np.ones(5), np.zeros(5), np.ones(5), np.zeros(5), redshift=0.4)
        with pytest.raises(ValueError):
            fit_salt2(np.ones(5), np.ones(5), np.ones(5), np.zeros(5), redshift=0.0)
        with pytest.raises(ValueError):
            fit_salt2(np.ones(5), np.ones(4), np.ones(5), np.zeros(5), redshift=0.4)


class TestKarpenka:
    def test_model_shape(self):
        t = np.linspace(0, 100, 50)
        params = np.array([10.0, 0.0, 30.0, 30.0, 5.0, 20.0])
        out = karpenka_model(t, params)
        assert out.shape == (50,)
        # Rises then falls around t0.
        peak_t = t[np.argmax(out)]
        assert 20.0 < peak_t < 60.0

    def test_fit_recovers_model(self):
        rng = np.random.default_rng(6)
        t = np.linspace(0, 90, 15)
        true = np.array([20.0, 0.0, 40.0, 40.0, 6.0, 25.0])
        flux = karpenka_model(t, true) + rng.normal(0, 0.2, len(t))
        err = np.full(len(t), 0.2)
        params, chi2 = fit_karpenka_band(t, flux, err)
        fitted = karpenka_model(t, params)
        assert chi2 / len(t) < 3.0
        assert np.argmax(fitted) == np.argmax(karpenka_model(t, true))

    def test_few_points_fallback(self):
        params, chi2 = fit_karpenka_band(
            np.array([1.0, 2.0]), np.array([5.0, 6.0]), np.array([1.0, 1.0])
        )
        np.testing.assert_allclose(params, 0.0)
        assert chi2 == pytest.approx(61.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_karpenka_band(np.ones(3), np.ones(2), np.ones(3))
        with pytest.raises(ValueError):
            fit_karpenka_band(np.ones(3), np.ones(3), np.zeros(3))

    def test_features_shape_and_finite(self):
        flux, err, mjd, band_idx = _observations(noise=0.3, seed=7)
        features = karpenka_features(flux, err, mjd, band_idx)
        assert features.shape == (KARPENKA_FEATURE_DIM,)
        assert np.all(np.isfinite(features))

    def test_features_distinguish_brightness(self):
        bright, err, mjd, band_idx = _observations(z=0.2, noise=0.3, seed=8)
        faint, err2, _, _ = _observations(z=0.8, noise=0.3, seed=9)
        f_bright = karpenka_features(bright, err, mjd, band_idx)
        f_faint = karpenka_features(faint, err2, mjd, band_idx)
        # Amplitude features (every 7th starting at 0) larger when closer.
        assert f_bright[0::7].sum() > f_faint[0::7].sum()
