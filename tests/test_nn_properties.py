"""Property-based tests of autograd identities and layer invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.nn as nn
from repro.nn import Tensor
from repro.nn import functional as F

finite_arrays = st.integers(min_value=1, max_value=6).flatmap(
    lambda n: st.lists(
        st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
        min_size=n,
        max_size=n,
    )
)


def _grad_of(fn, x: np.ndarray) -> np.ndarray:
    with nn.preserve_float64():
        t = Tensor(np.asarray(x, dtype=np.float64), requires_grad=True)
        fn(t).sum().backward()
    return t.grad


class TestAutogradIdentities:
    @settings(max_examples=40, deadline=None)
    @given(finite_arrays)
    def test_sum_rule(self, xs):
        # d/dx (f + g) = df/dx + dg/dx with f = x^2, g = 3x.
        x = np.array(xs)
        combined = _grad_of(lambda t: t * t + 3.0 * t, x)
        separate = _grad_of(lambda t: t * t, x) + _grad_of(lambda t: 3.0 * t, x)
        np.testing.assert_allclose(combined, separate, rtol=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(finite_arrays)
    def test_product_rule(self, xs):
        # d/dx (x * sin-ish) via product of (x) and (tanh x).
        x = np.array(xs)
        grad = _grad_of(lambda t: t * t.tanh(), x)
        expected = np.tanh(x) + x * (1 - np.tanh(x) ** 2)
        np.testing.assert_allclose(grad, expected, rtol=1e-5, atol=1e-7)

    @settings(max_examples=40, deadline=None)
    @given(finite_arrays)
    def test_chain_rule_exp_of_linear(self, xs):
        x = np.clip(np.array(xs), -3, 3)
        grad = _grad_of(lambda t: (2.0 * t + 1.0).exp(), x)
        np.testing.assert_allclose(grad, 2.0 * np.exp(2.0 * x + 1.0), rtol=1e-5)

    @settings(max_examples=40, deadline=None)
    @given(finite_arrays)
    def test_linearity_of_backward(self, xs):
        # grad of (a * f) = a * grad of f.
        x = np.array(xs)
        grad_scaled = _grad_of(lambda t: 5.0 * t.sigmoid(), x)
        grad_base = _grad_of(lambda t: t.sigmoid(), x)
        np.testing.assert_allclose(grad_scaled, 5.0 * grad_base, rtol=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(finite_arrays)
    def test_sigmoid_tanh_identity(self, xs):
        # sigmoid(x) = (tanh(x/2) + 1) / 2 — values and gradients agree.
        x = np.array(xs)
        sig = _grad_of(lambda t: t.sigmoid(), x)
        via_tanh = _grad_of(lambda t: ((t * 0.5).tanh() + 1.0) * 0.5, x)
        np.testing.assert_allclose(sig, via_tanh, rtol=1e-5, atol=1e-8)

    @settings(max_examples=40, deadline=None)
    @given(finite_arrays)
    def test_detach_blocks_gradient(self, xs):
        x = np.array(xs)
        with nn.preserve_float64():
            t = Tensor(x, requires_grad=True)
            out = t * Tensor(t.detach().numpy())  # second factor is a constant
            out.sum().backward()
        np.testing.assert_allclose(t.grad, x, rtol=1e-6)


class TestSoftmaxProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=10**6))
    def test_softmax_shift_invariance(self, k, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(3, k))
        a = F.softmax(Tensor(x)).numpy()
        b = F.softmax(Tensor(x + 100.0)).numpy()
        np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=10**6))
    def test_log_softmax_normalisation(self, k, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(4, k))
        log_probs = F.log_softmax(Tensor(x)).numpy()
        np.testing.assert_allclose(np.exp(log_probs).sum(axis=1), 1.0, rtol=1e-5)


class TestConvProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_conv_linearity(self, seed):
        rng = np.random.default_rng(seed)
        x1 = rng.normal(size=(1, 1, 7, 7))
        x2 = rng.normal(size=(1, 1, 7, 7))
        w = Tensor(rng.normal(size=(2, 1, 3, 3)))
        sum_out = nn.conv2d(Tensor(x1 + x2), w).numpy()
        sep_out = nn.conv2d(Tensor(x1), w).numpy() + nn.conv2d(Tensor(x2), w).numpy()
        np.testing.assert_allclose(sum_out, sep_out, rtol=1e-4, atol=1e-6)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_maxpool_dominance(self, seed):
        # max_pool(x) >= avg_pool(x) elementwise, with equality iff the
        # window is constant.
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, 1, 8, 8))
        mx = nn.max_pool2d(Tensor(x), 2).numpy()
        av = nn.avg_pool2d(Tensor(x), 2).numpy()
        assert np.all(mx >= av - 1e-7)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_conv_translation_covariance(self, seed):
        # Shifting the input shifts the (valid-mode) output.
        rng = np.random.default_rng(seed)
        base = rng.normal(size=(1, 1, 10, 10))
        shifted = np.roll(base, 1, axis=3)
        w = Tensor(rng.normal(size=(1, 1, 3, 3)))
        out_base = nn.conv2d(Tensor(base), w).numpy()
        out_shift = nn.conv2d(Tensor(shifted), w).numpy()
        np.testing.assert_allclose(out_shift[..., 1:], out_base[..., :-1], rtol=1e-4, atol=1e-6)


class TestLayerInvariants:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=32), st.integers(min_value=0, max_value=10**6))
    def test_batchnorm_output_statistics(self, n, seed):
        rng = np.random.default_rng(seed)
        bn = nn.BatchNorm1d(3)
        x = rng.normal(loc=7.0, scale=4.0, size=(max(n, 2), 3))
        out = bn(Tensor(x)).numpy()
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-3)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_highway_interpolates(self, seed):
        # Highway output is a convex combination of transform and input,
        # so it lies inside the elementwise envelope of the two.
        rng = np.random.default_rng(seed)
        layer = nn.Highway(6, rng=rng)
        x = rng.normal(size=(4, 6)).astype(np.float32)
        out = layer(Tensor(x)).numpy()
        transform = layer._transform(Tensor(x)).numpy()
        low = np.minimum(transform, x)
        high = np.maximum(transform, x)
        assert np.all(out >= low - 1e-5)
        assert np.all(out <= high + 1e-5)

    def test_dropout_scales_preserved_mean_gradient(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((2000,), dtype=np.float64), requires_grad=True)
        out = F.dropout(x, 0.3, training=True, rng=rng)
        out.sum().backward()
        # Inverted dropout: E[grad] = 1.
        assert x.grad.mean() == pytest.approx(1.0, abs=0.05)
