"""Tests for purity/efficiency curves and the SNPCC figure of merit."""

import numpy as np
import pytest

from repro.eval import PurityCurve, purity_efficiency_curve, snpcc_figure_of_merit


class TestPurityCurve:
    def test_perfect_classifier(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        curve = purity_efficiency_curve(labels, scores, n_thresholds=21)
        # Some threshold achieves purity 1 at efficiency 1.
        both = (curve.purity == 1.0) & (curve.efficiency == 1.0)
        assert np.any(both)

    def test_loosest_threshold_full_efficiency(self):
        labels = np.array([0, 1, 0, 1, 1])
        scores = np.array([0.3, 0.7, 0.5, 0.6, 0.9])
        curve = purity_efficiency_curve(labels, scores)
        assert curve.efficiency[0] == 1.0
        assert curve.purity[0] == pytest.approx(3 / 5)

    def test_efficiency_monotone_decreasing(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 200)
        labels[0] = 1
        scores = rng.random(200)
        curve = purity_efficiency_curve(labels, scores)
        assert np.all(np.diff(curve.efficiency) <= 1e-12)

    def test_at_efficiency(self):
        # A negative (0.75) sits between the positives: full efficiency
        # forces it into the selection, capping purity at 2/3.
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.75, 0.7, 0.9])
        curve = purity_efficiency_curve(labels, scores, n_thresholds=101)
        assert curve.at_efficiency(1.0) == pytest.approx(2 / 3)
        assert curve.at_efficiency(0.5) == 1.0

    def test_at_efficiency_validation(self):
        curve = PurityCurve(
            thresholds=np.array([0.0, 1.0]),
            purity=np.array([0.5, 1.0]),
            efficiency=np.array([1.0, 0.5]),
        )
        with pytest.raises(ValueError):
            curve.at_efficiency(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            purity_efficiency_curve(np.array([0, 1]), np.array([0.5]))
        with pytest.raises(ValueError):
            purity_efficiency_curve(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            purity_efficiency_curve(np.array([0, 0]), np.array([0.1, 0.2]))
        with pytest.raises(ValueError):
            purity_efficiency_curve(np.array([0, 1]), np.array([0.1, 0.2]), n_thresholds=1)


class TestFigureOfMerit:
    def test_perfect_selection(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.0, 0.0, 1.0, 1.0])
        assert snpcc_figure_of_merit(labels, scores) == pytest.approx(1.0)

    def test_contamination_penalised_threefold(self):
        labels = np.array([1, 0])
        scores = np.array([0.9, 0.9])  # selects both: 1 TP, 1 FP
        fom = snpcc_figure_of_merit(labels, scores)
        assert fom == pytest.approx(1.0 * (1 / (1 + 3.0)))

    def test_no_selection_zero(self):
        labels = np.array([1, 0])
        scores = np.array([0.1, 0.2])
        assert snpcc_figure_of_merit(labels, scores, threshold=0.5) == 0.0

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            snpcc_figure_of_merit(
                np.array([1, 0]), np.array([0.9, 0.1]), false_positive_weight=0.0
            )

    def test_better_classifier_higher_fom(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, 500)
        labels[0] = 1
        good = labels + rng.normal(0, 0.3, 500)
        bad = labels + rng.normal(0, 2.0, 500)
        assert snpcc_figure_of_merit(labels, good) > snpcc_figure_of_merit(labels, bad)
