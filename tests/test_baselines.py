"""Tests for the Table-2 baseline classifiers."""

import numpy as np
import pytest

from repro.baselines import (
    DecisionTree,
    GRUCell,
    PoznanskiClassifier,
    RandomForestClassifier,
    RecurrentClassifier,
    TemplateFitClassifier,
    TemplateFluxGrid,
    sequence_features,
)
from repro.datasets import BuildConfig, DatasetBuilder, train_val_test_split
from repro.eval import auc_score
from repro.lightcurves import SNType
from repro.nn import Tensor

RNG = np.random.default_rng(17)


@pytest.fixture(scope="module")
def grid():
    return TemplateFluxGrid(redshifts=np.linspace(0.1, 2.0, 8))


@pytest.fixture(scope="module")
def lc_data():
    ds = DatasetBuilder(
        BuildConfig(n_ia=120, n_non_ia=120, seed=13, render_images=False, catalog_size=400)
    ).build()
    return train_val_test_split(ds, train_fraction=0.6, val_fraction=0.2, seed=1)


def _measured(dataset, rng, err=1.5):
    flux = dataset.true_flux + rng.normal(0, err, dataset.true_flux.shape)
    return flux, np.full(flux.shape, err)


class TestTemplateGrid:
    def test_tables_for_all_types(self, grid):
        for sn_type in SNType:
            flux = grid.flux(sn_type, 0, np.array([2]), np.array([0.0]))
            assert flux[0] > 0

    def test_flux_fades_with_redshift(self, grid):
        near = grid.flux(SNType.IA, 0, np.array([2]), np.array([0.0]))[0]
        far = grid.flux(SNType.IA, len(grid.redshifts) - 1, np.array([2]), np.array([0.0]))[0]
        assert far < near / 10

    def test_pre_explosion_is_zero(self, grid):
        flux = grid.flux(SNType.IA, 0, np.array([2]), np.array([-200.0]))
        assert flux[0] == pytest.approx(0.0, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            TemplateFluxGrid(redshifts=np.array([-0.5]))


class TestTemplateFit:
    def test_ia_fit_prefers_ia(self, grid):
        # Noiseless canonical Ia observations must be classified Ia.
        z_idx = 2
        mjd = np.array([0.0, 5.0, 10.0, 20.0, 30.0])
        bands = np.array([0, 1, 2, 3, 4])
        flux = grid.flux(SNType.IA, z_idx, bands, mjd)
        clf = TemplateFitClassifier(grid)
        score = clf.score_sample(flux, np.full(5, 0.5), mjd, bands)
        assert score > 0.5

    def test_iip_fit_prefers_non_ia(self, grid):
        z_idx = 1
        mjd = np.linspace(0.0, 80.0, 10)
        bands = np.tile(np.arange(5), 2)
        flux = grid.flux(SNType.IIP, z_idx, bands, mjd)
        clf = TemplateFitClassifier(grid)
        score = clf.score_sample(flux, np.full(10, 0.5), mjd, bands)
        assert score < 0.5

    def test_known_redshift_requires_z(self, grid):
        clf = TemplateFitClassifier(grid, known_redshift=True)
        with pytest.raises(ValueError):
            clf.score_sample(np.ones(5), np.ones(5), np.zeros(5), np.arange(5))

    def test_flux_error_validation(self, grid):
        clf = TemplateFitClassifier(grid)
        with pytest.raises(ValueError):
            clf.score_sample(np.ones(5), np.zeros(5), np.zeros(5), np.arange(5))

    def test_amplitude_range_validation(self, grid):
        with pytest.raises(ValueError):
            TemplateFitClassifier(grid, amplitude_range=(2.0, 1.0))

    def test_batch_auc_beats_chance(self, grid, lc_data):
        test = lc_data.test
        flux, err = _measured(test, np.random.default_rng(0))
        clf = TemplateFitClassifier(grid)
        scores = clf.predict_proba(flux, err, test.visit_mjd, test.visit_band)
        assert auc_score(test.labels, scores) > 0.75

    def test_known_z_does_not_hurt(self, grid, lc_data):
        test = lc_data.test
        flux, err = _measured(test, np.random.default_rng(0))
        no_z = TemplateFitClassifier(grid).predict_proba(
            flux, err, test.visit_mjd, test.visit_band
        )
        with_z = TemplateFitClassifier(grid, known_redshift=True).predict_proba(
            flux, err, test.visit_mjd, test.visit_band, test.redshifts
        )
        assert auc_score(test.labels, with_z) >= auc_score(test.labels, no_z) - 0.03


class TestPoznanski:
    def test_single_epoch_beats_chance(self, grid, lc_data):
        test = lc_data.test
        flux, err = _measured(test, np.random.default_rng(1))
        idx = np.arange(5, 10)  # epoch 1
        clf = PoznanskiClassifier(grid)
        scores = clf.predict_proba(
            flux[:, idx], err[:, idx], test.visit_mjd[:, idx], test.visit_band[:, idx]
        )
        assert auc_score(test.labels, scores) > 0.6

    def test_redshift_helps(self, grid, lc_data):
        test = lc_data.test
        flux, err = _measured(test, np.random.default_rng(1))
        idx = np.arange(5, 10)
        args = (flux[:, idx], err[:, idx], test.visit_mjd[:, idx], test.visit_band[:, idx])
        no_z = PoznanskiClassifier(grid).predict_proba(*args)
        with_z = PoznanskiClassifier(grid, known_redshift=True).predict_proba(
            *args, test.redshifts
        )
        assert auc_score(test.labels, with_z) >= auc_score(test.labels, no_z) - 0.02

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            PoznanskiClassifier(grid, amplitude_range=(0.0, 1.0))
        clf = PoznanskiClassifier(grid, known_redshift=True)
        with pytest.raises(ValueError):
            clf.score_sample(np.ones(5), np.ones(5), np.zeros(5), np.arange(5))
        with pytest.raises(ValueError):
            PoznanskiClassifier(grid).score_sample(
                np.ones(5), np.zeros(5), np.zeros(5), np.arange(5)
            )


class TestDecisionTree:
    def test_fits_xor_like_rule(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(400, 2))
        y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(float)
        tree = DecisionTree(max_depth=6, rng=rng).fit(x, y)
        pred = tree.predict_proba(x)
        assert auc_score(y, pred) > 0.9

    def test_pure_node_is_leaf(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([1.0, 1.0])
        tree = DecisionTree().fit(x, y)
        assert tree._root.is_leaf
        assert tree._root.probability == 1.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTree().predict_proba(np.zeros((1, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionTree(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTree().fit(np.zeros((3, 2)), np.zeros(4))


class TestRandomForest:
    def test_better_than_single_tree_on_noisy_data(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(300, 10))
        y = (x[:, 0] + 0.5 * x[:, 1] + rng.normal(0, 0.5, 300) > 0).astype(float)
        x_test = rng.normal(size=(300, 10))
        y_test = (x_test[:, 0] + 0.5 * x_test[:, 1] > 0).astype(float)
        forest = RandomForestClassifier(n_trees=30, seed=0).fit(x, y)
        assert auc_score(y_test, forest.predict_proba(x_test)) > 0.85

    def test_reproducible(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(100, 4))
        y = (x[:, 0] > 0).astype(float)
        a = RandomForestClassifier(n_trees=5, seed=3).fit(x, y).predict_proba(x)
        b = RandomForestClassifier(n_trees=5, seed=3).fit(x, y).predict_proba(x)
        np.testing.assert_allclose(a, b)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict_proba(np.zeros((1, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_trees=0)


class TestRecurrent:
    def test_gru_cell_shapes(self):
        cell = GRUCell(10, 16, rng=RNG)
        h = cell(Tensor(np.zeros((4, 10), dtype=np.float32)), Tensor(np.zeros((4, 16), dtype=np.float32)))
        assert h.shape == (4, 16)

    def test_classifier_forward(self):
        model = RecurrentClassifier(input_dim=10, hidden_dim=8, rng=RNG)
        out = model(Tensor(RNG.normal(size=(3, 4, 10)).astype(np.float32)))
        assert out.shape == (3,)

    def test_wrong_feature_dim(self):
        model = RecurrentClassifier(input_dim=10, rng=RNG)
        with pytest.raises(ValueError):
            model(Tensor(np.zeros((2, 4, 8), dtype=np.float32)))

    def test_sequence_features_reshape(self):
        flat = np.arange(80.0).reshape(2, 40)
        seq = sequence_features(flat, n_epochs=4)
        assert seq.shape == (2, 4, 10)
        np.testing.assert_allclose(seq[0, 0], flat[0, :10])

    def test_sequence_features_validation(self):
        with pytest.raises(ValueError):
            sequence_features(np.zeros((2, 41)), 4)

    def test_learns_order_sensitive_rule(self):
        # Label depends on the *last* step: requires memory.
        rng = np.random.default_rng(4)
        x = rng.normal(size=(300, 4, 10)).astype(np.float32)
        y = (x[:, -1, 0] > 0).astype(np.float32)
        model = RecurrentClassifier(input_dim=10, hidden_dim=12, rng=rng)
        from repro.core import TrainConfig
        from repro.core.training import fit
        from repro.nn import BCEWithLogitsLoss

        bce = BCEWithLogitsLoss()

        def loss_fn(m, inputs, target):
            return bce(m(Tensor(inputs[0])), target)

        fit(
            model, [x], y, loss_fn,
            TrainConfig(epochs=60, batch_size=64, seed=5, learning_rate=3e-3),
        )
        assert auc_score(y, model.predict_proba(x)) > 0.9
