"""Graceful drain of the real ``repro serve`` process on SIGTERM.

The contract the supervisor relies on: SIGTERM mid-traffic means every
already-admitted request is still answered, the terminal
``serve.drained`` audit record is emitted, and the process exits 0.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from .helpers import classify_body, make_serve_engine, make_serve_sample, post_classify

pytestmark = pytest.mark.serve

_LISTENING = re.compile(r"serving on ([\d.]+):(\d+)")


@pytest.fixture(scope="module")
def model_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("serve_model")
    engine = make_serve_engine(seed=0)
    engine.save(str(directory))
    return directory, engine


def _spawn_daemon(model_dir, *extra_args):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--model", str(model_dir), "--port", "0", *extra_args,
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    # The listening line is the first thing serve prints to stderr.
    line = process.stderr.readline()
    match = _LISTENING.search(line)
    if match is None:
        process.kill()
        raise AssertionError(f"no listening line, got {line!r}")
    return process, int(match.group(2))


class TestSubprocessDrain:
    def test_sigterm_answers_in_flight_requests_and_exits_0(self, model_dir):
        directory, engine = model_dir
        pairs, mjd = make_serve_sample(engine, seed=7)
        body = classify_body(pairs, mjd, deadline_ms=30000)
        # A wide batch window keeps requests in flight long enough for
        # SIGTERM to land while they are still queued.
        process, port = _spawn_daemon(directory, "--batch-deadline-ms", "500")
        try:
            results: list = [None] * 4

            def fire(k):
                results[k] = post_classify(port, body, timeout=30.0)

            threads = [
                threading.Thread(target=fire, args=(k,), daemon=True)
                for k in range(len(results))
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.15)  # requests admitted, batch window still open
            process.send_signal(signal.SIGTERM)
            for thread in threads:
                thread.join(timeout=30.0)

            # Every admitted request was answered before exit.
            assert all(result is not None for result in results)
            for status, doc in results:
                assert status == 200
                assert doc["result"]["probability"] is not None

            stderr = process.stderr.read()
            assert process.wait(timeout=30.0) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10.0)

        # Terminal audit record: one serve.drained JSON line on stderr.
        drained = [
            json.loads(line)
            for line in stderr.splitlines()
            if line.startswith("{") and '"serve.drained"' in line
        ]
        assert len(drained) == 1
        assert drained[0]["reason"] == "SIGTERM"
        assert drained[0]["responses"] == 4
        assert drained[0]["exit_code"] == 0

    def test_sigterm_on_idle_daemon_exits_0(self, model_dir):
        directory, _ = model_dir
        process, port = _spawn_daemon(directory)
        try:
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30.0) == 0
            stderr = process.stderr.read()
            assert '"serve.drained"' in stderr
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10.0)
