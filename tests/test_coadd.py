"""Tests for image co-addition."""

import numpy as np
import pytest

from repro.survey import GaussianPSF, coadd_exposures


def _exposure(flux, fwhm, noise, seed):
    rng = np.random.default_rng(seed)
    psf = GaussianPSF(fwhm)
    image = flux * psf.render((65, 65), (32.0, 32.0))
    return image + rng.normal(0, noise, (65, 65))


class TestCoadd:
    def test_noise_reduction(self):
        images = [_exposure(0.0, 0.7, 1.0, s) for s in range(8)]
        result = coadd_exposures(images, [0.7] * 8, [1.0] * 8)
        # 8 equal exposures: noise should drop by sqrt(8).
        assert result.effective_noise == pytest.approx(1.0 / np.sqrt(8), rel=1e-6)
        assert result.pixels.std() < 0.6

    def test_flux_preserved(self):
        # Nearly noise-free so the stamp sum isolates the source flux.
        images = [_exposure(100.0, f, 0.005, s) for s, f in enumerate([0.6, 0.8, 1.0])]
        result = coadd_exposures(images, [0.6, 0.8, 1.0], [0.005] * 3)
        assert result.pixels.sum() == pytest.approx(100.0, rel=0.05)
        assert result.effective_fwhm == 1.0

    def test_homogenisation_widens_sharp_exposures(self):
        sharp = _exposure(100.0, 0.5, 0.01, 0)
        broad = _exposure(100.0, 1.2, 0.01, 1)
        result = coadd_exposures([sharp, broad], [0.5, 1.2], [0.01, 0.01])
        # The stack's peak must be close to the broad exposure's peak,
        # not the sharp one's.
        assert result.pixels.max() == pytest.approx(broad.max(), rel=0.15)

    def test_inverse_variance_weighting(self):
        # A very noisy exposure should barely affect the result.
        good = _exposure(100.0, 0.7, 0.1, 2)
        bad = _exposure(0.0, 0.7, 100.0, 3)
        result = coadd_exposures([good, bad], [0.7, 0.7], [0.1, 100.0])
        np.testing.assert_allclose(result.pixels, good, atol=1.0)

    def test_validation(self):
        img = np.zeros((5, 5))
        with pytest.raises(ValueError):
            coadd_exposures([], [], [])
        with pytest.raises(ValueError):
            coadd_exposures([img], [0.7, 0.8], [1.0])
        with pytest.raises(ValueError):
            coadd_exposures([img, np.zeros((6, 6))], [0.7, 0.8], [1.0, 1.0])
        with pytest.raises(ValueError):
            coadd_exposures([img], [-0.7], [1.0])
        with pytest.raises(ValueError):
            coadd_exposures([img], [0.7], [0.0])
