"""End-to-end tests of the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets import load_dataset


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_defaults(self):
        args = build_parser().parse_args(["build-dataset", "--out", "x.npz"])
        assert args.n_ia == 100
        assert not args.no_images

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestWorkflow:
    def test_build_lightcurve_dataset(self, tmp_path, capsys):
        out = tmp_path / "lc.npz"
        code = main([
            "build-dataset", "--n-ia", "30", "--n-non-ia", "30",
            "--no-images", "--seed", "3", "--out", str(out),
        ])
        assert code == 0
        dataset = load_dataset(out)
        assert len(dataset) == 60
        assert dataset.stamp_size == 1

    def test_full_classifier_workflow(self, tmp_path, capsys):
        dataset_path = tmp_path / "ds.npz"
        model_path = tmp_path / "clf.npz"
        assert main([
            "build-dataset", "--n-ia", "40", "--n-non-ia", "40",
            "--no-images", "--seed", "5", "--out", str(dataset_path),
        ]) == 0
        assert main([
            "train-classifier", "--dataset", str(dataset_path),
            "--epochs", "10", "--units", "32", "--seed", "1",
            "--out", str(model_path),
        ]) == 0
        assert model_path.exists()
        assert main([
            "evaluate", "--dataset", str(dataset_path),
            "--classifier", str(model_path), "--units", "32",
        ]) == 0
        output = capsys.readouterr().out
        assert "test AUC" in output

    def test_flux_cnn_workflow(self, tmp_path, capsys):
        dataset_path = tmp_path / "img.npz"
        model_path = tmp_path / "cnn.npz"
        # Tiny imaging dataset via the library (CLI build of images is slow).
        from repro.datasets import BuildConfig, DatasetBuilder, save_dataset
        from repro.survey import ImagingConfig

        config = BuildConfig(
            n_ia=10, n_non_ia=10, seed=9, catalog_size=50,
            imaging=ImagingConfig(stamp_size=41),
        )
        save_dataset(DatasetBuilder(config).build(), dataset_path)
        assert main([
            "train-flux-cnn", "--dataset", str(dataset_path),
            "--input-size", "36", "--epochs", "1", "--out", str(model_path),
        ]) == 0
        assert model_path.exists()

    def test_flux_cnn_rejects_small_stamps(self, tmp_path, capsys):
        dataset_path = tmp_path / "lc.npz"
        main([
            "build-dataset", "--n-ia", "20", "--n-non-ia", "20",
            "--no-images", "--seed", "2", "--out", str(dataset_path),
        ])
        code = main([
            "train-flux-cnn", "--dataset", str(dataset_path),
            "--out", str(tmp_path / "cnn.npz"),
        ])
        assert code == 2
