"""End-to-end tests of the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets import load_dataset


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_defaults(self):
        args = build_parser().parse_args(["build-dataset", "--out", "x.npz"])
        assert args.n_ia == 100
        assert not args.no_images

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestWorkflow:
    def test_build_lightcurve_dataset(self, tmp_path, capsys):
        out = tmp_path / "lc.npz"
        code = main([
            "build-dataset", "--n-ia", "30", "--n-non-ia", "30",
            "--no-images", "--seed", "3", "--out", str(out),
        ])
        assert code == 0
        dataset = load_dataset(out)
        assert len(dataset) == 60
        assert dataset.stamp_size == 1

    def test_full_classifier_workflow(self, tmp_path, capsys):
        dataset_path = tmp_path / "ds.npz"
        model_path = tmp_path / "clf.npz"
        assert main([
            "build-dataset", "--n-ia", "40", "--n-non-ia", "40",
            "--no-images", "--seed", "5", "--out", str(dataset_path),
        ]) == 0
        assert main([
            "train-classifier", "--dataset", str(dataset_path),
            "--epochs", "10", "--units", "32", "--seed", "1",
            "--out", str(model_path),
        ]) == 0
        assert model_path.exists()
        assert main([
            "evaluate", "--dataset", str(dataset_path),
            "--classifier", str(model_path), "--units", "32",
        ]) == 0
        output = capsys.readouterr().out
        assert "test AUC" in output

    def test_flux_cnn_workflow(self, tmp_path, capsys):
        dataset_path = tmp_path / "img.npz"
        model_path = tmp_path / "cnn.npz"
        # Tiny imaging dataset via the library (CLI build of images is slow).
        from repro.datasets import BuildConfig, DatasetBuilder, save_dataset
        from repro.survey import ImagingConfig

        config = BuildConfig(
            n_ia=10, n_non_ia=10, seed=9, catalog_size=50,
            imaging=ImagingConfig(stamp_size=41),
        )
        save_dataset(DatasetBuilder(config).build(), dataset_path)
        assert main([
            "train-flux-cnn", "--dataset", str(dataset_path),
            "--input-size", "36", "--epochs", "1", "--out", str(model_path),
        ]) == 0
        assert model_path.exists()

    def test_flux_cnn_rejects_small_stamps(self, tmp_path, capsys):
        dataset_path = tmp_path / "lc.npz"
        main([
            "build-dataset", "--n-ia", "20", "--n-non-ia", "20",
            "--no-images", "--seed", "2", "--out", str(dataset_path),
        ])
        code = main([
            "train-flux-cnn", "--dataset", str(dataset_path),
            "--out", str(tmp_path / "cnn.npz"),
        ])
        assert code == 2


@pytest.mark.faults
class TestClassify:
    """The degradation-tolerant serving command and its failure paths."""

    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        """(model_dir, clean_dataset_path, dataset) for the classify tests."""
        from repro.core import SupernovaPipeline
        from repro.datasets import BuildConfig, DatasetBuilder, save_dataset
        from repro.serve import FluxPrior, InferenceEngine
        from repro.survey import ImagingConfig

        root = tmp_path_factory.mktemp("classify")
        config = BuildConfig(
            n_ia=5, n_non_ia=5, seed=23, catalog_size=60,
            imaging=ImagingConfig(stamp_size=41),
        )
        dataset = DatasetBuilder(config).build()
        dataset_path = root / "ds.npz"
        save_dataset(dataset, dataset_path)
        pipe = SupernovaPipeline(input_size=36, units=8, epochs_used=1, seed=0)
        engine = InferenceEngine(pipe, prior=FluxPrior.from_dataset(dataset))
        model_dir = root / "model"
        engine.save(str(model_dir))
        return model_dir, dataset_path, dataset

    def _degraded_dataset_path(self, served, tmp_path):
        """The clean dataset with band r dropped from every sample."""
        from dataclasses import replace

        from repro.datasets import save_dataset
        from repro.runtime import DropBand

        _, _, dataset = served
        degraded = replace(dataset, pairs=DropBand(1)(dataset.pairs))
        path = tmp_path / "degraded.npz"
        save_dataset(degraded, path)
        return path

    def test_clean_dataset_streams_json(self, served, tmp_path, capsys):
        import json

        model_dir, dataset_path, dataset = served
        out = tmp_path / "results.jsonl"
        code = main([
            "classify", "--model", str(model_dir),
            "--dataset", str(dataset_path), "--out", str(out),
        ])
        assert code == 0
        lines = out.read_text().splitlines()
        assert len(lines) == len(dataset)
        first = json.loads(lines[0])
        assert first["degraded"] is False and first["confidence"] == 1.0
        assert "0 degraded" in capsys.readouterr().err

    def test_dropped_band_served_leniently(self, served, tmp_path, capsys):
        import json

        model_dir, _, _ = served
        degraded_path = self._degraded_dataset_path(served, tmp_path)
        out = tmp_path / "degraded.jsonl"
        code = main([
            "classify", "--model", str(model_dir),
            "--dataset", str(degraded_path), "--out", str(out),
        ])
        assert code == 0  # degraded-but-served
        for line in out.read_text().splitlines():
            payload = json.loads(line)
            assert payload["degraded"] is True
            assert "r" not in payload["usable_bands"]
            assert payload["confidence"] < 1.0

    def test_dropped_band_refused_in_strict_mode(self, served, tmp_path, capsys):
        model_dir, _, _ = served
        degraded_path = self._degraded_dataset_path(served, tmp_path)
        code = main([
            "classify", "--model", str(model_dir),
            "--dataset", str(degraded_path), "--strict",
        ])
        assert code == 2
        assert "non-finite" in capsys.readouterr().err

    def test_truncated_model_dir_exits_3(self, served, tmp_path, capsys):
        import shutil

        from repro.runtime import truncate_file

        model_dir, dataset_path, _ = served
        broken = tmp_path / "broken_model"
        shutil.copytree(model_dir, broken)
        truncate_file(broken / "flux_cnn.npz", keep_fraction=0.3)
        code = main([
            "classify", "--model", str(broken), "--dataset", str(dataset_path),
        ])
        assert code == 3
        assert "error:" in capsys.readouterr().err

    def test_malformed_dataset_exits_2(self, served, tmp_path, capsys):
        from repro.runtime import atomic_savez

        model_dir, _, _ = served
        bad = tmp_path / "malformed.npz"
        arrays = {
            name: np.zeros(3)
            for name in (
                "pairs", "visit_mjd", "visit_band", "true_flux", "labels",
                "sn_types", "redshifts", "host_mag", "sn_offset", "peak_mjd",
            )
        }
        atomic_savez(bad, arrays)
        code = main(["classify", "--model", str(model_dir), "--dataset", str(bad)])
        assert code == 2
        assert "pairs" in capsys.readouterr().err

    def test_missing_dataset_exits_2(self, served, capsys):
        model_dir, _, _ = served
        code = main([
            "classify", "--model", str(model_dir),
            "--dataset", str(model_dir / "nope.npz"),
        ])
        assert code == 2
