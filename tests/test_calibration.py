"""Tests for calibration diagnostics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.eval import (
    brier_score,
    expected_calibration_error,
    reliability_curve,
)


class TestReliabilityCurve:
    def test_perfectly_calibrated(self):
        rng = np.random.default_rng(0)
        probs = rng.uniform(0, 1, 20000)
        labels = (rng.random(20000) < probs).astype(float)
        curve = reliability_curve(labels, probs, n_bins=10)
        np.testing.assert_allclose(curve.mean_predicted, curve.fraction_positive, atol=0.05)

    def test_counts_sum(self):
        rng = np.random.default_rng(1)
        probs = rng.uniform(0, 1, 500)
        labels = rng.integers(0, 2, 500).astype(float)
        curve = reliability_curve(labels, probs)
        assert curve.counts.sum() == 500

    def test_empty_bins_skipped(self):
        probs = np.array([0.05, 0.06, 0.95, 0.96])
        labels = np.array([0.0, 0.0, 1.0, 1.0])
        curve = reliability_curve(labels, probs, n_bins=10)
        assert len(curve.bin_centers) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            reliability_curve(np.array([0, 1]), np.array([0.5, 1.5]))
        with pytest.raises(ValueError):
            reliability_curve(np.array([0, 2]), np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            reliability_curve(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            reliability_curve(np.array([0, 1]), np.array([0.5, 0.5]), n_bins=0)


class TestECE:
    def test_zero_for_perfect(self):
        rng = np.random.default_rng(2)
        probs = rng.uniform(0, 1, 50000)
        labels = (rng.random(50000) < probs).astype(float)
        assert expected_calibration_error(labels, probs) < 0.02

    def test_large_for_overconfident(self):
        probs = np.full(100, 0.99)
        labels = np.concatenate([np.ones(50), np.zeros(50)])
        assert expected_calibration_error(labels, probs) > 0.4


class TestBrier:
    def test_perfect_predictions(self):
        assert brier_score(np.array([1.0, 0.0]), np.array([1.0, 0.0])) == 0.0

    def test_worst_predictions(self):
        assert brier_score(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 1.0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=100), st.integers(min_value=0, max_value=2**31))
    def test_bounded(self, n, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, n).astype(float)
        probs = rng.uniform(0, 1, n)
        score = brier_score(labels, probs)
        assert 0.0 <= score <= 1.0

    def test_constant_half_prediction(self):
        labels = np.array([1.0, 0.0, 1.0, 0.0])
        assert brier_score(labels, np.full(4, 0.5)) == pytest.approx(0.25)
