"""Tests for layers, functional API, highway layers and the module system."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import Tensor
from repro.nn import functional as F

from .helpers import check_gradient

RNG = np.random.default_rng(23)


class TestFunctional:
    def test_relu_values(self):
        out = F.relu(Tensor(np.array([-1.0, 0.0, 2.0])))
        np.testing.assert_allclose(out.numpy(), [0.0, 0.0, 2.0])

    def test_relu_gradient(self):
        check_gradient(F.relu, RNG.normal(size=(10,)) + 0.3)

    def test_leaky_relu_gradient(self):
        check_gradient(lambda t: F.leaky_relu(t, 0.1), RNG.normal(size=(10,)) + 0.3)

    def test_prelu_shared_slope(self):
        alpha = Tensor(np.array([0.5]))
        out = F.prelu(Tensor(np.array([-2.0, 4.0])), alpha)
        np.testing.assert_allclose(out.numpy(), [-1.0, 4.0])

    def test_prelu_gradient_wrt_input(self):
        alpha = Tensor(np.array([0.25]))
        check_gradient(lambda t: F.prelu(t, alpha), RNG.normal(size=(8,)) + 0.2)

    def test_prelu_gradient_wrt_alpha(self):
        with nn.preserve_float64():
            x = Tensor(RNG.normal(size=(2, 3, 4, 4)))
        check_gradient(lambda a: F.prelu(x, a), np.array([0.25, 0.1, 0.4]))

    def test_prelu_per_channel_4d(self):
        x = Tensor(-np.ones((1, 2, 2, 2)))
        alpha = Tensor(np.array([0.5, 0.1]))
        out = F.prelu(x, alpha).numpy()
        np.testing.assert_allclose(out[0, 0], -0.5)
        np.testing.assert_allclose(out[0, 1], -0.1)

    def test_softmax_sums_to_one(self):
        out = F.softmax(Tensor(RNG.normal(size=(4, 6))), axis=1)
        np.testing.assert_allclose(out.numpy().sum(axis=1), np.ones(4), rtol=1e-5)

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(RNG.normal(size=(3, 5)))
        np.testing.assert_allclose(
            F.log_softmax(x).numpy(), np.log(F.softmax(x).numpy()), rtol=1e-5
        )

    def test_log_softmax_stable_for_huge_logits(self):
        out = F.log_softmax(Tensor(np.array([[1000.0, 0.0]])))
        assert np.all(np.isfinite(out.numpy()))

    def test_signed_log10_values(self):
        out = F.signed_log10(Tensor(np.array([-99.0, 0.0, 9.0])))
        np.testing.assert_allclose(out.numpy(), [-2.0, 0.0, 1.0], atol=1e-6)

    def test_signed_log10_gradient(self):
        check_gradient(F.signed_log10, RNG.normal(size=(10,)) * 5 + 0.1)

    def test_signed_log10_odd_symmetry(self):
        x = RNG.uniform(0.1, 100, size=20)
        pos = F.signed_log10(Tensor(x)).numpy()
        neg = F.signed_log10(Tensor(-x)).numpy()
        np.testing.assert_allclose(pos, -neg, rtol=1e-6)

    def test_dropout_eval_is_identity(self):
        x = Tensor(RNG.normal(size=(5, 5)))
        out = F.dropout(x, 0.5, training=False, rng=RNG)
        assert out is x

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        assert out.numpy().mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True, rng=RNG)


class TestLinear:
    def test_forward_shape(self):
        layer = nn.Linear(8, 3, rng=RNG)
        assert layer(Tensor(np.zeros((5, 8)))).shape == (5, 3)

    def test_no_bias(self):
        layer = nn.Linear(4, 2, bias=False, rng=RNG)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((1, 4))))
        np.testing.assert_allclose(out.numpy(), 0.0)

    def test_gradients_flow_to_parameters(self):
        layer = nn.Linear(4, 2, rng=RNG)
        loss = layer(Tensor(RNG.normal(size=(3, 4)))).sum()
        loss.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_weight_gradient_numerically(self):
        x = Tensor(RNG.normal(size=(3, 4)))
        bias = Tensor(np.zeros(2))
        check_gradient(lambda w: x.matmul(w.T) + bias, RNG.normal(size=(2, 4)))


class TestConvLayer:
    def test_forward_shape(self):
        layer = nn.Conv2d(3, 8, kernel_size=5, rng=RNG)
        assert layer(Tensor(np.zeros((2, 3, 20, 20)))).shape == (2, 8, 16, 16)

    def test_parameter_count(self):
        layer = nn.Conv2d(10, 20, kernel_size=5, rng=RNG)
        assert layer.num_parameters() == 20 * 10 * 25 + 20


class TestBatchNorm:
    def test_normalises_batch(self):
        bn = nn.BatchNorm1d(4)
        x = Tensor(RNG.normal(loc=5.0, scale=3.0, size=(64, 4)))
        out = bn(x).numpy()
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_updated(self):
        bn = nn.BatchNorm1d(2, momentum=1.0)
        x = Tensor(np.array([[1.0, 10.0], [3.0, 14.0]]))
        bn(x)
        np.testing.assert_allclose(bn.running_mean, [2.0, 12.0], atol=1e-5)

    def test_eval_uses_running_stats(self):
        bn = nn.BatchNorm1d(1, momentum=1.0)
        bn(Tensor(np.array([[0.0], [2.0]])))  # running_mean=1, running_var=2
        bn.eval()
        out = bn(Tensor(np.array([[1.0]]))).numpy()
        np.testing.assert_allclose(out, 0.0, atol=1e-3)

    def test_2d_shapes(self):
        bn = nn.BatchNorm2d(3)
        out = bn(Tensor(RNG.normal(size=(4, 3, 5, 5))))
        assert out.shape == (4, 3, 5, 5)

    def test_2d_normalises_per_channel(self):
        bn = nn.BatchNorm2d(2)
        x = RNG.normal(size=(8, 2, 6, 6))
        x[:, 1] += 100.0
        out = bn(Tensor(x)).numpy()
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)

    def test_gamma_beta_trainable(self):
        bn = nn.BatchNorm1d(3)
        bn(Tensor(RNG.normal(size=(10, 3)))).sum().backward()
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            nn.BatchNorm1d(3)(Tensor(np.zeros((2, 3, 4))))
        with pytest.raises(ValueError):
            nn.BatchNorm2d(3)(Tensor(np.zeros((2, 3))))


class TestHighway:
    def test_preserves_shape(self):
        layer = nn.Highway(16, rng=RNG)
        assert layer(Tensor(np.zeros((4, 16)))).shape == (4, 16)

    def test_negative_gate_bias_starts_near_identity(self):
        layer = nn.Highway(8, gate_bias=-20.0, rng=RNG)
        x = RNG.normal(size=(3, 8))
        np.testing.assert_allclose(layer(Tensor(x)).numpy(), x, atol=1e-4)

    def test_gradients_flow(self):
        layer = nn.Highway(8, rng=RNG)
        layer(Tensor(RNG.normal(size=(4, 8)))).sum().backward()
        for name, param in layer.named_parameters():
            assert param.grad is not None, name

    def test_activations(self):
        for act in ("relu", "tanh", "prelu"):
            layer = nn.Highway(4, activation=act, rng=RNG)
            assert layer(Tensor(RNG.normal(size=(2, 4)))).shape == (2, 4)

    def test_invalid_activation(self):
        with pytest.raises(ValueError):
            nn.Highway(4, activation="gelu")

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            nn.Highway(4, rng=RNG)(Tensor(np.zeros((2, 5))))


class TestModuleSystem:
    def test_sequential_runs_in_order(self):
        model = nn.Sequential(nn.Linear(4, 8, rng=RNG), nn.ReLU(), nn.Linear(8, 2, rng=RNG))
        assert model(Tensor(np.zeros((3, 4)))).shape == (3, 2)
        assert len(model) == 3

    def test_named_parameters_dotted(self):
        model = nn.Sequential(nn.Linear(2, 2, rng=RNG))
        names = [n for n, _ in model.named_parameters()]
        assert "layer0.weight" in names

    def test_train_eval_recursive(self):
        model = nn.Sequential(nn.Sequential(nn.Dropout(0.5)))
        model.eval()
        assert all(not m.training for m in model.modules())

    def test_zero_grad_clears_all(self):
        model = nn.Linear(3, 1, rng=RNG)
        model(Tensor(np.ones((2, 3)))).sum().backward()
        model.zero_grad()
        assert model.weight.grad is None

    def test_state_dict_roundtrip(self):
        src = nn.Sequential(nn.Linear(3, 4, rng=RNG), nn.BatchNorm1d(4))
        src(Tensor(RNG.normal(size=(8, 3))))  # mutate running stats
        dst = nn.Sequential(nn.Linear(3, 4, rng=RNG), nn.BatchNorm1d(4))
        dst.load_state_dict(src.state_dict())
        x = Tensor(RNG.normal(size=(2, 3)))
        src.eval(), dst.eval()
        np.testing.assert_allclose(src(x).numpy(), dst(x).numpy(), rtol=1e-6)

    def test_load_state_dict_rejects_mismatch(self):
        model = nn.Linear(3, 4, rng=RNG)
        with pytest.raises(KeyError):
            model.load_state_dict({"weight": np.zeros((4, 3))})

    def test_load_state_dict_rejects_bad_shape(self):
        model = nn.Linear(3, 4, rng=RNG)
        state = model.state_dict()
        state["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_module_list(self):
        layers = nn.ModuleList([nn.Linear(2, 2, rng=RNG) for _ in range(3)])
        assert len(layers) == 3
        assert len(list(layers.parameters())) == 6

    def test_num_parameters(self):
        assert nn.Linear(10, 5, rng=RNG).num_parameters() == 55

    def test_serialization_file_roundtrip(self, tmp_path):
        model = nn.Linear(4, 2, rng=RNG)
        path = tmp_path / "weights.npz"
        nn.save_module(model, path)
        clone = nn.Linear(4, 2, rng=np.random.default_rng(99))
        nn.load_module(clone, path)
        np.testing.assert_allclose(model.weight.data, clone.weight.data)
