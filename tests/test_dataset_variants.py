"""Dataset-builder variants: different epoch counts, stamp sizes, noise
configurations — the knobs the benchmarks rely on."""

import numpy as np
import pytest

from repro.datasets import BuildConfig, DatasetBuilder, N_BANDS
from repro.survey import ConditionsModel, ImagingConfig, NoiseModel


class TestEpochVariants:
    def test_two_epochs_per_band(self):
        config = BuildConfig(
            n_ia=3, n_non_ia=3, epochs_per_band=2, seed=1,
            render_images=False, catalog_size=30,
        )
        ds = DatasetBuilder(config).build()
        assert ds.n_epochs == 2
        assert ds.n_visits == 2 * N_BANDS

    def test_six_epochs_per_band(self):
        config = BuildConfig(
            n_ia=2, n_non_ia=2, epochs_per_band=6, seed=2,
            render_images=False, catalog_size=30,
        )
        ds = DatasetBuilder(config).build()
        assert ds.n_epochs == 6

    def test_single_class_dataset(self):
        config = BuildConfig(
            n_ia=5, n_non_ia=0, seed=3, render_images=False, catalog_size=30
        )
        ds = DatasetBuilder(config).build()
        assert np.all(ds.labels == 1)


class TestImagingVariants:
    def test_small_stamps(self):
        config = BuildConfig(
            n_ia=2, n_non_ia=2, seed=4, catalog_size=30,
            imaging=ImagingConfig(stamp_size=25, psf_kernel_size=15),
        )
        ds = DatasetBuilder(config).build()
        assert ds.stamp_size == 25
        assert np.all(np.isfinite(ds.pairs))

    def test_gaussian_psf_family(self):
        config = BuildConfig(
            n_ia=2, n_non_ia=2, seed=5, catalog_size=30,
            imaging=ImagingConfig(stamp_size=33, psf_family="gaussian"),
        )
        ds = DatasetBuilder(config).build()
        # With Gaussian PSFs the model-based matching is exact, so
        # SN-free visits should have near-zero-mean differences.
        diffs = ds.difference_images()
        dark = ds.true_flux < 0.5
        if dark.sum():
            assert abs(diffs[dark].mean()) < 0.5

    def test_deeper_noise_config(self):
        shallow_cfg = BuildConfig(
            n_ia=2, n_non_ia=2, seed=6, catalog_size=30,
            imaging=ImagingConfig(stamp_size=33),
            noise=NoiseModel(exposure_factor=10.0),
        )
        deep_cfg = BuildConfig(
            n_ia=2, n_non_ia=2, seed=6, catalog_size=30,
            imaging=ImagingConfig(stamp_size=33),
            noise=NoiseModel(exposure_factor=300.0),
        )
        shallow = DatasetBuilder(shallow_cfg).build()
        deep = DatasetBuilder(deep_cfg).build()
        # Corner pixels are pure background: deeper -> quieter.
        assert (
            deep.pairs[:, :, 1, :6, :6].std()
            < shallow.pairs[:, :, 1, :6, :6].std()
        )

    def test_custom_conditions_model(self):
        config = BuildConfig(
            n_ia=2, n_non_ia=2, seed=7, catalog_size=30,
            imaging=ImagingConfig(stamp_size=33),
            conditions=ConditionsModel(median_seeing=1.2),
        )
        ds = DatasetBuilder(config).build()
        assert np.all(np.isfinite(ds.pairs))


class TestDeterminismAcrossKnobs:
    def test_seed_isolation_from_catalog_size(self):
        # Different catalogue sizes must still give valid datasets.
        for size in (25, 100):
            config = BuildConfig(
                n_ia=2, n_non_ia=2, seed=8, render_images=False, catalog_size=size
            )
            ds = DatasetBuilder(config).build()
            assert len(ds) == 4

    def test_different_seeds_differ(self):
        a = DatasetBuilder(
            BuildConfig(n_ia=3, n_non_ia=3, seed=9, render_images=False, catalog_size=30)
        ).build()
        b = DatasetBuilder(
            BuildConfig(n_ia=3, n_non_ia=3, seed=10, render_images=False, catalog_size=30)
        ).build()
        assert not np.allclose(a.true_flux, b.true_flux)

    def test_visit_mjds_strictly_positive_span(self):
        ds = DatasetBuilder(
            BuildConfig(n_ia=3, n_non_ia=3, seed=11, render_images=False, catalog_size=30)
        ).build()
        spans = ds.visit_mjd.max(axis=1) - ds.visit_mjd.min(axis=1)
        assert np.all(spans > 10.0)
