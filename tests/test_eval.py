"""Tests for ROC/AUC and point metrics, including property-based
invariants (trapezoid AUC == rank AUC)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.eval import (
    accuracy,
    auc_score,
    best_accuracy,
    confusion_matrix,
    rank_auc,
    roc_curve,
)


class TestRocCurve:
    def test_perfect_separation(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc_score(labels, scores) == pytest.approx(1.0)

    def test_inverted_scores(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc_score(labels, scores) == pytest.approx(0.0)

    def test_random_scores_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 4000)
        while labels.min() == labels.max():
            labels = rng.integers(0, 2, 4000)
        scores = rng.random(4000)
        assert auc_score(labels, scores) == pytest.approx(0.5, abs=0.05)

    def test_curve_endpoints(self):
        curve = roc_curve(np.array([0, 1, 1, 0]), np.array([0.3, 0.7, 0.2, 0.9]))
        assert curve.fpr[0] == 0.0 and curve.tpr[0] == 0.0
        assert curve.fpr[-1] == 1.0 and curve.tpr[-1] == 1.0

    def test_curve_monotone(self):
        rng = np.random.default_rng(1)
        labels = np.array([0, 1] * 50)
        scores = rng.random(100)
        curve = roc_curve(labels, scores)
        assert np.all(np.diff(curve.fpr) >= 0)
        assert np.all(np.diff(curve.tpr) >= 0)

    def test_ties_collapsed(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        curve = roc_curve(labels, scores)
        # All tied: the curve is the diagonal with a single interior point.
        assert auc_score(labels, scores) == pytest.approx(0.5)

    def test_tpr_at_fpr(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_curve(labels, scores).tpr_at_fpr(0.01) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            roc_curve(np.array([1, 1]), np.array([0.1, 0.2]))  # one class
        with pytest.raises(ValueError):
            roc_curve(np.array([0, 2]), np.array([0.1, 0.2]))  # non-binary
        with pytest.raises(ValueError):
            roc_curve(np.array([0, 1]), np.array([0.1, np.nan]))
        with pytest.raises(ValueError):
            roc_curve(np.array([0, 1]), np.array([0.1]))
        with pytest.raises(ValueError):
            roc_curve(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            roc_curve(np.array([0, 1]), np.array([0.1, 0.2])).tpr_at_fpr(1.5)


class TestTrapezoidShim:
    """Regression: ``np.trapezoid`` exists only on numpy >= 2.0 while
    ``np.trapz`` exists only on numpy < 2.0 (removed in 2.x); the module
    must bind whichever spelling the interpreter has."""

    labels = np.array([0, 0, 1, 1, 0, 1])
    scores = np.array([0.1, 0.4, 0.35, 0.8, 0.5, 0.7])

    def test_shim_is_bound_and_consistent(self):
        import repro.eval.roc as roc_mod

        assert callable(roc_mod._trapezoid)
        assert auc_score(self.labels, self.scores) == pytest.approx(
            rank_auc(self.labels, self.scores)
        )

    def test_module_works_with_numpy1_spelling(self, monkeypatch):
        # Emulate numpy 1.x: only ``trapz`` exists. The module must still
        # import and produce the same AUC.
        import importlib

        import repro.eval.roc as roc_mod

        expected = roc_mod.auc_score(self.labels, self.scores)
        trap = roc_mod._trapezoid
        monkeypatch.setattr(np, "trapz", trap, raising=False)
        monkeypatch.delattr(np, "trapezoid", raising=False)
        try:
            reloaded = importlib.reload(roc_mod)
            assert reloaded._trapezoid is trap
            assert reloaded.auc_score(self.labels, self.scores) == pytest.approx(expected)
        finally:
            monkeypatch.undo()
            importlib.reload(roc_mod)


class TestAucInvariants:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=2, max_value=60), st.integers(min_value=0, max_value=2**31))
    def test_trapezoid_equals_rank(self, n, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, n)
        if labels.min() == labels.max():
            labels[0] = 1 - labels[0]
        scores = np.round(rng.random(n), 1)  # coarse scores force ties
        assert auc_score(labels, scores) == pytest.approx(rank_auc(labels, scores), abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=2**31))
    def test_score_shift_invariance(self, n, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, n)
        if labels.min() == labels.max():
            labels[0] = 1 - labels[0]
        scores = rng.random(n)
        assert auc_score(labels, scores) == pytest.approx(
            auc_score(labels, scores * 3.0 + 10.0)
        )

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=2**31))
    def test_label_flip_complements(self, n, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, n)
        if labels.min() == labels.max():
            labels[0] = 1 - labels[0]
        scores = rng.random(n)  # continuous, so ties have measure zero
        assert auc_score(1 - labels, scores) == pytest.approx(
            1.0 - auc_score(labels, scores), abs=1e-9
        )


class TestConfusion:
    def test_counts(self):
        labels = np.array([1, 1, 0, 0])
        scores = np.array([0.9, 0.1, 0.8, 0.2])
        cm = confusion_matrix(labels, scores, threshold=0.5)
        assert (cm.tp, cm.fn, cm.fp, cm.tn) == (1, 1, 1, 1)

    def test_metrics(self):
        labels = np.array([1, 1, 1, 0])
        scores = np.array([0.9, 0.8, 0.1, 0.7])
        cm = confusion_matrix(labels, scores)
        assert cm.accuracy == pytest.approx(0.5)
        assert cm.precision == pytest.approx(2 / 3)
        assert cm.recall == pytest.approx(2 / 3)
        assert cm.f1 == pytest.approx(2 / 3)
        assert cm.false_positive_rate == pytest.approx(1.0)

    def test_empty_positive_predictions(self):
        cm = confusion_matrix(np.array([1, 0]), np.array([0.1, 0.1]), threshold=0.5)
        assert cm.precision == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([1, 0]), np.array([0.5]))

    def test_accuracy_helper(self):
        assert accuracy(np.array([1, 0]), np.array([0.9, 0.1])) == 1.0

    def test_best_accuracy_finds_threshold(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.4, 0.45, 0.9])
        assert best_accuracy(labels, scores) == 1.0
        assert accuracy(labels, scores, 0.5) == pytest.approx(0.75)
