"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.eval import accuracy, bootstrap_auc, bootstrap_metric


class TestBootstrapAUC:
    def test_interval_contains_estimate(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 300)
        scores = labels + rng.normal(0, 0.8, 300)
        result = bootstrap_auc(labels, scores, n_resamples=300)
        assert result.low <= result.estimate <= result.high

    def test_interval_narrows_with_more_data(self):
        rng = np.random.default_rng(1)

        def width(n):
            labels = rng.integers(0, 2, n)
            while labels.min() == labels.max():
                labels = rng.integers(0, 2, n)
            scores = labels + rng.normal(0, 1.0, n)
            return bootstrap_auc(labels, scores, n_resamples=300, seed=2).half_width

        assert width(2000) < width(60)

    def test_perfect_separation_tight_interval(self):
        labels = np.array([0] * 50 + [1] * 50)
        scores = labels.astype(float)
        result = bootstrap_auc(labels, scores, n_resamples=200)
        assert result.estimate == 1.0
        assert result.low == pytest.approx(1.0)

    def test_reproducible(self):
        rng = np.random.default_rng(3)
        labels = rng.integers(0, 2, 100)
        scores = rng.random(100)
        a = bootstrap_auc(labels, scores, n_resamples=100, seed=7)
        b = bootstrap_auc(labels, scores, n_resamples=100, seed=7)
        assert a == b

    def test_validation(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.1, 0.9, 0.2, 0.8])
        with pytest.raises(ValueError):
            bootstrap_auc(labels, scores[:3])
        with pytest.raises(ValueError):
            bootstrap_auc(labels, scores, n_resamples=0)
        with pytest.raises(ValueError):
            bootstrap_auc(labels, scores, confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_auc(np.ones(4), scores)

    def test_str_format(self):
        labels = np.array([0, 1] * 20)
        scores = labels + np.random.default_rng(4).normal(0, 0.5, 40)
        text = str(bootstrap_auc(labels, scores, n_resamples=50))
        assert "[" in text and "]" in text


class TestGenericMetric:
    def test_accuracy_metric(self):
        labels = np.array([0, 0, 1, 1] * 25)
        scores = np.array([0.1, 0.4, 0.6, 0.9] * 25)
        result = bootstrap_metric(labels, scores, accuracy, n_resamples=200)
        assert result.estimate == 1.0

    def test_coverage_of_true_auc(self):
        # The 95% interval should usually contain the asymptotic AUC.
        true_auc_hits = 0
        for seed in range(10):
            rng = np.random.default_rng(seed)
            labels = rng.integers(0, 2, 400)
            while labels.min() == labels.max():
                labels = rng.integers(0, 2, 400)
            scores = labels * 1.0 + rng.normal(0, 1.0, 400)
            # True AUC for unit-separated normals: Phi(1/sqrt(2)) ~ 0.760.
            result = bootstrap_auc(labels, scores, n_resamples=300, seed=seed)
            if result.low <= 0.760 <= result.high:
                true_auc_hits += 1
        assert true_auc_hits >= 7
