"""Tests for the dataset builder, container, splits and persistence."""

import numpy as np
import pytest

from repro.datasets import (
    BuildConfig,
    DatasetBuilder,
    N_BANDS,
    SupernovaDataset,
    load_dataset,
    save_dataset,
    train_val_test_split,
)
from repro.photometry import GRIZY
from repro.survey import ImagingConfig


@pytest.fixture(scope="module")
def tiny_image_dataset():
    """A small rendered dataset shared across tests (module scoped)."""
    config = BuildConfig(
        n_ia=6,
        n_non_ia=6,
        seed=42,
        catalog_size=50,
        imaging=ImagingConfig(stamp_size=33),
    )
    return DatasetBuilder(config).build()


@pytest.fixture(scope="module")
def lc_dataset():
    """A larger light-curve-only dataset (no stamps)."""
    config = BuildConfig(n_ia=60, n_non_ia=60, seed=7, render_images=False, catalog_size=200)
    return DatasetBuilder(config).build()


class TestBuildConfig:
    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            BuildConfig(n_ia=0, n_non_ia=0)

    def test_rejects_bad_epochs(self):
        with pytest.raises(ValueError):
            BuildConfig(epochs_per_band=0)


class TestBuiltDataset:
    def test_counts(self, tiny_image_dataset):
        ds = tiny_image_dataset
        assert len(ds) == 12
        assert int(ds.labels.sum()) == 6

    def test_shapes(self, tiny_image_dataset):
        ds = tiny_image_dataset
        assert ds.pairs.shape == (12, 20, 2, 33, 33)
        assert ds.visit_mjd.shape == (12, 20)
        assert ds.n_epochs == 4
        assert ds.stamp_size == 33

    def test_band_layout_epoch_major(self, tiny_image_dataset):
        ds = tiny_image_dataset
        # Within each epoch block all five bands appear exactly once.
        for i in range(len(ds)):
            for e in range(4):
                bands = sorted(ds.visit_band[i, e * N_BANDS : (e + 1) * N_BANDS])
                assert bands == [0, 1, 2, 3, 4]

    def test_types_consistent_with_labels(self, tiny_image_dataset):
        ds = tiny_image_dataset
        for label, name in zip(ds.labels, ds.sn_types):
            assert (name == "Ia") == bool(label)

    def test_redshifts_in_range(self, tiny_image_dataset):
        assert np.all(tiny_image_dataset.redshifts >= 0.1)
        assert np.all(tiny_image_dataset.redshifts <= 2.0)

    def test_fluxes_non_negative(self, tiny_image_dataset):
        assert np.all(tiny_image_dataset.true_flux >= 0)

    def test_mjds_increase_within_band(self, tiny_image_dataset):
        ds = tiny_image_dataset
        for i in range(len(ds)):
            for b in range(N_BANDS):
                band_mjds = [
                    ds.visit_mjd[i, e * N_BANDS + bb]
                    for e in range(4)
                    for bb in range(N_BANDS)
                    if ds.visit_band[i, e * N_BANDS + bb] == b
                ]
                assert band_mjds == sorted(band_mjds)

    def test_difference_recovers_bright_flux(self, tiny_image_dataset):
        ds = tiny_image_dataset
        diffs = ds.difference_images()
        size = ds.stamp_size
        c = size // 2
        rows, cols = np.mgrid[:size, :size]
        aperture = (rows - c) ** 2 + (cols - c) ** 2 <= (c - 3) ** 2
        bright = ds.true_flux > 50
        if bright.sum() == 0:
            pytest.skip("no bright visits in the tiny dataset")
        estimates = diffs[:, :, aperture].sum(axis=-1)[bright]
        truths = ds.true_flux[bright]
        ratio = estimates / truths
        assert np.median(ratio) == pytest.approx(1.0, abs=0.25)

    def test_summary_string(self, tiny_image_dataset):
        assert "Ia=6" in tiny_image_dataset.summary()

    def test_reproducible_build(self):
        config = BuildConfig(n_ia=3, n_non_ia=3, seed=5, render_images=False, catalog_size=30)
        a = DatasetBuilder(config).build()
        b = DatasetBuilder(config).build()
        np.testing.assert_allclose(a.true_flux, b.true_flux)
        np.testing.assert_array_equal(a.sn_types, b.sn_types)


class TestContainerValidation:
    def test_bad_pair_shape(self, tiny_image_dataset):
        ds = tiny_image_dataset
        with pytest.raises(ValueError):
            SupernovaDataset(
                pairs=ds.pairs[:, :, :1],
                visit_mjd=ds.visit_mjd,
                visit_band=ds.visit_band,
                true_flux=ds.true_flux,
                labels=ds.labels,
                sn_types=ds.sn_types,
                redshifts=ds.redshifts,
                host_mag=ds.host_mag,
                sn_offset=ds.sn_offset,
                peak_mjd=ds.peak_mjd,
            )

    def test_epoch_slice_bounds(self, tiny_image_dataset):
        with pytest.raises(IndexError):
            tiny_image_dataset.epoch_slice(4)
        np.testing.assert_array_equal(
            tiny_image_dataset.epoch_slice(1), np.arange(5, 10)
        )

    def test_flux_pairs_mask(self, lc_dataset):
        flat, mags, mask = lc_dataset.flux_pairs(min_flux=10.0)
        assert flat.shape[0] == len(lc_dataset) * 20
        assert np.all(np.isfinite(mags[mask]))
        assert np.all(np.isnan(mags[~mask]))
        # min_flux=10 -> brightest allowed magnitude 24.5.
        assert mags[mask].max() <= 27.0 - 2.5 * np.log10(10.0) + 1e-6

    def test_select_preserves_alignment(self, lc_dataset):
        subset = lc_dataset.select(np.array([3, 1, 4]))
        assert len(subset) == 3
        np.testing.assert_allclose(subset.redshifts[0], lc_dataset.redshifts[3])


class TestSplits:
    def test_partition_sizes(self, lc_dataset):
        splits = train_val_test_split(lc_dataset, seed=0)
        assert len(splits.train) + len(splits.val) + len(splits.test) == len(lc_dataset)
        assert len(splits.train) == pytest.approx(0.8 * len(lc_dataset), abs=2)

    def test_no_overlap(self, lc_dataset):
        splits = train_val_test_split(lc_dataset, seed=0)
        def keys(d):
            return {(float(z), float(p)) for z, p in zip(d.redshifts, d.peak_mjd)}
        assert not (keys(splits.train) & keys(splits.test))
        assert not (keys(splits.train) & keys(splits.val))

    def test_stratification(self, lc_dataset):
        splits = train_val_test_split(lc_dataset, seed=1, stratify=True)
        frac = lc_dataset.labels.mean()
        assert splits.train.labels.mean() == pytest.approx(frac, abs=0.05)
        assert splits.test.labels.mean() == pytest.approx(frac, abs=0.15)

    def test_reproducible(self, lc_dataset):
        a = train_val_test_split(lc_dataset, seed=9)
        b = train_val_test_split(lc_dataset, seed=9)
        np.testing.assert_allclose(a.test.redshifts, b.test.redshifts)

    def test_invalid_fractions(self, lc_dataset):
        with pytest.raises(ValueError):
            train_val_test_split(lc_dataset, train_fraction=0.9, val_fraction=0.2)
        with pytest.raises(ValueError):
            train_val_test_split(lc_dataset, train_fraction=1.2)

    def test_too_small_dataset(self):
        config = BuildConfig(n_ia=2, n_non_ia=2, seed=1, render_images=False, catalog_size=10)
        ds = DatasetBuilder(config).build()
        with pytest.raises(ValueError):
            train_val_test_split(ds, train_fraction=0.98, val_fraction=0.01)

    @pytest.mark.parametrize("n_per_class", [3, 5, 7, 9])
    def test_small_odd_strata_keep_every_split_nonempty(self, n_per_class):
        # Regression: per-stratum int(round(...)) could hand the whole
        # stratum to train+val (e.g. 7 -> round(5.6)=6 train, round(0.7)=1
        # val, 0 test); floor-plus-remainder must leave all three splits
        # non-empty whenever each stratum has >= 3 samples.
        config = BuildConfig(
            n_ia=n_per_class, n_non_ia=n_per_class, seed=2,
            render_images=False, catalog_size=40,
        )
        ds = DatasetBuilder(config).build()
        splits = train_val_test_split(ds, seed=0, stratify=True)
        assert min(len(splits.train), len(splits.val), len(splits.test)) >= 1
        assert len(splits.train) + len(splits.val) + len(splits.test) == len(ds)
        # Each split keeps both classes when every stratum has >= 3 samples.
        for part in (splits.train, splits.val, splits.test):
            assert part.labels.min() == 0 and part.labels.max() == 1

    def test_allocation_tracks_fractions(self):
        from repro.datasets.splits import _allocate_counts

        counts = _allocate_counts(7, (0.8, 0.1, 0.1))
        assert counts.tolist() == [5, 1, 1]
        counts = _allocate_counts(120, (0.8, 0.1, 0.1))
        assert counts.tolist() == [96, 12, 12]
        counts = _allocate_counts(3, (0.8, 0.1, 0.1))
        assert counts.tolist() == [1, 1, 1]
        # Too small for three buckets: empty buckets survive (the caller
        # raises its "too small" error).
        assert _allocate_counts(2, (0.98, 0.01, 0.01)).min() == 0


class TestIO:
    def test_roundtrip(self, tiny_image_dataset, tmp_path):
        path = tmp_path / "ds.npz"
        save_dataset(tiny_image_dataset, path)
        loaded = load_dataset(path)
        np.testing.assert_allclose(loaded.pairs, tiny_image_dataset.pairs)
        np.testing.assert_allclose(loaded.true_flux, tiny_image_dataset.true_flux)
        np.testing.assert_array_equal(loaded.sn_types, tiny_image_dataset.sn_types)

    def test_missing_field(self, tmp_path):
        from repro.runtime import CorruptArtifactError

        path = tmp_path / "bad.npz"
        np.savez(path, pairs=np.zeros((1, 5, 2, 3, 3)))
        with pytest.raises(CorruptArtifactError, match="missing fields"):
            load_dataset(path)
