"""Daemon chaos suite: slow clients, malformed bodies, poison batches, bursts.

The invariant under every scenario is the one the daemon promises:
*every admitted request receives exactly one typed response* — none
dropped, none double-scored — and clean traffic scores bit-identically
to the batch ``repro classify`` path no matter how requests were
coalesced into micro-batches.  All injectors are deterministic
(:mod:`repro.runtime.faults`): no wall-clock coin flips decide what the
daemon experiences, only *when* it experiences it.
"""

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.runtime import (
    BurstSchedule,
    FailBatch,
    InjectedFault,
    WedgeBatch,
    malformed_bodies,
    send_slow_request,
)
from repro.serve import DaemonConfig

from .helpers import (
    classify_body,
    make_serve_engine,
    make_serve_sample,
    post_classify,
    running_daemon,
)

pytestmark = pytest.mark.serve


@pytest.fixture(scope="module")
def engine():
    return make_serve_engine(seed=0)


@pytest.fixture()
def sample(engine):
    return make_serve_sample(engine, seed=3)


class TestSlowClients:
    def test_dribbling_body_gets_typed_408(self, engine, sample):
        pairs, mjd = sample
        body = classify_body(pairs, mjd)
        config = DaemonConfig(batch_deadline_ms=2.0, client_body_deadline_s=0.3)
        with running_daemon(engine, config) as daemon:
            # ~1.6 KB body at 64 B per 50 ms needs >1 s; deadline is 0.3 s.
            status, raw = send_slow_request(
                "127.0.0.1", daemon.port, body[:2048], chunk_size=64, delay_s=0.05
            )
            assert status == 408
            assert json.loads(raw)["error"]["type"] == "slow_client"
            assert int(daemon.metrics.counter("daemon.slow_clients").value) == 1
            # The wasted handler thread is gone; clean traffic is unaffected.
            status, doc = post_classify(daemon.port, body)
            assert status == 200

    def test_slow_but_within_deadline_is_served(self, engine, sample):
        pairs, mjd = sample
        body = classify_body(pairs, mjd)
        config = DaemonConfig(batch_deadline_ms=2.0, client_body_deadline_s=30.0)
        with running_daemon(engine, config) as daemon:
            status, raw = send_slow_request(
                "127.0.0.1", daemon.port, body,
                chunk_size=len(body) // 4 + 1, delay_s=0.05,
            )
            assert status == 200
            assert json.loads(raw)["result"]["probability"] is not None


class TestMalformedBodies:
    def test_every_malformed_body_is_typed_400(self, engine, sample):
        pairs, mjd = sample
        with running_daemon(engine, DaemonConfig(batch_deadline_ms=2.0)) as daemon:
            for name, body in malformed_bodies():
                status, doc = post_classify(daemon.port, body)
                assert status == 400, f"payload {name!r} -> {status}"
                assert doc["error"]["type"] == "bad_request", name
            assert int(daemon.metrics.counter("daemon.admitted").value) == 0
            status, _ = post_classify(daemon.port, classify_body(pairs, mjd))
            assert status == 200  # still serving after the whole zoo

    def test_missing_content_length_is_411(self, engine):
        with running_daemon(engine, DaemonConfig(batch_deadline_ms=2.0)) as daemon:
            with socket.create_connection(("127.0.0.1", daemon.port), timeout=10) as conn:
                conn.sendall(
                    b"POST /classify HTTP/1.1\r\n"
                    b"Host: localhost\r\n"
                    b"Connection: close\r\n\r\n"
                )
                response = b""
                while chunk := conn.recv(65536):
                    response += chunk
            assert b"411" in response.split(b"\r\n", 1)[0]
            assert b"length_required" in response

    def test_oversized_declaration_is_413_without_reading(self, engine, sample):
        pairs, mjd = sample
        config = DaemonConfig(batch_deadline_ms=2.0, max_body_bytes=1024)
        with running_daemon(engine, config) as daemon:
            status, doc = post_classify(daemon.port, classify_body(pairs, mjd))
            assert status == 413
            assert doc["error"]["type"] == "too_large"


class TestMidBatchException:
    def test_injected_fault_is_isolated_to_nobody(self, engine, sample):
        """A hook fault on a shared batch: both batch-mates still score."""
        pairs, mjd = sample
        wedge = WedgeBatch({0})
        fail = FailBatch({1})

        def hook(batch_index, n_samples):
            wedge(batch_index, n_samples)
            fail(batch_index, n_samples)

        config = DaemonConfig(batch_deadline_ms=5.0)
        body = classify_body(pairs, mjd, deadline_ms=30000)
        with running_daemon(engine, config, fault_hook=hook) as daemon:
            results: dict = {}

            def post(key):
                results[key] = post_classify(daemon.port, body)

            threads = [threading.Thread(target=post, args=("head",), daemon=True)]
            threads[0].start()
            assert wedge.wedged.wait(10.0)
            for key in ("a", "b"):
                thread = threading.Thread(target=post, args=(key,), daemon=True)
                thread.start()
                threads.append(thread)
            deadline = time.monotonic() + 10.0
            while daemon._batcher.waiting() < 2 and time.monotonic() < deadline:
                time.sleep(0.005)
            wedge.release()
            for thread in threads:
                thread.join(timeout=30.0)
            # Batch 1 = {a, b} blew up; re-scored alone as batches 2 and 3.
            assert all(status == 200 for status, _ in results.values())
            assert int(daemon.metrics.counter("daemon.poison_batches").value) == 1
            assert int(daemon.metrics.counter("daemon.responses").value) == 3
            solo = engine.classify_arrays(pairs[None], mjd[None])[0]
            for key in ("a", "b"):
                assert results[key][1]["result"]["probability"] == round(
                    solo.probability, 6
                )

    def test_unsplittable_fault_is_typed_500(self, engine, sample):
        pairs, mjd = sample
        config = DaemonConfig(batch_deadline_ms=2.0)
        with running_daemon(
            engine, config, fault_hook=FailBatch("all", exc=InjectedFault)
        ) as daemon:
            status, doc = post_classify(daemon.port, classify_body(pairs, mjd))
            assert status == 500
            assert doc["error"]["type"] == "internal"
            assert "InjectedFault" in doc["error"]["message"]
            assert int(daemon.metrics.counter("daemon.request_errors").value) == 1


class TestBurstOverload:
    def test_every_request_gets_exactly_one_typed_response(self, engine, sample):
        """Open-loop burst at 5x the queue's comfort: shed, never drop."""
        pairs, mjd = sample
        body = classify_body(pairs, mjd, deadline_ms=30000)
        schedule = BurstSchedule(qps=100.0, duration_s=0.5, burst_factor=5.0)
        offsets = schedule.offsets()
        assert len(offsets) == 50
        config = DaemonConfig(
            queue_depth=8, batch_max_size=4, batch_deadline_ms=5.0,
        )
        with running_daemon(engine, config) as daemon:
            results: list = [None] * len(offsets)
            start = time.monotonic()

            def fire(k, offset):
                delay = start + offset - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                results[k] = post_classify(daemon.port, body)

            threads = [
                threading.Thread(target=fire, args=(k, offset), daemon=True)
                for k, offset in enumerate(offsets)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)

            # Exactly one typed response per request, no exceptions.
            assert all(result is not None for result in results)
            statuses = [status for status, _ in results]
            assert set(statuses) <= {200, 429, 504}
            assert statuses.count(200) >= 1

            # Conservation: admitted = scored + timed out; shed is the rest.
            admitted = int(daemon.metrics.counter("daemon.admitted").value)
            responses = int(daemon.metrics.counter("daemon.responses").value)
            timeouts = int(daemon.metrics.counter("daemon.timeouts").value)
            shed = int(daemon.metrics.counter("daemon.shed").value)
            assert admitted + shed == len(offsets)
            assert responses + timeouts == admitted
            assert statuses.count(200) == responses
            assert statuses.count(429) == shed
            assert statuses.count(504) == timeouts


class TestPoolWorkerKill:
    def test_sigkill_mid_burst_conserves_every_request(self, engine, sample):
        """SIGKILL a scoring worker *process* mid-batch under burst load.

        The multi-process analogue of the poison-batch tests: a scoring
        worker dies with requests in flight, the pool detects the dead
        sentinel, respawns the worker under its RetrySpec budget and
        re-scores the culprit group per sample — so conservation
        (``sent == 200 + 429 + 504 + 5xx``) must hold exactly as it
        does for a single-process daemon, and the daemon must still
        drain cleanly afterwards.
        """
        import os
        import signal as _signal

        pairs, mjd = sample
        body = classify_body(pairs, mjd, deadline_ms=30000)
        offsets = BurstSchedule(qps=60.0, duration_s=1.0, burst_factor=3.0).offsets()
        config = DaemonConfig(
            queue_depth=8, batch_max_size=4, batch_deadline_ms=5.0,
            scoring_workers=2,
        )
        with running_daemon(engine, config) as daemon:
            pool = daemon._pool
            assert pool is not None and len(pool.pids()) == 2
            results: list = [None] * len(offsets)
            start = time.monotonic()

            def fire(k, offset):
                delay = start + offset - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                results[k] = post_classify(daemon.port, body)

            threads = [
                threading.Thread(target=fire, args=(k, offset), daemon=True)
                for k, offset in enumerate(offsets)
            ]
            for thread in threads:
                thread.start()
            # Kill a worker once traffic is genuinely flowing through it.
            deadline = time.monotonic() + 10.0
            while pool.stats()["batches"] < 1 and time.monotonic() < deadline:
                time.sleep(0.005)
            os.kill(pool.pids()[0], _signal.SIGKILL)
            for thread in threads:
                thread.join(timeout=60.0)

            # Exactly one typed response per request.
            assert all(result is not None for result in results)
            statuses = [status for status, _ in results]
            assert set(statuses) <= {200, 429, 504, 500}
            assert statuses.count(200) >= 1

            admitted = int(daemon.metrics.counter("daemon.admitted").value)
            responses = int(daemon.metrics.counter("daemon.responses").value)
            timeouts = int(daemon.metrics.counter("daemon.timeouts").value)
            shed = int(daemon.metrics.counter("daemon.shed").value)
            errors = int(daemon.metrics.counter("daemon.request_errors").value)
            assert admitted + shed == len(offsets)
            assert responses + timeouts + errors == admitted
            assert statuses.count(200) == responses
            assert statuses.count(429) == shed
            assert statuses.count(504) == timeouts
            assert statuses.count(500) == errors

            # The pool healed within its respawn budget: a full
            # complement of live workers, crash + respawn accounted.
            stats = pool.stats()
            assert stats["crashes"] >= 1
            assert stats["respawns"] >= 1
            assert stats["broken"] is None
            assert len(pool.pids()) == 2

            # Clean traffic still scores wire-identically after healing.
            status, doc = post_classify(daemon.port, body)
            assert status == 200
            solo = engine.classify_arrays(pairs[None], mjd[None])[0]
            assert doc["result"]["probability"] == round(solo.probability, 6)


class TestCleanTrafficParity:
    def test_daemon_scores_bit_identical_to_batch_classify(self, engine):
        """Concurrent daemon traffic == classify_arrays, bit for bit.

        The daemon folds these requests into arbitrary micro-batches
        depending on thread timing; the scored probabilities must not
        care.  ``repro classify`` streams the same samples through
        ``classify_arrays`` — equality here is the CLI-parity contract.
        """
        samples = [make_serve_sample(engine, seed=100 + k) for k in range(10)]
        pairs_batch = np.stack([pairs for pairs, _ in samples])
        mjd_batch = np.stack([mjd for _, mjd in samples])
        reference = engine.classify_arrays(pairs_batch, mjd_batch)

        config = DaemonConfig(batch_max_size=4, batch_deadline_ms=20.0)
        with running_daemon(engine, config) as daemon:
            results: list = [None] * len(samples)

            def fire(k):
                pairs, mjd = samples[k]
                results[k] = post_classify(
                    daemon.port, classify_body(pairs, mjd, deadline_ms=30000)
                )

            threads = [
                threading.Thread(target=fire, args=(k,), daemon=True)
                for k in range(len(samples))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)

        for k, (status, doc) in enumerate(results):
            assert status == 200
            expected = reference[k].to_dict()
            got = doc["result"]
            # The classification outputs are bit-identical regardless of
            # how the daemon coalesced the micro-batches.
            assert got["probability"] == expected["probability"]
            assert got["confidence"] == expected["confidence"]
            assert got["usable_bands"] == expected["usable_bands"]
            assert got["degraded"] == expected["degraded"]
            # flux_feature is a raw mean of CNN regressor outputs; BLAS
            # blocking varies with the (N*V) GEMM shape, so it may move
            # by one ULP of the 6-decimal rounding across compositions.
            assert abs(got["flux_feature"] - expected["flux_feature"]) <= 2e-6
