"""Tests for bands and magnitude algebra, including property-based checks."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.photometry import (
    GRIZY,
    ZERO_POINT,
    Band,
    band_by_name,
    flux_to_mag,
    inverse_signed_log10,
    mag_error_from_flux,
    mag_to_flux,
    signed_log10,
)


class TestBands:
    def test_five_bands_ordered(self):
        assert [b.name for b in GRIZY] == ["g", "r", "i", "z", "y"]
        assert [b.index for b in GRIZY] == [0, 1, 2, 3, 4]

    def test_wavelengths_increase(self):
        wavelengths = [b.effective_wavelength for b in GRIZY]
        assert wavelengths == sorted(wavelengths)

    def test_lookup(self):
        assert band_by_name("i").effective_wavelength == pytest.approx(7711.0)

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            band_by_name("u")

    def test_invalid_wavelength(self):
        with pytest.raises(ValueError):
            Band("x", -5.0, 20.0, 0)

    def test_str(self):
        assert str(band_by_name("g")) == "g"


class TestMagnitudes:
    def test_zero_point_value(self):
        assert flux_to_mag(1.0) == pytest.approx(ZERO_POINT)

    def test_paper_formula(self):
        # mag = -2.5 log10(flux) + 27 from Section 4.
        assert flux_to_mag(100.0) == pytest.approx(22.0)

    def test_rejects_nonpositive_flux(self):
        with pytest.raises(ValueError):
            flux_to_mag(0.0)
        with pytest.raises(ValueError):
            flux_to_mag(np.array([1.0, -2.0]))

    def test_array_roundtrip(self):
        mags = np.array([20.0, 23.5, 27.0])
        np.testing.assert_allclose(flux_to_mag(mag_to_flux(mags)), mags, rtol=1e-10)

    @given(st.floats(min_value=15.0, max_value=30.0))
    def test_roundtrip_property(self, mag):
        assert flux_to_mag(mag_to_flux(mag)) == pytest.approx(mag, abs=1e-9)

    @given(st.floats(min_value=1e-3, max_value=1e6))
    def test_brighter_means_smaller_mag(self, flux):
        assert flux_to_mag(flux * 2) < flux_to_mag(flux)

    def test_mag_error_first_order(self):
        # 10% flux error ~ 0.108 mag.
        assert mag_error_from_flux(100.0, 10.0) == pytest.approx(0.1086, rel=1e-3)

    def test_mag_error_validation(self):
        with pytest.raises(ValueError):
            mag_error_from_flux(-1.0, 1.0)
        with pytest.raises(ValueError):
            mag_error_from_flux(1.0, -1.0)


class TestSignedLog:
    def test_values(self):
        np.testing.assert_allclose(
            signed_log10(np.array([-9.0, 0.0, 99.0])), [-1.0, 0.0, 2.0], atol=1e-12
        )

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_roundtrip_property(self, x):
        assert inverse_signed_log10(signed_log10(x)) == pytest.approx(x, rel=1e-6, abs=1e-6)

    @given(st.floats(min_value=0.0, max_value=1e6))
    def test_odd_function(self, x):
        assert signed_log10(-x) == pytest.approx(-signed_log10(x))

    @given(
        st.floats(min_value=-1e5, max_value=1e5),
        st.floats(min_value=-1e5, max_value=1e5),
    )
    def test_monotone(self, a, b):
        if a < b:
            assert signed_log10(a) <= signed_log10(b)
