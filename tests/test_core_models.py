"""Tests for the paper's models: band-wise CNN, classifier, joint model,
features and augmentation."""

import numpy as np
import pytest

import repro.nn as nn
from repro.core import (
    BandwiseCNN,
    JointModel,
    LightCurveClassifier,
    PerBandCNNEnsemble,
    dihedral_transform,
    features_from_arrays,
    make_pair_augmenter,
    random_crop,
    scaled_dates,
    windowed_epoch_features,
)
from repro.nn import Tensor

RNG = np.random.default_rng(99)


class TestBandwiseCNN:
    def test_output_shape(self):
        cnn = BandwiseCNN(input_size=36, rng=RNG)
        pairs = RNG.normal(size=(4, 2, 36, 36)).astype(np.float32)
        out = cnn(Tensor(pairs))
        assert out.shape == (4,)

    def test_crops_larger_stamps(self):
        cnn = BandwiseCNN(input_size=36, rng=RNG)
        pairs = RNG.normal(size=(3, 2, 65, 65)).astype(np.float32)
        assert cnn(Tensor(pairs)).shape == (3,)

    def test_rejects_small_stamps(self):
        cnn = BandwiseCNN(input_size=60, rng=RNG)
        with pytest.raises(ValueError):
            cnn(Tensor(np.zeros((1, 2, 44, 44), dtype=np.float32)))

    def test_rejects_wrong_channels(self):
        cnn = BandwiseCNN(input_size=36, rng=RNG)
        with pytest.raises(ValueError):
            cnn(Tensor(np.zeros((1, 3, 36, 36), dtype=np.float32)))

    def test_all_table1_sizes_forward(self):
        for size in (36, 44, 52, 60, 65):
            cnn = BandwiseCNN(input_size=size, rng=RNG)
            out = cnn(Tensor(np.zeros((2, 2, 65, 65), dtype=np.float32)))
            assert out.shape == (2,)

    def test_too_small_input_size_rejected(self):
        with pytest.raises(ValueError):
            BandwiseCNN(input_size=16, rng=RNG)

    def test_invalid_options(self):
        with pytest.raises(ValueError):
            BandwiseCNN(input_transform="sqrt", rng=RNG)
        with pytest.raises(ValueError):
            BandwiseCNN(pool="median", rng=RNG)
        with pytest.raises(ValueError):
            BandwiseCNN(channels=(10, 20), rng=RNG)

    def test_outputs_in_magnitude_range(self):
        cnn = BandwiseCNN(input_size=36, rng=RNG)
        cnn.eval()
        out = cnn.predict(RNG.normal(size=(8, 2, 36, 36)).astype(np.float32))
        # Freshly initialised network outputs near MAG_CENTER.
        assert np.all(np.abs(out - 24.5) < 10.0)

    def test_empty_input_keeps_float32_contract(self):
        cnn = BandwiseCNN(input_size=36, rng=RNG)
        out = cnn.predict(np.empty((0, 2, 36, 36), dtype=np.float32))
        assert out.shape == (0,)
        assert out.dtype == np.float32

    def test_paper_channel_progression(self):
        cnn = BandwiseCNN(input_size=60, rng=RNG)
        convs = [m for m in cnn.convs if isinstance(m, nn.Conv2d)]
        assert [c.out_channels for c in convs] == [10, 20, 30]
        assert all(c.kernel_size == 5 for c in convs)

    def test_gradients_reach_first_conv(self):
        cnn = BandwiseCNN(input_size=36, rng=RNG)
        pairs = Tensor(RNG.normal(size=(4, 2, 36, 36)).astype(np.float32))
        loss = (cnn(pairs) ** 2).mean()
        loss.backward()
        first_conv = next(m for m in cnn.convs if isinstance(m, nn.Conv2d))
        assert first_conv.weight.grad is not None
        assert np.any(first_conv.weight.grad != 0)

    def test_learns_brightness_ordering(self):
        # A shrunken CNN must learn that more flux = smaller magnitude.
        rng = np.random.default_rng(3)
        cnn = BandwiseCNN(input_size=36, channels=(4, 6, 8), fc_hidden=(16, 8), rng=rng)
        n = 120
        mags = rng.uniform(21.0, 25.0, n)
        flux = 10 ** (-0.4 * (mags - 27.0))
        pairs = np.zeros((n, 2, 36, 36), dtype=np.float32)
        rows, cols = np.mgrid[:36, :36]
        psf = np.exp(-((rows - 17.5) ** 2 + (cols - 17.5) ** 2) / (2 * 2.0**2))
        psf /= psf.sum()
        for i in range(n):
            pairs[i, 1] = flux[i] * psf + rng.normal(0, 0.3, (36, 36))
            pairs[i, 0] = rng.normal(0, 0.1, (36, 36))
        from repro.core import TrainConfig, fit_regressor

        fit_regressor(
            cnn, pairs, mags.astype(np.float32),
            TrainConfig(epochs=30, batch_size=32, seed=0, learning_rate=2e-3),
        )
        pred = cnn.predict(pairs)
        corr = np.corrcoef(pred, mags)[0, 1]
        assert corr > 0.8

    def test_state_roundtrip(self):
        cnn = BandwiseCNN(input_size=36, rng=RNG)
        clone = BandwiseCNN(input_size=36, rng=np.random.default_rng(1))
        clone.load_state_dict(cnn.state_dict())
        pairs = RNG.normal(size=(2, 2, 36, 36)).astype(np.float32)
        np.testing.assert_allclose(cnn.predict(pairs), clone.predict(pairs), rtol=1e-5)


class TestPerBandEnsemble:
    def test_routing(self):
        ensemble = PerBandCNNEnsemble(n_bands=3, input_size=36, rng=RNG)
        pairs = RNG.normal(size=(6, 2, 36, 36)).astype(np.float32)
        band_idx = np.array([0, 1, 2, 0, 1, 2])
        out = ensemble(Tensor(pairs), band_idx)
        assert out.shape == (6,)

    def test_band_alignment(self):
        # Output order must match input order, not band-grouped order.
        ensemble = PerBandCNNEnsemble(n_bands=2, input_size=36, rng=RNG)
        ensemble.eval()
        pairs = RNG.normal(size=(4, 2, 36, 36)).astype(np.float32)
        with nn.no_grad():
            mixed = ensemble(Tensor(pairs), np.array([1, 0, 1, 0])).numpy()
            only0 = ensemble.members[0](Tensor(pairs)).numpy()
            only1 = ensemble.members[1](Tensor(pairs)).numpy()
        np.testing.assert_allclose(mixed, [only1[0], only0[1], only1[2], only0[3]], rtol=1e-5)

    def test_misaligned_rejected(self):
        ensemble = PerBandCNNEnsemble(n_bands=2, input_size=36, rng=RNG)
        with pytest.raises(ValueError):
            ensemble(Tensor(np.zeros((3, 2, 36, 36), dtype=np.float32)), np.array([0, 1]))


class TestClassifier:
    def test_logit_shape(self):
        clf = LightCurveClassifier(input_dim=10, units=32, rng=RNG)
        out = clf(Tensor(RNG.normal(size=(7, 10)).astype(np.float32)))
        assert out.shape == (7,)

    def test_wrong_dim_rejected(self):
        clf = LightCurveClassifier(input_dim=10, rng=RNG)
        with pytest.raises(ValueError):
            clf(Tensor(np.zeros((3, 12), dtype=np.float32)))

    def test_validation(self):
        with pytest.raises(ValueError):
            LightCurveClassifier(input_dim=0)
        with pytest.raises(ValueError):
            LightCurveClassifier(n_highway=-1)

    def test_highway_count(self):
        clf = LightCurveClassifier(input_dim=10, units=16, n_highway=2, rng=RNG)
        highways = [m for m in clf.network if isinstance(m, nn.Highway)]
        assert len(highways) == 2

    def test_plain_fc_variant(self):
        clf = LightCurveClassifier(input_dim=10, units=16, use_highway=False, rng=RNG)
        highways = [m for m in clf.network if isinstance(m, nn.Highway)]
        assert not highways

    def test_proba_range(self):
        clf = LightCurveClassifier(input_dim=10, units=16, rng=RNG)
        probs = clf.predict_proba(RNG.normal(size=(20, 10)).astype(np.float32))
        assert np.all((probs >= 0) & (probs <= 1))

    def test_learns_linear_rule(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(400, 10)).astype(np.float32)
        y = (x[:, 0] + x[:, 3] > 0).astype(np.float32)
        clf = LightCurveClassifier(input_dim=10, units=32, rng=rng)
        from repro.core import TrainConfig, fit_classifier

        fit_classifier(clf, x, y, TrainConfig(epochs=40, batch_size=64, seed=1))
        from repro.eval import auc_score

        assert auc_score(y, clf.predict_proba(x)) > 0.95


class TestFeatures:
    def test_shape_single_epoch(self):
        flux = RNG.uniform(0, 50, size=(8, 20))
        mjd = np.tile(np.arange(20) * 3.0, (8, 1))
        feats = features_from_arrays(flux, mjd, epochs=1)
        assert feats.shape == (8, 10)

    def test_shape_multi_epoch(self):
        flux = RNG.uniform(0, 50, size=(8, 20))
        mjd = np.tile(np.arange(20) * 3.0, (8, 1))
        assert features_from_arrays(flux, mjd, epochs=3).shape == (8, 30)

    def test_explicit_epoch_list(self):
        flux = RNG.uniform(0, 50, size=(4, 20))
        mjd = np.tile(np.arange(20.0), (4, 1))
        feats = features_from_arrays(flux, mjd, epochs=[2])
        expected = features_from_arrays(np.roll(flux, -10, axis=1), np.roll(mjd, -10, axis=1), epochs=1)
        np.testing.assert_allclose(feats, expected, rtol=1e-5)

    def test_flux_half_is_signed_log(self):
        flux = np.array([[0.0, 9.0, 99.0, 0.0, 0.0] + [0.0] * 15])
        mjd = np.zeros((1, 20))
        feats = features_from_arrays(flux, mjd, epochs=1)
        np.testing.assert_allclose(feats[0, :5], [0.0, 1.0, 2.0, 0.0, 0.0], atol=1e-6)

    def test_dates_centred(self):
        flux = np.zeros((2, 20))
        mjd = np.tile(np.linspace(0, 95, 20), (2, 1))
        feats = features_from_arrays(flux, mjd, epochs=1)
        assert feats[:, 5:].mean() == pytest.approx(0.0, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            features_from_arrays(np.zeros((2, 20)), np.zeros((2, 19)), 1)
        with pytest.raises(IndexError):
            features_from_arrays(np.zeros((2, 20)), np.zeros((2, 20)), [7])
        with pytest.raises(ValueError):
            features_from_arrays(np.zeros((2, 20)), np.zeros((2, 20)), [])

    def test_windowed_counts(self):
        flux = RNG.uniform(0, 10, size=(6, 20))
        mjd = np.tile(np.arange(20.0), (6, 1))
        labels = np.arange(6) % 2
        feats, ys = windowed_epoch_features(flux, mjd, labels, k_epochs=2)
        assert feats.shape == (6 * 3, 20)
        assert ys.shape == (18,)
        np.testing.assert_array_equal(ys[:6], labels)

    def test_windowed_validation(self):
        with pytest.raises(ValueError):
            windowed_epoch_features(np.zeros((2, 20)), np.zeros((2, 20)), np.zeros(2), 5)

    def test_scaled_dates(self):
        mjd = np.array([[0.0, 50.0, 100.0]])
        out = scaled_dates(mjd)
        np.testing.assert_allclose(out, [[-1.0, 0.0, 1.0]])


class TestAugmentation:
    def test_dihedral_preserves_shape_and_content(self):
        img = RNG.normal(size=(3, 2, 8, 8))
        for k in range(4):
            for flip in (False, True):
                out = dihedral_transform(img, k, flip)
                assert out.shape == img.shape
                assert out.sum() == pytest.approx(img.sum(), rel=1e-6)

    def test_dihedral_identity(self):
        img = RNG.normal(size=(2, 5, 5))
        np.testing.assert_array_equal(dihedral_transform(img, 0, False), img)

    def test_random_crop_size(self):
        img = RNG.normal(size=(4, 2, 65, 65))
        out = random_crop(img, 60, np.random.default_rng(0))
        assert out.shape == (4, 2, 60, 60)

    def test_random_crop_too_large(self):
        with pytest.raises(ValueError):
            random_crop(np.zeros((1, 1, 10, 10)), 12, np.random.default_rng(0))

    def test_augmenter_output(self):
        augment = make_pair_augmenter(crop_size=30)
        batch = RNG.normal(size=(5, 2, 33, 33)).astype(np.float32)
        out = augment(batch, np.random.default_rng(1))
        assert out.shape == (5, 2, 30, 30)
        assert out.flags["C_CONTIGUOUS"]

    def test_augmenter_rejects_non_images(self):
        augment = make_pair_augmenter()
        with pytest.raises(ValueError):
            augment(np.zeros((4, 10)), np.random.default_rng(0))


class TestJointModel:
    @staticmethod
    def _make(n_visits=5):
        rng = np.random.default_rng(5)
        return JointModel.fresh(n_visits=n_visits, input_size=36, units=16, rng=rng)

    def test_forward_shape(self):
        model = self._make()
        pairs = Tensor(RNG.normal(size=(3, 5, 2, 36, 36)).astype(np.float32))
        dates = Tensor(np.zeros((3, 5), dtype=np.float32))
        assert model(pairs, dates).shape == (3,)

    def test_visit_mismatch_rejected(self):
        model = self._make(n_visits=5)
        pairs = Tensor(np.zeros((2, 10, 2, 36, 36), dtype=np.float32))
        dates = Tensor(np.zeros((2, 10), dtype=np.float32))
        with pytest.raises(ValueError):
            model(pairs, dates)

    def test_date_shape_checked(self):
        model = self._make()
        pairs = Tensor(np.zeros((2, 5, 2, 36, 36), dtype=np.float32))
        with pytest.raises(ValueError):
            model(pairs, Tensor(np.zeros((2, 4), dtype=np.float32)))

    def test_gradients_flow_to_cnn(self):
        model = self._make()
        pairs = Tensor(RNG.normal(size=(4, 5, 2, 36, 36)).astype(np.float32))
        dates = Tensor(np.zeros((4, 5), dtype=np.float32))
        loss = nn.BCEWithLogitsLoss()(model(pairs, dates), np.array([1.0, 0.0, 1.0, 0.0]))
        loss.backward()
        first_conv = next(m for m in model.cnn.convs if isinstance(m, nn.Conv2d))
        assert first_conv.weight.grad is not None

    def test_from_pretrained_copies(self):
        from repro.core import BandwiseCNN, LightCurveClassifier

        cnn = BandwiseCNN(input_size=36, rng=RNG)
        clf = LightCurveClassifier(input_dim=10, units=16, rng=RNG)
        joint = JointModel.from_pretrained(cnn, clf)
        # Same predictions...
        pairs = RNG.normal(size=(2, 2, 36, 36)).astype(np.float32)
        np.testing.assert_allclose(joint.cnn.predict(pairs), cnn.predict(pairs), rtol=1e-5)
        # ...but independent parameters.
        joint.cnn.fc[-1].bias.data += 1.0
        assert not np.allclose(joint.cnn.fc[-1].bias.data, cnn.fc[-1].bias.data)

    def test_flux_feature_matches_numpy_path(self):
        # The in-graph feature must equal signed_log10(mag_to_flux(mag)).
        from repro.photometry import mag_to_flux, signed_log10

        mags = np.array([22.0, 25.0, 27.5], dtype=np.float32)
        feats = JointModel._flux_feature(Tensor(mags)).numpy()
        expected = signed_log10(mag_to_flux(mags))
        np.testing.assert_allclose(feats, expected, rtol=1e-5)

    def test_predict_proba_range(self):
        model = self._make()
        pairs = RNG.normal(size=(4, 5, 2, 36, 36)).astype(np.float32)
        dates = np.zeros((4, 5), dtype=np.float32)
        probs = model.predict_proba(pairs, dates)
        assert probs.shape == (4,)
        assert np.all((probs >= 0) & (probs <= 1))
