"""Gradient and value tests for conv2d / pooling primitives."""

import numpy as np
import pytest
from scipy import signal

from repro.nn import Tensor, avg_pool2d, conv2d, max_pool2d, preserve_float64

from .helpers import check_gradient

RNG = np.random.default_rng(11)


class TestConv2dForward:
    def test_matches_scipy_correlate(self):
        x = RNG.normal(size=(1, 1, 8, 8))
        w = RNG.normal(size=(1, 1, 3, 3))
        with preserve_float64():
            out = conv2d(Tensor(x), Tensor(w)).numpy()
        expected = signal.correlate2d(x[0, 0], w[0, 0], mode="valid")
        np.testing.assert_allclose(out[0, 0], expected, rtol=1e-5)

    def test_multichannel_sums_over_input_channels(self):
        x = RNG.normal(size=(2, 3, 6, 6))
        w = RNG.normal(size=(4, 3, 3, 3))
        with preserve_float64():
            out = conv2d(Tensor(x), Tensor(w)).numpy()
        expected = np.zeros((2, 4, 4, 4))
        for n in range(2):
            for f in range(4):
                for c in range(3):
                    expected[n, f] += signal.correlate2d(x[n, c], w[f, c], mode="valid")
        np.testing.assert_allclose(out, expected, rtol=1e-5)

    def test_output_shape_with_stride_and_padding(self):
        x = Tensor(np.zeros((1, 1, 9, 9)))
        w = Tensor(np.zeros((2, 1, 3, 3)))
        assert conv2d(x, w, stride=2, padding=1).shape == (1, 2, 5, 5)

    def test_bias_added_per_channel(self):
        x = Tensor(np.zeros((1, 1, 4, 4)))
        w = Tensor(np.zeros((2, 1, 3, 3)))
        b = Tensor(np.array([1.0, -2.0]))
        out = conv2d(x, w, b).numpy()
        np.testing.assert_allclose(out[0, 0], 1.0)
        np.testing.assert_allclose(out[0, 1], -2.0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            conv2d(Tensor(np.zeros((1, 2, 4, 4))), Tensor(np.zeros((1, 3, 3, 3))))
        with pytest.raises(ValueError):
            conv2d(Tensor(np.zeros((4, 4))), Tensor(np.zeros((1, 1, 3, 3))))


class TestConv2dGradients:
    def test_grad_wrt_input(self):
        w = Tensor(RNG.normal(size=(2, 1, 3, 3)))
        check_gradient(lambda t: conv2d(t, w), RNG.normal(size=(1, 1, 5, 5)))

    def test_grad_wrt_input_padded_strided(self):
        w = Tensor(RNG.normal(size=(2, 2, 3, 3)))
        check_gradient(
            lambda t: conv2d(t, w, stride=2, padding=1), RNG.normal(size=(1, 2, 6, 6))
        )

    def test_grad_wrt_weight(self):
        x = Tensor(RNG.normal(size=(2, 2, 5, 5)))
        check_gradient(lambda t: conv2d(x, t), RNG.normal(size=(3, 2, 3, 3)))

    def test_grad_wrt_bias(self):
        x = Tensor(RNG.normal(size=(2, 1, 4, 4)))
        w = Tensor(RNG.normal(size=(2, 1, 3, 3)))
        check_gradient(lambda t: conv2d(x, w, t), RNG.normal(size=(2,)))


class TestMaxPool:
    def test_forward_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x), 2).numpy()
        np.testing.assert_allclose(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_odd_size_cropped(self):
        x = Tensor(np.zeros((1, 1, 5, 5)))
        assert max_pool2d(x, 2).shape == (1, 1, 2, 2)

    def test_too_large_window_raises(self):
        with pytest.raises(ValueError):
            max_pool2d(Tensor(np.zeros((1, 1, 2, 2))), 3)

    def test_gradient(self):
        # Unique values avoid tie ambiguity at the argmax.
        x = RNG.permutation(np.arange(64.0)).reshape(1, 1, 8, 8)
        check_gradient(lambda t: max_pool2d(t, 2), x)

    def test_gradient_routes_to_argmax_only(self):
        x = np.zeros((1, 1, 2, 2))
        x[0, 0, 1, 1] = 5.0
        t = Tensor(x, requires_grad=True)
        max_pool2d(t, 2).sum().backward()
        expected = np.zeros((1, 1, 2, 2))
        expected[0, 0, 1, 1] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_overlapping_stride(self):
        x = RNG.permutation(np.arange(36.0)).reshape(1, 1, 6, 6)
        check_gradient(lambda t: max_pool2d(t, 3, stride=1), x)


class TestAvgPool:
    def test_forward_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = avg_pool2d(Tensor(x), 2).numpy()
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_gradient(self):
        check_gradient(lambda t: avg_pool2d(t, 2), RNG.normal(size=(2, 2, 4, 4)))

    def test_too_large_window_raises(self):
        with pytest.raises(ValueError):
            avg_pool2d(Tensor(np.zeros((1, 1, 2, 2))), 4)
