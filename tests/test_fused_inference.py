"""Fused batch inference: parity, reduced precision, workspace cache.

The serving contract pinned here:

* ``BandwiseCNN.fused_forward`` at float32 is bit-identical to the
  chunked ``predict`` reference path — for clean inputs, for any chunk
  size, and for inputs damaged by the :mod:`repro.runtime.faults`
  corruptors and repaired by the serve layer;
* ``precision="float16"`` stores activations in half precision but
  accumulates every GEMM in float32, staying within a tight tolerance
  of the float32 magnitudes;
* the im2col workspace cache buckets batch sizes, so bursty mixed-size
  traffic hits cached buffers instead of thrashing allocations.
"""

import numpy as np
import pytest

from repro import nn
from repro.core.features import _as_float, features_from_arrays
from repro.core.flux_cnn import BandwiseCNN, PerBandCNNEnsemble
from repro.nn.tensor import Tensor
from repro.runtime import BurstSchedule, DropBand, NaNPixels, SaturateRegion, TruncateCutout
from repro.serve import diagnose_and_repair_batch

from .helpers import make_serve_engine, make_serve_sample

SIZE = 36  # smallest supported input keeps the CNN cheap


@pytest.fixture(scope="module")
def cnn():
    model = BandwiseCNN(input_size=SIZE, rng=np.random.default_rng(7))
    model.eval()
    return model


def _pairs(n, rng, stamp=SIZE, scale=100.0):
    return (rng.normal(size=(n, 2, stamp, stamp)) * scale).astype(np.float32)


class TestFusedChunkedParity:
    def test_bit_identical_across_chunk_sizes(self, cnn):
        rng = np.random.default_rng(0)
        pairs = _pairs(13, rng)
        fused = cnn.fused_forward(pairs)
        assert fused.dtype == np.float32
        for batch_size in (1, 2, 3, 5, 7, 13, 256):
            chunked = cnn.predict(pairs, batch_size=batch_size)
            assert np.array_equal(fused, chunked), f"chunk size {batch_size}"

    def test_bit_identical_on_larger_stamps(self, cnn):
        # The crop path (stamp > input_size) must not disturb parity.
        rng = np.random.default_rng(1)
        pairs = _pairs(9, rng, stamp=SIZE + 6)
        assert np.array_equal(cnn.fused_forward(pairs), cnn.predict(pairs, batch_size=4))

    @pytest.mark.parametrize(
        "corruptor",
        [
            DropBand(bands=2),
            NaNPixels(fraction=0.01, seed=3),
            SaturateRegion(size=5, seed=4),
            TruncateCutout(fraction=0.1),
        ],
        ids=["drop-band", "nan-pixels", "saturate", "truncate"],
    )
    def test_bit_identical_on_repaired_inputs(self, cnn, corruptor):
        # Damaged traffic goes through the serve repair layer before the
        # CNN; the fused path must agree bit for bit on the repaired
        # (and partially masked) visit batch exactly as on clean data.
        rng = np.random.default_rng(2)
        n, visits = 4, 5
        batch = (rng.normal(size=(n, visits, 2, SIZE, SIZE)) * 100).astype(np.float32)
        corrupted = corruptor(batch)
        flat = corrupted.reshape(n * visits, 2, SIZE, SIZE)
        repaired, _, kept = diagnose_and_repair_batch(flat, np.tile(np.arange(visits), n))
        usable = repaired[np.flatnonzero(kept)]
        assert usable.shape[0] > 0  # the corruptors never kill every visit
        assert np.array_equal(cnn.fused_forward(usable), cnn.predict(usable, batch_size=3))

    def test_empty_batch(self, cnn):
        out = cnn.fused_forward(np.empty((0, 2, SIZE, SIZE), dtype=np.float32))
        assert out.shape == (0,) and out.dtype == np.float32

    def test_restores_training_mode(self, cnn):
        cnn.train()
        try:
            cnn.fused_forward(_pairs(2, np.random.default_rng(3)))
            assert cnn.training
        finally:
            cnn.eval()

    def test_engine_parity_fused_vs_chunked(self):
        # End to end through classify_arrays: the fused engine returns
        # the same probabilities as the chunked reference engine.
        fused_engine = make_serve_engine(seed=0)
        chunked_engine = make_serve_engine(seed=0)
        chunked_engine.fused = False
        pairs, mjd = make_serve_sample(fused_engine, seed=5)
        batch = np.stack([pairs] * 3)
        mjds = np.stack([mjd] * 3)
        got = fused_engine.classify_arrays(batch, mjds)
        want = chunked_engine.classify_arrays(batch, mjds)
        for a, b in zip(got, want):
            assert a.probability == b.probability
            assert a.confidence == b.confidence


class TestFloat16Inference:
    def test_close_to_float32(self, cnn):
        rng = np.random.default_rng(4)
        pairs = _pairs(11, rng)
        f32 = cnn.fused_forward(pairs)
        f16 = cnn.fused_forward(pairs, precision="float16")
        assert f16.dtype == np.float32  # outputs are always full precision
        # Half-precision storage with float32 accumulation stays within
        # a few hundredths of a magnitude on unit-scale regression.
        np.testing.assert_allclose(f16, f32, atol=0.1)
        assert np.abs(f16 - f32).max() > 0.0  # it genuinely ran at f16

    def test_precision_context_dtype_policy(self):
        x64 = np.ones((2, 2), dtype=np.float64)
        x16 = np.ones((2, 2), dtype=np.float16)
        assert Tensor(x16).data.dtype == np.float32  # default: promote
        with nn.inference_precision("float16"):
            assert nn.inference_dtype() == np.float16
            assert Tensor(x16).data.dtype == np.float16  # kept
            assert Tensor(x64).data.dtype == np.float32  # still demoted
        assert nn.inference_dtype() == np.float32
        assert Tensor(x16).data.dtype == np.float32  # restored

    def test_unknown_precision_rejected(self, cnn):
        with pytest.raises(ValueError, match="precision"):
            with nn.inference_precision("float8"):
                pass
        with pytest.raises(ValueError):
            cnn.fused_forward(_pairs(1, np.random.default_rng(0)), precision="bf16")

    def test_engine_precision_validated(self):
        from repro.core import SupernovaPipeline
        from repro.serve import FluxPrior, InferenceEngine

        pipe = SupernovaPipeline(input_size=SIZE, units=8, epochs_used=1, seed=0)
        with pytest.raises(ValueError, match="precision"):
            InferenceEngine(pipe, prior=FluxPrior.neutral(), precision="float64")

    def test_engine_float16_scores_sane(self):
        engine16 = make_serve_engine(seed=0)
        engine16.precision = "float16"
        engine32 = make_serve_engine(seed=0)
        pairs, mjd = make_serve_sample(engine16, seed=6)
        got = engine16.classify_arrays(pairs[None], mjd[None])[0]
        want = engine32.classify_arrays(pairs[None], mjd[None])[0]
        assert got.probability == pytest.approx(want.probability, abs=0.05)


class TestWorkspaceCache:
    def setup_method(self):
        nn.workspace_clear()

    def test_bucketing_reuses_buffer_across_batch_sizes(self, cnn):
        rng = np.random.default_rng(8)
        cnn.fused_forward(_pairs(8, rng))  # warm the 8-row bucket
        warm = nn.workspace_stats()
        for n in (5, 6, 7, 8):  # all bucket to 8 rows
            cnn.fused_forward(_pairs(n, rng))
        stats = nn.workspace_stats()
        assert stats["misses"] == warm["misses"], "bucketed sizes must not reallocate"
        assert stats["hits"] > warm["hits"]

    def test_hit_rate_under_burst_schedule(self, cnn):
        # Group a bursty arrival plan into batching windows: the window
        # populations are the daemon's micro-batch sizes — small and
        # jittery during the burst head, larger at the tail.  Power-of-
        # two bucketing keeps the cache warm across that mix.
        offsets = BurstSchedule(qps=40, duration_s=1.0, burst_factor=4.0).offsets()
        window_s = 0.05
        sizes = np.bincount((np.asarray(offsets) / window_s).astype(int))
        sizes = [int(s) for s in sizes if s > 0]
        assert len(set(sizes)) > 1  # genuinely mixed batch sizes
        rng = np.random.default_rng(9)
        for n in sizes:
            cnn.fused_forward(_pairs(n, rng))
        stats = nn.workspace_stats()
        assert stats["hit_rate"] > 0.5, stats

    def test_cache_bounded_by_lru(self):
        from repro.nn.ops import _MAX_WORKSPACES, _workspace

        for i in range(_MAX_WORKSPACES + 8):
            _workspace((1, 3 + i, 7), np.float32)
        stats = nn.workspace_stats()
        assert stats["entries"] <= _MAX_WORKSPACES

    def test_workspace_returns_exact_batch_view(self):
        from repro.nn.ops import _workspace

        buf = _workspace((5, 4), np.float32)
        assert buf.shape == (5, 4)
        assert buf.flags["C_CONTIGUOUS"]

    def test_total_stats_aggregate_across_threads(self, cnn):
        import threading

        rng = np.random.default_rng(11)
        cnn.fused_forward(_pairs(4, rng))
        cnn.fused_forward(_pairs(4, rng))  # second pass hits the cache
        done = threading.Event()

        def work():
            cnn.fused_forward(_pairs(4, np.random.default_rng(12)))
            done.set()

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        assert done.is_set()
        local = nn.workspace_stats()
        total = nn.workspace_total_stats()
        # the process-wide view is at least this thread's view
        assert total["threads"] >= 1
        assert total["hits"] >= local["hits"] >= 1
        assert total["misses"] >= local["misses"] >= 1
        assert total["bytes"] >= local["bytes"] > 0
        assert 0.0 <= total["hit_rate"] <= 1.0

    def test_metrics_source_matches_total_stats_contract(self, cnn):
        cnn.fused_forward(_pairs(4, np.random.default_rng(13)))
        sourced = nn.workspace_metrics_source()
        assert set(sourced) == {
            "hits", "misses", "evictions", "entries",
            "bytes", "threads", "hit_rate",
        }
        assert all(isinstance(v, (int, float)) for v in sourced.values())


class TestSatelliteRegressions:
    def test_features_integer_input_stays_float32(self):
        # _as_float used to promote integer arrays to float64, silently
        # upcasting every downstream feature computation.
        assert _as_float(np.arange(4, dtype=np.int64)).dtype == np.float32
        assert _as_float(np.ones(3, dtype=bool)).dtype == np.float32
        assert _as_float(np.ones(3, dtype=np.float32)).dtype == np.float32
        assert _as_float(np.ones(3, dtype=np.float64)).dtype == np.float64

    def test_features_from_integer_arrays(self):
        flux = np.arange(10, dtype=np.int64).reshape(2, 5)
        mjd = (57000 + np.arange(10, dtype=np.int64)).reshape(2, 5)
        out = features_from_arrays(flux, mjd, epochs=1)
        assert out.dtype == np.float32
        assert np.isfinite(out).all()

    def test_ensemble_empty_input(self):
        ensemble = PerBandCNNEnsemble(
            n_bands=2, rng=np.random.default_rng(0), input_size=SIZE
        )
        ensemble.eval()
        with nn.no_grad():
            out = ensemble(
                Tensor(np.empty((0, 2, SIZE, SIZE), dtype=np.float32)),
                np.empty(0, dtype=np.int64),
            )
        assert out.shape == (0,)
        assert out.data.dtype == np.float32
