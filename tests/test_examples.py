"""Smoke checks of the example scripts: they must parse, expose main(),
and document themselves.  (Full runs happen outside the unit suite —
some examples train for minutes.)"""

import ast
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLE_FILES}
    assert "quickstart.py" in names
    assert len(names) >= 3


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
class TestExampleStructure:
    def test_parses(self, path):
        tree = ast.parse(path.read_text())
        assert tree is not None

    def test_has_module_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a docstring"

    def test_defines_main_and_guard(self, path):
        source = path.read_text()
        tree = ast.parse(source)
        functions = [n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)]
        assert "main" in functions, f"{path.name} has no main()"
        assert '__name__ == "__main__"' in source

    def test_imports_resolve(self, path):
        """Every `from repro...` import in the example must exist."""
        import importlib

        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
                module = importlib.import_module(node.module)
                for alias in node.names:
                    assert hasattr(module, alias.name), (
                        f"{path.name}: {node.module}.{alias.name} does not exist"
                    )
