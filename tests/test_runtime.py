"""Fault-tolerance runtime: checkpoints, resume, divergence guards, integrity."""

import numpy as np
import pytest

from repro import nn
from repro.core import LightCurveClassifier
from repro.core.training import History, TrainConfig, fit, fit_classifier
from repro.nn import load_module, save_module
from repro.nn.tensor import Tensor
from repro.runtime import (
    CorruptArtifactError,
    KillSwitch,
    NanBatchFault,
    RetryPolicy,
    SimulatedCrash,
    TrainCheckpoint,
    TrainingDiverged,
    array_checksum,
    atomic_savez,
    truncate_file,
    verified_load,
)


def small_data(n=120, dim=10, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, dim)).astype(np.float32)
    y = (rng.random(n) > 0.5).astype(np.float32)
    return x, y


def make_model(dim=10, units=8, seed=7):
    return LightCurveClassifier(input_dim=dim, units=units, rng=np.random.default_rng(seed))


def states_equal(a, b):
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


class TestAtomicCheckpointIO:
    def test_roundtrip_preserves_arrays(self, tmp_path):
        path = tmp_path / "a.npz"
        arrays = {"x": np.arange(12.0).reshape(3, 4), "y": np.array([1, 2, 3])}
        atomic_savez(path, arrays)
        loaded = verified_load(path)
        assert states_equal(arrays, loaded)

    def test_no_partial_file_left_behind(self, tmp_path):
        path = tmp_path / "a.npz"
        atomic_savez(path, {"x": np.zeros(4)})
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_checksum_is_order_independent(self):
        a = {"x": np.ones(3), "y": np.zeros(2)}
        b = {"y": np.zeros(2), "x": np.ones(3)}
        assert array_checksum(a) == array_checksum(b)

    def test_truncated_archive_raises(self, tmp_path):
        path = tmp_path / "a.npz"
        atomic_savez(path, {"x": np.arange(1000.0)})
        truncate_file(path, keep_fraction=0.5)
        with pytest.raises(CorruptArtifactError, match="unreadable"):
            verified_load(path)

    def test_bitflip_fails_checksum(self, tmp_path):
        # Corrupt zlib-free stored bytes: rewrite one byte near the end of
        # an uncompressed archive (array data region).
        path = tmp_path / "a.npz"
        atomic_savez(path, {"x": np.zeros(64)})
        raw = bytearray(path.read_bytes())
        # flip a byte inside the stored x payload (before the central directory)
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptArtifactError):
            verified_load(path)

    def test_missing_file_is_plain_filenotfound(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            verified_load(tmp_path / "nope.npz")

    def test_train_checkpoint_roundtrip(self, tmp_path):
        path = tmp_path / "ck.npz"
        ck = TrainCheckpoint(
            epoch=3,
            model_state={"w": np.ones((2, 2))},
            optimizer_state={"lr": np.asarray(0.1), "t": np.asarray(5)},
            rng_state=np.random.default_rng(3).bit_generator.state,
            history={"train_loss": [1.0, 0.5], "val_loss": [], "val_metric": [], "best_epoch": -1},
            best_state={"w": np.zeros((2, 2))},
            patience_left=2,
            retries_used=1,
            lr=0.1,
            fingerprint={"seed": 0},
        )
        ck.save(path)
        loaded = TrainCheckpoint.load(path)
        assert loaded.epoch == 3
        assert loaded.patience_left == 2
        assert loaded.retries_used == 1
        assert loaded.fingerprint == {"seed": 0}
        assert states_equal(ck.model_state, loaded.model_state)
        assert states_equal(ck.best_state, loaded.best_state)
        assert loaded.rng_state == ck.rng_state


class TestOptimizerState:
    @pytest.mark.parametrize("optimizer", ["adam", "sgd"])
    def test_roundtrip_continues_identically(self, optimizer):
        x, y = small_data(n=64)
        cfg = TrainConfig(epochs=2, batch_size=16, optimizer=optimizer, seed=1)
        m1, m2 = make_model(), make_model()
        opt1, opt2 = cfg.make_optimizer(m1), cfg.make_optimizer(m2)
        bce = nn.BCEWithLogitsLoss()
        for _ in range(3):
            for m, opt in ((m1, opt1), (m2, opt2)):
                m.zero_grad()
                loss = bce(m(Tensor(x)), y)
                loss.backward()
                opt.step()
        opt2.load_state_dict(opt1.state_dict())
        m2.load_state_dict(m1.state_dict())
        for m, opt in ((m1, opt1), (m2, opt2)):
            m.zero_grad()
            loss = bce(m(Tensor(x)), y)
            loss.backward()
            opt.step()
        assert states_equal(m1.state_dict(), m2.state_dict())


class TestTrainingResume:
    @pytest.mark.parametrize("kill_after", [0, 2, 4])
    def test_kill_and_resume_is_bit_identical(self, tmp_path, kill_after):
        x, y = small_data()
        xv, yv = small_data(n=40, seed=9)
        cfg = TrainConfig(epochs=6, batch_size=32, seed=3)

        reference = make_model()
        h_ref = fit_classifier(reference, x, y, cfg, xv, yv)

        ck = tmp_path / "ck.npz"
        interrupted = make_model()
        with pytest.raises(SimulatedCrash):
            fit_classifier(
                interrupted, x, y, cfg, xv, yv,
                checkpoint_path=ck, on_epoch_end=KillSwitch(kill_after),
            )
        resumed = make_model()
        h_res = fit_classifier(
            resumed, x, y, cfg, xv, yv, checkpoint_path=ck, resume=ck,
        )
        assert states_equal(reference.state_dict(), resumed.state_dict())
        assert h_ref == h_res

    def test_resume_with_early_stopping(self, tmp_path):
        x, y = small_data()
        xv, yv = small_data(n=40, seed=9)
        cfg = TrainConfig(epochs=10, batch_size=32, seed=3, early_stopping_patience=1)

        reference = make_model()
        h_ref = fit_classifier(reference, x, y, cfg, xv, yv)

        ck = tmp_path / "ck.npz"
        interrupted = make_model()
        with pytest.raises(SimulatedCrash):
            fit_classifier(
                interrupted, x, y, cfg, xv, yv,
                checkpoint_path=ck, on_epoch_end=KillSwitch(1),
            )
        resumed = make_model()
        h_res = fit_classifier(resumed, x, y, cfg, xv, yv, resume=ck)
        assert states_equal(reference.state_dict(), resumed.state_dict())
        assert h_ref == h_res

    def test_incompatible_checkpoint_rejected(self, tmp_path):
        x, y = small_data()
        ck = tmp_path / "ck.npz"
        model = make_model()
        fit_classifier(model, x, y, TrainConfig(epochs=1, batch_size=32, seed=3),
                       checkpoint_path=ck)
        other = make_model()
        with pytest.raises(ValueError, match="incompatible"):
            fit_classifier(other, x, y, TrainConfig(epochs=2, batch_size=32, seed=4),
                           resume=ck)

    def test_truncated_checkpoint_raises(self, tmp_path):
        x, y = small_data()
        ck = tmp_path / "ck.npz"
        fit_classifier(make_model(), x, y,
                       TrainConfig(epochs=1, batch_size=32, seed=3), checkpoint_path=ck)
        truncate_file(ck, keep_fraction=0.3)
        with pytest.raises(CorruptArtifactError):
            fit_classifier(make_model(), x, y,
                           TrainConfig(epochs=2, batch_size=32, seed=3), resume=ck)


def bce_loss_fn():
    bce = nn.BCEWithLogitsLoss()

    def loss_fn(model, inputs, target):
        return bce(model(Tensor(inputs[0])), target)

    return loss_fn


class TestDivergenceGuard:
    def test_single_nan_batch_recovers_with_backoff(self):
        x, y = small_data(n=64)
        model = make_model()
        fault = NanBatchFault(bce_loss_fn(), {3})
        history = fit(
            model, [x], y, fault, TrainConfig(epochs=3, batch_size=16, seed=0),
            retry_policy=RetryPolicy(max_retries=2, lr_backoff=0.5),
        )
        assert history.n_epochs == 3
        assert all(np.isfinite(v) for v in history.train_loss)

    def test_persistent_nan_raises_diverged_with_history(self):
        x, y = small_data(n=64)
        model = make_model()
        with pytest.raises(TrainingDiverged) as excinfo:
            fit(
                model, [x], y, NanBatchFault(bce_loss_fn(), "all"),
                TrainConfig(epochs=3, batch_size=16, seed=0),
                retry_policy=RetryPolicy(max_retries=2),
            )
        err = excinfo.value
        assert isinstance(err, RuntimeError)
        assert isinstance(err.history, History)
        assert err.attempts == 2

    def test_retry_decays_learning_rate(self):
        policy = RetryPolicy(max_retries=3, lr_backoff=0.1, min_lr=1e-6)
        assert policy.next_lr(1.0) == pytest.approx(0.1)
        assert policy.next_lr(1e-6) == pytest.approx(1e-6)

    def test_nan_gradient_is_caught(self):
        # A loss that is finite but produces NaN gradients: multiply the
        # logits by 0 after a NaN-producing op would be contrived; instead
        # poison a parameter gradient via a hook-free check by injecting a
        # NaN into the input of a single batch (propagates to grads).
        x, y = small_data(n=48)
        model = make_model()
        fault = NanBatchFault(bce_loss_fn(), {0})
        history = fit(model, [x], y, fault,
                      TrainConfig(epochs=2, batch_size=16, seed=0))
        assert history.n_epochs == 2


class TestArtifactIntegrity:
    def test_truncated_module_raises(self, tmp_path):
        path = tmp_path / "m.npz"
        model = make_model()
        save_module(model, path)
        truncate_file(path, keep_fraction=0.4)
        with pytest.raises(CorruptArtifactError):
            load_module(make_model(), path)

    def test_module_roundtrip_still_exact(self, tmp_path):
        path = tmp_path / "m.npz"
        model = make_model(seed=11)
        save_module(model, path)
        other = load_module(make_model(seed=5), path)
        assert states_equal(model.state_dict(), other.state_dict())

    def test_legacy_archive_without_checksum_loads(self, tmp_path):
        path = tmp_path / "legacy.npz"
        model = make_model(seed=2)
        np.savez(path, **model.state_dict())
        other = load_module(make_model(seed=3), path)
        assert states_equal(model.state_dict(), other.state_dict())
