"""Telemetry core: event-log schema, context stack, metrics, sessions,
drift statistics."""

import io
import json
import os
import threading

import numpy as np
import pytest

from repro import obs
from repro.obs import (
    EVENTS_FILE,
    METRICS_FILE,
    SCHEMA_VERSION,
    DriftBaseline,
    DriftMonitor,
    EventLog,
    Histogram,
    MetricsRegistry,
    context,
    current_context,
    ks_statistic,
    prometheus_from_snapshot,
    psi_statistic,
    read_events,
    validate_event,
    validate_file,
)

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def no_leaked_session():
    """Every test starts and ends with telemetry disabled."""
    assert obs.active() is None
    yield
    if obs.active() is not None:
        obs.stop()
        pytest.fail("test leaked an active telemetry session")


class TestEventLog:
    def test_jsonl_round_trip_validates(self, tmp_path):
        path = tmp_path / EVENTS_FILE
        with EventLog(path) as log, context(scope="thread", run_id="run-x"):
            log.emit("build.start", n_target=np.int64(12), seed=0)
            log.emit("build.slot", level="debug", slot=3, attempts=[1, 2])
            log.emit("build.end", message="done", elapsed=np.float32(0.5))
        records = list(read_events(path))
        assert [r["event"] for r in records] == ["build.start", "build.slot", "build.end"]
        assert [r["seq"] for r in records] == [1, 2, 3]
        for record in records:
            assert validate_event(record) == []
            assert record["schema"] == SCHEMA_VERSION
            assert record["run_id"] == "run-x"
        # numpy scalars must arrive as JSON-native numbers
        assert records[0]["n_target"] == 12
        assert isinstance(records[0]["n_target"], int)
        assert isinstance(records[2]["elapsed"], float)
        n, errors = validate_file(path)
        assert (n, errors) == (3, [])

    def test_context_nesting_and_unwind(self):
        assert current_context() == {}
        with context(run_id="outer", stage="a"):
            with context(stage="b", epoch=2):
                merged = current_context()
                assert merged == {"run_id": "outer", "stage": "b", "epoch": 2}
            assert current_context() == {"run_id": "outer", "stage": "a"}
        assert current_context() == {}

    def test_process_scope_visible_from_other_threads(self):
        seen = {}

        def worker():
            seen.update(current_context())

        with context(scope="process", run_id="run-shared"):
            with context(batch=7):  # thread-local: must NOT leak to the worker
                thread = threading.Thread(target=worker)
                thread.start()
                thread.join()
        assert seen == {"run_id": "run-shared"}

    def test_caller_fields_win_over_context_but_not_header(self):
        sink = io.StringIO()
        log = EventLog(sink)
        with context(run_id="ctx", epoch=1):
            log.emit("train.epoch", epoch=9, seq="spoofed")
        record = json.loads(sink.getvalue())
        assert record["epoch"] == 9  # caller beats context
        assert record["run_id"] == "ctx"
        assert record["seq"] == 1  # header beats caller
        assert validate_event(record) == []

    def test_min_level_filters_without_writing(self):
        sink = io.StringIO()
        log = EventLog(sink, min_level="warning")
        assert log.emit("noise.debug", level="debug", run_id="r") == {}
        assert log.emit("noise.info", level="info", run_id="r") == {}
        record = log.emit("alarm", level="error", run_id="r")
        assert record["seq"] == 1  # filtered events consume no sequence numbers
        assert sink.getvalue().count("\n") == 1

    def test_malformed_line_reports_line_number(self, tmp_path):
        path = tmp_path / EVENTS_FILE
        path.write_text('{"schema": 1, "seq": 1}\n{oops\n')
        with pytest.raises(ValueError, match=":2:"):
            list(read_events(path))

    def test_rejects_unknown_level(self):
        log = EventLog(io.StringIO())
        with pytest.raises(ValueError, match="unknown level"):
            log.emit("x", level="fatal")


class TestSchema:
    def _valid(self):
        return {
            "schema": SCHEMA_VERSION, "ts": 1.0, "seq": 1,
            "level": "info", "event": "serve.request", "request_id": "run/r0",
        }

    def test_valid_record_passes(self):
        assert validate_event(self._valid()) == []

    @pytest.mark.parametrize(
        "patch, fragment",
        [
            ({"schema": 99}, "schema version"),
            ({"seq": 0}, "seq"),
            ({"level": "fatal"}, "unknown level"),
            ({"event": "Serve.Request"}, "dotted lower-case"),
            ({"ts": "noon"}, "'ts'"),
        ],
    )
    def test_bad_header_fields(self, patch, fragment):
        record = {**self._valid(), **patch}
        assert any(fragment in err for err in validate_event(record))

    def test_requires_run_or_request_id(self):
        record = self._valid()
        del record["request_id"]
        assert any("run_id" in err for err in validate_event(record))
        record["run_id"] = "run-1"
        assert validate_event(record) == []

    def test_validate_file_catches_seq_regression(self, tmp_path):
        path = tmp_path / EVENTS_FILE
        a = {**self._valid(), "seq": 2}
        b = {**self._valid(), "seq": 2}
        path.write_text(json.dumps(a) + "\n" + json.dumps(b) + "\n")
        n, errors = validate_file(path)
        assert n == 2
        assert any("does not increase" in err for err in errors)


class TestMetrics:
    def test_counter_only_goes_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("serve.requests")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_histogram_bucket_edges_upper_inclusive(self):
        hist = Histogram("lat", buckets=(1.0, 2.0, 5.0))
        assert hist.observe(0.5) == 0
        assert hist.observe(1.0) == 0  # exactly on a bound -> that bucket
        assert hist.observe(1.0000001) == 1
        assert hist.observe(5.0) == 2
        assert hist.observe(5.1) == 3  # +Inf overflow slot
        assert hist.count == 5
        assert hist.to_dict()["counts"] == [2, 1, 1, 1]
        assert hist.bucket_label(5.0) == "le=5.0"
        assert hist.bucket_label(99.0) == "le=+Inf"

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", buckets=())
        with pytest.raises(ValueError, match="finite"):
            Histogram("h", buckets=(1.0, float("inf")))

    def test_registry_histogram_bucket_conflict(self):
        registry = MetricsRegistry()
        first = registry.histogram("serve.latency_s", buckets=(0.1, 1.0))
        assert registry.histogram("serve.latency_s", buckets=(0.1, 1.0)) is first
        with pytest.raises(ValueError, match="different buckets"):
            registry.histogram("serve.latency_s", buckets=(0.2, 1.0))

    def test_registry_rejects_bad_names(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="lower-case"):
            registry.counter("Serve Requests")

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(3)
        registry.gauge("train.lr").set(0.001)
        hist = registry.histogram("serve.latency_s", buckets=(0.1, 1.0))
        for value in (0.05, 0.05, 0.5, 2.0):
            hist.observe(value)
        text = registry.to_prometheus()
        lines = text.splitlines()
        assert "# TYPE serve_requests counter" in lines
        assert "serve_requests 3" in lines
        assert "# TYPE train_lr gauge" in lines
        # cumulative le buckets with the implicit +Inf closing the series
        assert 'serve_latency_s_bucket{le="0.1"} 2' in lines
        assert 'serve_latency_s_bucket{le="1"} 3' in lines
        assert 'serve_latency_s_bucket{le="+Inf"} 4' in lines
        assert "serve_latency_s_count 4" in lines
        assert any(line.startswith("serve_latency_s_sum ") for line in lines)

    def test_prometheus_renders_perf_source(self):
        snapshot = {
            "counters": {}, "gauges": {}, "histograms": {},
            "sources": {
                "perf": {
                    "timers": {"serve.cnn": {"calls": 2, "total_s": 0.5, "mean_s": 0.25}},
                    "counters": {"serve.samples": 64},
                }
            },
        }
        text = prometheus_from_snapshot(snapshot)
        assert 'perf_timer_seconds_total{name="serve_cnn"} 0.5' in text
        assert 'perf_timer_calls_total{name="serve_cnn"} 2' in text
        assert "perf_serve_samples_total 64" in text

    def test_snapshot_write_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        path = tmp_path / METRICS_FILE
        written = registry.write(path)
        assert json.loads(path.read_text()) == written


class TestSession:
    def test_lifecycle_files_and_terminal_events(self, tmp_path):
        directory = tmp_path / "telemetry"
        session = obs.start(directory, command="unit-test")
        session.emit("unit.ping", value=1)
        session.metrics.counter("unit.pings").inc()
        snapshot = obs.stop(status="ok", exit_code=0)
        assert obs.active() is None
        assert snapshot["counters"]["unit.pings"] == 1
        records = list(read_events(directory / EVENTS_FILE))
        assert records[0]["event"] == "session.start"
        assert records[0]["command"] == "unit-test"
        assert records[-1]["event"] == "session.end"
        assert records[-1]["status"] == "ok"
        assert all(r["run_id"] == session.run_id for r in records)
        n, errors = validate_file(directory / EVENTS_FILE)
        assert (n, errors) == (3, [])
        assert json.loads((directory / METRICS_FILE).read_text()) == snapshot

    def test_sessions_do_not_nest(self, tmp_path):
        obs.start(tmp_path / "a")
        try:
            with pytest.raises(RuntimeError, match="already active"):
                obs.start(tmp_path / "b")
        finally:
            obs.stop()
        assert obs.stop() == {}  # idempotent when nothing is active

    def test_deterministic_request_ids(self, tmp_path):
        session = obs.start(tmp_path / "t", run_id="run-fixed")
        try:
            assert session.new_request_id(5) == "run-fixed/r5"
            assert session.new_request_id(5) == "run-fixed/r5"
            assert session.new_request_id() != session.new_request_id()
        finally:
            obs.stop()

    def test_workspace_source_registered_on_start(self, tmp_path):
        session = obs.start(tmp_path / "t")
        try:
            snapshot = session.metrics.snapshot()
        finally:
            obs.stop()
        workspace = snapshot["sources"]["nn.workspace"]
        assert {"hits", "misses", "evictions", "entries", "bytes"} <= set(workspace)

    def test_error_status_recorded(self, tmp_path):
        obs.start(tmp_path / "t")
        obs.stop(status="error", exit_code=3)
        last = list(read_events(tmp_path / "t" / EVENTS_FILE))[-1]
        assert last["status"] == "error"
        assert last["level"] == "error"
        assert last["exit_code"] == 3


class TestDriftStatistics:
    def test_psi_zero_on_identical_distributions(self):
        probs = np.array([0.25, 0.25, 0.25, 0.25])
        assert psi_statistic(probs, probs) == pytest.approx(0.0, abs=1e-9)
        assert ks_statistic(probs, probs) == pytest.approx(0.0, abs=1e-9)

    def test_psi_large_on_shift(self):
        expected = np.array([0.7, 0.2, 0.1])
        observed = np.array([0.1, 0.2, 0.7])
        assert psi_statistic(expected, observed) > 0.25
        assert ks_statistic(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(1.0)

    def test_baseline_round_trip(self, tmp_path):
        rng = np.random.default_rng(0)
        baseline = DriftBaseline.from_samples(
            rng.uniform(size=400), flux=rng.normal(2.0, 0.5, size=400)
        )
        baseline.save(tmp_path)
        loaded = DriftBaseline.load(tmp_path)
        np.testing.assert_allclose(loaded.score_probs, baseline.score_probs)
        np.testing.assert_allclose(loaded.flux_edges, baseline.flux_edges)
        assert DriftBaseline.load(tmp_path / "nowhere") is None

    def test_monitor_silent_on_baseline_traffic(self):
        rng = np.random.default_rng(1)
        scores = rng.uniform(size=1000)
        monitor = DriftMonitor(DriftBaseline.from_samples(scores))
        report = monitor.observe(rng.uniform(size=200))
        assert not report.flagged and not monitor.flagged

    def test_monitor_flags_shifted_traffic(self):
        rng = np.random.default_rng(2)
        monitor = DriftMonitor(DriftBaseline.from_samples(rng.uniform(0.0, 0.5, size=1000)))
        report = monitor.observe(rng.uniform(0.5, 1.0, size=200))
        assert report.flagged and monitor.flagged
        assert report.reasons
        assert report.to_dict()["flagged"] is True

    def test_monitor_needs_min_samples(self):
        rng = np.random.default_rng(3)
        monitor = DriftMonitor(
            DriftBaseline.from_samples(rng.uniform(size=500)), min_samples=50
        )
        report = monitor.observe(np.full(10, 0.99))
        assert not report.flagged  # 10 < min_samples: never flag on noise
