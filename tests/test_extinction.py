"""Tests for the CCM89 Galactic extinction law."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.photometry import (
    GRIZY,
    apply_extinction_to_flux,
    band_by_name,
    band_extinction,
    ccm_extinction,
)


class TestCCMValues:
    def test_v_band_normalisation(self):
        # By construction A(V) = R_V * E(B-V) at 5500 A (a=1, b=0).
        a_v = ccm_extinction(5500.0, ebv=0.1, r_v=3.1)
        assert a_v == pytest.approx(0.31, abs=0.02)

    def test_b_minus_v_equals_ebv(self):
        # The law's defining property: A(B) - A(V) = E(B-V).
        ebv = 0.25
        diff = ccm_extinction(4400.0, ebv) - ccm_extinction(5500.0, ebv)
        assert diff == pytest.approx(ebv, rel=0.1)

    def test_zero_dust_zero_extinction(self):
        assert ccm_extinction(6000.0, 0.0) == 0.0

    def test_blue_extinguished_more_than_red(self):
        ebv = 0.1
        values = [ccm_extinction(b.effective_wavelength, ebv) for b in GRIZY]
        assert values == sorted(values, reverse=True)

    def test_array_input(self):
        out = ccm_extinction(np.array([4000.0, 8000.0]), 0.1)
        assert out.shape == (2,)
        assert out[0] > out[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            ccm_extinction(5500.0, ebv=-0.1)
        with pytest.raises(ValueError):
            ccm_extinction(5500.0, ebv=0.1, r_v=0.0)
        with pytest.raises(ValueError):
            ccm_extinction(-100.0, ebv=0.1)

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=3200.0, max_value=30000.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_non_negative_and_monotone_in_ebv(self, wavelength, ebv):
        low = ccm_extinction(wavelength, ebv)
        high = ccm_extinction(wavelength, ebv + 0.1)
        assert low >= -1e-9
        assert high >= low


class TestBandHelpers:
    def test_band_extinction_positive(self):
        assert band_extinction(band_by_name("g"), 0.05) > 0

    def test_apply_dims_flux(self):
        flux = apply_extinction_to_flux(100.0, band_by_name("g"), ebv=0.3)
        assert 0 < flux < 100.0

    def test_apply_zero_dust_identity(self):
        assert apply_extinction_to_flux(100.0, band_by_name("i"), 0.0) == pytest.approx(100.0)

    def test_cosmos_column_is_small(self):
        from repro.photometry.extinction import COSMOS_EBV

        # Across all five bands, COSMOS foreground dust dims < 0.1 mag.
        for band in GRIZY:
            assert band_extinction(band, COSMOS_EBV) < 0.1
