"""Serving daemon: round trips, admission, deadlines, watchdog, drain."""

import json
import threading
import time

import numpy as np
import pytest

from repro.runtime import RetrySpec, WedgeBatch
from repro.serve import DaemonConfig, ServingDaemon

from .helpers import (
    classify_body,
    http_get,
    make_serve_engine,
    make_serve_sample,
    post_classify,
    running_daemon,
)

pytestmark = pytest.mark.serve


@pytest.fixture(scope="module")
def engine():
    return make_serve_engine(seed=0)


@pytest.fixture()
def sample(engine):
    return make_serve_sample(engine, seed=1)


def _post_async(port, body, out, key, timeout=30.0):
    """Fire one request from a thread, recording its (status, doc)."""

    def run():
        out[key] = post_classify(port, body, timeout=timeout)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


def _wait_for(condition, timeout_s=10.0):
    """Poll ``condition()`` to True within the timeout (no unbounded spins)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if condition():
            return
        time.sleep(0.005)
    raise AssertionError("condition not reached within the timeout")


class TestDaemonConfig:
    def test_defaults_valid(self):
        config = DaemonConfig()
        assert config.queue_depth == 64 and config.batch_max_size == 16

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_max_size": 0},
            {"batch_deadline_ms": -1.0},
            {"queue_depth": 0},
            {"request_deadline_ms": 0.0},
            {"client_body_deadline_s": 0.0},
            {"wedge_timeout_s": 0.0},
            {"drain_timeout_s": 0.0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DaemonConfig(**kwargs)


class TestRoundTrip:
    def test_single_request_parity_and_introspection(self, engine, sample):
        pairs, mjd = sample
        with running_daemon(engine, DaemonConfig(batch_deadline_ms=5.0)) as daemon:
            status, doc = post_classify(daemon.port, classify_body(pairs, mjd))
            assert status == 200
            assert doc["request_id"] == "serve/r0"
            reference = engine.classify_arrays(pairs[None], mjd[None])[0]
            assert doc["result"]["probability"] == round(reference.probability, 6)
            assert doc["result"]["confidence"] == round(reference.confidence, 4)
            assert doc["result"]["usable_bands"] == reference.usable_bands

            status, body = http_get(daemon.port, "/healthz")
            assert status == 200
            health = json.loads(body)
            assert health["state"] == "ready" and health["live"] and health["ready"]

            status, body = http_get(daemon.port, "/metrics")
            assert status == 200
            text = body.decode()
            assert "daemon_admitted 1" in text
            assert "daemon_responses 1" in text
            # conv workspace-cache gauges ride along on every scrape
            assert "nn_workspace_hits" in text
            assert "nn_workspace_entries" in text

    def test_unknown_routes_are_typed_404(self, engine, sample):
        pairs, mjd = sample
        with running_daemon(engine, DaemonConfig(batch_deadline_ms=5.0)) as daemon:
            status, body = http_get(daemon.port, "/nope")
            assert status == 404 and b"not_found" in body
            status, doc = post_classify(daemon.port, classify_body(pairs, mjd))
            assert status == 200  # the 404 left the daemon serving

    def test_request_ids_are_deterministic(self, engine, sample):
        pairs, mjd = sample
        with running_daemon(engine, DaemonConfig(batch_deadline_ms=2.0)) as daemon:
            ids = []
            for _ in range(3):
                status, doc = post_classify(daemon.port, classify_body(pairs, mjd))
                assert status == 200
                ids.append(doc["request_id"])
            assert ids == ["serve/r0", "serve/r1", "serve/r2"]


class TestMicroBatching:
    def test_queued_requests_coalesce_into_one_batch(self, engine, sample):
        """5 requests queued behind a wedge score as a single micro-batch."""
        pairs, mjd = sample
        wedge = WedgeBatch({0})
        config = DaemonConfig(batch_deadline_ms=5.0, batch_max_size=16)
        body = classify_body(pairs, mjd, deadline_ms=30000)
        with running_daemon(engine, config, fault_hook=wedge) as daemon:
            results: dict = {}
            threads = [_post_async(daemon.port, body, results, "head")]
            assert wedge.wedged.wait(10.0)
            for k in range(5):
                threads.append(_post_async(daemon.port, body, results, k))
            _wait_for(lambda: daemon._batcher.waiting() == 5)
            wedge.release()
            for thread in threads:
                thread.join(timeout=30.0)
            assert all(status == 200 for status, _ in results.values())
            ids = {doc["request_id"] for _, doc in results.values()}
            assert len(ids) == 6  # exactly-once: six distinct admissions
            # head alone, then the 5 queued requests in one coalesced batch
            assert int(daemon.metrics.counter("daemon.batches").value) == 2
            assert int(daemon.metrics.counter("daemon.responses").value) == 6


class TestAdmissionControl:
    def test_full_queue_sheds_with_retry_after(self, engine, sample):
        pairs, mjd = sample
        wedge = WedgeBatch({0})
        config = DaemonConfig(queue_depth=2, batch_deadline_ms=5.0)
        body = classify_body(pairs, mjd, deadline_ms=30000)
        with running_daemon(engine, config, fault_hook=wedge) as daemon:
            results: dict = {}
            threads = [_post_async(daemon.port, body, results, "head")]
            assert wedge.wedged.wait(10.0)
            for k in range(2):  # fill the queue to its depth cap
                threads.append(_post_async(daemon.port, body, results, k))
            _wait_for(lambda: daemon._batcher.waiting() == 2)
            # Queue is full: the next two must be shed immediately.
            for k in range(2):
                status, doc = post_classify(daemon.port, classify_body(pairs, mjd))
                assert status == 429
                assert doc["error"]["type"] == "shed"
            wedge.release()
            for thread in threads:
                thread.join(timeout=30.0)
            assert all(status == 200 for status, _ in results.values())
            assert int(daemon.metrics.counter("daemon.shed").value) == 2
            assert int(daemon.metrics.counter("daemon.admitted").value) == 3

    def test_retry_after_header_present(self, engine, sample):
        import urllib.error
        import urllib.request

        pairs, mjd = sample
        wedge = WedgeBatch({0})
        config = DaemonConfig(queue_depth=1, batch_deadline_ms=5.0)
        body = classify_body(pairs, mjd, deadline_ms=30000)
        with running_daemon(engine, config, fault_hook=wedge) as daemon:
            results: dict = {}
            threads = [_post_async(daemon.port, body, results, "head")]
            assert wedge.wedged.wait(10.0)
            threads.append(_post_async(daemon.port, body, results, "fill"))
            _wait_for(lambda: daemon._batcher.waiting() == 1)
            request = urllib.request.Request(
                f"http://127.0.0.1:{daemon.port}/classify",
                data=classify_body(pairs, mjd),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10.0)
            assert excinfo.value.code == 429
            # Derived from the observed drain rate; always within the
            # clamp window, and exactly the 1s floor before any batch
            # has been scored (the head batch is still wedged here).
            assert 1 <= int(excinfo.value.headers["Retry-After"]) <= 30
            excinfo.value.close()
            wedge.release()
            for thread in threads:
                thread.join(timeout=30.0)


class TestRetryAfterDerivation:
    """Unit tests of the drain-rate EWMA behind the 429 Retry-After."""

    def _daemon(self, engine):
        return ServingDaemon(engine, DaemonConfig(batch_deadline_ms=5.0))

    def test_floor_before_first_observation(self, engine):
        daemon = self._daemon(engine)
        assert daemon._retry_after() == "1"

    def test_backlog_over_rate(self, engine, monkeypatch):
        daemon = self._daemon(engine)
        daemon._note_drained(4, 2.0)  # 2 requests/s
        monkeypatch.setattr(daemon._batcher, "waiting", lambda: 10)
        assert daemon._retry_after() == "5"  # ceil(10 / 2)

    def test_clamped_to_30s_for_slow_drain(self, engine, monkeypatch):
        daemon = self._daemon(engine)
        daemon._note_drained(1, 100.0)  # 0.01 requests/s
        monkeypatch.setattr(daemon._batcher, "waiting", lambda: 8)
        assert daemon._retry_after() == "30"

    def test_fast_drain_floors_at_1s(self, engine, monkeypatch):
        daemon = self._daemon(engine)
        daemon._note_drained(64, 0.01)
        monkeypatch.setattr(daemon._batcher, "waiting", lambda: 1)
        assert daemon._retry_after() == "1"

    def test_ewma_tracks_recent_batches(self, engine):
        daemon = self._daemon(engine)
        daemon._note_drained(10, 1.0)  # 10 requests/s
        assert daemon._drain_rate == pytest.approx(10.0)
        daemon._note_drained(2, 1.0)  # slower batch folds in at alpha=0.3
        assert daemon._drain_rate == pytest.approx(0.7 * 10.0 + 0.3 * 2.0)
        assert daemon.metrics.gauge("daemon.drain_rate_rps").value == pytest.approx(
            round(daemon._drain_rate, 3)
        )

    def test_empty_group_ignored(self, engine):
        daemon = self._daemon(engine)
        daemon._note_drained(0, 1.0)
        assert daemon._drain_rate is None


class TestDeadlines:
    def test_deadline_expires_to_typed_timeout(self, engine, sample):
        pairs, mjd = sample
        wedge = WedgeBatch({0})
        config = DaemonConfig(batch_deadline_ms=5.0, wedge_timeout_s=60.0)
        with running_daemon(engine, config, fault_hook=wedge) as daemon:
            results: dict = {}
            head = _post_async(
                daemon.port, classify_body(pairs, mjd, deadline_ms=30000), results, "head"
            )
            assert wedge.wedged.wait(10.0)
            status, doc = post_classify(
                daemon.port, classify_body(pairs, mjd, deadline_ms=150)
            )
            assert status == 504
            assert doc["error"]["type"] == "timeout"
            assert doc["request_id"] == "serve/r1"
            wedge.release()
            head.join(timeout=30.0)
            assert results["head"][0] == 200
            assert int(daemon.metrics.counter("daemon.timeouts").value) == 1
            # The expired request is skipped by the worker, never re-answered.
            assert int(daemon.metrics.counter("daemon.responses").value) == 1

    def test_out_of_range_deadline_is_bad_request(self, engine, sample):
        pairs, mjd = sample
        with running_daemon(engine, DaemonConfig(batch_deadline_ms=2.0)) as daemon:
            status, doc = post_classify(
                daemon.port, classify_body(pairs, mjd, deadline_ms=0.5)
            )
            assert status == 400 and doc["error"]["type"] == "bad_request"


class TestBadRequests:
    def test_shape_errors_never_admitted(self, engine, sample):
        pairs, mjd = sample
        with running_daemon(engine, DaemonConfig(batch_deadline_ms=2.0)) as daemon:
            bad = [
                classify_body(pairs[0], mjd),  # rank-3 pairs
                classify_body(pairs, mjd[:2]),  # mjd length mismatch
                classify_body(pairs[:, :, :20, :20], mjd),  # stamp < input_size
            ]
            for body in bad:
                status, doc = post_classify(daemon.port, body)
                assert status == 400
                assert doc["error"]["type"] == "bad_request"
            assert int(daemon.metrics.counter("daemon.admitted").value) == 0
            assert int(daemon.metrics.counter("daemon.bad_requests").value) == 3
            # A clean request still sails through afterwards.
            status, _ = post_classify(daemon.port, classify_body(pairs, mjd))
            assert status == 200


class TestStrictPoisonIsolation:
    def test_strict_poison_isolated_from_batch_mates(self, engine):
        """One strict-degraded sample 422s; its clean batch-mate still scores."""
        clean_pairs, mjd = make_serve_sample(engine, seed=2)
        poison_pairs = clean_pairs.copy()
        poison_pairs[0] = np.nan  # visit 0 unrecoverable -> strict refusal
        wedge = WedgeBatch({0})
        config = DaemonConfig(batch_deadline_ms=150.0, wedge_timeout_s=60.0)
        with running_daemon(engine, config, fault_hook=wedge) as daemon:
            results: dict = {}
            threads = [
                _post_async(
                    daemon.port,
                    classify_body(clean_pairs, mjd, deadline_ms=30000),
                    results,
                    "head",
                )
            ]
            assert wedge.wedged.wait(10.0)
            threads.append(
                _post_async(
                    daemon.port,
                    classify_body(poison_pairs, mjd, strict=True, deadline_ms=30000),
                    results,
                    "poison",
                )
            )
            threads.append(
                _post_async(
                    daemon.port,
                    classify_body(clean_pairs, mjd, strict=True, deadline_ms=30000),
                    results,
                    "clean",
                )
            )
            _wait_for(lambda: daemon._batcher.waiting() == 2)
            wedge.release()
            for thread in threads:
                thread.join(timeout=30.0)
            status, doc = results["poison"]
            assert status == 422 and doc["error"]["type"] == "degraded"
            status, doc = results["clean"]
            assert status == 200
            solo = engine.classify_arrays(
                clean_pairs[None], mjd[None], strict=True
            )[0]
            assert doc["result"]["probability"] == round(solo.probability, 6)
            assert int(daemon.metrics.counter("daemon.poison_batches").value) == 1


class TestWatchdog:
    def test_wedged_worker_replaced_without_dropping_accept_loop(
        self, engine, sample
    ):
        pairs, mjd = sample
        wedge = WedgeBatch({0})
        config = DaemonConfig(
            batch_deadline_ms=2.0,
            wedge_timeout_s=0.4,
            watchdog_interval_s=0.05,
            worker_restarts=RetrySpec(max_attempts=3, base_delay_s=0.01, jitter=0.0),
        )
        with running_daemon(engine, config, fault_hook=wedge) as daemon:
            try:
                status, doc = post_classify(daemon.port, classify_body(pairs, mjd))
                assert status == 504
                assert doc["error"]["type"] == "timeout"
                assert "wedged" in doc["error"]["message"]
                # The replacement worker serves new traffic on the same port.
                status, doc = post_classify(daemon.port, classify_body(pairs, mjd))
                assert status == 200
                assert int(
                    daemon.metrics.counter("daemon.worker_restarts").value
                ) == 1
                status, body = http_get(daemon.port, "/healthz")
                assert status == 200
                assert json.loads(body)["worker_generation"] == 1
            finally:
                wedge.release()

    def test_restart_budget_exhaustion_drains_with_exit_4(self, engine, sample):
        pairs, mjd = sample
        wedge = WedgeBatch({0})
        config = DaemonConfig(
            batch_deadline_ms=2.0,
            wedge_timeout_s=0.3,
            watchdog_interval_s=0.05,
            worker_restarts=RetrySpec(max_attempts=1, jitter=0.0),
        )
        with running_daemon(engine, config, fault_hook=wedge) as daemon:
            try:
                status, doc = post_classify(daemon.port, classify_body(pairs, mjd))
                assert status == 504
                assert daemon.wait() == 4
                assert int(
                    daemon.metrics.counter("daemon.worker_restarts").value
                ) == 0
            finally:
                wedge.release()


class TestGracefulDrain:
    def test_drain_is_idempotent_and_refuses_new_traffic(self, engine, sample):
        pairs, mjd = sample
        with running_daemon(engine, DaemonConfig(batch_deadline_ms=2.0)) as daemon:
            status, _ = post_classify(daemon.port, classify_body(pairs, mjd))
            assert status == 200
            assert daemon.drain(reason="test") == 0
            assert daemon.drain(reason="again") == 0  # idempotent
            # The accept loop is already down; the in-process contract is
            # what late handler threads would see.
            status, payload = daemon.health()
            assert status == 503 and payload["state"] == "draining"
            status, payload, _ = daemon.handle_classify(classify_body(pairs, mjd))
            assert status == 503
            assert payload["error"]["type"] == "draining"
            assert daemon.wait() == 0
            assert "daemon_draining 1" in daemon.prometheus()
