"""Unit tests for the autograd Tensor: every op's gradient is verified
against central finite differences."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, concat, no_grad, preserve_float64, stack

from .helpers import check_gradient

RNG = np.random.default_rng(7)


class TestBasics:
    def test_construction_casts_to_float32(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float32

    def test_float64_downcast_by_default(self):
        t = Tensor(np.array([1.0, 2.0], dtype=np.float64))
        assert t.dtype == np.float32

    def test_float64_preserved_under_context(self):
        with preserve_float64():
            t = Tensor(np.array([1.0, 2.0], dtype=np.float64))
        assert t.dtype == np.float64
        # Policy is restored on exit.
        assert Tensor(np.array([1.0], dtype=np.float64)).dtype == np.float32

    def test_explicit_dtype_wins(self):
        t = Tensor(np.array([1.0, 2.0], dtype=np.float64), dtype=np.float64)
        assert t.dtype == np.float64

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6

    def test_item_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_detach_cuts_graph(self):
        t = Tensor([1.0], requires_grad=True)
        d = (t * 2).detach()
        assert not d.requires_grad

    def test_backward_requires_scalar(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        t = Tensor([1.0])
        with pytest.raises(RuntimeError):
            t.backward()

    def test_seed_gradient_shape_checked(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = t * 2
        with pytest.raises(ValueError):
            out.backward(np.ones(3))

    def test_no_grad_blocks_graph(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = t * 2
        assert not out.requires_grad

    def test_gradient_accumulates_across_backward_calls(self):
        t = Tensor([1.0, 1.0], requires_grad=True)
        (t * 3).sum().backward()
        (t * 3).sum().backward()
        np.testing.assert_allclose(t.grad, [6.0, 6.0])

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))


class TestArithmeticGradients:
    def test_add(self):
        check_gradient(lambda t: t + 3.0, RNG.normal(size=(3, 4)))

    def test_add_broadcast(self):
        other = Tensor(RNG.normal(size=(4,)))
        check_gradient(lambda t: t + other, RNG.normal(size=(3, 4)))

    def test_broadcast_grad_shape_for_second_operand(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        (a * b).sum().backward()
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, a.data.sum(axis=0), rtol=1e-5)

    def test_sub(self):
        check_gradient(lambda t: 5.0 - t, RNG.normal(size=(2, 3)))

    def test_mul(self):
        other = Tensor(RNG.normal(size=(2, 3)))
        check_gradient(lambda t: t * other, RNG.normal(size=(2, 3)))

    def test_div(self):
        other = Tensor(RNG.normal(size=(2, 3)) + 3.0)
        check_gradient(lambda t: t / other, RNG.normal(size=(2, 3)))

    def test_rdiv(self):
        check_gradient(lambda t: 2.0 / t, RNG.normal(size=(2, 3)) + 3.0)

    def test_pow(self):
        check_gradient(lambda t: t**3, RNG.normal(size=(5,)) + 2.0)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_neg(self):
        check_gradient(lambda t: -t, RNG.normal(size=(4,)))


class TestTranscendentalGradients:
    def test_exp(self):
        check_gradient(lambda t: t.exp(), RNG.normal(size=(3, 3)))

    def test_log(self):
        check_gradient(lambda t: t.log(), RNG.uniform(0.5, 3.0, size=(3, 3)))

    def test_sqrt(self):
        check_gradient(lambda t: t.sqrt(), RNG.uniform(0.5, 3.0, size=(4,)))

    def test_abs(self):
        check_gradient(lambda t: t.abs(), RNG.normal(size=(4,)) + 2.0)

    def test_tanh(self):
        check_gradient(lambda t: t.tanh(), RNG.normal(size=(3, 3)))

    def test_sigmoid(self):
        check_gradient(lambda t: t.sigmoid(), RNG.normal(size=(3, 3)))

    def test_sigmoid_stable_for_large_inputs(self):
        out = Tensor(np.array([1000.0, -1000.0])).sigmoid()
        np.testing.assert_allclose(out.numpy(), [1.0, 0.0], atol=1e-12)

    def test_clip(self):
        check_gradient(lambda t: t.clip(-0.5, 0.5), RNG.normal(size=(10,)))


class TestReductionGradients:
    def test_sum_all(self):
        check_gradient(lambda t: t.sum(), RNG.normal(size=(3, 4)))

    def test_sum_axis(self):
        check_gradient(lambda t: t.sum(axis=0), RNG.normal(size=(3, 4)))

    def test_sum_axis_keepdims(self):
        check_gradient(lambda t: t.sum(axis=1, keepdims=True), RNG.normal(size=(3, 4)))

    def test_sum_negative_axis(self):
        check_gradient(lambda t: t.sum(axis=-1), RNG.normal(size=(2, 3, 4)))

    def test_mean(self):
        check_gradient(lambda t: t.mean(), RNG.normal(size=(3, 4)))

    def test_mean_axis(self):
        check_gradient(lambda t: t.mean(axis=(1, 2)), RNG.normal(size=(2, 3, 4)))

    def test_max_all(self):
        # Use distinct values so the max is unique and differentiable.
        x = np.arange(12.0).reshape(3, 4)
        check_gradient(lambda t: t.max(), x)

    def test_max_axis(self):
        x = RNG.permutation(np.arange(12.0)).reshape(3, 4)
        check_gradient(lambda t: t.max(axis=1), x)

    def test_max_ties_split_gradient(self):
        t = Tensor(np.array([2.0, 2.0, 1.0]), requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.5, 0.5, 0.0])


class TestShapeGradients:
    def test_reshape(self):
        check_gradient(lambda t: t.reshape(6, 2) * 2.0, RNG.normal(size=(3, 4)))

    def test_flatten(self):
        check_gradient(lambda t: t.flatten() * 2.0, RNG.normal(size=(2, 3, 4)))

    def test_transpose(self):
        other = Tensor(RNG.normal(size=(4, 3)))
        check_gradient(lambda t: t.T * other, RNG.normal(size=(3, 4)))

    def test_transpose_axes(self):
        check_gradient(
            lambda t: t.transpose(2, 0, 1) * 1.5, RNG.normal(size=(2, 3, 4))
        )

    def test_getitem_slice(self):
        check_gradient(lambda t: t[1:, :2] * 3.0, RNG.normal(size=(3, 4)))

    def test_getitem_fancy(self):
        idx = (np.array([0, 1, 1]), np.array([2, 0, 0]))
        # Repeated index (1, 0) must accumulate gradient twice.
        t = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        t[idx].sum().backward()
        assert t.grad[1, 0] == pytest.approx(2.0)
        assert t.grad[0, 2] == pytest.approx(1.0)


class TestMatmulGradients:
    def test_matmul_2d(self):
        other = Tensor(RNG.normal(size=(4, 5)))
        check_gradient(lambda t: t @ other, RNG.normal(size=(3, 4)))

    def test_matmul_grad_wrt_second(self):
        a = Tensor(RNG.normal(size=(3, 4)))
        check_gradient(lambda t: a @ t, RNG.normal(size=(4, 5)))

    def test_matmul_1d_2d(self):
        other = Tensor(RNG.normal(size=(4, 5)))
        check_gradient(lambda t: t @ other, RNG.normal(size=(4,)))

    def test_matmul_2d_1d(self):
        vec = Tensor(RNG.normal(size=(4,)))
        check_gradient(lambda t: t @ vec, RNG.normal(size=(3, 4)))

    def test_matmul_values(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([[5.0, 6.0], [7.0, 8.0]])
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).numpy(), a @ b)


class TestConcatStack:
    def test_concat_values(self):
        a, b = Tensor(np.ones((2, 2))), Tensor(np.zeros((1, 2)))
        assert concat([a, b], axis=0).shape == (3, 2)

    def test_concat_gradient(self):
        a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 2)), requires_grad=True)
        (concat([a, b], axis=1) * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 2), 2.0))

    def test_stack_gradient(self):
        a = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        b = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        (out * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, [3.0, 3.0, 3.0])

    def test_as_tensor_idempotent(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t


class TestGraphMechanics:
    def test_diamond_graph_accumulates(self):
        # f = (t*2) + (t*3) -> df/dt = 5.
        t = Tensor([1.0], requires_grad=True)
        ((t * 2) + (t * 3)).sum().backward()
        np.testing.assert_allclose(t.grad, [5.0])

    def test_deep_chain_does_not_overflow(self):
        t = Tensor([1.0], requires_grad=True)
        out = t
        for _ in range(2000):
            out = out + 0.001
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [1.0])

    def test_reused_tensor_in_product(self):
        t = Tensor([3.0], requires_grad=True)
        (t * t).sum().backward()
        np.testing.assert_allclose(t.grad, [6.0])


def test_no_grad_is_thread_local():
    """A worker thread's no_grad must not disable recording elsewhere
    (concurrent ``predict()`` calls under ``stream(workers=N)``)."""
    import threading

    from repro.nn.tensor import is_grad_enabled, no_grad

    entered = threading.Event()
    release = threading.Event()

    def worker():
        with no_grad():
            entered.set()
            release.wait(timeout=5.0)

    t = threading.Thread(target=worker)
    t.start()
    try:
        assert entered.wait(timeout=5.0)
        assert is_grad_enabled()
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        assert (x * 2).requires_grad
    finally:
        release.set()
        t.join()
    assert is_grad_enabled()
