"""Dataset-build fault isolation: quarantine, resampling, resumable builds."""

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import BuildConfig, DatasetBuilder, load_dataset, save_dataset
from repro.datasets.io import _FIELDS
from repro.runtime import (
    BuildAborted,
    CorruptArtifactError,
    InjectedFault,
    SimulatedCrash,
    crash_on_nth_sample,
    raise_on_nth_sample,
    truncate_file,
)


def lc_config(n=12, seed=4):
    return BuildConfig(n_ia=n, n_non_ia=n, seed=seed, render_images=False)


def datasets_equal(a, b):
    return all(np.array_equal(getattr(a, f), getattr(b, f)) for f in _FIELDS)


class TestQuarantine:
    def test_injected_fault_is_quarantined_and_resampled(self):
        builder = DatasetBuilder(lc_config())
        dataset = builder.build(fault_hook=raise_on_nth_sample(5))
        report = builder.report
        assert len(dataset) == 24
        assert int(dataset.labels.sum()) == 12  # class balance preserved
        assert report.n_quarantined == 1
        rec = report.quarantined[0]
        assert rec.error_type == "InjectedFault"
        assert rec.slot == 5
        assert rec.rng_state  # replayable seed state captured

    def test_quarantined_build_differs_only_in_failed_slot_onward(self):
        # Resampling advances the shared stream, so the dataset is still
        # complete and valid even though draws after the fault differ.
        builder = DatasetBuilder(lc_config())
        dataset = builder.build(fault_hook=raise_on_nth_sample(5))
        assert np.all(np.isfinite(dataset.true_flux))
        assert np.all(dataset.redshifts > 0)

    def test_repeated_failures_abort_with_report(self):
        def always_fail(index, attempt):
            raise InjectedFault("permanently broken")

        builder = DatasetBuilder(lc_config(n=3))
        with pytest.raises(BuildAborted) as excinfo:
            builder.build(fault_hook=always_fail, max_sample_retries=2)
        report = excinfo.value.report
        assert report is not None
        assert report.n_quarantined == 3  # initial + 2 retries on slot 0
        assert report.n_built == 0

    def test_report_json_roundtrip(self):
        from repro.runtime import BuildReport

        builder = DatasetBuilder(lc_config(n=4))
        builder.build(fault_hook=raise_on_nth_sample(2))
        restored = BuildReport.from_json(builder.report.to_json())
        assert restored.n_quarantined == builder.report.n_quarantined
        assert restored.quarantined[0].slot == builder.report.quarantined[0].slot


class TestResumableBuild:
    @pytest.mark.parametrize("kill_at", [3, 10, 23])
    def test_kill_and_resume_matches_uninterrupted(self, tmp_path, kill_at):
        reference = DatasetBuilder(lc_config()).build()
        ck = tmp_path / "build.ck.npz"
        with pytest.raises(SimulatedCrash):
            DatasetBuilder(lc_config()).build(
                checkpoint_path=ck, checkpoint_every=4,
                fault_hook=crash_on_nth_sample(kill_at),
            )
        had_checkpoint = ck.exists()
        builder = DatasetBuilder(lc_config())
        resumed = builder.build(checkpoint_path=ck, checkpoint_every=4, resume=True)
        assert datasets_equal(reference, resumed)
        # A kill before the first checkpoint interval legitimately restarts.
        assert builder.report.resumed == (1 if had_checkpoint else 0)
        assert had_checkpoint == (kill_at >= 4)
        assert builder.report.n_built == 24

    def test_resume_without_checkpoint_path_rejected(self):
        with pytest.raises(ValueError, match="checkpoint_path"):
            DatasetBuilder(lc_config()).build(resume=True)

    def test_resume_with_wrong_config_rejected(self, tmp_path):
        ck = tmp_path / "build.ck.npz"
        with pytest.raises(SimulatedCrash):
            DatasetBuilder(lc_config(seed=4)).build(
                checkpoint_path=ck, checkpoint_every=2,
                fault_hook=crash_on_nth_sample(6),
            )
        with pytest.raises(ValueError, match="incompatible"):
            DatasetBuilder(lc_config(seed=5)).build(checkpoint_path=ck, resume=True)

    def test_resume_missing_checkpoint_starts_fresh(self, tmp_path):
        ck = tmp_path / "never-written.npz"
        builder = DatasetBuilder(lc_config())
        dataset = builder.build(checkpoint_path=ck, checkpoint_every=50, resume=True)
        assert len(dataset) == 24
        assert builder.report.resumed == 0


class TestDatasetIntegrity:
    def test_truncated_dataset_raises_corrupt(self, tmp_path):
        path = tmp_path / "ds.npz"
        save_dataset(DatasetBuilder(lc_config(n=3)).build(), path)
        truncate_file(path, keep_fraction=0.5)
        with pytest.raises(CorruptArtifactError):
            load_dataset(path)

    def test_shape_validation_messages(self, tmp_path):
        path = tmp_path / "bad.npz"
        n, v = 2, 20
        arrays = {
            "pairs": np.zeros((n, v, 2, 3, 3), dtype=np.float32),
            "visit_mjd": np.zeros((n, v)),
            "visit_band": np.zeros((n, v), dtype=np.int64),
            "true_flux": np.zeros((n, v)),
            "labels": np.zeros(n, dtype=np.int64),
            "sn_types": np.array(["Ia", "IIP"]),
            "redshifts": np.zeros(n),
            "host_mag": np.zeros(n),
            "sn_offset": np.zeros((n, 2)),
            "peak_mjd": np.zeros(n),
        }
        bad = dict(arrays)
        bad["visit_band"] = np.full((n, v), 7, dtype=np.int64)
        np.savez(path, **bad)
        with pytest.raises(ValueError, match="visit_band"):
            load_dataset(path)

        bad = dict(arrays)
        bad["pairs"] = np.zeros((n, v, 2, 3, 4), dtype=np.float32)
        np.savez(path, **bad)
        with pytest.raises(ValueError, match="square"):
            load_dataset(path)

        bad = dict(arrays)
        bad["labels"] = np.array([0, 2], dtype=np.int64)
        np.savez(path, **bad)
        with pytest.raises(ValueError, match="binary"):
            load_dataset(path)

        bad = dict(arrays)
        bad["visit_mjd"] = np.zeros((n, v - 1))
        np.savez(path, **bad)
        with pytest.raises(ValueError, match="visit_mjd"):
            load_dataset(path)


class TestCLIFaultHandling:
    def test_missing_dataset_exits_2(self, capsys):
        code = main(["train-classifier", "--dataset", "/no/such/file.npz",
                     "--out", "/tmp/never.npz"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert err.count("\n") == 1  # one-line message, not a traceback

    def test_missing_classifier_exits_2(self, tmp_path, capsys):
        ds = tmp_path / "ds.npz"
        save_dataset(DatasetBuilder(lc_config(n=6)).build(), ds)
        code = main(["evaluate", "--dataset", str(ds),
                     "--classifier", str(tmp_path / "missing.npz")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_dataset_exits_3(self, tmp_path, capsys):
        ds = tmp_path / "ds.npz"
        save_dataset(DatasetBuilder(lc_config(n=6)).build(), ds)
        truncate_file(ds, keep_fraction=0.4)
        code = main(["evaluate", "--dataset", str(ds),
                     "--classifier", str(tmp_path / "clf.npz")])
        assert code == 3
        assert "corrupt artifact" in capsys.readouterr().err

    def test_resume_requires_checkpoint(self, tmp_path, capsys):
        code = main(["build-dataset", "--n-ia", "2", "--n-non-ia", "2",
                     "--no-images", "--resume", "--out", str(tmp_path / "d.npz")])
        assert code == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_build_with_checkpoint_and_report(self, tmp_path, capsys):
        out = tmp_path / "d.npz"
        report = tmp_path / "report.json"
        code = main([
            "build-dataset", "--n-ia", "5", "--n-non-ia", "5", "--no-images",
            "--out", str(out), "--checkpoint", str(tmp_path / "ck.npz"),
            "--checkpoint-every", "3", "--report", str(report),
        ])
        assert code == 0
        assert load_dataset(out).labels.sum() == 5
        assert report.exists()

    def test_train_resume_flag_roundtrip(self, tmp_path):
        ds = tmp_path / "ds.npz"
        save_dataset(DatasetBuilder(lc_config(n=20, seed=1)).build(), ds)
        ck = tmp_path / "clf.ck.npz"
        out = tmp_path / "clf.npz"
        base = ["train-classifier", "--dataset", str(ds), "--units", "8",
                "--seed", "1", "--out", str(out), "--checkpoint", str(ck)]
        assert main(base + ["--epochs", "3"]) == 0
        assert ck.exists()
        # Resuming a finished-at-3-epochs run into a longer schedule picks
        # up from the checkpoint instead of restarting.
        assert main(base + ["--epochs", "3", "--resume"]) == 0
