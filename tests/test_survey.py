"""Tests for the survey substrate: PSFs, galaxy rendering, noise,
conditions, scheduling, imaging and differencing."""

import numpy as np
import pytest

from repro.catalog import CosmosCatalog, HostSelector
from repro.photometry import GRIZY, band_by_name, mag_to_flux
from repro.survey import (
    ConditionsModel,
    GaussianPSF,
    ImagingConfig,
    MoffatPSF,
    NightConditions,
    NoiseModel,
    ObservationPlan,
    ScheduledVisit,
    StampSimulator,
    SurveyScheduler,
    difference_images,
    fit_matching_kernel,
    fwhm_to_sigma,
    gaussian_matching_kernel,
    render_sersic,
    sersic_b,
    sigma_to_fwhm,
    sky_counts_per_pixel,
)


class TestPSF:
    def test_fwhm_sigma_roundtrip(self):
        assert sigma_to_fwhm(fwhm_to_sigma(0.7)) == pytest.approx(0.7)

    def test_fwhm_validation(self):
        with pytest.raises(ValueError):
            fwhm_to_sigma(0.0)
        with pytest.raises(ValueError):
            sigma_to_fwhm(-1.0)

    def test_gaussian_normalised(self):
        psf = GaussianPSF(fwhm=0.7, pixel_scale=0.17)
        img = psf.render((41, 41), (20.0, 20.0))
        assert img.sum() == pytest.approx(1.0, abs=1e-3)

    def test_gaussian_fwhm_measured(self):
        psf = GaussianPSF(fwhm=0.85, pixel_scale=0.17)
        img = psf.render((61, 61), (30.0, 30.0))
        half_max = img.max() / 2
        width_px = np.sum(img[30] >= half_max)
        assert width_px == pytest.approx(0.85 / 0.17, abs=1.5)

    def test_moffat_normalised(self):
        psf = MoffatPSF(fwhm=0.7, beta=3.0, pixel_scale=0.17)
        img = psf.render((81, 81), (40.0, 40.0))
        assert img.sum() == pytest.approx(1.0, abs=0.02)

    def test_moffat_heavier_wings_than_gaussian(self):
        gauss = GaussianPSF(0.7).render((41, 41), (20.0, 20.0))
        moffat = MoffatPSF(0.7).render((41, 41), (20.0, 20.0))
        assert moffat[20, 35] > gauss[20, 35]

    def test_moffat_beta_validation(self):
        with pytest.raises(ValueError):
            MoffatPSF(0.7, beta=1.0)

    def test_subpixel_center(self):
        psf = GaussianPSF(0.7)
        img = psf.render((21, 21), (10.3, 9.6))
        rows, cols = np.mgrid[:21, :21]
        centroid_r = (rows * img).sum() / img.sum()
        centroid_c = (cols * img).sum() / img.sum()
        assert centroid_r == pytest.approx(10.3, abs=0.05)
        assert centroid_c == pytest.approx(9.6, abs=0.05)


class TestSersic:
    def test_b_n_known_values(self):
        # Classic approximations: b_1 ~ 1.678, b_4 ~ 7.669.
        assert sersic_b(1.0) == pytest.approx(1.678, abs=0.01)
        assert sersic_b(4.0) == pytest.approx(7.669, abs=0.01)

    def test_b_n_validation(self):
        with pytest.raises(ValueError):
            sersic_b(0.0)

    def test_total_flux_captured(self):
        # A small galaxy on a big stamp captures nearly all its flux.
        img = render_sersic((101, 101), (50.0, 50.0), 1000.0, 4.0, 1.0)
        assert img.sum() == pytest.approx(1000.0, rel=0.03)

    def test_half_light_radius(self):
        img = render_sersic((201, 201), (100.0, 100.0), 1.0, 8.0, 1.0)
        rows, cols = np.mgrid[:201, :201]
        inside = (rows - 100.0) ** 2 + (cols - 100.0) ** 2 <= 8.0**2
        assert img[inside].sum() / img.sum() == pytest.approx(0.5, abs=0.03)

    def test_ellipticity_shapes_isophotes(self):
        img = render_sersic(
            (101, 101), (50.0, 50.0), 1.0, 10.0, 1.0, ellipticity=0.5, position_angle=0.0
        )
        # Major axis along columns: flux at (50, 70) > flux at (70, 50).
        assert img[50, 70] > img[70, 50]

    def test_validation(self):
        with pytest.raises(ValueError):
            render_sersic((11, 11), (5.0, 5.0), -1.0, 2.0, 1.0)
        with pytest.raises(ValueError):
            render_sersic((11, 11), (5.0, 5.0), 1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            render_sersic((11, 11), (5.0, 5.0), 1.0, 2.0, 1.0, ellipticity=1.0)
        with pytest.raises(ValueError):
            render_sersic((11, 11), (5.0, 5.0), 1.0, 2.0, 1.0, oversample=0)


class TestNoise:
    def test_sky_counts_sensible(self):
        counts = sky_counts_per_pixel(band_by_name("i"), pixel_scale=0.17)
        assert 0.1 < counts < 100.0

    def test_sky_validation(self):
        with pytest.raises(ValueError):
            sky_counts_per_pixel(band_by_name("i"), pixel_scale=-0.1)

    def test_model_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(read_noise=-1.0)
        with pytest.raises(ValueError):
            NoiseModel(exposure_factor=0.0)

    def test_realise_unbiased(self):
        model = NoiseModel(exposure_factor=60.0)
        rng = np.random.default_rng(0)
        signal = np.full((40, 40), 5.0)
        image = model.realise(signal, band_by_name("r"), 0.17, rng)
        assert image.mean() == pytest.approx(5.0, abs=0.15)

    def test_realise_rejects_negative_signal(self):
        model = NoiseModel()
        with pytest.raises(ValueError):
            model.realise(np.full((4, 4), -1.0), band_by_name("r"), 0.17, np.random.default_rng())

    def test_pixel_sigma_matches_empirical(self):
        model = NoiseModel(exposure_factor=60.0)
        rng = np.random.default_rng(1)
        blank = np.zeros((200, 200))
        image = model.realise(blank, band_by_name("i"), 0.17, rng)
        predicted = model.pixel_sigma(band_by_name("i"), 0.17)
        assert image.std() == pytest.approx(predicted, rel=0.05)

    def test_depth_boost_reduces_noise(self):
        model = NoiseModel()
        shallow = model.pixel_sigma(band_by_name("i"), 0.17)
        deep = model.pixel_sigma(band_by_name("i"), 0.17, depth_boost=8.0)
        assert deep == pytest.approx(shallow / np.sqrt(8.0), rel=0.05)


class TestConditions:
    def test_sample_within_bounds(self):
        model = ConditionsModel()
        rng = np.random.default_rng(0)
        for _ in range(100):
            night = model.sample(57000.0, rng)
            assert 0.4 <= night.seeing_fwhm <= 2.0
            assert 0.3 <= night.transparency <= 1.0

    def test_seeing_median_close_to_config(self):
        model = ConditionsModel(median_seeing=0.7)
        rng = np.random.default_rng(1)
        seeing = [model.sample(0.0, rng).seeing_fwhm for _ in range(500)]
        assert np.median(seeing) == pytest.approx(0.7, abs=0.05)

    def test_best_conditions(self):
        night = ConditionsModel().best_conditions(123.0)
        assert night.transparency == 1.0
        assert night.mjd == 123.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NightConditions(0.0, seeing_fwhm=-0.5, transparency=1.0, zp_jitter_mag=0.0)
        with pytest.raises(ValueError):
            NightConditions(0.0, seeing_fwhm=0.7, transparency=0.0, zp_jitter_mag=0.0)
        with pytest.raises(ValueError):
            ConditionsModel(median_seeing=-1.0)


class TestScheduler:
    def test_every_band_has_quota(self):
        scheduler = SurveyScheduler(epochs_per_band=4)
        plan = scheduler.generate(57000.0, np.random.default_rng(0))
        counts = plan.epochs_per_band()
        assert counts == {"g": 4, "r": 4, "i": 4, "z": 4, "y": 4}

    def test_max_two_bands_per_night(self):
        scheduler = SurveyScheduler(epochs_per_band=4, max_bands_per_night=2)
        for seed in range(5):
            plan = scheduler.generate(57000.0, np.random.default_rng(seed))
            assert max(plan.bands_per_night().values()) <= 2

    def test_chronological(self):
        plan = SurveyScheduler().generate(57000.0, np.random.default_rng(1))
        mjds = [v.mjd for v in plan]
        assert mjds == sorted(mjds)

    def test_epoch_groups_cover_all_bands(self):
        plan = SurveyScheduler(epochs_per_band=3).generate(57000.0, np.random.default_rng(2))
        groups = plan.epoch_groups()
        assert len(groups) == 3
        for group in groups:
            assert sorted(v.band.name for v in group) == ["g", "i", "r", "y", "z"]

    def test_peak_inside_window(self):
        scheduler = SurveyScheduler()
        rng = np.random.default_rng(3)
        plan = scheduler.generate(57000.0, rng)
        for _ in range(20):
            peak = scheduler.sample_peak_mjd(plan, rng)
            assert plan.start_mjd - 5.0 <= peak <= plan.end_mjd

    def test_validation(self):
        with pytest.raises(ValueError):
            SurveyScheduler(epochs_per_band=0)
        with pytest.raises(ValueError):
            SurveyScheduler(max_bands_per_night=9)
        with pytest.raises(ValueError):
            SurveyScheduler(cadence_days=-1.0)
        with pytest.raises(ValueError):
            SurveyScheduler(cadence_jitter=10.0, cadence_days=5.0)

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            ObservationPlan(visits=())
        band = GRIZY[0]
        with pytest.raises(ValueError):
            ObservationPlan(
                visits=(ScheduledVisit(5.0, band), ScheduledVisit(1.0, band))
            )


class TestImaging:
    @staticmethod
    def _setup(seed=0):
        cat = CosmosCatalog(10, seed=seed)
        placement = HostSelector(cat).sample(np.random.default_rng(seed))
        return StampSimulator(), placement

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ImagingConfig(stamp_size=64)  # even
        with pytest.raises(ValueError):
            ImagingConfig(psf_family="airy")
        with pytest.raises(ValueError):
            ImagingConfig(reference_depth_boost=0.5)

    def test_clean_scene_contains_sn_flux(self):
        sim, placement = self._setup()
        scene_without = sim.clean_scene(placement, 0.0, 0.7)
        scene_with = sim.clean_scene(placement, 100.0, 0.7)
        added = scene_with.sum() - scene_without.sum()
        assert added == pytest.approx(100.0, rel=0.1)  # Moffat wings lose a little

    def test_sn_at_stamp_center(self):
        sim, placement = self._setup()
        delta = sim.clean_scene(placement, 500.0, 0.7) - sim.clean_scene(placement, 0.0, 0.7)
        peak = np.unravel_index(np.argmax(delta), delta.shape)
        assert peak == (32, 32)

    def test_observe_returns_float32(self):
        sim, placement = self._setup()
        night = sim.conditions.sample(57000.0, np.random.default_rng(0))
        exposure = sim.observe(placement, band_by_name("i"), 50.0, night, np.random.default_rng(1))
        assert exposure.pixels.dtype == np.float32
        assert exposure.true_sn_flux == 50.0
        assert exposure.mjd == 57000.0

    def test_reference_is_deep_and_clean(self):
        sim, placement = self._setup()
        rng = np.random.default_rng(2)
        ref = sim.reference(placement, band_by_name("i"), rng)
        obs = sim.observe(
            placement, band_by_name("i"), 0.0, sim.conditions.best_conditions(0.0), rng
        )
        # Reference is a co-add: much lower background noise.
        corner_ref = ref.pixels[:10, :10].std()
        corner_obs = obs.pixels[:10, :10].std()
        assert corner_ref < corner_obs
        assert ref.true_sn_flux == 0.0

    def test_negative_flux_rejected(self):
        sim, placement = self._setup()
        with pytest.raises(ValueError):
            sim.clean_scene(placement, -5.0, 0.7)


class TestDifferencing:
    def test_gaussian_kernel_width(self):
        kernel = gaussian_matching_kernel(1.0, 2.0, size=31)
        assert kernel.sum() == pytest.approx(1.0)
        # Effective sigma = sqrt(4 - 1).
        grid = np.arange(31) - 15
        rr, cc = np.meshgrid(grid, grid, indexing="ij")
        sigma2 = (kernel * (rr**2)).sum()
        assert np.sqrt(sigma2) == pytest.approx(np.sqrt(3.0), rel=0.05)

    def test_kernel_validation(self):
        with pytest.raises(ValueError):
            gaussian_matching_kernel(2.0, 1.0)
        with pytest.raises(ValueError):
            gaussian_matching_kernel(1.0, 2.0, size=20)

    def test_difference_recovers_point_source(self):
        # Clean scene: same galaxy, different seeing, a transient added.
        sim = StampSimulator()
        cat = CosmosCatalog(5, seed=3)
        placement = HostSelector(cat).sample(np.random.default_rng(3))
        ref_clean = sim.clean_scene(placement, 0.0, 0.6)
        obs_clean = sim.clean_scene(placement, 80.0, 0.9)
        result = difference_images(ref_clean, obs_clean, 0.6, 0.9, method="model")
        assert result.convolved == "reference"
        # Noise-free: the difference should be just the PSF-shaped SN.
        assert result.difference.sum() == pytest.approx(80.0, rel=0.15)
        peak = np.unravel_index(np.argmax(result.difference), result.difference.shape)
        assert peak == (32, 32)

    def test_sharper_observation_convolves_observation(self):
        sim = StampSimulator()
        cat = CosmosCatalog(5, seed=4)
        placement = HostSelector(cat).sample(np.random.default_rng(4))
        ref_clean = sim.clean_scene(placement, 0.0, 1.0)
        obs_clean = sim.clean_scene(placement, 80.0, 0.6)
        result = difference_images(ref_clean, obs_clean, 1.0, 0.6, method="model")
        assert result.convolved == "observation"
        assert result.difference.sum() == pytest.approx(80.0, rel=0.15)

    def test_fit_kernel_matches_known_blur(self):
        rng = np.random.default_rng(5)
        sharp = rng.normal(size=(65, 65))
        from scipy import signal as sp_signal

        true_kernel = gaussian_matching_kernel(0.5, 2.0, size=11)
        broad = sp_signal.fftconvolve(sharp, true_kernel, mode="same")
        fitted = fit_matching_kernel(sharp, broad, kernel_size=11, regularization=1e-6)
        assert fitted.sum() == pytest.approx(1.0, abs=0.05)
        matched = sp_signal.fftconvolve(sharp, fitted, mode="same")
        residual = (broad - matched)[10:-10, 10:-10]
        assert np.abs(residual).max() < 0.05

    def test_method_none(self):
        a = np.zeros((10, 10))
        b = np.ones((10, 10))
        result = difference_images(a, b, method="none")
        np.testing.assert_allclose(result.difference, 1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            difference_images(np.zeros((5, 5)), np.zeros((6, 6)), method="none")

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            difference_images(np.zeros((5, 5)), np.zeros((5, 5)), method="magic")

    def test_model_requires_fwhm(self):
        with pytest.raises(ValueError):
            difference_images(np.zeros((5, 5)), np.zeros((5, 5)), method="model")
