"""Tests for the gnomonic WCS."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog import COSMOS_FOOTPRINT, CosmosCatalog
from repro.survey import TanWCS

COSMOS_WCS = TanWCS(ra_center=150.12, dec_center=2.2, pixel_scale=0.17)


class TestProjectionBasics:
    def test_tangent_point_maps_to_crpix(self):
        wcs = TanWCS(150.0, 2.0, crpix=(100.0, 200.0))
        x, y = wcs.sky_to_pixel(150.0, 2.0)
        assert float(x) == pytest.approx(100.0, abs=1e-9)
        assert float(y) == pytest.approx(200.0, abs=1e-9)

    def test_north_is_positive_y(self):
        _, y = COSMOS_WCS.sky_to_pixel(150.12, 2.3)
        assert float(y) > 0

    def test_east_is_negative_x(self):
        # Larger RA (East) maps to smaller x (astronomical orientation).
        x, _ = COSMOS_WCS.sky_to_pixel(150.2, 2.2)
        assert float(x) < 0

    def test_pixel_scale_at_center(self):
        # 1 arcsec offset in Dec = 1/0.17 pixels.
        _, y = COSMOS_WCS.sky_to_pixel(150.12, 2.2 + 1.0 / 3600.0)
        assert float(y) == pytest.approx(1.0 / 0.17, rel=1e-4)

    def test_far_position_rejected(self):
        with pytest.raises(ValueError):
            COSMOS_WCS.sky_to_pixel(150.12 + 120.0, 2.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            TanWCS(150.0, 2.0, pixel_scale=0.0)
        with pytest.raises(ValueError):
            TanWCS(150.0, 95.0)


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=149.5, max_value=150.8),
        st.floats(min_value=1.6, max_value=2.8),
    )
    def test_sky_pixel_sky(self, ra, dec):
        x, y = COSMOS_WCS.sky_to_pixel(ra, dec)
        ra2, dec2 = COSMOS_WCS.pixel_to_sky(x, y)
        assert float(ra2) == pytest.approx(ra, abs=1e-8)
        assert float(dec2) == pytest.approx(dec, abs=1e-8)

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=-20000, max_value=20000),
        st.floats(min_value=-20000, max_value=20000),
    )
    def test_pixel_sky_pixel(self, x, y):
        ra, dec = COSMOS_WCS.pixel_to_sky(x, y)
        x2, y2 = COSMOS_WCS.sky_to_pixel(float(ra), float(dec))
        assert float(x2) == pytest.approx(x, abs=1e-4)
        assert float(y2) == pytest.approx(y, abs=1e-4)


class TestGeometry:
    def test_separation_matches_angular_distance(self):
        # Small separations: pixel distance * scale ~ angular distance.
        sep_px = COSMOS_WCS.separation_pixels(150.12, 2.2, 150.12, 2.2 + 10.0 / 3600.0)
        assert sep_px * 0.17 == pytest.approx(10.0, rel=1e-3)

    def test_ra_compression_at_dec(self):
        # RA separations shrink with cos(dec): compare pixel distances of
        # equal RA offsets at different declinations (different WCS).
        high = TanWCS(150.0, 60.0)
        low = TanWCS(150.0, 0.0)
        offset = 30.0 / 3600.0
        sep_high = high.separation_pixels(150.0, 60.0, 150.0 + offset, 60.0)
        sep_low = low.separation_pixels(150.0, 0.0, 150.0 + offset, 0.0)
        assert sep_high == pytest.approx(sep_low * np.cos(np.radians(60.0)), rel=1e-3)

    def test_cutout_origin_centers_target(self):
        x0, y0 = COSMOS_WCS.cutout_origin(150.12, 2.2, stamp_size=65)
        assert (x0, y0) == (-32, -32)

    def test_catalog_positions_projectable(self):
        catalog = CosmosCatalog(200, seed=0)
        positions = catalog.positions()
        wcs = TanWCS(
            ra_center=(COSMOS_FOOTPRINT["ra_min"] + COSMOS_FOOTPRINT["ra_max"]) / 2,
            dec_center=(COSMOS_FOOTPRINT["dec_min"] + COSMOS_FOOTPRINT["dec_max"]) / 2,
        )
        x, y = wcs.sky_to_pixel(positions[:, 0], positions[:, 1])
        assert np.all(np.isfinite(x)) and np.all(np.isfinite(y))
        # The 1.4-degree footprint spans ~30k pixels at 0.17"/px.
        assert x.max() - x.min() > 20000
