"""Unit tests for the repro.perf instrumentation subsystem."""

import json
import time

import pytest

from repro.perf import (
    collecting,
    count,
    disable,
    enable,
    enabled,
    report,
    reset,
    timed,
    timed_fn,
    write_report,
)


@pytest.fixture(autouse=True)
def _clean_state():
    disable()
    reset()
    yield
    disable()
    reset()


class TestDisabled:
    def test_disabled_by_default(self):
        assert not enabled()

    def test_timed_is_noop_when_disabled(self):
        with timed("x"):
            pass
        count("y", 3)
        payload = report()
        assert payload["timers"] == {}
        assert payload["counters"] == {}

    def test_disabled_scope_is_shared_singleton(self):
        # Near-zero overhead when off: no per-call allocation.
        assert timed("a") is timed("b")


class TestEnabled:
    def test_timers_accumulate_calls_and_time(self):
        enable()
        for _ in range(3):
            with timed("stage"):
                time.sleep(0.001)
        payload = report()
        stage = payload["timers"]["stage"]
        assert stage["calls"] == 3
        assert stage["total_s"] >= 0.003
        assert stage["mean_s"] == pytest.approx(stage["total_s"] / 3)

    def test_counters_sum(self):
        enable()
        count("samples", 5)
        count("samples", 7)
        count("batches")
        payload = report()
        assert payload["counters"]["samples"] == 12
        assert payload["counters"]["batches"] == 1

    def test_timed_fn_decorator(self):
        @timed_fn("wrapped")
        def add(a, b):
            return a + b

        enable()
        assert add(2, 3) == 5
        assert report()["timers"]["wrapped"]["calls"] == 1

    def test_reset_clears_everything(self):
        enable()
        with timed("x"):
            pass
        count("y")
        reset()
        payload = report()
        assert payload["timers"] == {} and payload["counters"] == {}


class TestCollecting:
    def test_collecting_enables_then_restores(self):
        assert not enabled()
        with collecting():
            assert enabled()
            with timed("inner"):
                pass
        assert not enabled()
        assert report()["timers"]["inner"]["calls"] == 1

    def test_write_report_is_valid_json(self, tmp_path):
        with collecting():
            with timed("op"):
                pass
            count("n", 4)
        path = tmp_path / "perf.json"
        write_report(str(path))
        payload = json.loads(path.read_text())
        assert payload["timers"]["op"]["calls"] == 1
        assert payload["counters"]["n"] == 4
