"""Property-based tests for the survey substrate: scheduling invariants,
PSF normalisation across parameters, noise scaling laws."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.photometry import GRIZY, band_by_name
from repro.survey import (
    ConditionsModel,
    GaussianPSF,
    MoffatPSF,
    NoiseModel,
    SurveyScheduler,
    fwhm_to_sigma,
    gaussian_matching_kernel,
)


class TestSchedulerProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_quota_and_nightly_cap_always_hold(self, epochs, max_bands, seed):
        scheduler = SurveyScheduler(
            epochs_per_band=epochs, max_bands_per_night=max_bands
        )
        plan = scheduler.generate(57000.0, np.random.default_rng(seed))
        counts = plan.epochs_per_band()
        assert all(c == epochs for c in counts.values())
        assert len(counts) == 5
        assert max(plan.bands_per_night().values()) <= max_bands

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_no_band_repeats_on_a_night(self, seed):
        plan = SurveyScheduler().generate(57000.0, np.random.default_rng(seed))
        nights: dict[float, list[str]] = {}
        for visit in plan:
            nights.setdefault(visit.mjd, []).append(visit.band.name)
        for bands in nights.values():
            assert len(bands) == len(set(bands))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_epoch_groups_are_chronological_per_band(self, seed):
        plan = SurveyScheduler().generate(57000.0, np.random.default_rng(seed))
        groups = plan.epoch_groups()
        for band_pos in range(5):
            mjds = [group[band_pos].mjd for group in groups]
            assert mjds == sorted(mjds)


class TestPSFProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.45, max_value=1.6))
    def test_gaussian_unit_flux_any_seeing(self, fwhm):
        psf = GaussianPSF(fwhm, pixel_scale=0.17)
        stamp = psf.render((81, 81), (40.0, 40.0))
        assert stamp.sum() == pytest.approx(1.0, abs=0.02)

    @settings(max_examples=20, deadline=None)
    @given(
        st.floats(min_value=0.45, max_value=1.4),
        st.floats(min_value=2.2, max_value=5.0),
    )
    def test_moffat_unit_flux_any_beta(self, fwhm, beta):
        psf = MoffatPSF(fwhm, beta=beta, pixel_scale=0.17)
        stamp = psf.render((121, 121), (60.0, 60.0))
        assert stamp.sum() == pytest.approx(1.0, abs=0.06)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.5, max_value=1.5), st.floats(min_value=1.1, max_value=2.5))
    def test_matching_kernel_widens_quadratically(self, sharp, ratio):
        broad = sharp * ratio
        expected_var = broad**2 - sharp**2
        if expected_var < 0.8:
            # Sub-pixel kernels cannot carry their variance on a discrete
            # grid; the differencing code treats them as near-identity.
            return
        kernel = gaussian_matching_kernel(sharp, broad, size=41)
        grid = np.arange(41) - 20
        rr, _ = np.meshgrid(grid, grid, indexing="ij")
        measured_var = float((kernel * rr**2).sum())
        assert measured_var == pytest.approx(expected_var, rel=0.15)


class TestNoiseProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=10.0, max_value=200.0), st.integers(min_value=0, max_value=10**6))
    def test_noise_scales_inverse_sqrt_depth(self, depth, seed):
        model = NoiseModel(exposure_factor=depth, read_noise=0.0)
        band = band_by_name("r")
        base = NoiseModel(exposure_factor=1.0, read_noise=0.0).pixel_sigma(band, 0.17)
        scaled = model.pixel_sigma(band, 0.17)
        assert scaled == pytest.approx(base / np.sqrt(depth), rel=1e-6)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_calibration_removes_transparency(self, seed):
        # Expectation of the calibrated image equals the true signal for
        # any transparency (calibration divides it back out).
        rng = np.random.default_rng(seed)
        model = NoiseModel(exposure_factor=500.0)
        signal = np.full((50, 50), 20.0)
        image = model.realise(signal, band_by_name("i"), 0.17, rng, transparency=0.5)
        assert image.mean() == pytest.approx(20.0, abs=0.5)

    def test_redder_bands_brighter_sky(self):
        sigmas = [
            NoiseModel().pixel_sigma(band, 0.17) for band in GRIZY
        ]
        # Sky brightness grows toward the red: noise must too.
        assert sigmas == sorted(sigmas)


class TestConditionsProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=0.5, max_value=1.2), st.integers(min_value=0, max_value=10**6))
    def test_seeing_distribution_tracks_median(self, median, seed):
        model = ConditionsModel(median_seeing=median)
        rng = np.random.default_rng(seed)
        draws = [model.sample(0.0, rng).seeing_fwhm for _ in range(300)]
        assert np.median(draws) == pytest.approx(median, rel=0.12)

    def test_fwhm_sigma_consistency(self):
        # 2 sqrt(2 ln 2) sigma = FWHM.
        assert fwhm_to_sigma(2.3548) == pytest.approx(1.0, abs=1e-3)
