"""Edge-case and failure-injection tests for the NN framework."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import Tensor
from repro.nn import functional as F

RNG = np.random.default_rng(77)


class TestSingleSampleAndEmpty:
    def test_linear_single_row(self):
        layer = nn.Linear(4, 2, rng=RNG)
        assert layer(Tensor(np.zeros((1, 4)))).shape == (1, 2)

    def test_conv_single_image(self):
        layer = nn.Conv2d(1, 2, 3, rng=RNG)
        assert layer(Tensor(np.zeros((1, 1, 5, 5)))).shape == (1, 2, 3, 3)

    def test_predict_on_empty_batch(self):
        from repro.core import LightCurveClassifier

        clf = LightCurveClassifier(input_dim=10, units=8, rng=RNG)
        out = clf.predict_proba(np.zeros((0, 10), dtype=np.float32))
        assert out.shape == (0,)

    def test_cnn_predict_empty(self):
        from repro.core import BandwiseCNN

        cnn = BandwiseCNN(input_size=36, rng=RNG)
        out = cnn.predict(np.zeros((0, 2, 36, 36), dtype=np.float32))
        assert out.shape == (0,)


class TestNumericalRobustness:
    def test_bn_constant_input_no_nan(self):
        bn = nn.BatchNorm1d(3)
        out = bn(Tensor(np.full((8, 3), 5.0)))
        assert np.all(np.isfinite(out.numpy()))

    def test_signed_log_extreme_values(self):
        out = F.signed_log10(Tensor(np.array([1e30, -1e30, 0.0])))
        assert np.all(np.isfinite(out.numpy()))

    def test_softmax_all_equal(self):
        out = F.softmax(Tensor(np.full((2, 4), 3.0)))
        np.testing.assert_allclose(out.numpy(), 0.25, rtol=1e-6)

    def test_bce_probability_zero_one_targets(self):
        loss = nn.BCEWithLogitsLoss()(
            Tensor(np.array([50.0, -50.0])), np.array([0.0, 1.0])
        )
        # Maximally wrong but still finite (≈ 50 nats each).
        assert np.isfinite(loss.item())
        assert loss.item() == pytest.approx(50.0, rel=0.01)

    def test_adam_survives_zero_gradients(self):
        param = nn.Parameter(np.ones(3))
        opt = nn.Adam([param], lr=0.1)
        param.grad = np.zeros(3)
        opt.step()
        np.testing.assert_allclose(param.data, np.ones(3))

    def test_grad_clip_zero_gradient(self):
        param = nn.Parameter(np.ones(3))
        param.grad = np.zeros(3)
        norm = nn.clip_grad_norm([param], 1.0)
        assert norm == 0.0


class TestStateDictEdgeCases:
    def test_prelu_alpha_in_state(self):
        layer = nn.PReLU(4)
        assert "alpha" in layer.state_dict()

    def test_bn_buffers_in_state(self):
        bn = nn.BatchNorm2d(2)
        state = bn.state_dict()
        assert "buffer:running_mean" in state
        assert "buffer:running_var" in state

    def test_nested_sequential_roundtrip(self):
        inner = nn.Sequential(nn.Linear(2, 3, rng=RNG), nn.PReLU())
        outer = nn.Sequential(inner, nn.Linear(3, 1, rng=RNG))
        clone_inner = nn.Sequential(nn.Linear(2, 3, rng=RNG), nn.PReLU())
        clone = nn.Sequential(clone_inner, nn.Linear(3, 1, rng=RNG))
        clone.load_state_dict(outer.state_dict())
        x = Tensor(RNG.normal(size=(4, 2)).astype(np.float32))
        np.testing.assert_allclose(outer(x).numpy(), clone(x).numpy(), rtol=1e-6)

    def test_state_dict_is_a_copy(self):
        layer = nn.Linear(2, 2, rng=RNG)
        state = layer.state_dict()
        state["weight"][:] = 99.0
        assert not np.any(layer.weight.data == 99.0)


class TestTrainingDynamics:
    def test_batchnorm_train_vs_eval_differ(self):
        bn = nn.BatchNorm1d(2, momentum=0.5)
        x = Tensor(RNG.normal(loc=3.0, size=(32, 2)))
        train_out = bn(x).numpy().copy()
        bn.eval()
        eval_out = bn(x).numpy()
        assert not np.allclose(train_out, eval_out)

    def test_dropout_changes_between_calls(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((4, 100)))
        a = layer(x).numpy().copy()
        b = layer(x).numpy()
        assert not np.array_equal(a, b)

    def test_momentum_accelerates_on_quadratic(self):
        def run(momentum):
            param = nn.Parameter(np.array([10.0]))
            opt = nn.SGD([param], lr=0.02, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                (param * param).sum().backward()
                opt.step()
            return abs(float(param.data[0]))

        assert run(0.9) < run(0.0)

    def test_weight_decay_equivalent_to_l2(self):
        # One SGD step with decay == explicit L2 gradient.
        a = nn.Parameter(np.array([2.0]))
        opt_a = nn.SGD([a], lr=0.1, weight_decay=0.5)
        a.grad = np.array([1.0])
        opt_a.step()

        b = nn.Parameter(np.array([2.0]))
        opt_b = nn.SGD([b], lr=0.1)
        b.grad = np.array([1.0 + 0.5 * 2.0])
        opt_b.step()
        np.testing.assert_allclose(a.data, b.data)


class TestTensorMisuse:
    def test_getitem_out_of_bounds(self):
        t = Tensor(np.zeros((2, 2)))
        with pytest.raises(IndexError):
            _ = t[5]

    def test_shape_mismatch_add(self):
        with pytest.raises(ValueError):
            _ = Tensor(np.zeros((2, 3))) + Tensor(np.zeros((2, 4)))

    def test_matmul_dim_mismatch(self):
        with pytest.raises(ValueError):
            _ = Tensor(np.zeros((2, 3))) @ Tensor(np.zeros((4, 2)))

    def test_reshape_bad_size(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros(6)).reshape(4, 2)
