"""Tests for the COSMOS-like catalogue and host/supernova placement."""

import numpy as np
import pytest

from repro.catalog import (
    COSMOS_FOOTPRINT,
    CosmosCatalog,
    Galaxy,
    HostSelector,
    SupernovaPlacement,
)


def _galaxy(**overrides):
    base = dict(
        galaxy_id=0,
        ra=150.0,
        dec=2.0,
        photo_z=0.5,
        half_light_radius=0.8,
        ellipticity=0.3,
        position_angle=0.7,
        sersic_index=1.5,
        magnitude_i=22.0,
    )
    base.update(overrides)
    return Galaxy(**base)


class TestGalaxy:
    def test_axis_ratio(self):
        assert _galaxy(ellipticity=0.25).axis_ratio == pytest.approx(0.75)

    def test_photo_z_bounds(self):
        with pytest.raises(ValueError):
            _galaxy(photo_z=0.05)
        with pytest.raises(ValueError):
            _galaxy(photo_z=2.5)

    def test_radius_positive(self):
        with pytest.raises(ValueError):
            _galaxy(half_light_radius=0.0)

    def test_ellipticity_bounds(self):
        with pytest.raises(ValueError):
            _galaxy(ellipticity=0.95)


class TestCatalog:
    def test_size(self):
        assert len(CosmosCatalog(50, seed=1)) == 50

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CosmosCatalog(0)

    def test_reproducible(self):
        a = CosmosCatalog(20, seed=3)
        b = CosmosCatalog(20, seed=3)
        assert a[7].photo_z == b[7].photo_z
        assert a[7].ra == b[7].ra

    def test_positions_inside_footprint(self):
        cat = CosmosCatalog(200, seed=2)
        pos = cat.positions()
        assert np.all(pos[:, 0] >= COSMOS_FOOTPRINT["ra_min"])
        assert np.all(pos[:, 0] <= COSMOS_FOOTPRINT["ra_max"])
        assert np.all(pos[:, 1] >= COSMOS_FOOTPRINT["dec_min"])
        assert np.all(pos[:, 1] <= COSMOS_FOOTPRINT["dec_max"])

    def test_photo_z_range_and_spread(self):
        zs = CosmosCatalog(500, seed=4).photo_zs()
        assert zs.min() >= 0.1 and zs.max() <= 2.0
        # Fig. 3: distribution peaks below z=1 but has a high-z tail.
        assert 0.4 < np.median(zs) < 1.0
        assert (zs > 1.2).mean() > 0.05

    def test_high_z_galaxies_fainter_on_average(self):
        cat = CosmosCatalog(2000, seed=5)
        zs = cat.photo_zs()
        mags = np.array([g.magnitude_i for g in cat.galaxies])
        near = mags[zs < 0.5].mean()
        far = mags[zs > 1.2].mean()
        assert far > near


class TestHostSelector:
    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            HostSelector(CosmosCatalog(5, seed=0), max_radius_fraction=0.0)

    def test_placement_within_ellipse(self):
        cat = CosmosCatalog(20, seed=6)
        selector = HostSelector(cat, max_radius_fraction=2.0)
        rng = np.random.default_rng(0)
        for _ in range(200):
            placement = selector.sample(rng)
            host = placement.host
            # Transform back into the ellipse frame and check the radius.
            cos_pa, sin_pa = np.cos(host.position_angle), np.sin(host.position_angle)
            x_ell = placement.offset_x * cos_pa + placement.offset_y * sin_pa
            y_ell = -placement.offset_x * sin_pa + placement.offset_y * cos_pa
            r_ell = np.hypot(x_ell, y_ell / host.axis_ratio)
            assert r_ell <= 2.0 * host.half_light_radius + 1e-9

    def test_offsets_fill_the_ellipse(self):
        # sqrt-radius sampling is uniform over the area: mean normalized
        # radius of a uniform disk is 2/3 of the max radius.
        cat = CosmosCatalog(1, seed=7)
        selector = HostSelector(cat, max_radius_fraction=1.0)
        rng = np.random.default_rng(1)
        host = cat[0]
        radii = []
        for _ in range(2000):
            p = selector.place_supernova(host, rng)
            cos_pa, sin_pa = np.cos(host.position_angle), np.sin(host.position_angle)
            x_ell = p.offset_x * cos_pa + p.offset_y * sin_pa
            y_ell = -p.offset_x * sin_pa + p.offset_y * cos_pa
            radii.append(np.hypot(x_ell, y_ell / host.axis_ratio) / host.half_light_radius)
        assert np.mean(radii) == pytest.approx(2.0 / 3.0, abs=0.03)

    def test_normalized_offset(self):
        p = SupernovaPlacement(host=_galaxy(half_light_radius=2.0), offset_x=1.0, offset_y=-2.0)
        assert p.normalized_offset() == (pytest.approx(0.5), pytest.approx(-1.0))
        assert p.offset_radius == pytest.approx(np.sqrt(5.0))

    def test_round_galaxy_isotropic(self):
        host = _galaxy(ellipticity=0.0)
        selector = HostSelector(CosmosCatalog(1, seed=8))
        rng = np.random.default_rng(2)
        xs = [selector.place_supernova(host, rng).offset_x for _ in range(1000)]
        ys = [selector.place_supernova(host, rng).offset_y for _ in range(1000)]
        assert abs(np.mean(xs)) < 0.1
        assert abs(np.mean(ys)) < 0.1
        assert np.std(xs) == pytest.approx(np.std(ys), rel=0.15)
