"""Tests for losses, optimisers and the data pipeline."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import Tensor

from .helpers import check_gradient

RNG = np.random.default_rng(31)


class TestMSELoss:
    def test_value(self):
        loss = nn.MSELoss()(Tensor(np.array([1.0, 2.0])), np.array([0.0, 4.0]))
        assert loss.item() == pytest.approx((1 + 4) / 2)

    def test_gradient(self):
        target = np.array([0.5, -0.5, 1.0])
        check_gradient(lambda t: nn.MSELoss()(t, target), RNG.normal(size=(3,)))

    def test_zero_at_perfect_prediction(self):
        y = RNG.normal(size=(5,))
        assert nn.MSELoss()(Tensor(y), y).item() == pytest.approx(0.0)


class TestL1AndHuber:
    def test_l1_value(self):
        loss = nn.L1Loss()(Tensor(np.array([1.0, -3.0])), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.0)

    def test_huber_quadratic_inside_delta(self):
        loss = nn.HuberLoss(delta=1.0)(Tensor(np.array([0.5])), np.array([0.0]))
        assert loss.item() == pytest.approx(0.125)

    def test_huber_linear_outside_delta(self):
        loss = nn.HuberLoss(delta=1.0)(Tensor(np.array([3.0])), np.array([0.0]))
        assert loss.item() == pytest.approx(0.5 + 2.0)

    def test_huber_gradient(self):
        target = np.zeros(6)
        check_gradient(
            lambda t: nn.HuberLoss(delta=1.0)(t, target),
            np.array([-3.0, -0.7, -0.2, 0.3, 0.8, 2.5]),
        )


class TestBCEWithLogits:
    def test_matches_manual_formula(self):
        logits = np.array([0.3, -1.2, 2.0])
        targets = np.array([1.0, 0.0, 1.0])
        loss = nn.BCEWithLogitsLoss()(Tensor(logits), targets)
        probs = 1 / (1 + np.exp(-logits))
        expected = -(targets * np.log(probs) + (1 - targets) * np.log(1 - probs)).mean()
        assert loss.item() == pytest.approx(expected, rel=1e-5)

    def test_stable_for_extreme_logits(self):
        loss = nn.BCEWithLogitsLoss()(
            Tensor(np.array([1000.0, -1000.0])), np.array([1.0, 0.0])
        )
        assert np.isfinite(loss.item())
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_gradient(self):
        targets = np.array([1.0, 0.0, 1.0, 0.0])
        check_gradient(
            lambda t: nn.BCEWithLogitsLoss()(t, targets), RNG.normal(size=(4,))
        )

    def test_gradient_is_sigmoid_minus_target(self):
        logits = Tensor(np.array([0.0]), requires_grad=True)
        nn.BCEWithLogitsLoss()(logits, np.array([1.0])).backward()
        np.testing.assert_allclose(logits.grad, [-0.5], atol=1e-6)


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = nn.CrossEntropyLoss()(logits, np.array([0, 1]))
        assert loss.item() == pytest.approx(0.0, abs=1e-4)

    def test_uniform_prediction_log_k(self):
        logits = Tensor(np.zeros((4, 3)))
        loss = nn.CrossEntropyLoss()(logits, np.array([0, 1, 2, 0]))
        assert loss.item() == pytest.approx(np.log(3), rel=1e-5)

    def test_gradient(self):
        targets = np.array([0, 2, 1])
        check_gradient(
            lambda t: nn.CrossEntropyLoss()(t, targets), RNG.normal(size=(3, 3))
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            nn.CrossEntropyLoss()(Tensor(np.zeros((2, 3))), np.array([0, 1, 2]))


class TestOptimizers:
    @staticmethod
    def _quadratic_param():
        # Minimise f(w) = ||w - target||^2.
        return nn.Parameter(np.array([5.0, -3.0], dtype=np.float32)), np.array([1.0, 2.0])

    def test_sgd_converges_on_quadratic(self):
        param, target = self._quadratic_param()
        opt = nn.SGD([param], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss = ((param - target) ** 2).sum()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        param, target = self._quadratic_param()
        opt = nn.SGD([param], lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            ((param - target) ** 2).sum().backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_adam_converges(self):
        param, target = self._quadratic_param()
        opt = nn.Adam([param], lr=0.3)
        for _ in range(300):
            opt.zero_grad()
            ((param - target) ** 2).sum().backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-2)

    def test_weight_decay_shrinks_weights(self):
        param = nn.Parameter(np.array([10.0]))
        opt = nn.SGD([param], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (param * 0.0).sum().backward()
        opt.step()
        assert abs(param.data[0]) < 10.0

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            nn.Adam([nn.Parameter(np.zeros(1))], lr=0.0)

    def test_step_skips_params_without_grad(self):
        param = nn.Parameter(np.array([1.0]))
        opt = nn.Adam([param], lr=0.1)
        opt.step()  # no gradient accumulated; should be a no-op
        np.testing.assert_allclose(param.data, [1.0])

    def test_steplr_decays(self):
        param = nn.Parameter(np.zeros(1))
        opt = nn.SGD([param], lr=1.0)
        sched = nn.StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == pytest.approx(1.0)
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_clip_grad_norm(self):
        param = nn.Parameter(np.zeros(4))
        param.grad = np.full(4, 10.0)
        norm = nn.clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, rel=1e-5)


class TestDataPipeline:
    def test_array_dataset_indexing(self):
        ds = nn.ArrayDataset(np.arange(10), np.arange(10) * 2)
        x, y = ds[3]
        assert x == 3 and y == 6

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            nn.ArrayDataset(np.arange(3), np.arange(4))

    def test_select_subset(self):
        ds = nn.ArrayDataset(np.arange(10))
        sub = ds.select([1, 5])
        assert len(sub) == 2

    def test_loader_covers_all_samples(self):
        ds = nn.ArrayDataset(np.arange(10))
        loader = nn.DataLoader(ds, batch_size=3)
        seen = np.concatenate([b[0] for b in loader])
        np.testing.assert_array_equal(np.sort(seen), np.arange(10))

    def test_loader_drop_last(self):
        ds = nn.ArrayDataset(np.arange(10))
        loader = nn.DataLoader(ds, batch_size=3, drop_last=True)
        assert len(loader) == 3
        assert sum(1 for _ in loader) == 3

    def test_loader_shuffle_reproducible(self):
        ds = nn.ArrayDataset(np.arange(100))
        first = [b[0].copy() for b in nn.DataLoader(ds, 10, shuffle=True, rng=np.random.default_rng(5))]
        second = [b[0].copy() for b in nn.DataLoader(ds, 10, shuffle=True, rng=np.random.default_rng(5))]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_loader_shuffle_changes_order(self):
        ds = nn.ArrayDataset(np.arange(100))
        loader = nn.DataLoader(ds, 100, shuffle=True, rng=np.random.default_rng(1))
        (batch,) = [b[0] for b in loader]
        assert not np.array_equal(batch, np.arange(100))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            nn.DataLoader(nn.ArrayDataset(np.arange(3)), batch_size=0)


class TestInPlaceBitIdentity:
    """The in-place optimizer rewrite must match the original out-of-place
    update formulas bit for bit (checkpoints stay reproducible)."""

    @staticmethod
    def _reference_adam(params, grads, m, v, t, lr, b1, b2, eps, wd):
        t += 1
        bias1 = 1.0 - b1**t
        bias2 = 1.0 - b2**t
        out = []
        for p, g, mm, vv in zip(params, grads, m, v):
            grad = g + wd * p if wd else g
            mm *= b1
            mm += (1.0 - b1) * grad
            vv *= b2
            vv += (1.0 - b2) * grad * grad
            out.append(p - lr * (mm / bias1) / (np.sqrt(vv / bias2) + eps))
        return out, t

    @staticmethod
    def _reference_sgd(params, grads, vel, lr, mom, wd):
        out = []
        for p, g, vv in zip(params, grads, vel):
            grad = g + wd * p if wd else g
            if mom:
                vv *= mom
                vv += grad
                update = vv
            else:
                update = grad
            out.append(p - lr * update)
        return out

    @pytest.mark.parametrize("weight_decay", [0.0, 0.01])
    def test_adam_matches_reference(self, weight_decay):
        rng = np.random.default_rng(0)
        params = [nn.Parameter(rng.normal(size=(4, 6)).astype(np.float32)) for _ in range(3)]
        ref = [p.data.copy() for p in params]
        m = [np.zeros_like(p.data) for p in params]
        v = [np.zeros_like(p.data) for p in params]
        opt = nn.Adam(params, lr=1e-3, weight_decay=weight_decay)
        t = 0
        for _ in range(30):
            grads = [rng.normal(size=p.shape).astype(np.float32) for p in params]
            for p, g in zip(params, grads):
                p.grad = g.copy()
            opt.step()
            ref, t = self._reference_adam(
                ref, grads, m, v, t, 1e-3, 0.9, 0.999, 1e-8, weight_decay
            )
        for p, r in zip(params, ref):
            np.testing.assert_array_equal(p.data, r)

    @pytest.mark.parametrize("momentum,weight_decay", [(0.0, 0.0), (0.9, 0.0), (0.9, 0.01)])
    def test_sgd_matches_reference(self, momentum, weight_decay):
        rng = np.random.default_rng(1)
        params = [nn.Parameter(rng.normal(size=(5,)).astype(np.float32)) for _ in range(2)]
        ref = [p.data.copy() for p in params]
        vel = [np.zeros_like(p.data) for p in params]
        opt = nn.SGD(params, lr=0.05, momentum=momentum, weight_decay=weight_decay)
        for _ in range(30):
            grads = [rng.normal(size=p.shape).astype(np.float32) for p in params]
            for p, g in zip(params, grads):
                p.grad = g.copy()
            opt.step()
            ref = self._reference_sgd(ref, grads, vel, 0.05, momentum, weight_decay)
        for p, r in zip(params, ref):
            np.testing.assert_array_equal(p.data, r)

    def test_checkpoint_resume_bit_identical(self):
        """Save/restore mid-run reproduces the uninterrupted trajectory."""

        def build():
            rng = np.random.default_rng(7)
            model = nn.Sequential(nn.Linear(6, 8, rng=rng), nn.ReLU(), nn.Linear(8, 1, rng=rng))
            return model, nn.Adam(model.parameters(), lr=1e-3)

        def step(model, opt, x, y):
            opt.zero_grad()
            loss = nn.MSELoss()(model(Tensor(x)).reshape(-1), Tensor(y))
            loss.backward()
            opt.step()

        rng = np.random.default_rng(3)
        batches = [
            (rng.normal(size=(4, 6)).astype(np.float32), rng.normal(size=4).astype(np.float32))
            for _ in range(10)
        ]

        straight, opt_a = build()
        for x, y in batches:
            step(straight, opt_a, x, y)

        resumed, opt_b = build()
        for x, y in batches[:5]:
            step(resumed, opt_b, x, y)
        model_state = resumed.state_dict()
        opt_state = opt_b.state_dict()
        # Fresh instances restored from the checkpoint must continue the
        # exact same trajectory despite the in-place buffer updates.
        resumed2, opt_c = build()
        resumed2.load_state_dict(model_state)
        opt_c.load_state_dict(opt_state)
        for x, y in batches[5:]:
            step(resumed2, opt_c, x, y)

        for (_, a), (_, b) in zip(
            sorted(straight.state_dict().items()), sorted(resumed2.state_dict().items())
        ):
            np.testing.assert_array_equal(a, b)


class TestDtypePolicyForward:
    def test_float32_forward_close_to_float64(self):
        """The float32 default costs precision, not correctness: a CNN-ish
        stack agrees with the preserved-float64 forward to ~1e-4."""
        rng = np.random.default_rng(11)
        x64 = rng.normal(size=(4, 2, 16, 16))
        with nn.preserve_float64():
            model = nn.Sequential(
                nn.Conv2d(2, 4, 3, rng=np.random.default_rng(0)),
                nn.PReLU(4),
                nn.MaxPool2d(2),
                nn.Flatten(),
                nn.Linear(4 * 7 * 7, 1, rng=np.random.default_rng(1)),
            )
            weights64 = {k: v.astype(np.float64) for k, v in model.state_dict().items()}
            model.load_state_dict(weights64)
            out64 = model(Tensor(x64.copy())).numpy()
            assert out64.dtype == np.float64

        weights32 = {k: v.astype(np.float32) for k, v in weights64.items()}
        model.load_state_dict(weights32)
        out32 = model(Tensor(x64.copy())).numpy()
        assert out32.dtype == np.float32
        np.testing.assert_allclose(out32, out64, rtol=1e-3, atol=1e-4)
