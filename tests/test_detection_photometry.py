"""Tests for transient detection, classical photometry, bogus artefacts
and the real/bogus classifier."""

import numpy as np
import pytest

from repro.baselines import FEATURE_NAMES, RealBogusClassifier, stamp_features
from repro.eval import auc_score
from repro.photometry import aperture_photometry, psf_photometry
from repro.survey import (
    GaussianPSF,
    detect_transients,
    inject_cosmic_ray,
    inject_dipole,
    inject_hot_pixel,
    make_bogus_stamp,
    snr_map,
)

RNG = np.random.default_rng(55)


def _psf_kernel(size=21, fwhm=0.7):
    center = (size - 1) / 2.0
    kernel = GaussianPSF(fwhm).render((size, size), (center, center))
    return kernel / kernel.sum()


def _stamp_with_source(flux=100.0, noise=1.0, size=65, seed=0):
    rng = np.random.default_rng(seed)
    c = (size - 1) / 2.0
    psf = GaussianPSF(0.7).render((size, size), (c, c))
    return flux * psf + rng.normal(0, noise, (size, size))


class TestAperturePhotometry:
    def test_recovers_flux(self):
        stamp = _stamp_with_source(flux=200.0, noise=0.5)
        result = aperture_photometry(stamp, (32.0, 32.0), radius=10.0, pixel_noise=0.5)
        assert result.flux == pytest.approx(200.0, rel=0.1)
        assert result.snr > 10

    def test_annulus_background_subtraction(self):
        stamp = _stamp_with_source(flux=200.0, noise=0.5) + 3.0  # pedestal
        result = aperture_photometry(
            stamp, (32.0, 32.0), radius=8.0, sky_annulus=(15.0, 25.0)
        )
        assert result.flux == pytest.approx(200.0, rel=0.15)

    def test_error_scales_with_aperture(self):
        stamp = _stamp_with_source()
        small = aperture_photometry(stamp, (32.0, 32.0), radius=4.0, pixel_noise=1.0)
        large = aperture_photometry(stamp, (32.0, 32.0), radius=12.0, pixel_noise=1.0)
        assert large.flux_error > small.flux_error

    def test_validation(self):
        stamp = np.zeros((21, 21))
        with pytest.raises(ValueError):
            aperture_photometry(stamp, (10.0, 10.0), radius=-1.0, pixel_noise=1.0)
        with pytest.raises(ValueError):
            aperture_photometry(stamp, (10.0, 10.0), radius=3.0)  # no error source
        with pytest.raises(ValueError):
            aperture_photometry(stamp, (10.0, 10.0), radius=3.0, sky_annulus=(5.0, 4.0))


class TestPSFPhotometry:
    def test_optimal_estimator_unbiased(self):
        fluxes = []
        c = 32.0
        psf = GaussianPSF(0.7).render((65, 65), (c, c))
        for seed in range(20):
            stamp = _stamp_with_source(flux=50.0, noise=1.0, seed=seed)
            fluxes.append(psf_photometry(stamp, psf, pixel_noise=1.0).flux)
        assert np.mean(fluxes) == pytest.approx(50.0, abs=2.0)

    def test_beats_aperture_noise(self):
        # PSF photometry is the optimal linear estimator: its quoted error
        # must be below the aperture error at equal pixel noise.
        c = 32.0
        psf = GaussianPSF(0.7).render((65, 65), (c, c))
        stamp = _stamp_with_source(flux=50.0, noise=1.0)
        psf_err = psf_photometry(stamp, psf, pixel_noise=1.0).flux_error
        ap_err = aperture_photometry(stamp, (c, c), radius=8.0, pixel_noise=1.0).flux_error
        assert psf_err < ap_err

    def test_validation(self):
        with pytest.raises(ValueError):
            psf_photometry(np.zeros((5, 5)), np.zeros((6, 6)), 1.0)
        with pytest.raises(ValueError):
            psf_photometry(np.zeros((5, 5)), np.ones((5, 5)), 0.0)
        with pytest.raises(ValueError):
            psf_photometry(np.zeros((5, 5)), np.zeros((5, 5)), 1.0)


class TestDetection:
    def test_snr_map_peak_at_source(self):
        stamp = _stamp_with_source(flux=100.0, noise=1.0)
        snr, flux = snr_map(stamp, _psf_kernel(), pixel_noise=1.0)
        peak = np.unravel_index(np.argmax(snr), snr.shape)
        assert peak == (32, 32)
        assert flux[32, 32] == pytest.approx(100.0, rel=0.15)

    def test_detects_bright_source(self):
        stamp = _stamp_with_source(flux=80.0, noise=1.0)
        detections = detect_transients(stamp, _psf_kernel(), pixel_noise=1.0)
        assert detections
        top = detections[0]
        assert (top.row, top.col) == (32, 32)
        assert top.snr > 5.0

    def test_no_detections_in_pure_noise(self):
        stamp = RNG.normal(0, 1.0, (65, 65))
        detections = detect_transients(stamp, _psf_kernel(), pixel_noise=1.0, threshold=6.0)
        assert len(detections) == 0

    def test_two_sources_both_found(self):
        size = 65
        psf = GaussianPSF(0.7)
        stamp = 80.0 * psf.render((size, size), (16.0, 16.0))
        stamp += 60.0 * psf.render((size, size), (48.0, 48.0))
        stamp += RNG.normal(0, 0.5, (size, size))
        detections = detect_transients(stamp, _psf_kernel(), pixel_noise=0.5)
        positions = {(d.row, d.col) for d in detections[:2]}
        assert (16, 16) in positions and (48, 48) in positions

    def test_detections_sorted_by_snr(self):
        stamp = _stamp_with_source(flux=100.0, noise=1.0)
        detections = detect_transients(stamp, _psf_kernel(), pixel_noise=1.0, threshold=3.0)
        snrs = [d.snr for d in detections]
        assert snrs == sorted(snrs, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            snr_map(np.zeros((10, 10)), _psf_kernel(), pixel_noise=0.0)
        with pytest.raises(ValueError):
            snr_map(np.zeros((10, 10)), np.zeros((5, 5)), pixel_noise=1.0)
        with pytest.raises(ValueError):
            detect_transients(np.zeros((10, 10)), _psf_kernel(5), 1.0, threshold=0.0)


class TestArtifacts:
    def test_cosmic_ray_adds_flux(self):
        stamp = np.zeros((65, 65))
        out = inject_cosmic_ray(stamp, np.random.default_rng(0), amplitude=50.0)
        assert out.max() >= 30.0
        assert stamp.max() == 0.0  # input untouched

    def test_hot_pixel_single(self):
        stamp = np.zeros((65, 65))
        out = inject_hot_pixel(stamp, np.random.default_rng(1), amplitude=80.0)
        assert (out > 0).sum() == 1

    def test_dipole_balanced(self):
        stamp = np.zeros((65, 65))
        out = inject_dipole(stamp, np.random.default_rng(2), amplitude=30.0)
        assert out.max() > 5.0
        assert out.min() < -5.0
        assert abs(out.sum()) < 1.0  # positive and negative blobs cancel

    def test_make_bogus_kinds(self):
        rng = np.random.default_rng(3)
        for kind in ("cosmic", "dipole", "hot"):
            stamp = make_bogus_stamp((65, 65), 1.0, rng, kind=kind)
            assert stamp.shape == (65, 65)
            assert np.abs(stamp).max() > 3.0

    def test_validation(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            inject_cosmic_ray(np.zeros((20, 20)), rng, amplitude=-1.0)
        with pytest.raises(ValueError):
            inject_hot_pixel(np.zeros((20, 20)), rng, amplitude=0.0)
        with pytest.raises(ValueError):
            inject_dipole(np.zeros((30, 30)), rng, sigma=-1.0)
        with pytest.raises(ValueError):
            make_bogus_stamp((30, 30), 1.0, rng, kind="alien")


class TestRealBogus:
    @staticmethod
    def _make_dataset(n_per_class=60, seed=0):
        rng = np.random.default_rng(seed)
        psf = GaussianPSF(0.7)
        real, bogus = [], []
        for i in range(n_per_class):
            flux = rng.uniform(20, 120)
            stamp = flux * psf.render((33, 33), (16.0, 16.0))
            stamp += rng.normal(0, 1.0, (33, 33))
            real.append(stamp)
            bogus.append(make_bogus_stamp((33, 33), 1.0, rng))
        stamps = np.array(real + bogus)
        labels = np.array([1.0] * n_per_class + [0.0] * n_per_class)
        return stamps, labels

    def test_feature_vector_shape(self):
        features = stamp_features(RNG.normal(size=(33, 33)))
        assert features.shape == (len(FEATURE_NAMES),)
        assert np.all(np.isfinite(features))

    def test_feature_validation(self):
        with pytest.raises(ValueError):
            stamp_features(np.zeros(10))

    def test_separates_real_from_bogus(self):
        stamps, labels = self._make_dataset(seed=1)
        test_stamps, test_labels = self._make_dataset(seed=2)
        clf = RealBogusClassifier(n_trees=40, seed=3).fit(stamps, labels)
        scores = clf.predict_proba(test_stamps)
        assert auc_score(test_labels, scores) > 0.9

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RealBogusClassifier().predict_proba(np.zeros((1, 33, 33)))

    def test_input_validation(self):
        with pytest.raises(ValueError):
            RealBogusClassifier().fit(np.zeros((3, 33)), np.zeros(3))
