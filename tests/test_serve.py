"""Degraded-input serving: validation/repair, band masking, injectors."""

import json
import pickle

import numpy as np
import pytest

from repro.core import SupernovaPipeline
from repro.core.features import features_from_arrays, masked_features_from_arrays
from repro.datasets import BuildConfig, DatasetBuilder, N_BANDS
from repro.runtime import (
    CorruptArtifactError,
    DropBand,
    NaNPixels,
    SaturateRegion,
    TruncateCutout,
)
from repro.serve import (
    DegradedInputError,
    FluxPrior,
    InferenceEngine,
    RepairConfig,
    clip_difference_outliers,
    diagnose_and_repair,
    inpaint_bad_pixels,
)
from repro.survey import ImagingConfig

pytestmark = pytest.mark.faults


@pytest.fixture(scope="module")
def dataset():
    config = BuildConfig(
        n_ia=8, n_non_ia=8, seed=17, catalog_size=80,
        imaging=ImagingConfig(stamp_size=41),
    )
    return DatasetBuilder(config).build()


@pytest.fixture(scope="module")
def engine(dataset):
    pipe = SupernovaPipeline(input_size=36, units=8, epochs_used=1, seed=0)
    return InferenceEngine(pipe, prior=FluxPrior.from_dataset(dataset))


def _clean_pair(rng=None, size=21):
    rng = rng or np.random.default_rng(0)
    return rng.normal(0.0, 3.0, size=(2, size, size)).astype(np.float32)


class TestValidationRepair:
    def test_clean_pair_passes(self):
        _, diag = diagnose_and_repair(_clean_pair(), visit=0)
        assert diag.clean and not diag.rejected
        assert diag.band == "g"

    def test_few_nans_repaired(self):
        pair = _clean_pair()
        pair[1, 3:6, 3:6] = np.nan
        repaired, diag = diagnose_and_repair(pair, visit=1)
        assert diag.repaired and not diag.rejected
        assert diag.n_nonfinite == 9
        assert np.isfinite(repaired).all()

    def test_saturated_block_repaired(self):
        config = RepairConfig(saturation_level=100.0)
        pair = _clean_pair()
        pair[1, :4, :4] = 500.0
        repaired, diag = diagnose_and_repair(pair, visit=2, config=config)
        assert diag.n_saturated == 16 and diag.repaired
        assert repaired.max() < 100.0

    def test_heavy_damage_rejected(self):
        pair = _clean_pair()
        pair[1, :15, :] = np.nan  # ~36% of both channels' pixels
        _, diag = diagnose_and_repair(pair, visit=0)
        assert diag.rejected and "budget" in diag.reason

    def test_missing_channel_rejected(self):
        pair = _clean_pair()
        pair[0] = np.nan
        _, diag = diagnose_and_repair(pair, visit=0)
        assert diag.rejected and "missing visit" in diag.reason

    def test_inpaint_uses_neighbourhood_median(self):
        image = np.full((9, 9), 7.0, dtype=np.float32)
        bad = np.zeros((9, 9), dtype=bool)
        bad[4, 4] = True
        image[4, 4] = np.nan
        out = inpaint_bad_pixels(image, bad)
        assert out[4, 4] == pytest.approx(7.0)

    def test_sigma_clip_hits_cosmic_ray_not_psf(self):
        rng = np.random.default_rng(5)
        ref = rng.normal(0.0, 2.0, size=(25, 25)).astype(np.float32)
        obs = ref + rng.normal(0.0, 0.5, size=ref.shape).astype(np.float32)
        # PSF-like source: broad Gaussian blob, neighbours support the peak.
        yy, xx = np.mgrid[:25, :25]
        psf = 200.0 * np.exp(-((yy - 12.0) ** 2 + (xx - 12.0) ** 2) / (2 * 2.0**2))
        obs = obs + psf.astype(np.float32)
        obs[3, 3] += 300.0  # isolated cosmic-ray pixel
        repaired, n = clip_difference_outliers(ref, obs, RepairConfig())
        assert n >= 1
        assert repaired[3, 3] < obs[3, 3] - 100.0
        assert repaired[12, 12] == pytest.approx(obs[12, 12])  # SN peak untouched

    def test_repair_config_validation(self):
        with pytest.raises(ValueError):
            RepairConfig(max_repair_fraction=1.5)
        with pytest.raises(ValueError):
            RepairConfig(clip_sigma=0.0)


class TestInjectors:
    @pytest.mark.parametrize(
        "injector",
        [DropBand(2), NaNPixels(0.1, seed=3), SaturateRegion(4, seed=1), TruncateCutout(0.3)],
        ids=["drop", "nan", "saturate", "truncate"],
    )
    def test_picklable_and_pure(self, injector):
        clone = pickle.loads(pickle.dumps(injector))
        pairs = np.zeros((2, 10, 2, 9, 9), dtype=np.float32)
        out = injector(pairs)
        assert np.array_equal(out, clone(pairs), equal_nan=True)
        assert not np.isnan(pairs).any()  # input untouched

    def test_per_sample_determinism_independent_of_batch(self):
        injector = NaNPixels(0.05, seed=9)
        pairs = np.random.default_rng(0).normal(size=(4, 5, 2, 11, 11))
        full = injector(pairs)
        head = injector(pairs[:2])
        assert np.array_equal(full[:2], head, equal_nan=True)

    def test_drop_band_hits_expected_visits(self):
        pairs = np.ones((1, 2 * N_BANDS, 2, 5, 5), dtype=np.float32)
        out = DropBand([1, 3])(pairs)
        for epoch in range(2):
            for band in range(N_BANDS):
                visit = epoch * N_BANDS + band
                if band in (1, 3):
                    assert np.isnan(out[0, visit]).all()
                else:
                    assert np.isfinite(out[0, visit]).all()

    def test_truncate_blanks_trailing_rows(self):
        pairs = np.ones((1, 5, 2, 10, 10), dtype=np.float32)
        out = TruncateCutout(0.4)(pairs)
        assert np.isnan(out[0, 0, 0, 6:, :]).all()
        assert np.isfinite(out[0, 0, 0, :6, :]).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            DropBand(7)
        with pytest.raises(ValueError):
            NaNPixels(1.5)
        with pytest.raises(ValueError):
            SaturateRegion(0)
        with pytest.raises(ValueError):
            TruncateCutout(-0.1)
        with pytest.raises(ValueError):
            DropBand(0)(np.zeros((3, 2, 5, 5)))


class TestFluxPrior:
    def test_from_dataset_finite(self, dataset):
        prior = FluxPrior.from_dataset(dataset)
        assert prior.flux_feature.shape == (N_BANDS,)
        assert np.isfinite(prior.flux_feature).all()

    def test_neutral_is_zero(self):
        assert not FluxPrior.neutral().flux_feature.any()

    def test_save_load_roundtrip(self, dataset, tmp_path):
        prior = FluxPrior.from_dataset(dataset)
        prior.save(tmp_path)
        loaded = FluxPrior.load(tmp_path)
        np.testing.assert_allclose(loaded.flux_feature, prior.flux_feature)

    def test_missing_file_is_none(self, tmp_path):
        assert FluxPrior.load(tmp_path) is None

    def test_corrupt_prior_raises(self, tmp_path):
        (tmp_path / "flux_prior.json").write_text("{not json")
        with pytest.raises(CorruptArtifactError):
            FluxPrior.load(tmp_path)

    def test_validation(self):
        with pytest.raises(ValueError):
            FluxPrior(np.zeros(3))
        with pytest.raises(ValueError):
            FluxPrior(np.full(N_BANDS, np.nan))


class TestMaskedFeatures:
    def test_matches_unmasked_when_all_usable(self, dataset):
        flux = dataset.true_flux[:, :N_BANDS]
        mjd = dataset.visit_mjd[:, :N_BANDS]
        usable = np.ones_like(flux, dtype=bool)
        masked = masked_features_from_arrays(flux, mjd, usable, 1, 1)
        plain = features_from_arrays(flux, mjd, 1, 1)
        np.testing.assert_allclose(masked, plain, rtol=1e-6)

    def test_masked_slots_take_prior_and_zero_date(self):
        flux = np.array([[10.0, 20.0, np.nan, 40.0, 50.0]])
        mjd = np.array([[0.0, 1.0, np.nan, 3.0, 4.0]])
        usable = np.array([[True, True, False, True, True]])
        prior = np.arange(N_BANDS, dtype=float)
        feats = masked_features_from_arrays(
            flux, mjd, usable, 1, 1, prior_flux_feature=prior
        )
        assert np.isfinite(feats).all()
        assert feats[0, 2] == pytest.approx(prior[2])  # flux slot of band i
        assert feats[0, N_BANDS + 2] == 0.0  # date slot of band i
        # Date centring uses usable dates only: mean of (0, 1, 3, 4) = 2.
        assert feats[0, N_BANDS] == pytest.approx((0.0 - 2.0) / 50.0)

    def test_all_masked_row_is_pure_prior(self):
        flux = np.full((1, N_BANDS), np.nan)
        mjd = np.full((1, N_BANDS), np.nan)
        usable = np.zeros((1, N_BANDS), dtype=bool)
        prior = np.linspace(0.5, 2.5, N_BANDS)
        feats = masked_features_from_arrays(
            flux, mjd, usable, 1, 1, prior_flux_feature=prior
        )
        np.testing.assert_allclose(feats[0, :N_BANDS], prior, rtol=1e-6)
        assert not feats[0, N_BANDS:].any()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            masked_features_from_arrays(
                np.zeros((2, N_BANDS)), np.zeros((2, N_BANDS)), np.zeros((3, N_BANDS), bool)
            )


class TestInferenceEngine:
    def test_clean_samples_served_clean(self, engine, dataset):
        results = engine.classify(dataset)
        assert len(results) == len(dataset)
        for r in results:
            assert not r.degraded
            assert r.confidence == 1.0
            assert r.usable_bands == ["g", "r", "i", "z", "y"]
            assert 0.0 <= r.probability <= 1.0

    def test_four_of_five_bands_dropped_still_served(self, engine, dataset):
        corrupted = DropBand([0, 1, 2, 3])(dataset.pairs)
        results = engine.classify_arrays(corrupted, dataset.visit_mjd)
        for r in results:
            assert r.degraded
            assert r.usable_bands == ["y"]
            assert 0.0 < r.confidence < 1.0
            assert 0.0 <= r.probability <= 1.0
            assert sum(1 for d in r.diagnostics if d.rejected) == 4

    def test_all_bands_dropped_falls_back_to_prior(self, engine, dataset):
        corrupted = DropBand([0, 1, 2, 3, 4])(dataset.pairs)
        results = engine.classify_arrays(corrupted, dataset.visit_mjd)
        probs = {round(r.probability, 9) for r in results}
        assert len(probs) == 1  # identical prior-only score for everyone
        assert all(r.confidence == 0.0 and r.usable_bands == [] for r in results)

    def test_nan_pixels_repaired_not_rejected(self, engine, dataset):
        corrupted = NaNPixels(0.02, seed=4)(dataset.pairs)
        results = engine.classify_arrays(corrupted, dataset.visit_mjd)
        for r in results:
            assert r.degraded
            assert r.usable_bands == ["g", "r", "i", "z", "y"]
            assert all(d.repaired and not d.rejected for d in r.diagnostics)

    def test_nonfinite_date_masks_visit(self, engine, dataset):
        mjd = dataset.visit_mjd.copy()
        mjd[:, 0] = np.nan
        results = engine.classify_arrays(dataset.pairs, mjd)
        for r in results:
            assert r.degraded and "g" not in r.usable_bands
            assert any("date" in d.reason for d in r.diagnostics)

    def test_strict_mode_raises(self, engine, dataset):
        corrupted = DropBand(2)(dataset.pairs)
        with pytest.raises(DegradedInputError, match="band i"):
            engine.classify_arrays(corrupted, dataset.visit_mjd, strict=True)

    def test_strict_engine_default(self, dataset, engine):
        strict_engine = InferenceEngine(
            engine.pipeline, prior=engine.prior, strict=True
        )
        corrupted = TruncateCutout(0.6)(dataset.pairs)
        with pytest.raises(DegradedInputError):
            strict_engine.classify_arrays(corrupted, dataset.visit_mjd)
        # Per-call override still serves it.
        results = strict_engine.classify_arrays(
            corrupted, dataset.visit_mjd, strict=False
        )
        assert all(r.degraded for r in results)

    def test_stream_matches_classify(self, engine, dataset):
        streamed = list(engine.stream(dataset, batch_size=3))
        batched = engine.classify(dataset)
        assert [r.index for r in streamed] == [r.index for r in batched]
        np.testing.assert_allclose(
            [r.probability for r in streamed],
            [r.probability for r in batched],
            rtol=1e-6,
        )

    def test_stream_workers_match_serial(self, engine, dataset):
        serial = list(engine.stream(dataset, batch_size=3))
        threaded = list(engine.stream(dataset, batch_size=3, workers=3))
        assert [r.index for r in threaded] == [r.index for r in serial]
        np.testing.assert_allclose(
            [r.probability for r in threaded],
            [r.probability for r in serial],
            rtol=1e-6,
        )

    def test_stream_workers_contain_batch_failure(
        self, engine, dataset, monkeypatch
    ):
        """A batch blowing up on one worker must not sink the stream."""
        real = engine.classify_arrays

        def flaky(pairs, mjd, strict=None, start_index=0):
            if start_index == 4:
                raise RuntimeError("injected batch failure")
            return real(pairs, mjd, strict=strict, start_index=start_index)

        monkeypatch.setattr(engine, "classify_arrays", flaky)
        results = list(engine.stream(dataset, batch_size=4, workers=2))
        assert [r.index for r in results] == list(range(len(dataset)))
        failed = [r for r in results if r.error is not None]
        assert [r.index for r in failed] == [4, 5, 6, 7]
        for result in failed:
            assert result.degraded and result.confidence == 0.0
            assert result.probability == 0.5 and result.usable_bands == []
            assert "RuntimeError" in result.error
            assert result.to_dict()["error"] == result.error
        healthy = [r for r in results if r.error is None]
        assert len(healthy) == len(dataset) - 4
        assert all(r.error is None for r in healthy)

    def test_stream_workers_coalesce_to_min_task_size(
        self, engine, dataset, monkeypatch
    ):
        """Thread tasks carry >= min_task_size samples (whole batches)."""
        real = engine.classify_arrays
        task_sizes = []

        def spying(pairs, mjd, strict=None, start_index=0):
            task_sizes.append(len(pairs))
            return real(pairs, mjd, strict=strict, start_index=start_index)

        monkeypatch.setattr(engine, "classify_arrays", spying)
        serial = list(engine.stream(dataset, batch_size=3))
        task_sizes.clear()
        coalesced = list(
            engine.stream(dataset, batch_size=3, workers=2, min_task_size=5)
        )
        # 5 rounded up to whole batches of 3 -> tasks of 6 (last may be
        # shorter); small --batch-size no longer means sliver GEMMs.
        assert all(size == 6 for size in task_sizes[:-1])
        assert [r.index for r in coalesced] == [r.index for r in serial]
        np.testing.assert_allclose(
            [r.probability for r in coalesced],
            [r.probability for r in serial],
            rtol=1e-6,
        )

    def test_stream_min_task_size_validation(self, engine, dataset):
        with pytest.raises(ValueError, match="min_task_size"):
            list(engine.stream(dataset, batch_size=3, min_task_size=0))

    def test_stream_workers_strict_reraises_batch_failure(
        self, engine, dataset, monkeypatch
    ):
        real = engine.classify_arrays

        def flaky(pairs, mjd, strict=None, start_index=0):
            if start_index == 4:
                raise RuntimeError("injected batch failure")
            return real(pairs, mjd, strict=strict, start_index=start_index)

        monkeypatch.setattr(engine, "classify_arrays", flaky)
        with pytest.raises(RuntimeError, match="injected batch failure"):
            list(engine.stream(dataset, batch_size=4, workers=2, strict=True))

    def test_batch_shape_errors(self, engine, dataset):
        with pytest.raises(ValueError, match="stamp pairs"):
            engine.classify_arrays(np.zeros((2, 5, 9, 9)), np.zeros((2, 5)))
        with pytest.raises(ValueError, match="visit_mjd"):
            engine.classify_arrays(dataset.pairs, dataset.visit_mjd[:, :3])
        with pytest.raises(ValueError, match="smaller than"):
            engine.classify_arrays(
                np.zeros((1, 5, 2, 8, 8), dtype=np.float32), np.zeros((1, 5))
            )

    def test_result_json_roundtrip(self, engine, dataset):
        corrupted = SaturateRegion(6, seed=2)(dataset.pairs[:2])
        result = engine.classify_arrays(corrupted, dataset.visit_mjd[:2])[0]
        payload = json.loads(result.to_json())
        assert payload["degraded"] is True
        assert payload["n_repaired_visits"] >= 1
        assert set(payload) >= {"index", "probability", "confidence", "usable_bands"}

    def test_save_and_from_directory_roundtrip(self, engine, dataset, tmp_path):
        engine.save(str(tmp_path))
        loaded = InferenceEngine.from_directory(str(tmp_path))
        np.testing.assert_allclose(
            loaded.prior.flux_feature, engine.prior.flux_feature
        )
        np.testing.assert_allclose(
            [r.probability for r in loaded.classify(dataset)],
            [r.probability for r in engine.classify(dataset)],
            rtol=1e-5,
        )

    def test_classifier_rejects_nonfinite_features(self):
        from repro.core.classifier import LightCurveClassifier

        clf = LightCurveClassifier(input_dim=10, units=8)
        features = np.zeros((4, 10), dtype=np.float32)
        features[2, 1] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            clf.predict_proba(features)
