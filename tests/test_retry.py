"""runtime.retry: bounded attempts, backoff shape, determinism, deadline."""

import pytest

from repro.runtime import RetryBudgetExceeded, RetrySpec, geometric_value, retry_call
from repro.runtime.guards import RetryPolicy


class TestGeometricValue:
    def test_growth_and_decay(self):
        assert geometric_value(0.05, 2.0, 0) == 0.05
        assert geometric_value(0.05, 2.0, 3) == 0.4
        assert geometric_value(0.1, 0.5, 2) == pytest.approx(0.025)

    def test_floor_clamps(self):
        assert geometric_value(1e-3, 0.1, 5, floor=1e-6) == 1e-6

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            geometric_value(1.0, 2.0, -1)

    def test_backs_the_training_lr_backoff(self):
        """guards.RetryPolicy.next_lr is one step of the same formula."""
        policy = RetryPolicy(max_retries=3, lr_backoff=0.5, min_lr=1e-5)
        assert policy.next_lr(1e-3) == geometric_value(1e-3, 0.5, 1, floor=1e-5)
        assert policy.next_lr(1.5e-5) == 1e-5  # floored


class TestRetrySpec:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_s": -0.1},
            {"factor": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
            {"deadline_s": 0.0},
        ],
    )
    def test_invalid_spec_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetrySpec(**kwargs)

    def test_delays_shape_without_jitter(self):
        spec = RetrySpec(max_attempts=4, base_delay_s=0.05, factor=2.0, jitter=0.0)
        assert list(spec.delays()) == [0.05, 0.1, 0.2]

    def test_max_delay_caps_growth(self):
        spec = RetrySpec(
            max_attempts=6, base_delay_s=1.0, factor=10.0, max_delay_s=5.0, jitter=0.0
        )
        assert list(spec.delays()) == [1.0, 5.0, 5.0, 5.0, 5.0]

    def test_single_attempt_means_no_retries(self):
        assert list(RetrySpec(max_attempts=1).delays()) == []

    def test_jitter_is_deterministic_and_bounded(self):
        spec = RetrySpec(max_attempts=5, base_delay_s=0.1, jitter=0.25, seed=7)
        first = list(spec.delays())
        again = list(RetrySpec(max_attempts=5, base_delay_s=0.1, jitter=0.25, seed=7).delays())
        assert first == again  # pure function of the spec
        for delay, nominal in zip(first, [0.1, 0.2, 0.4, 0.8]):
            assert nominal * 0.75 <= delay <= nominal * 1.25
        different_seed = list(
            RetrySpec(max_attempts=5, base_delay_s=0.1, jitter=0.25, seed=8).delays()
        )
        assert first != different_seed


class TestRetryCall:
    def test_first_try_success_sleeps_never(self):
        sleeps = []
        assert retry_call(lambda: 42, RetrySpec(), sleep=sleeps.append) == 42
        assert sleeps == []

    def test_retries_then_succeeds(self):
        sleeps, retries = [], []
        attempts = iter([RuntimeError("a"), RuntimeError("b"), "ok"])

        def flaky():
            outcome = next(attempts)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        result = retry_call(
            flaky,
            RetrySpec(max_attempts=3, base_delay_s=0.05, factor=2.0, jitter=0.0),
            on_retry=lambda attempt, exc, delay: retries.append((attempt, str(exc), delay)),
            sleep=sleeps.append,
        )
        assert result == "ok"
        assert sleeps == [0.05, 0.1]
        assert retries == [(1, "a", 0.05), (2, "b", 0.1)]

    def test_budget_exhaustion_chains_last_failure(self):
        def always_fails():
            raise KeyError("nope")

        with pytest.raises(RetryBudgetExceeded) as excinfo:
            retry_call(
                always_fails,
                RetrySpec(max_attempts=3, jitter=0.0),
                sleep=lambda _: None,
            )
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.__cause__, KeyError)

    def test_non_matching_exception_propagates_immediately(self):
        calls = []

        def wrong_kind():
            calls.append(1)
            raise TypeError("not retryable")

        with pytest.raises(TypeError):
            retry_call(
                wrong_kind,
                RetrySpec(max_attempts=5),
                retry_on=(ValueError,),
                sleep=lambda _: None,
            )
        assert len(calls) == 1

    def test_deadline_bounds_the_loop(self):
        clock = iter([0.0, 0.9, 1.9, 2.9]).__next__

        def always_fails():
            raise ValueError("still broken")

        with pytest.raises(RetryBudgetExceeded) as excinfo:
            retry_call(
                always_fails,
                RetrySpec(
                    max_attempts=10, base_delay_s=1.0, factor=1.0,
                    jitter=0.0, deadline_s=2.5,
                ),
                sleep=lambda _: None,
                clock=clock,
            )
        # Attempt 3 would need to wait until t=2.9 > 2.5: budget refused.
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.__cause__, ValueError)
