"""Tests for the SNPCC-style generator, temperature scaling and the LSTM
baseline variant."""

import numpy as np
import pytest

from repro.baselines import LSTMCell, RecurrentClassifier
from repro.core import TemperatureScaler
from repro.datasets import SNPCCConfig, generate_snpcc
from repro.eval import expected_calibration_error
from repro.nn import Tensor


class TestSNPCCGenerator:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_snpcc(SNPCCConfig(n_samples=150, seed=3))

    def test_sample_count(self, dataset):
        assert len(dataset) == 150

    def test_class_mix_unbalanced(self, dataset):
        frac = dataset.labels().mean()
        assert 0.1 < frac < 0.45  # ~25% SNIa as in the challenge

    def test_observation_count_spread(self, dataset):
        counts = dataset.observation_counts()
        assert counts.min() >= 4
        # Irregular sampling: a real spread of light-curve lengths.
        assert counts.max() - counts.min() >= 5

    def test_arrays_aligned(self, dataset):
        sample = dataset[0]
        n = sample.n_observations
        assert sample.band.shape == (n,)
        assert sample.flux.shape == (n,)
        assert sample.flux_err.shape == (n,)
        assert np.all(sample.flux_err > 0)

    def test_detections_significant(self, dataset):
        for sample in dataset.samples[:20]:
            snr = sample.flux / sample.flux_err
            assert np.all(snr >= 3.0 - 1e-9)

    def test_redshifts_recorded(self, dataset):
        z = np.array([s.redshift for s in dataset.samples])
        assert np.all((z >= 0.1) & (z <= 2.0))

    def test_reproducible(self):
        a = generate_snpcc(SNPCCConfig(n_samples=30, seed=9))
        b = generate_snpcc(SNPCCConfig(n_samples=30, seed=9))
        np.testing.assert_allclose(a[0].flux, b[0].flux)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SNPCCConfig(n_samples=0)
        with pytest.raises(ValueError):
            SNPCCConfig(ia_fraction=1.5)
        with pytest.raises(ValueError):
            SNPCCConfig(cadence_days=0.0)

    def test_ia_lightcurves_shorter_than_iip(self, dataset):
        # IIP plateaus stay detectable longer than Ia declines.
        spans_ia, spans_iip = [], []
        for sample in dataset.samples:
            span = sample.mjd.max() - sample.mjd.min()
            if sample.sn_type == "Ia":
                spans_ia.append(span)
            elif sample.sn_type == "IIP":
                spans_iip.append(span)
        if len(spans_ia) > 5 and len(spans_iip) > 5:
            assert np.median(spans_iip) >= np.median(spans_ia)


class TestSNPCCFeatures:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_snpcc(SNPCCConfig(n_samples=80, seed=13))

    def test_shape(self, dataset):
        from repro.baselines import SNPCC_FEATURE_DIM, snpcc_features

        x, y = snpcc_features(dataset)
        assert x.shape == (80, SNPCC_FEATURE_DIM)
        assert y.shape == (80,)

    def test_features_finite(self, dataset):
        from repro.baselines import snpcc_features

        x, _ = snpcc_features(dataset)
        assert np.all(np.isfinite(x))

    def test_undetected_band_is_zero_block(self):
        from repro.baselines import snpcc_sample_features
        from repro.datasets import SNPCCSample

        sample = SNPCCSample(
            mjd=np.array([10.0, 15.0]),
            band=np.array([2, 2]),  # only i band detected
            flux=np.array([50.0, 40.0]),
            flux_err=np.array([1.0, 1.0]),
            is_ia=True,
            redshift=0.5,
            sn_type="Ia",
        )
        features = snpcc_sample_features(sample)
        np.testing.assert_allclose(features[:10], 0.0)  # g and r blocks
        assert features[10] > 0  # i-band peak flux

    def test_carries_class_signal(self, dataset):
        from repro.baselines import snpcc_features
        from repro.eval import auc_score

        x, y = snpcc_features(dataset)
        if y.min() == y.max():
            pytest.skip("single-class draw")
        # Peak-flux features alone should beat chance (Ia are brighter).
        score = x[:, 0::5].max(axis=1)
        assert auc_score(y, score) > 0.5


class TestTemperatureScaler:
    def test_recovers_known_temperature(self):
        rng = np.random.default_rng(0)
        true_logits = rng.normal(0, 2, 20000)
        labels = (rng.random(20000) < 1 / (1 + np.exp(-true_logits))).astype(float)
        # The "model" reports logits that are 3x too confident.
        scaler = TemperatureScaler().fit(true_logits * 3.0, labels)
        assert scaler.temperature == pytest.approx(3.0, rel=0.1)

    def test_improves_calibration(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(0, 1.5, 5000)
        labels = (rng.random(5000) < 1 / (1 + np.exp(-logits))).astype(float)
        overconfident = logits * 4.0
        raw_probs = 1 / (1 + np.exp(-overconfident))
        scaler = TemperatureScaler().fit(overconfident, labels)
        calibrated = scaler.transform(overconfident)
        assert expected_calibration_error(labels, calibrated) < (
            expected_calibration_error(labels, raw_probs)
        )

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            TemperatureScaler().transform(np.zeros(3))

    def test_validation(self):
        scaler = TemperatureScaler()
        with pytest.raises(ValueError):
            scaler.fit(np.zeros(3), np.zeros(2))
        with pytest.raises(ValueError):
            scaler.fit(np.zeros(0), np.zeros(0))
        with pytest.raises(ValueError):
            scaler.fit(np.zeros(2), np.array([0.0, 2.0]))
        with pytest.raises(ValueError):
            scaler.fit(np.zeros(2), np.zeros(2), bounds=(2.0, 1.0))

    def test_logit_roundtrip(self):
        probs = np.array([0.1, 0.5, 0.9])
        logits = TemperatureScaler.probabilities_to_logits(probs)
        back = 1 / (1 + np.exp(-logits))
        np.testing.assert_allclose(back, probs, rtol=1e-6)


class TestLSTM:
    def test_cell_shapes(self):
        rng = np.random.default_rng(2)
        cell = LSTMCell(10, 8, rng=rng)
        h = Tensor(np.zeros((4, 8), dtype=np.float32))
        c = Tensor(np.zeros((4, 8), dtype=np.float32))
        x = Tensor(rng.normal(size=(4, 10)).astype(np.float32))
        h_next, c_next = cell(x, h, c)
        assert h_next.shape == (4, 8)
        assert c_next.shape == (4, 8)

    def test_classifier_lstm_variant(self):
        rng = np.random.default_rng(3)
        model = RecurrentClassifier(input_dim=10, hidden_dim=8, cell="lstm", rng=rng)
        out = model(Tensor(rng.normal(size=(3, 4, 10)).astype(np.float32)))
        assert out.shape == (3,)

    def test_invalid_cell(self):
        with pytest.raises(ValueError):
            RecurrentClassifier(cell="vanilla")

    def test_lstm_learns_memory_task(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(300, 4, 10)).astype(np.float32)
        y = (x[:, 0, 0] > 0).astype(np.float32)  # label set by the FIRST step
        model = RecurrentClassifier(input_dim=10, hidden_dim=12, cell="lstm", rng=rng)
        from repro.core import TrainConfig
        from repro.core.training import fit
        from repro.eval import auc_score
        from repro.nn import BCEWithLogitsLoss

        bce = BCEWithLogitsLoss()

        def loss_fn(m, inputs, target):
            return bce(m(Tensor(inputs[0])), target)

        fit(
            model, [x], y, loss_fn,
            TrainConfig(epochs=60, batch_size=64, seed=5, learning_rate=3e-3),
        )
        assert auc_score(y, model.predict_proba(x)) > 0.85
