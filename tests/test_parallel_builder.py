"""Parallel dataset builds: per-sample seeding, worker quarantine, resume.

The version-2 seeding contract gives every ``(slot, attempt)`` its own
``SeedSequence`` child, so serial, parallel and resumed builds must all
produce bit-identical datasets; these tests pin that acceptance
criterion plus the failure paths (worker-side quarantine, abort
accounting, checkpoint interchange between worker counts).
"""

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import BuildConfig, DatasetBuilder, load_dataset
from repro.datasets.io import _FIELDS
from repro.runtime import (
    BuildAborted,
    FailSlot,
    SimulatedCrash,
    crash_on_nth_sample,
)
from repro.survey import ImagingConfig


def lc_config(n=6, seed=3, workers=1):
    return BuildConfig(
        n_ia=n, n_non_ia=n, seed=seed, render_images=False,
        catalog_size=100, workers=workers,
    )


def image_config(workers=1):
    return BuildConfig(
        n_ia=2, n_non_ia=2, seed=5, catalog_size=50,
        imaging=ImagingConfig(stamp_size=21), workers=workers,
    )


def datasets_equal(a, b):
    return all(np.array_equal(getattr(a, f), getattr(b, f)) for f in _FIELDS)


class TestConfig:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError, match="workers"):
            BuildConfig(n_ia=1, n_non_ia=1, workers=0)

    def test_workers_not_in_fingerprint(self):
        # Serial and parallel builders share checkpoints.
        serial = DatasetBuilder(lc_config(workers=1))._fingerprint()
        parallel = DatasetBuilder(lc_config(workers=3))._fingerprint()
        assert serial == parallel
        assert serial["version"] == 2


class TestBitIdenticalParity:
    def test_lightcurve_parallel_matches_serial(self):
        serial = DatasetBuilder(lc_config(workers=1)).build()
        parallel = DatasetBuilder(lc_config(workers=2)).build()
        assert datasets_equal(serial, parallel)

    def test_imaging_parallel_matches_serial(self):
        serial = DatasetBuilder(image_config(workers=1)).build()
        parallel = DatasetBuilder(image_config(workers=2)).build()
        assert datasets_equal(serial, parallel)

    def test_serial_rebuild_is_deterministic(self):
        assert datasets_equal(
            DatasetBuilder(lc_config()).build(), DatasetBuilder(lc_config()).build()
        )

    def test_quarantine_is_slot_local(self):
        # A failed attempt redraws only its own slot: every other slot is
        # bit-identical to the fault-free build.
        clean = DatasetBuilder(lc_config()).build()
        builder = DatasetBuilder(lc_config())
        faulted = builder.build(fault_hook=FailSlot(3))
        assert builder.report.n_quarantined == 1
        others = [i for i in range(len(clean)) if i != 3]
        for name in _FIELDS:
            np.testing.assert_array_equal(
                getattr(clean, name)[others], getattr(faulted, name)[others]
            )
        assert not np.array_equal(clean.redshifts[3], faulted.redshifts[3])


class TestWorkerQuarantine:
    def test_child_failure_quarantines_single_slot(self):
        builder = DatasetBuilder(lc_config(workers=2))
        dataset = builder.build(fault_hook=FailSlot(3))
        report = builder.report
        assert len(dataset) == 12
        assert int(dataset.labels.sum()) == 6
        assert report.n_built == 12
        assert report.n_quarantined == 1
        assert report.quarantined[0].slot == 3
        assert report.quarantined[0].rng_state  # replayable seed descriptor

    def test_parallel_report_matches_serial(self):
        serial = DatasetBuilder(lc_config(workers=1))
        parallel = DatasetBuilder(lc_config(workers=2))
        ds_serial = serial.build(fault_hook=FailSlot(4, fail_attempts=2))
        ds_parallel = parallel.build(fault_hook=FailSlot(4, fail_attempts=2))
        assert datasets_equal(ds_serial, ds_parallel)
        assert serial.report.to_dict() == parallel.report.to_dict()

    def test_parallel_abort_carries_consistent_report(self):
        builder = DatasetBuilder(lc_config(workers=2))
        with pytest.raises(BuildAborted) as excinfo:
            builder.build(
                fault_hook=FailSlot(2, fail_attempts=99), max_sample_retries=2
            )
        report = excinfo.value.report
        assert report is not None
        assert report.n_quarantined == 3  # initial + 2 retries on slot 2
        assert all(rec.slot == 2 for rec in report.quarantined)
        assert 0 <= report.n_built < report.n_target


class TestParallelCheckpointResume:
    def test_crash_and_resume_parallel(self, tmp_path):
        reference = DatasetBuilder(lc_config()).build()
        ck = tmp_path / "build.ck.npz"
        with pytest.raises(SimulatedCrash):
            DatasetBuilder(lc_config(workers=2)).build(
                checkpoint_path=ck, checkpoint_every=2,
                fault_hook=FailSlot(7, exc=SimulatedCrash),
            )
        builder = DatasetBuilder(lc_config(workers=2))
        resumed = builder.build(checkpoint_path=ck, checkpoint_every=2, resume=True)
        assert datasets_equal(reference, resumed)
        assert builder.report.n_built == 12

    def test_serial_checkpoint_resumes_under_workers(self, tmp_path):
        reference = DatasetBuilder(lc_config()).build()
        ck = tmp_path / "build.ck.npz"
        with pytest.raises(SimulatedCrash):
            DatasetBuilder(lc_config()).build(
                checkpoint_path=ck, checkpoint_every=3,
                fault_hook=crash_on_nth_sample(8),
            )
        assert ck.exists()
        builder = DatasetBuilder(lc_config(workers=2))
        resumed = builder.build(checkpoint_path=ck, resume=True)
        assert datasets_equal(reference, resumed)
        assert builder.report.resumed == 1
        assert builder.report.n_built == 12

    def test_abort_after_resume_counts_completed_slots(self, tmp_path):
        # Satellite bugfix: the report attached to BuildAborted must count
        # completed slots consistently across resume boundaries.
        ck = tmp_path / "build.ck.npz"
        with pytest.raises(SimulatedCrash):
            DatasetBuilder(lc_config()).build(
                checkpoint_path=ck, checkpoint_every=3,
                fault_hook=crash_on_nth_sample(7),
            )
        builder = DatasetBuilder(lc_config())
        with pytest.raises(BuildAborted) as excinfo:
            builder.build(
                checkpoint_path=ck, resume=True,
                fault_hook=FailSlot(9, fail_attempts=99), max_sample_retries=2,
            )
        report = excinfo.value.report
        assert report.resumed == 1
        assert report.n_built == 9  # slots 0..8 complete (6 restored + 3 rebuilt)
        assert report.n_quarantined == 3

    def test_version1_checkpoint_rejected(self, tmp_path):
        # A stale fingerprint (e.g. the version-1 shared-stream scheme)
        # must be refused rather than silently mixed into a v2 build.
        from repro.runtime import atomic_savez, pack_json

        builder = DatasetBuilder(lc_config())
        fp = builder._fingerprint()
        fp["version"] = 1
        ck = tmp_path / "old.ck.npz"
        atomic_savez(ck, {"meta": pack_json({"fingerprint": fp, "report": {}})})
        with pytest.raises(ValueError, match="incompatible"):
            builder.build(checkpoint_path=ck, resume=True)


class TestCLIWorkers:
    def test_build_dataset_workers_flag(self, tmp_path):
        serial_out = tmp_path / "serial.npz"
        parallel_out = tmp_path / "parallel.npz"
        base = ["build-dataset", "--n-ia", "3", "--n-non-ia", "3", "--no-images",
                "--seed", "11"]
        assert main(base + ["--out", str(serial_out)]) == 0
        assert main(base + ["--workers", "2", "--out", str(parallel_out)]) == 0
        assert datasets_equal(load_dataset(serial_out), load_dataset(parallel_out))
