"""Request tracing: span layer, sampling, cross-process propagation,
the trace analysis CLI, and the satellites that ride along (access log,
configurable latency buckets, windowed pool rates)."""

import json
import os
import time

import numpy as np
import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.obs import trace as trace_mod
from repro.obs.log import EVENTS_FILE
from repro.obs.trace import (
    NULL_SPAN,
    SPAN_EVENT,
    TraceConfig,
    build_trees,
    critical_paths,
    derive_span_id,
    derive_trace_id,
    load_spans,
    render_waterfall,
    stage_table,
    validate_spans,
)
from repro.runtime.faults import CrashWorkerOnMarker
from repro.serve import PoolConfig, ScoringPool
from repro.serve.daemon import DaemonConfig

from .helpers import (
    classify_body,
    http_get,
    make_serve_engine,
    make_serve_sample,
    post_classify,
    running_daemon,
)

pytestmark = pytest.mark.obs

#: Magic first-pixel value CrashWorkerOnMarker kills on.
MARKER = 12345.0


@pytest.fixture(autouse=True)
def no_leaked_session():
    """Every test starts and ends with telemetry (and tracing) disabled."""
    assert obs.active() is None
    assert trace_mod.tracer() is None
    yield
    if obs.active() is not None:
        obs.stop()
    trace_mod.uninstall()


@pytest.fixture(scope="module")
def engine():
    return make_serve_engine(seed=0)


def _span_events(directory):
    path = os.path.join(directory, EVENTS_FILE)
    return [
        event for event in obs.read_events(path) if event.get("event") == SPAN_EVENT
    ]


# ----------------------------------------------------------------------
# Config, ids, sampling
# ----------------------------------------------------------------------
class TestConfig:
    def test_parse_specs(self):
        assert TraceConfig.parse("always").mode == "always"
        rate = TraceConfig.parse("rate:0.25")
        assert rate.mode == "rate" and rate.rate == 0.25
        slow = TraceConfig.parse("slow:250")
        assert slow.mode == "slow" and slow.slow_threshold_s == 0.25

    @pytest.mark.parametrize("spec", ["sometimes", "rate:2", "rate:x", "slow:0"])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            TraceConfig.parse(spec)

    def test_ids_deterministic(self):
        assert derive_trace_id("run/r7") == derive_trace_id("run/r7")
        assert derive_trace_id("run/r7") != derive_trace_id("run/r8")
        tid = derive_trace_id("run/r7")
        assert derive_span_id(tid, "1") == derive_span_id(tid, "1")
        assert derive_span_id(tid, "1") != derive_span_id(tid, "2")
        assert len(tid) == 16

    def test_rate_sampling_deterministic(self, tmp_path):
        session = obs.start(tmp_path, trace="rate:0.5")
        try:
            tracer = session.tracer
            decisions = [tracer.sample(f"run/r{i}") for i in range(200)]
            assert decisions == [tracer.sample(f"run/r{i}") for i in range(200)]
            assert 20 < sum(decisions) < 180  # a real fraction, not 0/100%
        finally:
            obs.stop()
        session = obs.start(tmp_path / "none", trace="rate:0.0")
        try:
            assert session.tracer.start_trace("run/r1") is None
        finally:
            obs.stop()


# ----------------------------------------------------------------------
# Span layer
# ----------------------------------------------------------------------
class TestSpans:
    def test_disabled_path_is_null(self):
        assert trace_mod.tracer() is None
        assert trace_mod.span("anything") is NULL_SPAN
        assert trace_mod.wire_context() is None
        trace_mod.record("anything", 0.1)  # no-op, no error
        with trace_mod.span("nested") as s:
            assert s is NULL_SPAN

    def test_ambient_nesting_and_emission(self, tmp_path):
        session = obs.start(tmp_path, run_id="t", trace="always")
        tracer = session.tracer
        root = tracer.start_trace("t/r0", n_visits=3)
        with root:
            with trace_mod.span("stage.outer", k=1):
                with trace_mod.span("stage.inner"):
                    time.sleep(0.001)
            tracer.record("stage.measured", 0.005, parent=root, extra="x")
        obs.stop()

        spans = {event["name"]: event for event in _span_events(tmp_path)}
        assert set(spans) == {
            "request", "stage.outer", "stage.inner", "stage.measured",
        }
        root_rec = spans["request"]
        assert "parent_id" not in root_rec
        assert spans["stage.outer"]["parent_id"] == root_rec["span_id"]
        assert spans["stage.inner"]["parent_id"] == spans["stage.outer"]["span_id"]
        assert spans["stage.measured"]["parent_id"] == root_rec["span_id"]
        assert spans["stage.measured"]["duration_s"] == 0.005
        assert all(
            event["trace_id"] == derive_trace_id("t/r0")
            for event in spans.values()
        )
        assert root_rec["request_id"] == "t/r0"
        # Per-stage histograms landed in the metrics snapshot.
        snapshot = json.load(open(tmp_path / "metrics.json"))
        assert "trace.request_s" in snapshot["histograms"]
        assert "trace.stage.inner_s" in snapshot["histograms"]

    def test_span_error_attr_on_exception(self, tmp_path):
        session = obs.start(tmp_path, trace="always")
        root = session.tracer.start_trace("t/r0")
        with pytest.raises(RuntimeError):
            with root:
                with trace_mod.span("stage.bad"):
                    raise RuntimeError("boom")
        obs.stop()
        spans = {event["name"]: event for event in _span_events(tmp_path)}
        assert spans["stage.bad"]["error"] == "RuntimeError"

    def test_slow_mode_drops_fast_keeps_slow(self, tmp_path):
        session = obs.start(tmp_path, trace="slow:50")
        tracer = session.tracer
        fast = tracer.start_trace("t/r0")
        with fast:
            with trace_mod.span("stage.fast"):
                pass
        slow = tracer.start_trace("t/r1")
        with slow:
            with trace_mod.span("stage.slow"):
                time.sleep(0.06)
        obs.stop()
        events = list(obs.read_events(os.path.join(tmp_path, EVENTS_FILE)))
        spans = [e for e in events if e.get("event") == SPAN_EVENT]
        assert {s["trace_id"] for s in spans} == {derive_trace_id("t/r1")}
        slow_events = [e for e in events if e.get("event") == "trace.slow_request"]
        assert len(slow_events) == 1
        assert slow_events[0]["level"] == "warning"
        assert slow_events[0]["request_id"] == "t/r1"

    def test_schema_v2_validates_span_records(self, tmp_path):
        session = obs.start(tmp_path, trace="always")
        root = session.tracer.start_trace("t/r0")
        with root:
            pass
        obs.stop()
        n, errors = obs.validate_file(os.path.join(tmp_path, EVENTS_FILE))
        assert errors == []
        assert n >= 3
        # A span record missing its required fields is flagged.
        bad = dict(_span_events(tmp_path)[0])
        del bad["span_id"]
        assert any("span_id" in e for e in obs.validate_event(bad))

    def test_validate_spans_catches_structural_damage(self):
        good = {
            "trace_id": "a" * 16, "span_id": "b" * 16,
            "name": "x", "duration_s": 0.1,
        }
        assert validate_spans([good]) == []
        assert validate_spans([good, dict(good)])  # duplicate ids
        assert validate_spans([{**good, "duration_s": -1.0}])
        assert validate_spans([{**good, "name": 3}])
        missing = dict(good)
        del missing["trace_id"]
        assert validate_spans([missing])


# ----------------------------------------------------------------------
# Daemon integration
# ----------------------------------------------------------------------
class TestDaemonTracing:
    def test_request_spans_end_to_end(self, engine, tmp_path):
        obs.start(tmp_path, run_id="serve", trace="always")
        try:
            with running_daemon(engine, DaemonConfig(batch_deadline_ms=2.0)) as daemon:
                pairs, mjd = make_serve_sample(engine)
                status, payload = post_classify(
                    daemon.port, classify_body(pairs, mjd)
                )
                assert status == 200
                daemon.drain()
        finally:
            obs.stop()
        spans = load_spans(os.fspath(tmp_path))
        assert validate_spans(spans) == []
        names = {s["name"] for s in spans}
        assert {
            "request", "http.read", "admission.queue_wait", "batch.form",
            "daemon.score", "engine.lock_wait", "serve.repair", "serve.cnn",
            "serve.features",
        } <= names
        trees = build_trees(spans)
        assert len(trees) == 1
        tree = trees[0]
        assert tree["request_id"] == "serve/r0"
        assert tree["root"]["status"] == 200
        # Engine stages nest under daemon.score via the ambient stack.
        by_id = {s["span_id"]: s for s in tree["spans"]}
        score = next(s for s in tree["spans"] if s["name"] == "daemon.score")
        cnn = next(s for s in tree["spans"] if s["name"] == "serve.cnn")
        assert by_id[cnn["parent_id"]]["name"] == "daemon.score"
        assert score["parent_id"] == tree["root"]["span_id"]
        # Analysis renders.
        lines = render_waterfall(tree)
        assert lines[0].startswith("waterfall: serve/r0")
        assert any("serve.cnn" in line for line in lines)
        rows = stage_table(spans)
        assert {"stage", "count", "p50_ms", "p99_ms", "total_s"} <= set(rows[0])
        paths = critical_paths(trees)
        assert paths and paths[0]["path"].startswith("request")

    def test_untraced_daemon_pays_nothing(self, engine, tmp_path):
        obs.start(tmp_path, run_id="serve")  # telemetry on, tracing off
        try:
            with running_daemon(engine) as daemon:
                pairs, mjd = make_serve_sample(engine)
                status, _ = post_classify(daemon.port, classify_body(pairs, mjd))
                assert status == 200
                daemon.drain()
        finally:
            obs.stop()
        assert _span_events(tmp_path) == []

    def test_access_log_covers_non_classify_traffic(self, engine, tmp_path):
        obs.start(tmp_path, run_id="serve")
        try:
            with running_daemon(engine) as daemon:
                http_get(daemon.port, "/healthz")
                http_get(daemon.port, "/metrics")
                http_get(daemon.port, "/nope")
                status, _ = post_classify(daemon.port, b"not json")
                assert status == 400
                daemon.drain()
        finally:
            obs.stop()
        events = list(obs.read_events(os.path.join(tmp_path, EVENTS_FILE)))
        access = [e for e in events if e.get("event") == "serve.access"]
        seen = {(e["method"], e["path"], e["status"]) for e in access}
        assert ("GET", "/healthz", 200) in seen
        assert ("GET", "/metrics", 200) in seen
        assert ("GET", "/nope", 404) in seen
        assert ("POST", "/classify", 400) in seen
        for event in access:
            assert event["bytes"] > 0
            assert event["duration_ms"] >= 0

    def test_latency_buckets_configurable(self, engine):
        config = DaemonConfig(latency_buckets_ms=(5.0, 50.0, 500.0))
        with running_daemon(engine, config) as daemon:
            pairs, mjd = make_serve_sample(engine)
            status, _ = post_classify(daemon.port, classify_body(pairs, mjd))
            assert status == 200
            _, text = http_get(daemon.port, "/metrics")
            daemon.drain()
        exposition = text.decode()
        assert 'daemon_latency_s_bucket{le="0.005"}' in exposition
        assert 'daemon_latency_s_bucket{le="0.5"}' in exposition
        assert daemon._latency_hist.count == 1

    def test_latency_buckets_validation(self):
        with pytest.raises(ValueError):
            DaemonConfig(latency_buckets_ms=())
        with pytest.raises(ValueError):
            DaemonConfig(latency_buckets_ms=(10.0, 5.0))
        with pytest.raises(ValueError):
            DaemonConfig(latency_buckets_ms=(-1.0, 5.0))

    def test_default_buckets_unchanged(self, engine):
        with running_daemon(engine) as daemon:
            assert daemon._latency_hist.buckets == tuple(
                obs.DEFAULT_LATENCY_BUCKETS_S
            )
            daemon.drain()


# ----------------------------------------------------------------------
# Cross-process propagation through the scoring pool
# ----------------------------------------------------------------------
class TestPoolTracing:
    def _traced_pool_batch(self, engine, tmp_path, pairs, mjd, **pool_kwargs):
        session = obs.start(tmp_path, run_id="pool", trace="always")
        pool = ScoringPool(
            engine=engine, config=PoolConfig(workers=2), **pool_kwargs
        )
        try:
            pool.start()
            root = session.tracer.start_trace("pool/r0")
            with root:
                results = pool.classify_arrays(pairs, mjd)
        finally:
            pool.close()
            obs.stop()
        return root, results

    def test_worker_spans_cross_the_pipe(self, engine, tmp_path):
        rng = np.random.default_rng(3)
        v, s = engine._n_used_visits, 40
        pairs = rng.normal(0.0, 30.0, size=(6, v, 2, s, s)).astype(np.float32)
        mjd = np.tile(
            (57000.0 + np.arange(v) * 0.01).astype(np.float32), (6, 1)
        )
        root, results = self._traced_pool_batch(engine, tmp_path, pairs, mjd)
        assert len(results) == 6
        spans = load_spans(os.fspath(tmp_path))
        assert validate_spans(spans) == []
        workers = [s for s in spans if s["name"] == "worker.compute"]
        assert len(workers) == 2  # one shard per worker
        scatter = next(s for s in spans if s["name"] == "pool.scatter")
        gather = next(s for s in spans if s["name"] == "pool.gather")
        for span_rec in workers:
            assert span_rec["trace_id"] == root.trace_id
            assert span_rec["parent_id"] == root.span_id
            assert span_rec["worker"] in (0, 1)
            assert span_rec["pid"] != os.getpid()
        assert scatter["parent_id"] == root.span_id
        assert gather["parent_id"] == root.span_id
        # Engine stages inside the workers nest under worker.compute.
        worker_ids = {s["span_id"] for s in workers}
        cnn_spans = [s for s in spans if s["name"] == "serve.cnn"]
        assert cnn_spans and all(
            s["parent_id"] in worker_ids for s in cnn_spans
        )

    def test_trace_survives_worker_crash_and_respawn(self, engine, tmp_path):
        """Satellite: spans from a respawned worker still carry the
        trace, and the heal re-score records as a child of the gather."""
        rng = np.random.default_rng(4)
        v, s = engine._n_used_visits, 40
        pairs = rng.normal(0.0, 30.0, size=(6, v, 2, s, s)).astype(np.float32)
        mjd = np.tile(
            (57000.0 + np.arange(v) * 0.01).astype(np.float32), (6, 1)
        )
        marked = pairs.copy()
        marked[5, 0, 0, 0, 0] = MARKER  # kills only grouped batches
        root, results = self._traced_pool_batch(
            engine, tmp_path, marked, mjd,
            worker_init=CrashWorkerOnMarker(MARKER, min_batch=2),
        )
        assert len(results) == 6
        spans = load_spans(os.fspath(tmp_path))
        assert validate_spans(spans) == []
        assert all(
            span_rec["trace_id"] == root.trace_id
            for span_rec in spans
            if span_rec["name"] != "request"
        )
        gather = next(s for s in spans if s["name"] == "pool.gather")
        heal = next(s for s in spans if s["name"] == "pool.heal")
        assert heal["parent_id"] == gather["span_id"]
        # The respawned worker's per-single re-scores parent under the
        # heal span and still carry the original trace id.
        healed = [
            s for s in spans
            if s["name"] == "worker.compute"
            and s["parent_id"] == heal["span_id"]
        ]
        assert healed
        assert all(s["trace_id"] == root.trace_id for s in healed)

    def test_windowed_rates_in_stats(self, engine, tmp_path):
        rng = np.random.default_rng(5)
        v, s = engine._n_used_visits, 40
        pairs = rng.normal(0.0, 30.0, size=(4, v, 2, s, s)).astype(np.float32)
        mjd = np.tile(
            (57000.0 + np.arange(v) * 0.01).astype(np.float32), (4, 1)
        )
        pool = ScoringPool(engine=engine, config=PoolConfig(workers=2))
        try:
            pool.start()
            pool.classify_arrays(pairs, mjd)
            stats = pool.stats()
        finally:
            pool.close()
        assert 0.0 < stats["scatter_s_window60s"] <= stats["scatter_s_total"]
        assert 0.0 < stats["gather_s_window60s"] <= stats["gather_s_total"]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestTraceCli:
    @pytest.fixture()
    def traced_dir(self, engine, tmp_path):
        directory = tmp_path / "telemetry"
        obs.start(directory, run_id="serve", trace="always")
        try:
            with running_daemon(engine, DaemonConfig(batch_deadline_ms=2.0)) as daemon:
                pairs, mjd = make_serve_sample(engine)
                body = classify_body(pairs, mjd)
                for _ in range(3):
                    status, _ = post_classify(daemon.port, body)
                    assert status == 200
                daemon.drain()
        finally:
            obs.stop()
        return os.fspath(directory)

    def test_trace_command_renders_analysis(self, traced_dir, capsys):
        assert cli_main(["trace", traced_dir, "--validate"]) == 0
        out = capsys.readouterr().out
        assert "validated" in out
        assert "per-stage latency" in out
        assert "waterfall: serve/r0" in out
        assert "critical paths:" in out

    def test_trace_command_filters_by_request(self, traced_dir, capsys):
        assert cli_main(["trace", traced_dir, "--request", "serve/r1"]) == 0
        out = capsys.readouterr().out
        assert "waterfall: serve/r1" in out
        assert "waterfall: serve/r0" not in out
        assert cli_main(["trace", traced_dir, "--request", "nope"]) == 2

    def test_trace_command_on_missing_dir(self, tmp_path, capsys):
        assert cli_main(["trace", os.fspath(tmp_path / "absent")]) == 2
        empty = tmp_path / "empty"
        empty.mkdir()
        assert cli_main(["trace", os.fspath(empty)]) == 0
        assert "no span records" in capsys.readouterr().err

    def test_trace_command_validate_catches_damage(self, traced_dir, capsys):
        segment = os.path.join(traced_dir, "trace-worker9.jsonl")
        with open(segment, "w") as handle:
            handle.write(json.dumps({"trace_id": "x", "name": 3}) + "\n")
        assert cli_main(["trace", traced_dir, "--validate"]) == 2

    def test_serve_trace_requires_telemetry(self, capsys):
        assert cli_main(["serve", "--model", "m", "--trace"]) == 2
        assert "--trace requires --telemetry" in capsys.readouterr().err

    def test_bad_trace_spec_exits_bad_input(self, tmp_path, capsys):
        code = cli_main([
            "serve", "--model", "m",
            "--telemetry", os.fspath(tmp_path), "--trace", "sometimes",
        ])
        assert code == 2
        assert obs.active() is None

    def test_metrics_report_summarizes_spans(self, traced_dir, capsys):
        assert cli_main(["metrics", traced_dir]) == 0
        out = capsys.readouterr().out
        assert "trace spans" in out
        assert "worker.compute" not in out  # in-process daemon: no pool spans
        assert "daemon.score" in out
