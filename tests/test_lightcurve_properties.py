"""Property-based tests of light-curve physics invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lightcurves import (
    LightCurve,
    NonIaRealization,
    SALT2LikeModel,
    SALT2Parameters,
    SNType,
    TEMPLATES,
)
from repro.photometry import GRIZY, band_by_name

redshifts = st.floats(min_value=0.12, max_value=1.8)
stretches = st.floats(min_value=-2.5, max_value=2.5)
colors = st.floats(min_value=-0.3, max_value=0.3)


def _ia(x1=0.0, c=0.0):
    return SALT2LikeModel(SALT2Parameters(x1=x1, c=c))


class TestDistanceDimming:
    @settings(max_examples=25, deadline=None)
    @given(redshifts, redshifts)
    def test_monotone_dimming_with_redshift(self, z1, z2):
        if abs(z1 - z2) < 0.05:
            return
        lo, hi = sorted([z1, z2])
        band = band_by_name("y")  # reddest band: least K-correction confusion
        near = LightCurve(_ia(), lo, 57000.0).peak_magnitude(band)
        far = LightCurve(_ia(), hi, 57000.0).peak_magnitude(band)
        assert far > near

    @settings(max_examples=25, deadline=None)
    @given(redshifts)
    def test_time_dilation_slows_observed_decline(self, z):
        curve = LightCurve(_ia(), z, 57000.0)
        band = band_by_name("y")
        # Rest-frame 15-day decline takes (1+z) * 15 observer days.
        rest15 = curve.magnitude(band, 57000.0 + 15.0 * (1 + z)) - curve.magnitude(
            band, 57000.0
        )
        low_z_curve = LightCurve(_ia(), 0.12, 57000.0)
        direct15 = low_z_curve.magnitude(band, 57000.0 + 15.0 * 1.12) - low_z_curve.magnitude(
            band, 57000.0
        )
        # Same rest-frame phase -> same intrinsic decline (tolerance for
        # the band sampling different rest wavelengths).
        assert rest15 == pytest.approx(direct15, abs=0.6)


class TestStandardisation:
    @settings(max_examples=25, deadline=None)
    @given(stretches)
    def test_broader_is_brighter(self, x1):
        if abs(x1) < 1e-3:
            return
        base = _ia(0.0).peak_abs_mag_b
        varied = _ia(x1).peak_abs_mag_b
        if x1 > 0:
            assert varied < base  # brighter
        else:
            assert varied > base

    @settings(max_examples=25, deadline=None)
    @given(colors)
    def test_redder_is_fainter(self, c):
        if abs(c) < 1e-3:
            return
        base = _ia(0.0, 0.0).peak_abs_mag_b
        varied = _ia(0.0, c).peak_abs_mag_b
        if c > 0:
            assert varied > base  # fainter
        else:
            assert varied < base

    @settings(max_examples=15, deadline=None)
    @given(stretches, colors)
    def test_tripp_is_linear(self, x1, c):
        from repro.lightcurves import M0_IA, TRIPP_ALPHA, TRIPP_BETA

        expected = M0_IA - TRIPP_ALPHA * x1 + TRIPP_BETA * c
        assert _ia(x1, c).peak_abs_mag_b == pytest.approx(expected, abs=1e-9)


class TestTypeSeparation:
    @settings(max_examples=15, deadline=None)
    @given(redshifts)
    def test_ia_brighter_than_iip_at_peak(self, z):
        band = band_by_name("i")
        if band.effective_wavelength / (1 + z) < 4200.0:
            # At high z this band samples the Ia UV deficit, where the
            # UV-bright IIP can legitimately win — the real reason high-z
            # Ia searches move to redder bands.
            return
        ia = LightCurve(_ia(), z, 57000.0).peak_magnitude(band)
        iip = LightCurve(
            NonIaRealization(TEMPLATES[SNType.IIP], 0.0, 1.0), z, 57000.0
        ).peak_magnitude(band)
        assert ia < iip  # smaller magnitude = brighter

    @settings(max_examples=10, deadline=None)
    @given(redshifts)
    def test_uv_blanketing_separates_ia_from_ii_in_blue(self, z):
        """The g-i colour of Ia at peak is redder than IIP's whenever the
        g band samples the suppressed rest-frame UV."""
        g, i = band_by_name("g"), band_by_name("i")
        if g.effective_wavelength / (1 + z) > 4000.0:
            return  # g still samples the optical: blanketing not in play
        if i.effective_wavelength / (1 + z) < 4000.0:
            return  # both bands deep in the UV: the colour saturates
        ia = LightCurve(_ia(), z, 57000.0)
        iip = LightCurve(NonIaRealization(TEMPLATES[SNType.IIP], 0.0, 1.0), z, 57000.0)
        ia_color = ia.magnitude(g, 57000.0) - ia.magnitude(i, 57000.0)
        iip_color = iip.magnitude(g, 57000.0) - iip.magnitude(i, 57000.0)
        assert ia_color > iip_color

    def test_all_types_fade_eventually(self):
        for sn_type, template in TEMPLATES.items():
            model = (
                _ia()
                if sn_type.is_ia
                else NonIaRealization(template, 0.0, 1.0)
            )
            curve = LightCurve(model, 0.5, 57000.0)
            band = band_by_name("r")
            peak = curve.magnitude(band, 57000.0)
            late = curve.magnitude(band, 57000.0 + 400.0)
            assert late > peak + 1.0, sn_type


class TestFluxSanity:
    @settings(max_examples=20, deadline=None)
    @given(redshifts, st.floats(min_value=-50.0, max_value=200.0))
    def test_flux_always_finite_positive(self, z, offset):
        curve = LightCurve(_ia(), z, 57000.0)
        for band in GRIZY:
            flux = float(curve.flux(band, 57000.0 + offset))
            assert np.isfinite(flux)
            assert flux >= 0.0
