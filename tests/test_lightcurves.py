"""Tests for templates, the SALT2-like Ia model, population priors and
observer-frame light curves."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lightcurves import (
    B_WAVELENGTH,
    TEMPLATES,
    LightCurve,
    NonIaRealization,
    PopulationModel,
    SALT2LikeModel,
    SALT2Parameters,
    SNType,
    blackbody_color,
    color_law,
)
from repro.photometry import GRIZY, band_by_name


class TestSNType:
    def test_ia_flag(self):
        assert SNType.IA.is_ia
        assert not SNType.IIP.is_ia

    def test_non_ia_listing(self):
        assert SNType.IA not in SNType.non_ia()
        assert len(SNType.non_ia()) == 5

    def test_all_types_have_templates(self):
        assert set(TEMPLATES) == set(SNType)


class TestBlackbodyColor:
    def test_zero_at_b(self):
        assert blackbody_color(10000.0, B_WAVELENGTH) == pytest.approx(0.0)

    def test_hot_is_blue(self):
        # A hot blackbody is brighter in B than in the red: red color > 0.
        assert blackbody_color(15000.0, 8000.0) > 0

    def test_cool_is_red(self):
        # A cool photosphere is brighter in the red than in B.
        assert blackbody_color(4000.0, 8000.0) < 0

    def test_rejects_bad_temperature(self):
        with pytest.raises(ValueError):
            blackbody_color(-100.0, 5000.0)

    @given(st.floats(min_value=3000, max_value=20000))
    def test_cooling_reddens(self, temp):
        red = 9000.0
        cooler = blackbody_color(temp * 0.8, red) - blackbody_color(temp, red)
        assert cooler < 1e-9


class TestColorLaw:
    def test_normalisation(self):
        assert color_law(B_WAVELENGTH) == pytest.approx(1.0)
        assert color_law(5500.0) == pytest.approx(0.0)

    def test_monotone_blue_to_red(self):
        wavelengths = np.array([3500.0, 4400.0, 5500.0, 8000.0])
        values = color_law(wavelengths)
        assert np.all(np.diff(values) < 0)


class TestTemplates:
    def test_peak_at_phase_zero(self):
        for template in TEMPLATES.values():
            phases = np.linspace(-15, 80, 300)
            dm = template.delta_mag_b(phases)
            assert dm.min() >= -1e-9
            assert template.delta_mag_b(0.0) == pytest.approx(0.0, abs=1e-9)

    def test_rise_and_decline(self):
        ia = TEMPLATES[SNType.IA]
        assert ia.delta_mag_b(-10.0) > 0.1
        assert ia.delta_mag_b(15.0) == pytest.approx(1.1, abs=0.05)

    def test_iip_plateau_then_drop(self):
        iip = TEMPLATES[SNType.IIP]
        plateau = iip.delta_mag_b(80.0)
        after_drop = iip.delta_mag_b(110.0)
        assert plateau < 0.6
        assert after_drop - plateau > 1.5

    def test_ia_brightest_type(self):
        peak = {t: TEMPLATES[t].peak_abs_mag_b for t in SNType}
        assert peak[SNType.IA] == min(peak.values())

    def test_ia_uv_suppressed_more_than_ii(self):
        ia_deficit = TEMPLATES[SNType.IA].uv_deficit(3000.0)
        iip_deficit = TEMPLATES[SNType.IIP].uv_deficit(3000.0)
        assert ia_deficit > 1.5
        assert ia_deficit > iip_deficit + 1.0

    def test_uv_deficit_vanishes_redward(self):
        assert TEMPLATES[SNType.IA].uv_deficit(8000.0) < 0.01

    def test_very_early_phase_is_dark(self):
        for template in TEMPLATES.values():
            assert template.delta_mag_b(-200.0) >= 7.9


class TestSALT2:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SALT2Parameters(x1=7.0)
        with pytest.raises(ValueError):
            SALT2Parameters(c=0.9)

    def test_tripp_relation(self):
        base = SALT2LikeModel(SALT2Parameters()).peak_abs_mag_b
        stretched = SALT2LikeModel(SALT2Parameters(x1=1.0)).peak_abs_mag_b
        red = SALT2LikeModel(SALT2Parameters(c=0.1)).peak_abs_mag_b
        assert stretched == pytest.approx(base - 0.14)
        assert red == pytest.approx(base + 0.31)

    def test_stretch_broadens(self):
        slow = SALT2LikeModel(SALT2Parameters(x1=2.0))
        fast = SALT2LikeModel(SALT2Parameters(x1=-2.0))
        # 15 days after peak the stretched SN has declined less.
        decline_slow = slow.rest_mag(15.0, B_WAVELENGTH) - slow.rest_mag(0.0, B_WAVELENGTH)
        decline_fast = fast.rest_mag(15.0, B_WAVELENGTH) - fast.rest_mag(0.0, B_WAVELENGTH)
        assert decline_slow < decline_fast

    def test_color_reddening_dims_blue_more(self):
        neutral = SALT2LikeModel(SALT2Parameters())
        red = SALT2LikeModel(SALT2Parameters(c=0.2))
        dim_b = red.rest_mag(0.0, 4400.0) - neutral.rest_mag(0.0, 4400.0)
        dim_i = red.rest_mag(0.0, 8000.0) - neutral.rest_mag(0.0, 8000.0)
        assert dim_b > dim_i

    def test_sn_type(self):
        assert SALT2LikeModel(SALT2Parameters()).sn_type is SNType.IA


class TestPopulation:
    def test_sample_ia_type(self):
        pop = PopulationModel()
        rng = np.random.default_rng(0)
        assert pop.sample(True, rng).sn_type.is_ia
        assert not pop.sample(False, rng).sn_type.is_ia

    def test_non_ia_fractions_respected(self):
        pop = PopulationModel(non_ia_fractions={SNType.IIP: 1.0})
        rng = np.random.default_rng(1)
        for _ in range(10):
            assert pop.sample_non_ia(rng).sn_type is SNType.IIP

    def test_rejects_ia_in_fractions(self):
        with pytest.raises(ValueError):
            PopulationModel(non_ia_fractions={SNType.IA: 1.0})

    def test_rejects_empty_fractions(self):
        with pytest.raises(ValueError):
            PopulationModel(non_ia_fractions={})

    def test_realization_rejects_bad_stretch(self):
        with pytest.raises(ValueError):
            NonIaRealization(TEMPLATES[SNType.IB], 0.0, stretch=-1.0)

    def test_parameters_vary(self):
        pop = PopulationModel()
        rng = np.random.default_rng(2)
        mags = {pop.sample_ia(rng).peak_abs_mag_b for _ in range(5)}
        assert len(mags) == 5


class TestLightCurve:
    @staticmethod
    def _ia_curve(z=0.5):
        return LightCurve(SALT2LikeModel(SALT2Parameters()), redshift=z, peak_mjd=57000.0)

    def test_rejects_nonpositive_redshift(self):
        with pytest.raises(ValueError):
            LightCurve(SALT2LikeModel(SALT2Parameters()), redshift=0.0, peak_mjd=0.0)

    def test_rest_phase_time_dilation(self):
        curve = self._ia_curve(z=1.0)
        assert curve.rest_phase(57020.0) == pytest.approx(10.0)

    def test_flux_positive(self):
        curve = self._ia_curve()
        band = band_by_name("i")
        dates = 57000.0 + np.linspace(-30, 100, 50)
        assert np.all(curve.flux(band, dates) > 0)

    def test_peak_near_peak_mjd(self):
        curve = self._ia_curve()
        band = band_by_name("r")
        dates = 57000.0 + np.linspace(-40, 80, 241)
        mags = curve.magnitude(band, dates)
        peak_date = dates[np.argmin(mags)]
        assert abs(peak_date - 57000.0) < 15.0

    def test_higher_z_is_fainter(self):
        band = band_by_name("i")
        near = self._ia_curve(z=0.3).peak_magnitude(band)
        far = self._ia_curve(z=0.9).peak_magnitude(band)
        assert far > near + 1.0

    def test_is_ia_flag(self):
        assert self._ia_curve().is_ia
        non = NonIaRealization(TEMPLATES[SNType.IIP], 0.0, 1.0)
        assert not LightCurve(non, 0.5, 57000.0).is_ia

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.15, max_value=1.9))
    def test_flux_finite_over_survey_window(self, z):
        curve = self._ia_curve(z=z)
        dates = 57000.0 + np.linspace(-60, 200, 40)
        for band in GRIZY:
            flux = curve.flux(band, dates)
            assert np.all(np.isfinite(flux))
            assert np.all(flux >= 0)

    def test_ia_g_band_fades_fast_at_high_z(self):
        # At z=1.5 the g band samples the suppressed rest UV: very faint.
        curve = self._ia_curve(z=1.5)
        g_peak = curve.peak_magnitude(band_by_name("g"))
        y_peak = curve.peak_magnitude(band_by_name("y"))
        assert g_peak > y_peak + 2.0

    def test_repr(self):
        assert "Ia" in repr(self._ia_curve())
