"""Registry-backed serving: hot reload, shadow scoring, automatic rollback.

The deploy-loop chaos suite.  Every test drives a real in-process
:class:`ServingDaemon` loaded *from* a :class:`ModelRegistry` (the
``repro serve --registry`` path) and mutates the registry out-of-band,
exactly as an operator's ``repro models`` invocations would.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.obs import EVENTS_FILE, read_events
from repro.obs.drift import DriftBaseline
from repro.registry import GuardConfig, ModelRegistry, RegistryError
from repro.runtime import BurstSchedule, ShiftScores
from repro.serve import InferenceEngine
from repro.serve.daemon import DaemonConfig

from .helpers import (
    classify_body,
    http_get,
    make_serve_engine,
    make_serve_sample,
    post_classify,
    running_registry_daemon,
)

pytestmark = pytest.mark.registry


def _wait_for(predicate, timeout_s=10.0, interval_s=0.02):
    """Poll ``predicate`` until truthy; fail the test on timeout."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval_s)
    pytest.fail(f"condition not reached within {timeout_s}s")


def _build_model_dir(directory, seed=0, baseline_scores=None):
    """Save a tiny engine (optionally with a committed drift baseline)."""
    engine = make_serve_engine(seed=seed)
    if baseline_scores is not None:
        engine.drift_baseline = DriftBaseline.from_samples(
            np.asarray(baseline_scores, dtype=float)
        )
    engine.save(str(directory))
    return engine


@pytest.fixture()
def two_version_registry(tmp_path):
    """v1 promoted to production, v2 registered (same weights)."""
    model = tmp_path / "model"
    _build_model_dir(model, seed=0)
    registry = ModelRegistry(tmp_path / "registry")
    registry.promote(registry.register(model))
    registry.register(model)
    return registry


def _healthz(port):
    status, raw = http_get(port, "/healthz")
    assert status == 200
    return json.loads(raw)


class TestHotReload:
    def test_burst_traffic_across_a_promote_drops_nothing(self, tmp_path):
        """Satellite: concurrent hot reload under a BurstSchedule.

        Conservation must hold across the swap (every request answered
        exactly once, ``sent == 200 + 429 + 504``), the swap must happen
        exactly once, and every 200 must carry a score bit-identical to
        one of the two versions — no request may see a half-swapped
        engine.
        """
        model_a = tmp_path / "model-a"
        model_b = tmp_path / "model-b"
        _build_model_dir(model_a, seed=0)
        _build_model_dir(model_b, seed=1)
        registry = ModelRegistry(tmp_path / "registry")
        registry.promote(registry.register(model_a))
        registry.register(model_b)

        # The daemon loads via verify + from_directory; the expected
        # per-version scores come from the exact same path.
        engine_v1 = InferenceEngine.from_directory(registry.path("v1"))
        engine_v2 = InferenceEngine.from_directory(registry.path("v2"))
        pairs, mjd = make_serve_sample(engine_v1, seed=7)
        expected = {
            round(engine.classify_arrays(pairs[None], mjd[None])[0].probability, 6)
            for engine in (engine_v1, engine_v2)
        }
        assert len(expected) == 2  # the two versions genuinely disagree

        body = classify_body(pairs, mjd, deadline_ms=30000)
        offsets = BurstSchedule(qps=60.0, duration_s=1.0, burst_factor=4.0).offsets()
        config = DaemonConfig(
            queue_depth=8, batch_max_size=4, batch_deadline_ms=5.0,
            reload_poll_s=0.05,
        )
        with running_registry_daemon(registry, config) as daemon:
            assert daemon._engine_version == "v1"
            results = [None] * len(offsets)
            start = time.monotonic()

            def fire(k, offset):
                delay = start + offset - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                results[k] = post_classify(daemon.port, body)

            threads = [
                threading.Thread(target=fire, args=(k, offset), daemon=True)
                for k, offset in enumerate(offsets)
            ]
            for thread in threads:
                thread.start()
            # Promote mid-burst, from outside the daemon process's view.
            time.sleep(0.4)
            registry.promote("v2")
            for thread in threads:
                thread.join(timeout=60.0)
            _wait_for(lambda: daemon._engine_version == "v2")

            assert all(result is not None for result in results)
            statuses = [status for status, _ in results]
            assert set(statuses) <= {200, 429, 504}

            # Conservation: nothing dropped, nothing double-answered.
            admitted = int(daemon.metrics.counter("daemon.admitted").value)
            responses = int(daemon.metrics.counter("daemon.responses").value)
            timeouts = int(daemon.metrics.counter("daemon.timeouts").value)
            shed = int(daemon.metrics.counter("daemon.shed").value)
            assert admitted + shed == len(offsets)
            assert responses + timeouts == admitted
            assert statuses.count(200) == responses
            assert statuses.count(429) == shed
            assert statuses.count(504) == timeouts

            # Exactly-once swap, and every scored request saw exactly one
            # whole version.
            assert int(daemon.metrics.counter("daemon.reloads").value) == 1
            scored = [
                doc["result"]["probability"]
                for status, doc in results if status == 200
            ]
            assert scored and set(scored) <= expected
            served_v1 = int(daemon.metrics.counter("daemon.served.v1").value)
            served_v2 = int(daemon.metrics.counter("daemon.served.v2").value)
            assert served_v1 + served_v2 == responses

            health = _healthz(daemon.port)
            assert health["model_version"] == "v2"
            assert health["reloads"] == 1

    @pytest.mark.serve
    def test_pool_burst_traffic_across_a_promote_drops_nothing(self, tmp_path):
        """Acceptance: hot reload under load with the scoring pool on.

        Same conservation and exactly-once-swap contract as the
        single-process variant above, but scoring runs on a two-worker
        :class:`ScoringPool` — the swap must broadcast to every worker
        (epoch ack) without dropping a single in-flight request, and no
        200 may mix versions.
        """
        model_a = tmp_path / "model-a"
        model_b = tmp_path / "model-b"
        _build_model_dir(model_a, seed=0)
        _build_model_dir(model_b, seed=1)
        registry = ModelRegistry(tmp_path / "registry")
        registry.promote(registry.register(model_a))
        registry.register(model_b)

        engine_v1 = InferenceEngine.from_directory(registry.path("v1"))
        engine_v2 = InferenceEngine.from_directory(registry.path("v2"))
        pairs, mjd = make_serve_sample(engine_v1, seed=7)
        expected = {
            round(engine.classify_arrays(pairs[None], mjd[None])[0].probability, 6)
            for engine in (engine_v1, engine_v2)
        }
        assert len(expected) == 2

        body = classify_body(pairs, mjd, deadline_ms=30000)
        offsets = BurstSchedule(qps=60.0, duration_s=1.0, burst_factor=4.0).offsets()
        config = DaemonConfig(
            queue_depth=8, batch_max_size=4, batch_deadline_ms=5.0,
            reload_poll_s=0.05, scoring_workers=2,
        )
        with running_registry_daemon(registry, config) as daemon:
            assert daemon._engine_version == "v1"
            assert daemon._pool is not None and daemon._pool.epoch == 0
            results = [None] * len(offsets)
            start = time.monotonic()

            def fire(k, offset):
                delay = start + offset - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                results[k] = post_classify(daemon.port, body)

            threads = [
                threading.Thread(target=fire, args=(k, offset), daemon=True)
                for k, offset in enumerate(offsets)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.4)
            registry.promote("v2")
            for thread in threads:
                thread.join(timeout=60.0)
            _wait_for(lambda: daemon._engine_version == "v2")

            assert all(result is not None for result in results)
            statuses = [status for status, _ in results]
            assert set(statuses) <= {200, 429, 504}

            admitted = int(daemon.metrics.counter("daemon.admitted").value)
            responses = int(daemon.metrics.counter("daemon.responses").value)
            timeouts = int(daemon.metrics.counter("daemon.timeouts").value)
            shed = int(daemon.metrics.counter("daemon.shed").value)
            assert admitted + shed == len(offsets)
            assert responses + timeouts == admitted
            assert statuses.count(200) == responses
            assert statuses.count(429) == shed
            assert statuses.count(504) == timeouts

            # Exactly-once swap, broadcast pool-wide: one reload, one
            # epoch bump, every worker still alive, zero crashes.
            assert int(daemon.metrics.counter("daemon.reloads").value) == 1
            pool_stats = daemon._pool.stats()
            assert pool_stats["reload_epoch"] == 1
            assert pool_stats["crashes"] == 0
            assert pool_stats["broken"] is None
            per_worker = pool_stats["per_worker"]
            assert len(per_worker) == 2
            assert all(worker["alive"] for worker in per_worker)

            scored = [
                doc["result"]["probability"]
                for status, doc in results if status == 200
            ]
            assert scored and set(scored) <= expected
            served_v1 = int(daemon.metrics.counter("daemon.served.v1").value)
            served_v2 = int(daemon.metrics.counter("daemon.served.v2").value)
            assert served_v1 + served_v2 == responses

            health = _healthz(daemon.port)
            assert health["model_version"] == "v2"
            assert health["scoring_pool"]["workers"] == 2

    def test_healthz_reports_deploy_state(self, two_version_registry):
        """Satellite: /healthz carries version, precision and counters."""
        with running_registry_daemon(two_version_registry) as daemon:
            health = _healthz(daemon.port)
            assert health["model_version"] == "v1"
            assert health["precision"] in ("float32", "float16")
            for key in ("reloads", "reload_failures", "rollbacks", "quarantined"):
                assert health[key] == 0
            assert health["shadow"] is None

    def test_failed_load_keeps_serving_and_emits_one_typed_event(
        self, two_version_registry, tmp_path
    ):
        """A promote whose load blows up must not take the daemon down."""
        registry = two_version_registry

        def explode_on_v2(engine, version):
            if version == "v2":
                raise RuntimeError("injected load failure")

        telemetry = tmp_path / "telemetry"
        obs.start(telemetry, run_id="run-reloadfail")
        try:
            config = DaemonConfig(reload_poll_s=0.05)
            with running_registry_daemon(
                registry, config, reload_hook=explode_on_v2
            ) as daemon:
                engine_v1 = daemon.engine
                pairs, mjd = make_serve_sample(engine_v1, seed=3)
                body = classify_body(pairs, mjd)
                assert post_classify(daemon.port, body)[0] == 200
                registry.promote("v2")
                _wait_for(
                    lambda: int(
                        daemon.metrics.counter("daemon.reload_failures").value
                    ) >= 1
                )
                # Let several more polls tick: the failed-version memo
                # must keep this at one typed event, not one per poll.
                time.sleep(0.3)
                status, doc = post_classify(daemon.port, body)
                assert status == 200
                assert daemon._engine_version == "v1"
                assert daemon.engine is engine_v1
                health = _healthz(daemon.port)
                assert health["model_version"] == "v1"
                assert health["reload_failures"] == 1
        finally:
            obs.stop()
        failures = [
            record for record in read_events(telemetry / EVENTS_FILE)
            if record["event"] == "registry.reload_failed"
        ]
        assert len(failures) == 1
        assert failures[0]["version"] == "v2"
        assert failures[0]["role"] == "production"
        assert failures[0]["error_type"] == "RuntimeError"

    def test_boot_refuses_a_corrupt_production_version(self, tmp_path):
        model = tmp_path / "model"
        _build_model_dir(model, seed=0)
        registry = ModelRegistry(tmp_path / "registry")
        registry.promote(registry.register(model))
        target = registry.path("v1") + "/classifier.npz"
        with open(target, "r+b") as handle:
            handle.write(b"\xde\xad\xbe\xef")
        from repro.runtime import CorruptArtifactError
        from repro.serve import ServingDaemon

        with pytest.raises(CorruptArtifactError) as info:
            ServingDaemon(None, DaemonConfig(), registry=registry)
        assert info.value.path == target


class TestShadowScoring:
    def test_divergent_candidate_is_quarantined(self, two_version_registry, tmp_path):
        """A shadow candidate over the divergence budget never reaches
        production: the daemon quarantines it in the registry."""
        registry = two_version_registry
        probe = InferenceEngine.from_directory(registry.path("v1"))
        probe_pairs, probe_mjd = make_serve_sample(probe, seed=5)
        clean = probe.classify_arrays(probe_pairs[None], probe_mjd[None])[0].probability
        # Shift away from the clean score so the clip bounds cannot eat
        # the injected divergence.
        delta = 0.4 if clean < 0.5 else -0.4

        def poison_v2(engine, version):
            if version == "v2":
                engine.score_hook = ShiftScores(delta)

        guard = GuardConfig(divergence_budget=0.15, divergence_min_samples=4)
        config = DaemonConfig(reload_poll_s=0.05, batch_deadline_ms=2.0)
        telemetry = tmp_path / "telemetry"
        obs.start(telemetry, run_id="run-shadow")
        try:
            with running_registry_daemon(
                registry, config, guard=guard, reload_hook=poison_v2
            ) as daemon:
                engine = daemon.engine
                pairs, mjd = make_serve_sample(engine, seed=5)
                body = classify_body(pairs, mjd)
                registry.shadow("v2")
                _wait_for(lambda: daemon._shadow_version == "v2")
                assert _healthz(daemon.port)["shadow"]["version"] == "v2"
                for _ in range(12):
                    status, _doc = post_classify(daemon.port, body)
                    assert status == 200
                    if daemon._shadow_version is None:
                        break
                    time.sleep(0.05)
                _wait_for(lambda: daemon._shadow_version is None)
                _wait_for(lambda: registry.candidate() is None)
                state = registry.state()
                assert state["versions"]["v2"]["status"] == "rolled_back"
                assert "divergence" in state["versions"]["v2"]["reason"]
                # Production was never touched.
                assert daemon._engine_version == "v1"
                assert int(daemon.metrics.counter("daemon.quarantined").value) == 1
                assert int(daemon.metrics.counter("shadow.scored").value) >= 4
        finally:
            obs.stop()
        records = list(read_events(telemetry / EVENTS_FILE))
        started = [r for r in records if r["event"] == "registry.shadow_started"]
        assert [r["version"] for r in started] == ["v2"]
        quarantined = [
            r for r in records
            if r["event"] == "registry.rolled_back" and r["role"] == "candidate"
        ]
        assert len(quarantined) == 1
        assert quarantined[0]["version"] == "v2"
        assert quarantined[0]["restored"] == "v1"

    def test_clean_candidate_keeps_shadowing(self, two_version_registry):
        """Identical weights diverge by ~0: the candidate must survive."""
        registry = two_version_registry
        guard = GuardConfig(divergence_budget=0.15, divergence_min_samples=4)
        config = DaemonConfig(reload_poll_s=0.05, batch_deadline_ms=2.0)
        with running_registry_daemon(registry, config, guard=guard) as daemon:
            pairs, mjd = make_serve_sample(daemon.engine, seed=5)
            body = classify_body(pairs, mjd)
            registry.shadow("v2")
            _wait_for(lambda: daemon._shadow_version == "v2")
            for _ in range(8):
                assert post_classify(daemon.port, body)[0] == 200
                time.sleep(0.03)
            _wait_for(
                lambda: int(daemon.metrics.counter("shadow.scored").value) >= 4
            )
            assert daemon._shadow_version == "v2"
            assert registry.candidate() == "v2"
            stats = _healthz(daemon.port)["shadow"]
            assert stats["version"] == "v2"
            assert stats["divergence_mean"] == pytest.approx(0.0, abs=1e-6)


class TestAutomaticRollback:
    def test_poisoned_promote_rolls_back_under_load(self, tmp_path):
        """The acceptance-criteria chaos drill, end to end.

        Under sustained traffic, promoting a candidate whose scores are
        diverted (``ShiftScores`` via the reload hook) must: keep every
        in-flight request answered (zero drops), trip the drift guard,
        roll production back to the last-known-good version, quarantine
        the bad version in ``registry.json`` and leave a
        ``registry.rolled_back`` audit event.
        """
        # Commit a drift baseline built from the model's own score on the
        # exact sample the test sends, so v1 never drifts and the
        # poisoned v2 (+0.4 on every score) immediately does.
        probe = make_serve_engine(seed=0)
        pairs, mjd = make_serve_sample(probe, seed=7)
        clean_score = probe.classify_arrays(pairs[None], mjd[None])[0].probability
        delta = 0.5 if clean_score < 0.5 else -0.5
        model = tmp_path / "model"
        _build_model_dir(model, seed=0, baseline_scores=[clean_score] * 64)
        registry = ModelRegistry(tmp_path / "registry")
        registry.promote(registry.register(model, note="good"))
        registry.register(model, note="poisoned retrain")

        def poison_v2(engine, version):
            if version == "v2":
                engine.score_hook = ShiftScores(delta)

        guard = GuardConfig(
            drift_window=32, drift_min_samples=8, sustained_checks=2,
        )
        config = DaemonConfig(reload_poll_s=0.05, batch_deadline_ms=2.0)
        telemetry = tmp_path / "telemetry"
        obs.start(telemetry, run_id="run-rollback")
        try:
            with running_registry_daemon(
                registry, config, guard=guard, reload_hook=poison_v2
            ) as daemon:
                body = classify_body(pairs, mjd, deadline_ms=30000)
                statuses = []
                # Warm traffic on v1: enough for the monitor to fill
                # without flagging (scores match the committed baseline).
                for _ in range(10):
                    statuses.append(post_classify(daemon.port, body)[0])
                assert daemon._engine_version == "v1"
                assert int(daemon.metrics.counter("daemon.rollbacks").value) == 0

                registry.promote("v2")
                _wait_for(lambda: daemon._engine_version == "v2")

                # Sustained load on the poisoned version until the guard
                # trips and the daemon swaps back — bounded, not open-loop.
                for _ in range(80):
                    statuses.append(post_classify(daemon.port, body)[0])
                    if daemon._engine_version == "v1":
                        break
                    time.sleep(0.01)
                _wait_for(
                    lambda: int(daemon.metrics.counter("daemon.rollbacks").value) == 1
                )
                _wait_for(lambda: daemon._engine_version == "v1")

                # Zero dropped requests: every send was answered, and
                # under this light load none were shed or timed out.
                assert statuses and set(statuses) == {200}
                responses = int(daemon.metrics.counter("daemon.responses").value)
                assert responses == len(statuses)

                # The registry quarantined v2 and restored v1...
                state = registry.state()
                assert state["production"] == "v1"
                assert state["versions"]["v2"]["status"] == "rolled_back"
                assert "drift" in state["versions"]["v2"]["reason"]
                rollbacks = [
                    entry for entry in state["history"]
                    if entry["action"] == "rollback"
                ]
                assert len(rollbacks) == 1
                assert rollbacks[0]["by"].startswith("daemon:")

                # ...and the quarantined version is refused by promote.
                with pytest.raises(RegistryError, match="rolled back"):
                    registry.promote("v2")

                health = _healthz(daemon.port)
                assert health["model_version"] == "v1"
                assert health["rollbacks"] == 1

                # Traffic keeps flowing on the restored version.
                assert post_classify(daemon.port, body)[0] == 200
        finally:
            obs.stop()

        records = list(read_events(telemetry / EVENTS_FILE))
        rolled = [
            r for r in records
            if r["event"] == "registry.rolled_back" and r["role"] == "production"
        ]
        assert len(rolled) == 1
        assert rolled[0]["version"] == "v2"
        assert rolled[0]["restored"] == "v1"
        assert "drift" in rolled[0]["reason"]
        reloads = [r for r in records if r["event"] == "registry.reloaded"]
        # v1 -> v2 (promote), v2 -> v1 (rollback).
        assert [(r["previous"], r["version"]) for r in reloads] == [
            ("v1", "v2"), ("v2", "v1"),
        ]

    def test_rollback_without_prior_good_version_keeps_serving(self, tmp_path):
        """Drift on the only version ever deployed: nothing to restore,
        so the daemon logs rollback_failed and keeps answering."""
        probe = make_serve_engine(seed=0)
        pairs, mjd = make_serve_sample(probe, seed=2)
        # Baseline deliberately far from the model's actual scores: v1
        # itself drifts immediately.
        model = tmp_path / "model"
        _build_model_dir(
            model, seed=0, baseline_scores=np.linspace(0.0, 0.05, 64)
        )
        registry = ModelRegistry(tmp_path / "registry")
        registry.promote(registry.register(model))
        guard = GuardConfig(
            drift_window=16, drift_min_samples=4, sustained_checks=2,
        )
        config = DaemonConfig(reload_poll_s=0.05, batch_deadline_ms=2.0)
        telemetry = tmp_path / "telemetry"
        obs.start(telemetry, run_id="run-norollback")
        try:
            with running_registry_daemon(registry, config, guard=guard) as daemon:
                body = classify_body(pairs, mjd)
                for _ in range(10):
                    assert post_classify(daemon.port, body)[0] == 200
                    time.sleep(0.01)
                _wait_for(
                    lambda: any(
                        r["event"] == "registry.rollback_failed"
                        for r in read_events(telemetry / EVENTS_FILE)
                    )
                )
                assert daemon._engine_version == "v1"
                assert post_classify(daemon.port, body)[0] == 200
                assert registry.production() == "v1"
        finally:
            obs.stop()
