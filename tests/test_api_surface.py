"""API-surface checks: every public symbol is exported, importable and
documented; subpackage __all__ lists are accurate."""

import importlib
import inspect

import pytest

SUBPACKAGES = [
    "repro",
    "repro.nn",
    "repro.photometry",
    "repro.lightcurves",
    "repro.catalog",
    "repro.survey",
    "repro.datasets",
    "repro.core",
    "repro.baselines",
    "repro.eval",
    "repro.utils",
    "repro.runtime",
    "repro.serve",
    "repro.obs",
]


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_all_symbols_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} has no __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_module_docstrings(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(f"{module_name}.{name}")
    assert not undocumented, f"undocumented public API: {undocumented}"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_cli_module_importable():
    from repro import cli

    assert callable(cli.main)


def test_public_classes_have_documented_methods():
    """Spot-check core classes: public methods carry docstrings."""
    from repro.core import BandwiseCNN, JointModel, LightCurveClassifier, SupernovaPipeline
    from repro.datasets import DatasetBuilder, SupernovaDataset

    for cls in (BandwiseCNN, LightCurveClassifier, JointModel, SupernovaPipeline,
                DatasetBuilder, SupernovaDataset):
        for name, member in inspect.getmembers(cls, inspect.isfunction):
            if name.startswith("_"):
                continue
            assert inspect.getdoc(member), f"{cls.__name__}.{name} undocumented"
