"""Integration tests: the full three-stage pipeline on a tiny dataset,
trainer mechanics, and utilities."""

import numpy as np
import pytest

from repro.core import (
    History,
    SupernovaPipeline,
    TrainConfig,
    epoch_visit_indices,
    fit_classifier,
    fit_regressor,
)
from repro.core.classifier import LightCurveClassifier
from repro.datasets import BuildConfig, DatasetBuilder, train_val_test_split
from repro.eval import auc_score
from repro.survey import ImagingConfig
from repro.utils import format_table, spawn_rngs


@pytest.fixture(scope="module")
def splits():
    config = BuildConfig(
        n_ia=20,
        n_non_ia=20,
        seed=21,
        catalog_size=100,
        imaging=ImagingConfig(stamp_size=41),
    )
    dataset = DatasetBuilder(config).build()
    return train_val_test_split(dataset, train_fraction=0.7, val_fraction=0.15, seed=0)


class TestTrainConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(optimizer="rmsprop")

    def test_optimizer_construction(self):
        model = LightCurveClassifier(input_dim=10, units=8)
        adam = TrainConfig(optimizer="adam").make_optimizer(model)
        sgd = TrainConfig(optimizer="sgd").make_optimizer(model)
        assert type(adam).__name__ == "Adam"
        assert type(sgd).__name__ == "SGD"


class TestTrainerMechanics:
    def test_history_records_epochs(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 10)).astype(np.float32)
        y = (x[:, 0] > 0).astype(np.float32)
        clf = LightCurveClassifier(input_dim=10, units=8, rng=rng)
        history = fit_classifier(clf, x, y, TrainConfig(epochs=5, batch_size=16, seed=1))
        assert history.n_epochs == 5
        assert all(np.isfinite(v) for v in history.train_loss)

    def test_early_stopping_restores_best(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(64, 10)).astype(np.float32)
        y = (x[:, 0] > 0).astype(np.float32)
        x_val = rng.normal(size=(32, 10)).astype(np.float32)
        # Validation labels follow the *opposite* rule: as the model learns
        # the training rule, validation loss rises and early stopping fires.
        y_val = (x_val[:, 0] <= 0).astype(np.float32)
        clf = LightCurveClassifier(input_dim=10, units=8, rng=rng)
        history = fit_classifier(
            clf, x, y,
            TrainConfig(epochs=50, batch_size=16, seed=2, early_stopping_patience=3),
            x_val, y_val,
        )
        assert history.n_epochs < 50
        assert history.best_epoch >= 0
        assert history.val_loss[history.best_epoch] == pytest.approx(history.best_val_loss)

    def test_input_length_mismatch(self):
        clf = LightCurveClassifier(input_dim=10, units=8)
        with pytest.raises(ValueError):
            fit_classifier(
                clf, np.zeros((4, 10), dtype=np.float32), np.zeros(5, dtype=np.float32),
                TrainConfig(epochs=1),
            )

    def test_regressor_loss_decreases(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(128, 10)).astype(np.float32)
        y = x[:, 0] * 2.0 + 1.0
        from repro import nn

        model = nn.Sequential(nn.Linear(10, 16, rng=rng), nn.ReLU(), nn.Linear(16, 1, rng=rng))
        class Reg(nn.Module):
            def __init__(self):
                super().__init__()
                self.inner = model
            def forward(self, t):
                return self.inner(t).reshape(-1)
        history = fit_regressor(
            Reg(), x, y, TrainConfig(epochs=30, batch_size=32, seed=4, learning_rate=1e-2)
        )
        assert history.train_loss[-1] < history.train_loss[0] / 5


class TestPipelineIntegration:
    def test_three_stages_run(self, splits):
        pipe = SupernovaPipeline(input_size=36, units=16, epochs_used=1, seed=0)
        h1 = pipe.fit_flux_cnn(
            splits.train, splits.val, TrainConfig(epochs=1, batch_size=32, seed=1)
        )
        assert h1.n_epochs == 1
        h2 = pipe.fit_classifier(
            splits.train, splits.val, TrainConfig(epochs=3, batch_size=16, seed=2),
            use_ground_truth=True,
        )
        assert len(h2.val_metric) == h2.n_epochs
        h3 = pipe.fine_tune(
            splits.train, splits.val, TrainConfig(epochs=1, batch_size=8, seed=3)
        )
        assert h3.n_epochs == 1
        probs = pipe.predict_proba(splits.test)
        assert probs.shape == (len(splits.test),)
        assert np.all((probs >= 0) & (probs <= 1))
        auc = pipe.evaluate_auc(splits.test)
        assert 0.0 <= auc <= 1.0

    def test_two_stage_path_without_joint(self, splits):
        pipe = SupernovaPipeline(input_size=36, units=16, epochs_used=2, seed=1)
        pipe.fit_classifier(
            splits.train, splits.val, TrainConfig(epochs=2, batch_size=16, seed=1),
            use_ground_truth=True,
        )
        probs = pipe.predict_proba(splits.test, use_joint=False)
        assert probs.shape == (len(splits.test),)

    def test_scratch_strategy_builds_fresh_joint(self, splits):
        pipe = SupernovaPipeline(input_size=36, units=16, epochs_used=1, seed=2)
        pipe.fine_tune(
            splits.train, splits.val,
            TrainConfig(epochs=1, batch_size=8, seed=4), from_scratch=True,
        )
        assert pipe.joint is not None

    def test_estimates_shapes(self, splits):
        pipe = SupernovaPipeline(input_size=36, units=16, seed=3)
        mags = pipe.estimate_magnitudes(splits.test)
        flux = pipe.estimated_fluxes(splits.test)
        assert mags.shape == (len(splits.test), splits.test.n_visits)
        assert np.all(flux > 0)

    def test_epoch_visit_indices(self, splits):
        idx = epoch_visit_indices(splits.test, 2)
        np.testing.assert_array_equal(idx, np.arange(10))
        with pytest.raises(ValueError):
            epoch_visit_indices(splits.test, [])

    def test_epoch_visit_indices_validates_range(self, splits):
        with pytest.raises(IndexError, match=r"out of range \[0, 4\)"):
            epoch_visit_indices(splits.test, [0, 7])
        with pytest.raises(IndexError, match="out of range"):
            epoch_visit_indices(splits.test, [-1])
        with pytest.raises(IndexError, match="out of range"):
            epoch_visit_indices(splits.test, 9)
        with pytest.raises(TypeError, match="integers"):
            epoch_visit_indices(splits.test, [1.5])

    def test_joint_inputs_windowed_shapes(self, splits):
        pipe = SupernovaPipeline(input_size=36, units=8, epochs_used=1, seed=7)
        pairs, dates, labels = pipe._joint_inputs(splits.test, windowed=True)
        n_windows = splits.test.n_epochs  # 4 windows for k=1
        assert pairs.shape[0] == len(splits.test) * n_windows
        assert dates.shape == (pairs.shape[0], 5)
        assert labels.shape == (pairs.shape[0],)
        # Labels repeat per window block.
        np.testing.assert_array_equal(
            labels[: len(splits.test)], splits.test.labels.astype(np.float32)
        )

    def test_joint_inputs_multi_epoch_windows(self, splits):
        pipe = SupernovaPipeline(input_size=36, units=8, epochs_used=2, seed=8)
        pairs, dates, labels = pipe._joint_inputs(splits.test, windowed=True)
        # 4 epochs, k=2 -> 3 windows.
        assert pairs.shape[0] == len(splits.test) * 3
        assert pairs.shape[1] == 10

    def test_classifier_features_windowed(self, splits):
        pipe = SupernovaPipeline(input_size=36, units=8, epochs_used=1, seed=9)
        x, y = pipe._classifier_features(splits.test, use_ground_truth=True, windowed=True)
        assert x.shape == (len(splits.test) * 4, 10)
        assert y.shape == (len(splits.test) * 4,)

    def test_save_load_roundtrip(self, splits, tmp_path):
        pipe = SupernovaPipeline(input_size=36, units=16, epochs_used=1, seed=10)
        pipe.fine_tune(
            splits.train, splits.val, TrainConfig(epochs=1, batch_size=8, seed=11)
        )
        pipe.save(str(tmp_path))
        loaded = SupernovaPipeline.load(str(tmp_path), input_size=36, units=16)
        np.testing.assert_allclose(
            pipe.predict_proba(splits.test),
            loaded.predict_proba(splits.test),
            rtol=1e-5,
        )
        assert loaded.joint is not None

    def test_save_writes_manifest(self, splits, tmp_path):
        import json

        pipe = SupernovaPipeline(input_size=36, units=16, epochs_used=2, seed=12)
        pipe.save(str(tmp_path))
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest == {
            "format_version": 1,
            "input_size": 36,
            "units": 16,
            "epochs_used": 2,
            "has_joint": False,
        }

    def test_load_restores_architecture_from_manifest(self, splits, tmp_path):
        pipe = SupernovaPipeline(input_size=36, units=16, epochs_used=1, seed=13)
        pipe.save(str(tmp_path))
        loaded = SupernovaPipeline.load(str(tmp_path))  # no kwargs needed
        assert loaded.input_size == 36
        assert loaded.units == 16
        assert loaded.epochs_used == 1

    def test_load_rejects_conflicting_kwargs(self, splits, tmp_path):
        from repro.runtime import CorruptArtifactError

        pipe = SupernovaPipeline(input_size=36, units=16, epochs_used=1, seed=14)
        pipe.save(str(tmp_path))
        with pytest.raises(CorruptArtifactError, match="units=99"):
            SupernovaPipeline.load(str(tmp_path), units=99)

    def test_load_manifest_less_dir_uses_kwargs(self, splits, tmp_path):
        pipe = SupernovaPipeline(input_size=36, units=16, epochs_used=1, seed=15)
        pipe.save(str(tmp_path))
        (tmp_path / "manifest.json").unlink()  # legacy directory
        loaded = SupernovaPipeline.load(str(tmp_path), input_size=36, units=16)
        assert loaded.units == 16

    def test_load_rejects_bad_manifest(self, splits, tmp_path):
        from repro.runtime import CorruptArtifactError

        pipe = SupernovaPipeline(input_size=36, units=16, epochs_used=1, seed=16)
        pipe.save(str(tmp_path))
        (tmp_path / "manifest.json").write_text("{broken")
        with pytest.raises(CorruptArtifactError, match="unreadable manifest"):
            SupernovaPipeline.load(str(tmp_path))
        (tmp_path / "manifest.json").write_text('{"format_version": 99}')
        with pytest.raises(CorruptArtifactError, match="format_version"):
            SupernovaPipeline.load(str(tmp_path))
        (tmp_path / "manifest.json").write_text(
            '{"format_version": 1, "input_size": -3, "units": 16, "epochs_used": 1}'
        )
        with pytest.raises(CorruptArtifactError, match="input_size"):
            SupernovaPipeline.load(str(tmp_path))

    def test_load_rejects_weights_manifest_mismatch(self, splits, tmp_path):
        import json

        from repro.runtime import CorruptArtifactError

        pipe = SupernovaPipeline(input_size=36, units=16, epochs_used=1, seed=17)
        pipe.save(str(tmp_path))
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        manifest["units"] = 32  # lie about the stored architecture
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(CorruptArtifactError, match="declared architecture"):
            SupernovaPipeline.load(str(tmp_path))

    def test_load_rejects_missing_declared_joint(self, splits, tmp_path):
        from repro.runtime import CorruptArtifactError

        pipe = SupernovaPipeline(input_size=36, units=16, epochs_used=1, seed=18)
        pipe.fine_tune(
            splits.train, splits.val, TrainConfig(epochs=1, batch_size=8, seed=19)
        )
        pipe.save(str(tmp_path))
        (tmp_path / "joint.npz").unlink()
        with pytest.raises(CorruptArtifactError, match="joint.npz is missing"):
            SupernovaPipeline.load(str(tmp_path))

    def test_nan_inputs_raise(self):
        x = np.full((32, 10), np.nan, dtype=np.float32)
        y = np.zeros(32, dtype=np.float32)
        clf = LightCurveClassifier(input_dim=10, units=8)
        with pytest.raises(RuntimeError, match="non-finite"):
            fit_classifier(clf, x, y, TrainConfig(epochs=1, batch_size=16))


class TestUtils:
    def test_spawn_rngs_independent(self):
        a, b = spawn_rngs(0, 2)
        assert a.random() != b.random()

    def test_spawn_reproducible(self):
        a1, = spawn_rngs(5, 1)
        a2, = spawn_rngs(5, 1)
        assert a1.random() == a2.random()

    def test_spawn_validation(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, 0)

    def test_format_table(self):
        table = format_table(["a", "bb"], [[1, 2.5], ["xx", "y"]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_validation(self):
        with pytest.raises(ValueError):
            format_table([], [])
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])
