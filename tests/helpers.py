"""Shared test utilities: numerical gradient checking."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn import Tensor, preserve_float64


def numerical_grad(
    fn: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-4
) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        f_plus = fn(x)
        flat[i] = original - eps
        f_minus = fn(x)
        flat[i] = original
        grad_flat[i] = (f_plus - f_minus) / (2 * eps)
    return grad


def check_gradient(
    build: Callable[[Tensor], Tensor],
    x: np.ndarray,
    rtol: float = 1e-3,
    atol: float = 1e-4,
) -> None:
    """Assert autograd gradient of ``build(x).sum()`` matches finite differences.

    ``build`` must map a Tensor to a Tensor using only repro.nn operations.
    The whole comparison runs under :class:`repro.nn.preserve_float64`
    (the documented opt-out of the float32 dtype policy) so finite
    differences stay numerically tight.
    """
    x = np.asarray(x, dtype=np.float64)

    with preserve_float64():
        tensor = Tensor(x.copy(), requires_grad=True)
        out = build(tensor)
        out.sum().backward()
        analytic = tensor.grad

        def scalar_fn(arr: np.ndarray) -> float:
            t = Tensor(arr.copy())
            return float(build(t).numpy().sum())

        numeric = numerical_grad(scalar_fn, x)
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)
