"""Shared test utilities: numerical gradient checking, daemon harness."""

from __future__ import annotations

import contextlib
import json
import urllib.error
import urllib.request
from typing import Callable, Iterator

import numpy as np

from repro.nn import Tensor, preserve_float64


def numerical_grad(
    fn: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-4
) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        f_plus = fn(x)
        flat[i] = original - eps
        f_minus = fn(x)
        flat[i] = original
        grad_flat[i] = (f_plus - f_minus) / (2 * eps)
    return grad


def check_gradient(
    build: Callable[[Tensor], Tensor],
    x: np.ndarray,
    rtol: float = 1e-3,
    atol: float = 1e-4,
) -> None:
    """Assert autograd gradient of ``build(x).sum()`` matches finite differences.

    ``build`` must map a Tensor to a Tensor using only repro.nn operations.
    The whole comparison runs under :class:`repro.nn.preserve_float64`
    (the documented opt-out of the float32 dtype policy) so finite
    differences stay numerically tight.
    """
    x = np.asarray(x, dtype=np.float64)

    with preserve_float64():
        tensor = Tensor(x.copy(), requires_grad=True)
        out = build(tensor)
        out.sum().backward()
        analytic = tensor.grad

        def scalar_fn(arr: np.ndarray) -> float:
            t = Tensor(arr.copy())
            return float(build(t).numpy().sum())

        numeric = numerical_grad(scalar_fn, x)
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)


# ----------------------------------------------------------------------
# Serving-daemon harness (tests/test_daemon*.py, benchmarks)
# ----------------------------------------------------------------------
def make_serve_engine(seed: int = 0):
    """A tiny warm :class:`InferenceEngine` — no dataset build required."""
    from repro.core import SupernovaPipeline
    from repro.serve import FluxPrior, InferenceEngine

    pipe = SupernovaPipeline(input_size=36, units=8, epochs_used=1, seed=seed)
    return InferenceEngine(pipe, prior=FluxPrior.neutral())


def make_serve_sample(engine, seed: int = 0, stamp: int = 40):
    """One valid ``(V, 2, S, S)`` sample + its ``(V,)`` MJD vector."""
    rng = np.random.default_rng(seed)
    visits = engine._n_used_visits
    pairs = rng.normal(0.0, 30.0, size=(visits, 2, stamp, stamp)).astype(np.float32)
    mjd = (57000.0 + np.arange(visits) * 0.01).astype(np.float32)
    return pairs, mjd


def classify_body(pairs, mjd, **extra) -> bytes:
    """The JSON body ``POST /classify`` expects for one sample."""
    doc = {"pairs": np.asarray(pairs).tolist(), "mjd": np.asarray(mjd).tolist()}
    doc.update(extra)
    return json.dumps(doc).encode()


@contextlib.contextmanager
def running_daemon(engine, config=None, fault_hook=None) -> Iterator:
    """Start an in-process :class:`ServingDaemon`; always drain on exit."""
    from repro.serve import ServingDaemon

    daemon = ServingDaemon(engine, config, fault_hook=fault_hook)
    daemon.start()
    try:
        yield daemon
    finally:
        daemon.drain(reason="test-teardown")
        daemon.wait()


@contextlib.contextmanager
def running_registry_daemon(
    registry, config=None, guard=None, reload_hook=None
) -> Iterator:
    """Start a registry-backed daemon serving the production version.

    The engine is loaded from the registry (``engine=None``), exercising
    the same verify + ``from_directory`` path the ``repro serve
    --registry`` CLI uses.  ``reload_hook(engine, version)`` is the chaos
    seam for poisoning a specific version's scores.
    """
    from repro.serve import ServingDaemon

    daemon = ServingDaemon(
        None, config, registry=registry, guard=guard, reload_hook=reload_hook
    )
    daemon.start()
    try:
        yield daemon
    finally:
        daemon.drain(reason="test-teardown")
        daemon.wait()


def post_classify(port: int, body: bytes, timeout: float = 30.0):
    """POST one body to ``/classify``; returns ``(status, decoded_json)``.

    Non-2xx responses are returned, not raised — every daemon answer is
    a typed JSON document and tests assert on the type.
    """
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/classify",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        with exc:
            return exc.code, json.loads(exc.read())


def http_get(port: int, path: str, timeout: float = 10.0):
    """GET a daemon endpoint; returns ``(status, raw_bytes)``."""
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=timeout
        ) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        with exc:
            return exc.code, exc.read()
