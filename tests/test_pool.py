"""Multi-process scoring pool: parity, crash healing, hot reload, stream.

The pool's promise is that scattering a batch across worker processes
changes *nothing* observable but the wall clock.  The parity tests pin
that at two levels:

* **transport parity** — against a single-process reference scored with
  the pool's own contiguous shard plan, every field is bit-exact: the
  shared-memory ring and result marshaling add zero numerical change;
* **wire parity** — against the *full-batch* single-process reference,
  probabilities and confidences agree at the round-6 wire precision the
  daemon serves (``TestCleanTrafficParity`` pins the same contract for
  thread-timing-dependent micro-batch compositions: BLAS GEMM blocking
  varies with batch shape, so raw float32 scores may move one ULP while
  the served values must not).

Crash tests use real ``SIGKILL`` — both external (``pool.pids()``) and
from inside a worker via the picklable
:class:`~repro.runtime.faults.CrashWorkerOnMarker` seam — and assert
the respawn budget, per-sample culprit isolation and the
:class:`PoolBrokenError` endgame.
"""

import os
import signal
import tempfile
import threading
import time

import numpy as np
import pytest

from repro.runtime.errors import CorruptArtifactError, TrainingDiverged
from repro.runtime.faults import (
    CrashWorkerOnMarker,
    DropBand,
    NaNPixels,
    RaiseWorkerOnMarker,
    WedgeWorkerOnMarker,
)
from repro.runtime.retry import RetrySpec
from repro.serve import (
    DegradedInputError,
    InferenceEngine,
    PoolBrokenError,
    PoolConfig,
    PredictionResult,
    ScoringPool,
    WorkerCrashError,
)

from .helpers import make_serve_engine

pytestmark = pytest.mark.serve

#: Magic first-pixel value CrashWorkerOnMarker kills on; far outside the
#: N(0, 30) pixel distribution of the test batches.
MARKER = 12345.0


@pytest.fixture(scope="module")
def engine():
    return make_serve_engine(seed=0)


@pytest.fixture(scope="module")
def batch(engine):
    rng = np.random.default_rng(42)
    n, v, s = 12, engine._n_used_visits, 40
    pairs = rng.normal(0.0, 30.0, size=(n, v, 2, s, s)).astype(np.float32)
    mjd = np.tile(
        (57000.0 + np.arange(v) * 0.01).astype(np.float32), (n, 1)
    )
    return pairs, mjd


@pytest.fixture(scope="module")
def shared_pool(engine):
    """One warm 2-worker pool reused by the read-only tests."""
    pool = ScoringPool(engine=engine, config=PoolConfig(workers=2))
    pool.start()
    yield pool
    pool.close()


def shard_reference(engine, workers, pairs, mjd, strict=None, start_index=0):
    """Single-process scoring with the pool's own contiguous shard plan."""
    n = len(pairs)
    shard_count = min(workers, n)
    base, extra = divmod(n, shard_count)
    results, offset = [], 0
    for k in range(shard_count):
        count = base + (1 if k < extra else 0)
        results.extend(
            engine.classify_arrays(
                pairs[offset : offset + count],
                mjd[offset : offset + count],
                strict=strict,
                start_index=start_index + offset,
            )
        )
        offset += count
    return results


def assert_bit_exact(got, want):
    """Every observable PredictionResult field matches bit for bit."""
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.index == w.index
        assert g.probability == w.probability
        assert g.confidence == w.confidence
        assert (np.isnan(g.flux_feature) and np.isnan(w.flux_feature)) or (
            g.flux_feature == w.flux_feature
        )
        assert g.degraded == w.degraded
        assert g.usable_bands == w.usable_bands
        assert g.error == w.error


def assert_wire_parity(got, want):
    """Round-6 score parity vs an arbitrary-composition reference."""
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert round(g.probability, 6) == round(w.probability, 6)
        assert round(g.confidence, 6) == round(w.confidence, 6)
        assert g.degraded == w.degraded
        assert g.usable_bands == w.usable_bands
        assert (np.isnan(g.flux_feature) and np.isnan(w.flux_feature)) or (
            abs(g.flux_feature - w.flux_feature) <= 2e-6
        )


class TestPoolLifecycle:
    def test_requires_exactly_one_source(self, engine):
        with pytest.raises(ValueError, match="exactly one"):
            ScoringPool()
        with pytest.raises(ValueError, match="exactly one"):
            ScoringPool(model_source="/tmp/x", engine=engine)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PoolConfig(workers=0)
        with pytest.raises(ValueError):
            PoolConfig(slot_bytes=16)
        with pytest.raises(ValueError):
            PoolConfig(task_timeout_s=0.0)
        with pytest.raises(ValueError):
            PoolConfig(respawn_reset_s=-1.0)

    def test_close_is_idempotent_and_fatal(self, engine, batch):
        pairs, mjd = batch
        pool = ScoringPool(engine=engine, config=PoolConfig(workers=1))
        assert not pool.started and not pool.closed
        pool.start()
        assert pool.started and not pool.closed
        assert len(pool.pids()) == 1
        pool.close()
        pool.close()
        assert pool.closed
        with pytest.raises(PoolBrokenError):
            pool.classify_arrays(pairs, mjd)

    def test_stats_shape(self, shared_pool, engine, batch):
        pairs, mjd = batch
        shared_pool.classify_arrays(pairs, mjd)
        stats = shared_pool.stats()
        assert stats["workers"] == 2
        assert stats["slots_free"] == stats["slots"]  # all returned
        assert stats["samples"] >= len(pairs)
        assert stats["blas_threads"] >= 1
        assert len(stats["per_worker"]) == 2
        for entry in stats["per_worker"]:
            assert entry["alive"]
            assert 0.0 <= entry["utilization"] <= 1.0

    def test_input_validation_matches_engine(self, shared_pool, engine, batch):
        pairs, mjd = batch
        with pytest.raises(ValueError, match=r"expected \(N, V, 2, S, S\)"):
            shared_pool.classify_arrays(pairs[:, :, :1], mjd)
        with pytest.raises(ValueError, match="does not match pairs"):
            shared_pool.classify_arrays(pairs, mjd[:3])
        assert shared_pool.classify_arrays(pairs[:0], mjd[:0]) == []


class TestPoolParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_transport_bit_exact_clean(self, engine, batch, workers):
        pairs, mjd = batch
        want = shard_reference(engine, workers, pairs, mjd)
        with ScoringPool(
            engine=engine, config=PoolConfig(workers=workers)
        ) as pool:
            got = pool.classify_arrays(pairs, mjd)
        assert_bit_exact(got, want)

    def test_wire_parity_vs_full_batch(self, shared_pool, engine, batch):
        pairs, mjd = batch
        want = engine.classify_arrays(pairs, mjd)
        got = shared_pool.classify_arrays(pairs, mjd)
        assert_wire_parity(got, want)

    @pytest.mark.parametrize(
        "corruptor",
        [DropBand([1, 3]), NaNPixels(fraction=0.2, seed=9)],
        ids=["drop-band", "nan-pixels"],
    )
    def test_parity_under_corruptors(self, shared_pool, engine, batch, corruptor):
        pairs, mjd = batch
        corrupted = corruptor(pairs)
        want = shard_reference(engine, 2, corrupted, mjd)
        got = shared_pool.classify_arrays(corrupted, mjd)
        assert any(r.degraded for r in want)  # the corruption bites
        assert_bit_exact(got, want)

    def test_float16_precision_parity(self, batch, tmp_path):
        pairs, mjd = batch
        engine16 = make_serve_engine(seed=0)
        engine16.save(str(tmp_path / "model"))
        engine16 = InferenceEngine.from_directory(
            tmp_path / "model", precision="float16"
        )
        want = shard_reference(engine16, 2, pairs, mjd)
        with ScoringPool(
            model_source=tmp_path / "model",
            config=PoolConfig(workers=2),
            engine_kwargs={"precision": "float16"},
        ) as pool:
            got = pool.classify_arrays(pairs, mjd)
        assert_bit_exact(got, want)

    def test_strict_error_matches_single_process(self, engine, batch):
        pairs, mjd = batch
        corrupted = DropBand([0, 1, 2, 3, 4])(pairs[:4])  # fully masked
        with pytest.raises(DegradedInputError) as single_exc:
            engine.classify_arrays(corrupted, mjd[:4], strict=True)
        with ScoringPool(
            engine=engine, config=PoolConfig(workers=2)
        ) as pool:
            with pytest.raises(DegradedInputError) as pool_exc:
                pool.classify_arrays(corrupted, mjd[:4], strict=True)
        # Contiguous shards raise for the globally-first failing sample,
        # so the typed error is identical to the single-process one.
        assert str(pool_exc.value) == str(single_exc.value)
        assert pool_exc.value.index == single_exc.value.index

    def test_shm_overflow_falls_back_to_pickle(self, engine, batch):
        pairs, mjd = batch
        want = shard_reference(engine, 2, pairs, mjd)
        config = PoolConfig(workers=2, slot_bytes=4096)  # far too small
        with ScoringPool(engine=engine, config=config) as pool:
            got = pool.classify_arrays(pairs, mjd)
            assert pool.stats()["shm_overflow"] >= 2
        assert_bit_exact(got, want)


class TestPoolCrash:
    def test_external_sigkill_heals_and_respawns(self, engine, batch):
        pairs, mjd = batch
        want = shard_reference(engine, 2, pairs, mjd)
        with ScoringPool(
            engine=engine, config=PoolConfig(workers=2)
        ) as pool:
            victim = pool.pids()[0]
            os.kill(victim, signal.SIGKILL)
            healed = pool.classify_arrays(pairs, mjd)
            stats = pool.stats()
            assert stats["crashes"] >= 1
            assert stats["respawns"] >= 1
            assert victim not in pool.pids()
            assert len(pool.pids()) == 2
            # The healed batch re-scored crashed samples one at a time —
            # wire parity holds; the *next* batch is bit-exact again.
            assert_wire_parity(healed, want)
            assert_bit_exact(pool.classify_arrays(pairs, mjd), want)

    def test_marked_group_crash_is_healed_per_sample(self, engine, batch):
        """A mid-batch SIGKILL hurts nobody: every sample still scores."""
        pairs, mjd = batch
        marked = pairs.copy()
        marked[5, 0, 0, 0, 0] = MARKER
        want = shard_reference(engine, 2, marked, mjd)
        with ScoringPool(
            engine=engine,
            config=PoolConfig(workers=2),
            worker_init=CrashWorkerOnMarker(MARKER, min_batch=2),
        ) as pool:
            got = pool.classify_arrays(marked, mjd)
            stats = pool.stats()
        # The culprit's shard died mid-batch; after respawn each of its
        # samples re-scored alone (batch of 1 < min_batch passes).
        assert stats["crashes"] >= 1
        assert stats["respawns"] >= 1
        assert [r.error for r in got] == [None] * len(got)
        assert_wire_parity(got, want)

    def test_repeat_offender_becomes_failed_placeholder(self, engine, batch):
        """A sample that kills every worker that touches it is isolated."""
        pairs, mjd = batch
        marked = pairs.copy()
        marked[7, 0, 0, 0, 0] = MARKER
        with ScoringPool(
            engine=engine,
            config=PoolConfig(workers=2),
            worker_init=CrashWorkerOnMarker(MARKER, min_batch=1),
        ) as pool:
            got = pool.classify_arrays(marked, mjd)
        assert len(got) == len(pairs)
        culprit = got[7]
        assert culprit.error is not None and "WorkerCrashError" in culprit.error
        assert culprit.probability == 0.5 and culprit.confidence == 0.0
        clean = [r for i, r in enumerate(got) if i != 7]
        assert all(r.error is None for r in clean)

    def test_strict_mode_raises_worker_crash_error(self, engine, batch):
        pairs, mjd = batch
        marked = pairs.copy()
        marked[2, 0, 0, 0, 0] = MARKER
        with ScoringPool(
            engine=engine,
            config=PoolConfig(workers=2),
            worker_init=CrashWorkerOnMarker(MARKER, min_batch=1),
        ) as pool:
            with pytest.raises(WorkerCrashError):
                pool.classify_arrays(marked, mjd, strict=True)

    def test_respawn_budget_exhaustion_breaks_the_pool(self, engine, batch):
        pairs, mjd = batch
        marked = pairs.copy()
        marked[:, 0, 0, 0, 0] = MARKER  # every sample is poison
        config = PoolConfig(
            workers=2,
            respawn=RetrySpec(max_attempts=2, base_delay_s=0.01, jitter=0.0),
        )
        with ScoringPool(
            engine=engine,
            config=config,
            worker_init=CrashWorkerOnMarker(MARKER, min_batch=1),
        ) as pool:
            with pytest.raises(PoolBrokenError):
                pool.classify_arrays(marked, mjd)
            # Broken is terminal: the next dispatch refuses immediately.
            with pytest.raises(PoolBrokenError):
                pool.classify_arrays(pairs, mjd)


class TestPoolReload:
    def test_reload_swaps_exactly_once_and_is_deterministic(self, engine, batch):
        pairs, mjd = batch
        other = make_serve_engine(seed=77)
        with tempfile.TemporaryDirectory() as td:
            other.save(td)
            want = shard_reference(other, 2, pairs, mjd)
            with ScoringPool(
                engine=engine, config=PoolConfig(workers=2)
            ) as pool:
                before = pool.classify_arrays(pairs, mjd)
                assert pool.reload(td) == 1
                assert pool.epoch == 1
                after = pool.classify_arrays(pairs, mjd)
        assert_bit_exact(after, want)
        # The models genuinely disagree, so the swap demonstrably landed.
        assert any(
            round(a.probability, 6) != round(b.probability, 6)
            for a, b in zip(before, after)
        )

    def test_failed_reload_rolls_back_every_worker(self, engine, batch, tmp_path):
        pairs, mjd = batch
        want = shard_reference(engine, 2, pairs, mjd)
        bad = tmp_path / "not-a-model"
        bad.mkdir()
        with ScoringPool(
            engine=engine, config=PoolConfig(workers=2)
        ) as pool:
            pool.classify_arrays(pairs, mjd)
            with pytest.raises(Exception, match="reload failed"):
                pool.reload(bad)
            # Every worker is back on the previous model, bit for bit.
            assert_bit_exact(pool.classify_arrays(pairs, mjd), want)


class _ArrayDataset:
    def __init__(self, pairs, mjd):
        self.pairs = pairs
        self.visit_mjd = mjd

    def __len__(self):
        return len(self.pairs)


class TestPoolStream:
    def test_stream_orders_and_matches_classify(self, shared_pool, engine, batch):
        pairs, mjd = batch
        dataset = _ArrayDataset(pairs, mjd)
        want = shard_reference(engine, 2, pairs, mjd)
        got = list(shared_pool.stream(dataset, batch_size=6))
        assert [r.index for r in got] == list(range(len(pairs)))
        assert_bit_exact(got, want)

    def test_stream_contains_chunk_failures(self, engine, batch):
        pairs, mjd = batch
        marked = pairs.copy()
        marked[3, 0, 0, 0, 0] = MARKER
        dataset = _ArrayDataset(marked, mjd)
        with ScoringPool(
            engine=engine,
            config=PoolConfig(workers=2),
            worker_init=CrashWorkerOnMarker(MARKER, min_batch=1),
        ) as pool:
            got = list(pool.stream(dataset, batch_size=3))
        assert len(got) == len(pairs)
        assert got[3].error is not None
        assert all(r.error is None for i, r in enumerate(got) if i != 3)


class TestPoolWedge:
    """Workers that are alive but silent: the gather's no-progress deadline."""

    def test_wedged_worker_is_terminated_and_healed(self, engine, batch):
        """A hung worker is killed at task_timeout_s and its shard re-scored."""
        pairs, mjd = batch
        marked = pairs.copy()
        marked[5, 0, 0, 0, 0] = MARKER
        want = shard_reference(engine, 2, marked, mjd)
        config = PoolConfig(
            workers=2,
            task_timeout_s=1.0,
            respawn=RetrySpec(max_attempts=8, base_delay_s=0.01, jitter=0.0),
        )
        with ScoringPool(
            engine=engine,
            config=config,
            worker_init=WedgeWorkerOnMarker(MARKER, min_batch=2),
        ) as pool:
            started = time.monotonic()
            got = pool.classify_arrays(marked, mjd)
            elapsed = time.monotonic() - started
            stats = pool.stats()
        # Bounded: one wedge window plus respawn + per-sample re-score.
        assert elapsed < 30.0
        assert stats["wedges"] >= 1
        assert stats["crashes"] >= 1
        assert stats["respawns"] >= 1
        assert [r.error for r in got] == [None] * len(got)
        assert_wire_parity(got, want)

    def test_repeat_wedge_offender_is_flagged(self, engine, batch):
        """A sample that wedges every worker becomes a failed placeholder."""
        pairs, mjd = batch
        marked = pairs.copy()
        marked[7, 0, 0, 0, 0] = MARKER
        config = PoolConfig(
            workers=2,
            task_timeout_s=0.5,
            respawn=RetrySpec(max_attempts=8, base_delay_s=0.01, jitter=0.0),
        )
        with ScoringPool(
            engine=engine,
            config=config,
            worker_init=WedgeWorkerOnMarker(MARKER, min_batch=1),
        ) as pool:
            got = pool.classify_arrays(marked, mjd)
        assert len(got) == len(pairs)
        culprit = got[7]
        assert culprit.error is not None and "WorkerCrashError" in culprit.error
        assert all(r.error is None for i, r in enumerate(got) if i != 7)

    def test_close_never_deadlocks_behind_wedged_dispatch(self, engine, batch):
        """drain() must finish even while a dispatch is stuck on a wedge.

        The gather deadline here is far longer than the close timeout,
        so the dispatch thread genuinely holds the pool lock when close
        runs; close must tear down without it and the stuck dispatch
        must surface PoolBrokenError instead of respawning.
        """
        pairs, mjd = batch
        marked = pairs.copy()
        marked[:, 0, 0, 0, 0] = MARKER  # every shard wedges its worker
        pool = ScoringPool(
            engine=engine,
            config=PoolConfig(workers=2, task_timeout_s=120.0),
            worker_init=WedgeWorkerOnMarker(MARKER, min_batch=1),
        )
        pool.start()
        outcome = []

        def dispatch():
            try:
                pool.classify_arrays(marked, mjd)
                outcome.append(None)
            except Exception as exc:  # noqa: BLE001 - asserted below
                outcome.append(exc)

        thread = threading.Thread(target=dispatch, daemon=True)
        thread.start()
        time.sleep(1.0)  # let both shards dispatch and wedge
        started = time.monotonic()
        pool.close(timeout_s=2.0)
        assert time.monotonic() - started < 15.0
        thread.join(timeout=15.0)
        assert not thread.is_alive()
        assert outcome and isinstance(outcome[0], PoolBrokenError)

    def test_respawn_budget_replenishes_after_healthy_period(self, engine, batch):
        """The budget bounds flapping, not lifetime crashes over weeks."""
        pairs, mjd = batch
        config = PoolConfig(
            workers=2,
            respawn=RetrySpec(max_attempts=2, base_delay_s=0.01, jitter=0.0),
            respawn_reset_s=0.2,
        )
        with ScoringPool(engine=engine, config=config) as pool:
            # Three isolated crashes, each fully healed, each separated
            # by a crash-free period longer than respawn_reset_s: every
            # one must respawn even though the budget alone (1 respawn)
            # would have broken the pool at the second.
            for _ in range(3):
                os.kill(pool.pids()[0], signal.SIGKILL)
                got = pool.classify_arrays(pairs, mjd)
                assert len(got) == len(pairs)
                time.sleep(0.35)
            assert pool.stats()["respawns"] == 3
            assert pool.stats()["broken"] is None


def _corrupt_weights_error():
    return CorruptArtifactError("weights.npz", "checksum mismatch (injected)")


def _diverged_error():
    return TrainingDiverged("loss went non-finite (injected)")


class TestErrorTransport:
    """Worker exceptions re-raise with the same types as the in-process path."""

    def test_corrupt_artifact_error_round_trips(self, engine, batch):
        pairs, mjd = batch
        marked = pairs.copy()
        marked[3, 0, 0, 0, 0] = MARKER
        with ScoringPool(
            engine=engine,
            config=PoolConfig(workers=2),
            worker_init=RaiseWorkerOnMarker(MARKER, _corrupt_weights_error),
        ) as pool:
            with pytest.raises(CorruptArtifactError) as excinfo:
                pool.classify_arrays(marked, mjd)
        assert excinfo.value.path == "weights.npz"
        assert excinfo.value.reason == "checksum mismatch (injected)"

    def test_pickled_custom_error_round_trips(self, engine, batch):
        """Typed errors outside the allowlist survive via pickle transport."""
        pairs, mjd = batch
        marked = pairs.copy()
        marked[3, 0, 0, 0, 0] = MARKER
        with ScoringPool(
            engine=engine,
            config=PoolConfig(workers=2),
            worker_init=RaiseWorkerOnMarker(MARKER, _diverged_error),
        ) as pool:
            with pytest.raises(TrainingDiverged, match="non-finite"):
                pool.classify_arrays(marked, mjd)
