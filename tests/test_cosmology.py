"""Tests for the flat Lambda-CDM cosmology."""

import numpy as np
import pytest

from repro.cosmology import DEFAULT_COSMOLOGY, FlatLambdaCDM


class TestConstruction:
    def test_defaults(self):
        cosmo = FlatLambdaCDM()
        assert cosmo.h0 == 70.0
        assert cosmo.omega_lambda == pytest.approx(0.7)

    def test_invalid_h0(self):
        with pytest.raises(ValueError):
            FlatLambdaCDM(h0=-1.0)

    def test_invalid_omega(self):
        with pytest.raises(ValueError):
            FlatLambdaCDM(omega_m=1.5)

    def test_hubble_distance(self):
        assert FlatLambdaCDM(h0=70).hubble_distance == pytest.approx(4282.7, rel=1e-3)


class TestDistances:
    def test_comoving_distance_zero(self):
        assert DEFAULT_COSMOLOGY.comoving_distance(0.0) == pytest.approx(0.0)

    def test_known_value_z1(self):
        # Standard textbook value for H0=70, Om=0.3: D_C(1) ~ 3300 Mpc.
        assert DEFAULT_COSMOLOGY.comoving_distance(1.0) == pytest.approx(3300, rel=0.02)

    def test_luminosity_distance_factor(self):
        z = 0.8
        d_c = DEFAULT_COSMOLOGY.comoving_distance(z)
        assert DEFAULT_COSMOLOGY.luminosity_distance(z) == pytest.approx((1 + z) * d_c)

    def test_distance_modulus_z_small(self):
        # mu(0.01) ~ 33.1 for standard cosmology.
        assert DEFAULT_COSMOLOGY.distance_modulus(0.01) == pytest.approx(33.1, abs=0.2)

    def test_distance_modulus_monotone(self):
        zs = np.linspace(0.1, 2.0, 20)
        mus = DEFAULT_COSMOLOGY.distance_modulus(zs)
        assert np.all(np.diff(mus) > 0)

    def test_distance_modulus_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DEFAULT_COSMOLOGY.distance_modulus(0.0)

    def test_comoving_rejects_negative(self):
        with pytest.raises(ValueError):
            DEFAULT_COSMOLOGY.comoving_distance(-0.1)

    def test_array_input(self):
        out = DEFAULT_COSMOLOGY.comoving_distance(np.array([0.5, 1.0]))
        assert out.shape == (2,)
        assert out[1] > out[0]

    def test_more_matter_shrinks_distances(self):
        closed_ish = FlatLambdaCDM(omega_m=0.5)
        assert closed_ish.comoving_distance(1.0) < DEFAULT_COSMOLOGY.comoving_distance(1.0)


class TestTimeDilation:
    def test_value(self):
        assert DEFAULT_COSMOLOGY.time_dilation(0.5) == pytest.approx(1.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DEFAULT_COSMOLOGY.time_dilation(-0.5)
