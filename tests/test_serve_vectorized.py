"""Vectorized serve hot path: batch repair parity and threaded streaming.

The serving engine validates/repairs visits through
:func:`diagnose_and_repair_batch`, a whole-batch vectorisation of the
per-visit :func:`diagnose_and_repair`.  These tests pin the contract
that the two are *bit-identical* — same diagnostics, same repaired
pixels, same keep/reject verdicts — on traffic damaged by every
:mod:`repro.runtime.faults` injector, and that the thread-pooled stream
returns exactly what the serial one does.
"""

import numpy as np
import pytest

from repro.core import SupernovaPipeline
from repro.datasets import BuildConfig, DatasetBuilder
from repro.runtime import DropBand, NaNPixels, SaturateRegion, TruncateCutout
from repro.serve import (
    FluxPrior,
    InferenceEngine,
    RepairConfig,
    diagnose_and_repair,
    diagnose_and_repair_batch,
)
from repro.survey import ImagingConfig

pytestmark = pytest.mark.faults

RNG = np.random.default_rng(99)


@pytest.fixture(scope="module")
def dataset():
    config = BuildConfig(
        n_ia=6, n_non_ia=6, seed=23, catalog_size=80,
        imaging=ImagingConfig(stamp_size=41),
    )
    return DatasetBuilder(config).build()


def _assert_batch_matches_loop(pairs: np.ndarray, config: RepairConfig) -> None:
    """Bitwise parity of the batch path against the per-visit loop."""
    n, v = pairs.shape[:2]
    flat = np.ascontiguousarray(pairs.reshape(n * v, *pairs.shape[2:]))
    visits = np.tile(np.arange(v), n)
    repaired_b, diags_b, kept_b = diagnose_and_repair_batch(flat, visits, config)
    for i in range(n * v):
        repaired_l, diag_l = diagnose_and_repair(flat[i], int(visits[i]), config)
        assert diags_b[i].to_dict() == diag_l.to_dict(), f"diag mismatch at {i}"
        assert bool(kept_b[i]) == (not diag_l.rejected)
        if not diag_l.rejected:
            np.testing.assert_array_equal(
                repaired_b[i], repaired_l, err_msg=f"pixels differ at visit {i}"
            )


class TestBatchRepairParity:
    def test_clean_traffic(self, dataset):
        _assert_batch_matches_loop(dataset.pairs[:4], RepairConfig())

    def test_dropped_bands(self, dataset):
        corrupted = DropBand([1, 3])(dataset.pairs[:4])
        _assert_batch_matches_loop(corrupted, RepairConfig())

    def test_nan_pixels_below_and_above_budget(self, dataset):
        for fraction in (0.03, 0.45):
            corrupted = NaNPixels(fraction, seed=5)(dataset.pairs[:3])
            _assert_batch_matches_loop(corrupted, RepairConfig())

    def test_saturated_regions(self, dataset):
        corrupted = SaturateRegion(6, seed=7)(dataset.pairs[:3])
        _assert_batch_matches_loop(corrupted, RepairConfig())

    def test_truncated_cutouts(self, dataset):
        corrupted = TruncateCutout(0.3)(dataset.pairs[:3])
        _assert_batch_matches_loop(corrupted, RepairConfig())

    def test_cosmic_ray_spikes_clipped(self, dataset):
        corrupted = dataset.pairs[:3].copy()
        spots = RNG.integers(5, 35, size=(corrupted.shape[1], 2))
        for v, (r, c) in enumerate(spots):
            corrupted[:, v, 1, r, c] += 5000.0
        _assert_batch_matches_loop(corrupted, RepairConfig())

    def test_mixed_damage_and_custom_config(self, dataset):
        corrupted = NaNPixels(0.05, seed=2)(SaturateRegion(4, seed=3)(dataset.pairs[:3]))
        config = RepairConfig(
            saturation_level=1000.0, max_repair_fraction=0.15, clip_sigma=6.0
        )
        _assert_batch_matches_loop(corrupted, config)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match=r"\(M, 2, S, S\)"):
            diagnose_and_repair_batch(np.zeros((3, 9, 9)), np.zeros(3))
        with pytest.raises(ValueError, match="visits"):
            diagnose_and_repair_batch(np.zeros((3, 2, 9, 9)), np.zeros(2))


class TestThreadedStream:
    @pytest.fixture(scope="class")
    def engine(self, dataset):
        pipe = SupernovaPipeline(input_size=36, units=8, epochs_used=1, seed=0)
        return InferenceEngine(pipe, prior=FluxPrior.from_dataset(dataset))

    def test_workers_match_serial(self, engine, dataset):
        serial = list(engine.stream(dataset, batch_size=3, workers=1))
        pooled = list(engine.stream(dataset, batch_size=3, workers=4))
        assert [r.index for r in serial] == [r.index for r in pooled]
        np.testing.assert_array_equal(
            [r.probability for r in serial], [r.probability for r in pooled]
        )
        assert [r.confidence for r in serial] == [r.confidence for r in pooled]

    def test_workers_match_on_degraded_traffic(self, engine, dataset):
        import dataclasses

        corrupted = dataclasses.replace(
            dataset, pairs=NaNPixels(0.04, seed=1)(dataset.pairs)
        )
        serial = list(engine.stream(corrupted, batch_size=4, workers=1))
        pooled = list(engine.stream(corrupted, batch_size=4, workers=3))
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in pooled]

    def test_workers_validation(self, engine, dataset):
        with pytest.raises(ValueError, match="workers"):
            list(engine.stream(dataset, workers=0))
