"""Model registry: immutable store, lifecycle, integrity, guard, CLI.

Also hosts the artifact-integrity satellites: ``SupernovaPipeline.load``
naming the offending *file* on an architecture mismatch, the terminal
``cli.error`` event carrying that path, ``DriftBaseline.load`` raising
on malformed JSON, and the ``serve.no_drift_baseline`` warning.
"""

import json
import math
import os

import pytest

from repro import obs
from repro.cli import EXIT_BAD_INPUT, EXIT_CORRUPT_ARTIFACT, main
from repro.core import SupernovaPipeline
from repro.obs import EVENTS_FILE, read_events
from repro.obs.drift import BASELINE_FILE, DriftBaseline
from repro.registry import (
    GuardConfig,
    ModelRegistry,
    RegistryError,
    RollbackGuard,
    STATUS_PRODUCTION,
    STATUS_REGISTERED,
    STATUS_RETIRED,
    STATUS_ROLLED_BACK,
    STATUS_SHADOW,
)
from repro.runtime import CorruptArtifactError, atomic_write_json, file_sha256
from repro.serve import InferenceEngine

from .helpers import make_serve_engine

pytestmark = pytest.mark.registry


@pytest.fixture(scope="module")
def model_dir(tmp_path_factory):
    """One saved model directory, shared read-only by every test."""
    directory = tmp_path_factory.mktemp("model")
    make_serve_engine(seed=0).save(str(directory))
    return directory


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


def _corrupt(path) -> None:
    """Flip the leading bytes of a pinned file."""
    with open(path, "r+b") as handle:
        handle.write(b"\xde\xad\xbe\xef")


class TestAtomicIO:
    def test_atomic_write_json_replaces_whole_document(self, tmp_path):
        target = tmp_path / "state.json"
        atomic_write_json(target, {"a": 1})
        atomic_write_json(target, {"b": 2})
        assert json.loads(target.read_text()) == {"b": 2}
        # No stray temp files left behind.
        assert os.listdir(tmp_path) == ["state.json"]

    def test_file_sha256_matches_content(self, tmp_path):
        target = tmp_path / "blob"
        target.write_bytes(b"supernova")
        import hashlib

        assert file_sha256(target) == hashlib.sha256(b"supernova").hexdigest()


class TestStoreLifecycle:
    def test_register_assigns_versions_and_pins_checksums(self, registry, model_dir):
        assert registry.register(model_dir) == "v1"
        assert registry.register(model_dir, note="retrain") == "v2"
        state = registry.state()
        assert state["next_version"] == 3
        record = state["versions"]["v1"]
        assert record["status"] == STATUS_REGISTERED
        assert set(record["files"]) == set(os.listdir(registry.path("v1")))
        for name, digest in record["files"].items():
            assert file_sha256(os.path.join(registry.path("v1"), name)) == digest
        assert state["versions"]["v2"]["note"] == "retrain"
        assert [entry["action"] for entry in registry.history()] == [
            "register", "register",
        ]

    def test_register_refuses_non_model_directory(self, registry, tmp_path):
        empty = tmp_path / "not-a-model"
        empty.mkdir()
        with pytest.raises(RegistryError, match="manifest.json"):
            registry.register(empty)

    def test_promote_demotes_previous_production(self, registry, model_dir):
        registry.register(model_dir)
        registry.register(model_dir)
        assert registry.promote("v1") == (None, "v1")
        assert registry.promote("v2") == ("v1", "v2")
        state = registry.state()
        assert state["production"] == "v2"
        assert state["versions"]["v1"]["status"] == STATUS_RETIRED
        assert "retired_at" in state["versions"]["v1"]
        with pytest.raises(RegistryError, match="already production"):
            registry.promote("v2")

    def test_shadow_then_promote_clears_candidate(self, registry, model_dir):
        registry.register(model_dir)
        registry.register(model_dir)
        registry.promote("v1")
        assert registry.shadow("v2") == "v2"
        state = registry.state()
        assert state["candidate"] == "v2"
        assert state["versions"]["v2"]["status"] == STATUS_SHADOW
        with pytest.raises(RegistryError, match="already production"):
            registry.shadow("v1")
        registry.promote("v2")
        state = registry.state()
        assert state["candidate"] is None
        assert state["versions"]["v2"]["status"] == STATUS_PRODUCTION

    def test_rollback_quarantines_and_restores_last_good(self, registry, model_dir):
        for _ in range(3):
            registry.register(model_dir)
        registry.promote("v1")
        registry.promote("v2")
        registry.promote("v3")
        # v2 retired most recently: rollback must restore it, not v1.
        bad, restored = registry.rollback(reason="scores diverged")
        assert (bad, restored) == ("v3", "v2")
        state = registry.state()
        assert state["production"] == "v2"
        bad_record = state["versions"]["v3"]
        assert bad_record["status"] == STATUS_ROLLED_BACK
        assert bad_record["reason"] == "scores diverged"
        assert "rolled_back_at" in bad_record
        # The quarantined version is refused by promote without force...
        with pytest.raises(RegistryError, match="rolled back"):
            registry.promote("v3")
        with pytest.raises(RegistryError, match="rolled back"):
            registry.shadow("v3")
        # ...and accepted with it (operator override).
        assert registry.promote("v3", force=True) == ("v2", "v3")

    def test_rollback_without_history_is_refused(self, registry, model_dir):
        with pytest.raises(RegistryError, match="no production"):
            registry.rollback()
        registry.register(model_dir)
        registry.promote("v1")
        with pytest.raises(RegistryError, match="no previous good version"):
            registry.rollback()

    def test_quarantine_candidate(self, registry, model_dir):
        registry.register(model_dir)
        registry.register(model_dir)
        registry.promote("v1")
        registry.shadow("v2")
        registry.quarantine("v2", "shadow divergence over budget")
        state = registry.state()
        assert state["candidate"] is None
        assert state["versions"]["v2"]["status"] == STATUS_ROLLED_BACK
        with pytest.raises(RegistryError, match="use rollback"):
            registry.quarantine("v1", "nope")

    def test_gc_removes_old_dirs_but_keeps_audit(self, registry, model_dir):
        for _ in range(4):
            registry.register(model_dir)
        for version in ("v1", "v2", "v3", "v4"):
            registry.promote(version)
        # v1..v3 retired; keep=1 collects the two oldest.
        assert registry.gc(keep=1) == ["v2", "v1"]
        state = registry.state()
        assert not os.path.isdir(registry.path("v1"))
        assert os.path.isdir(registry.path("v3"))
        assert state["versions"]["v1"]["removed"] is True
        with pytest.raises(RegistryError, match="garbage-collected"):
            registry.promote("v1", force=True)
        assert registry.gc(keep=1) == []


class TestIntegrity:
    def test_verify_names_the_corrupt_file(self, registry, model_dir):
        registry.register(model_dir)
        registry.verify("v1")
        target = os.path.join(registry.path("v1"), "classifier.npz")
        _corrupt(target)
        with pytest.raises(CorruptArtifactError, match="checksum mismatch") as info:
            registry.verify("v1")
        assert info.value.path == target

    def test_verify_names_the_missing_file(self, registry, model_dir):
        registry.register(model_dir)
        target = os.path.join(registry.path("v1"), "flux_cnn.npz")
        os.remove(target)
        with pytest.raises(CorruptArtifactError, match="missing") as info:
            registry.verify("v1")
        assert info.value.path == target

    def test_verify_flags_extra_files_as_immutability_breach(
        self, registry, model_dir
    ):
        registry.register(model_dir)
        with open(os.path.join(registry.path("v1"), "sneaky.txt"), "w") as handle:
            handle.write("mutated")
        with pytest.raises(CorruptArtifactError, match="sneaky.txt"):
            registry.verify("v1")

    def test_promote_refuses_corrupt_version(self, registry, model_dir):
        registry.register(model_dir)
        _corrupt(os.path.join(registry.path("v1"), "manifest.json"))
        with pytest.raises(CorruptArtifactError):
            registry.promote("v1")
        assert registry.production() is None

    def test_corrupt_state_file_raises(self, registry, model_dir):
        registry.register(model_dir)
        with open(registry.state_path, "w") as handle:
            handle.write("{not json")
        with pytest.raises(CorruptArtifactError, match="unreadable registry state"):
            registry.state()

    def test_unknown_format_version_raises(self, registry, model_dir):
        registry.register(model_dir)
        state = registry.state()
        state["format_version"] = 99
        atomic_write_json(registry.state_path, state)
        with pytest.raises(CorruptArtifactError, match="unsupported registry format"):
            registry.state()


class TestRollbackGuard:
    def test_drift_must_be_sustained(self):
        guard = RollbackGuard(GuardConfig(sustained_checks=3))
        assert not guard.note_drift(True)
        assert not guard.note_drift(True)
        # A clean check in between resets the streak.
        assert not guard.note_drift(False)
        assert not guard.note_drift(True)
        assert not guard.note_drift(True)
        assert guard.note_drift(True)

    def test_divergence_budget_needs_min_samples(self):
        guard = RollbackGuard(
            GuardConfig(divergence_budget=0.1, divergence_min_samples=4)
        )
        assert math.isnan(guard.divergence_mean())
        assert not guard.note_divergence([0.5, 0.5])
        assert guard.note_divergence([0.5, 0.5])
        assert guard.divergence_mean() == pytest.approx(0.5)
        guard.reset_divergence()
        assert guard.divergence_count() == 0
        # Small divergences never trip, however many samples arrive.
        assert not guard.note_divergence([0.01] * 50)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GuardConfig(sustained_checks=0)
        with pytest.raises(ValueError):
            GuardConfig(divergence_budget=-1.0)


class TestModelsCLI:
    def test_register_promote_rollback_round_trip(self, tmp_path, model_dir, capsys):
        reg = str(tmp_path / "registry")
        assert main(["models", "register", "--registry", reg,
                     "--model", str(model_dir), "--promote"]) == 0
        assert main(["models", "register", "--registry", reg,
                     "--model", str(model_dir)]) == 0
        assert main(["models", "promote", "v2", "--registry", reg]) == 0
        assert main(["models", "rollback", "--registry", reg,
                     "--reason", "bad scores"]) == 0
        capsys.readouterr()
        assert main(["models", "list", "--registry", reg, "--json"]) == 0
        state = json.loads(capsys.readouterr().out)
        assert state["production"] == "v1"
        assert state["versions"]["v2"]["status"] == STATUS_ROLLED_BACK
        # Quarantined versions are refused without --force (exit 2)...
        assert main(["models", "promote", "v2", "--registry", reg]) == EXIT_BAD_INPUT
        # ...and promoted with it.
        assert main(["models", "promote", "v2", "--registry", reg, "--force"]) == 0

    def test_corrupt_version_exits_3_with_path_in_cli_error(
        self, tmp_path, model_dir, capsys
    ):
        """Satellite: the terminal ``cli.error`` event names the bad file."""
        reg = str(tmp_path / "registry")
        telemetry = tmp_path / "telemetry"
        assert main(["models", "register", "--registry", reg,
                     "--model", str(model_dir)]) == 0
        target = os.path.join(reg, "versions", "v1", "classifier.npz")
        _corrupt(target)
        assert main(
            ["models", "promote", "v1", "--registry", reg,
             "--telemetry", str(telemetry)]
        ) == EXIT_CORRUPT_ARTIFACT
        capsys.readouterr()
        errors = [
            record for record in read_events(telemetry / EVENTS_FILE)
            if record["event"] == "cli.error"
        ]
        assert len(errors) == 1
        assert errors[0]["exit_code"] == EXIT_CORRUPT_ARTIFACT
        assert errors[0]["path"] == target

    def test_gc_via_cli(self, tmp_path, model_dir):
        reg = str(tmp_path / "registry")
        for _ in range(3):
            assert main(["models", "register", "--registry", reg,
                         "--model", str(model_dir)]) == 0
        for version in ("v1", "v2", "v3"):
            assert main(["models", "promote", version, "--registry", reg]) == 0
        assert main(["models", "gc", "--registry", reg, "--keep", "1"]) == 0
        assert not os.path.isdir(os.path.join(reg, "versions", "v1"))

    def test_serve_requires_exactly_one_model_source(self):
        assert main(["serve", "--port", "0"]) == EXIT_BAD_INPUT
        assert main(["serve", "--port", "0", "--model", "m",
                     "--registry", "r"]) == EXIT_BAD_INPUT


class TestArtifactErrorsNameTheFile:
    """Satellite: per-file blame in ``SupernovaPipeline.load``."""

    def test_mismatched_classifier_weights_name_classifier_npz(self, tmp_path):
        directory = tmp_path / "model"
        pipe = SupernovaPipeline(input_size=36, units=8, epochs_used=1, seed=0)
        pipe.save(str(directory))
        # Swap in weights from a structurally different classifier: the
        # error must blame classifier.npz, not the whole directory.
        other = SupernovaPipeline(input_size=36, units=4, epochs_used=1, seed=0)
        from repro.nn.serialization import save_module

        save_module(other.classifier, str(directory / "classifier.npz"))
        with pytest.raises(CorruptArtifactError, match="classifier") as info:
            SupernovaPipeline.load(str(directory))
        assert info.value.path.endswith("classifier.npz")

    def test_mismatched_cnn_weights_name_flux_cnn_npz(self, tmp_path):
        directory = tmp_path / "model"
        pipe = SupernovaPipeline(input_size=36, units=8, epochs_used=1, seed=0)
        pipe.save(str(directory))
        other = SupernovaPipeline(input_size=44, units=8, epochs_used=1, seed=0)
        from repro.nn.serialization import save_module

        save_module(other.cnn, str(directory / "flux_cnn.npz"))
        with pytest.raises(CorruptArtifactError, match="flux CNN") as info:
            SupernovaPipeline.load(str(directory))
        assert info.value.path.endswith("flux_cnn.npz")


class TestDriftBaselineArtifacts:
    """Satellite: baseline integrity + the missing-baseline warning."""

    def test_malformed_baseline_json_raises_corrupt_artifact(self, tmp_path):
        (tmp_path / BASELINE_FILE).write_text("{truncated")
        with pytest.raises(CorruptArtifactError):
            DriftBaseline.load(tmp_path)

    def test_absent_baseline_returns_none(self, tmp_path):
        assert DriftBaseline.load(tmp_path) is None

    @pytest.mark.obs
    def test_from_directory_without_baseline_warns(self, tmp_path, model_dir):
        assert obs.active() is None
        telemetry = tmp_path / "telemetry"
        obs.start(telemetry, run_id="run-nobaseline")
        try:
            engine = InferenceEngine.from_directory(str(model_dir))
        finally:
            obs.stop()
        assert engine.drift_baseline is None
        warnings = [
            record for record in read_events(telemetry / EVENTS_FILE)
            if record["event"] == "serve.no_drift_baseline"
        ]
        assert len(warnings) == 1
        assert warnings[0]["level"] == "warning"
        assert warnings[0]["model_dir"] == str(model_dir)
