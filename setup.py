"""Setuptools entry point (legacy path for environments without wheel)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Single-epoch supernova classification with deep convolutional "
        "neural networks (Kimura et al., ICDCS 2017) - full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
