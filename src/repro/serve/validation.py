"""Per-visit input validation and repair for the serving path.

A production classifier sees cutouts the training loop never does:
missing visits, NaN and saturated pixels, cosmic-ray hits, and images
whose tail rows never arrived.  This module turns one (reference,
observation) stamp pair into a :class:`InputDiagnostics` verdict and,
where the damage is below the repair budget, a cleaned copy:

* non-finite and saturated pixels are *inpainted* with the median of
  their finite neighbourhood (falling back to the channel median);
* sharp outliers on the difference image — cosmic-ray morphology, high
  above the robust noise but unsupported by their neighbours the way a
  PSF-spread source would be — are sigma-clipped back to the local
  background.

Visits whose bad-pixel fraction exceeds the budget, or that are missing
outright (all-NaN channel, non-finite date), are marked *rejected*; the
engine masks them out of the feature vector instead of serving garbage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..photometry import GRIZY

__all__ = [
    "InputDiagnostics",
    "RepairConfig",
    "diagnose_and_repair",
    "diagnose_and_repair_batch",
    "inpaint_bad_pixels",
    "clip_difference_outliers",
    "DEFAULT_SATURATION_LEVEL",
]

#: Counts level treated as full well when the caller does not override it.
DEFAULT_SATURATION_LEVEL = 30000.0


@dataclass
class RepairConfig:
    """Knobs of the validate-and-repair stage.

    Attributes
    ----------
    saturation_level:
        Pixels at or above this count are treated as saturated.
    max_repair_fraction:
        Largest fraction of bad (non-finite + saturated) pixels per
        channel that inpainting may bridge; beyond it the visit is
        rejected and masked instead.
    clip_sigma:
        Difference-image pixels more than this many robust sigmas above
        the median are outlier candidates.
    clip_support_ratio:
        An outlier candidate is clipped only when its 3x3 neighbourhood
        median stays below this fraction of its own value — a PSF-spread
        real source keeps neighbour support well above it, an isolated
        cosmic-ray pixel does not.
    inpaint_window:
        Half-width of the neighbourhood used for median inpainting.
    """

    saturation_level: float = DEFAULT_SATURATION_LEVEL
    max_repair_fraction: float = 0.25
    clip_sigma: float = 10.0
    clip_support_ratio: float = 0.2
    inpaint_window: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_repair_fraction <= 1.0:
            raise ValueError("max_repair_fraction must be in [0, 1]")
        if self.clip_sigma <= 0 or self.inpaint_window < 1:
            raise ValueError("clip_sigma must be positive and inpaint_window >= 1")


@dataclass
class InputDiagnostics:
    """What validation found (and fixed) in one visit's stamp pair.

    ``bad_fraction`` is the pre-repair fraction of unusable pixels over
    both channels; ``repaired`` means the visit was cleaned and kept,
    ``rejected`` that it was masked out of the feature vector.
    """

    visit: int
    band: str
    n_pixels: int
    n_nonfinite: int = 0
    n_saturated: int = 0
    n_clipped: int = 0
    bad_fraction: float = 0.0
    repaired: bool = False
    rejected: bool = False
    reason: str = ""

    @property
    def clean(self) -> bool:
        """True when the visit needed no intervention at all."""
        return not (self.repaired or self.rejected)

    def to_dict(self) -> dict:
        """JSON-ready representation (used by the classify CLI stream)."""
        return {
            "visit": self.visit,
            "band": self.band,
            "n_nonfinite": self.n_nonfinite,
            "n_saturated": self.n_saturated,
            "n_clipped": self.n_clipped,
            "bad_fraction": round(self.bad_fraction, 6),
            "repaired": self.repaired,
            "rejected": self.rejected,
            "reason": self.reason,
        }


def inpaint_bad_pixels(
    image: np.ndarray, bad: np.ndarray, window: int = 2
) -> np.ndarray:
    """Replace flagged pixels with the median of their good neighbours.

    Works in place on a float copy and returns it.  Each bad pixel takes
    the median of the good pixels inside a ``(2*window+1)`` square around
    it; pixels with no good neighbour fall back to the image's global
    good-pixel median (0 when nothing survives).
    """
    out = np.asarray(image, dtype=np.float32).copy()
    bad = np.asarray(bad, dtype=bool)
    if not bad.any():
        return out
    good = ~bad
    fallback = float(np.median(out[good])) if good.any() else 0.0
    rows, cols = np.nonzero(bad)
    side = out.shape[-1]
    for r, c in zip(rows, cols):
        r0, r1 = max(0, r - window), min(side, r + window + 1)
        c0, c1 = max(0, c - window), min(side, c + window + 1)
        patch = out[r0:r1, c0:c1]
        patch_good = good[r0:r1, c0:c1]
        out[r, c] = float(np.median(patch[patch_good])) if patch_good.any() else fallback
    return out


def clip_difference_outliers(
    reference: np.ndarray, observation: np.ndarray, config: RepairConfig
) -> tuple[np.ndarray, int]:
    """Sigma-clip cosmic-ray-like pixels off the observation stamp.

    Outliers are found on the *difference* image (observation minus
    reference): a pixel must sit ``clip_sigma`` robust sigmas above the
    median difference **and** lack neighbourhood support (see
    :class:`RepairConfig.clip_support_ratio`), which spares the
    PSF-spread supernova itself.  Clipped pixels are pulled back to the
    reference plus the local median difference.  Returns the repaired
    observation and the number of clipped pixels.
    """
    diff = observation - reference
    med = float(np.median(diff))
    sigma = 1.4826 * float(np.median(np.abs(diff - med)))
    if sigma <= 0:
        return observation.copy(), 0
    local = ndimage.median_filter(diff, size=3, mode="nearest")
    excess = diff - med
    candidates = excess > config.clip_sigma * sigma
    unsupported = (local - med) < config.clip_support_ratio * excess
    outliers = candidates & unsupported
    n = int(outliers.sum())
    repaired = observation.copy()
    if n:
        repaired[outliers] = reference[outliers] + local[outliers]
    return repaired, n


def diagnose_and_repair(
    pair: np.ndarray, visit: int, config: RepairConfig | None = None
) -> tuple[np.ndarray, InputDiagnostics]:
    """Validate one ``(2, S, S)`` stamp pair; repair or reject it.

    Returns ``(repaired_pair, diagnostics)``.  The repaired pair is
    always finite when the visit was kept; when ``rejected`` its content
    is unspecified and the caller must mask the visit.
    """
    config = config or RepairConfig()
    pair = np.asarray(pair, dtype=np.float32)
    band = GRIZY[visit % len(GRIZY)].name
    n_pixels = int(pair[0].size)
    diag = InputDiagnostics(visit=visit, band=band, n_pixels=n_pixels)

    finite = np.isfinite(pair)
    saturated = finite & (pair >= config.saturation_level)
    bad = ~finite | saturated
    diag.n_nonfinite = int((~finite).sum())
    diag.n_saturated = int(saturated.sum())
    diag.bad_fraction = float(bad.sum() / pair.size)

    # A channel with nothing usable in it means the visit never arrived.
    for channel in range(2):
        if bad[channel].all():
            diag.rejected = True
            diag.reason = (
                "reference" if channel == 0 else "observation"
            ) + " channel entirely unusable (missing visit)"
            return pair, diag
    if diag.bad_fraction > config.max_repair_fraction:
        diag.rejected = True
        diag.reason = (
            f"bad-pixel fraction {diag.bad_fraction:.3f} exceeds repair "
            f"budget {config.max_repair_fraction:.3f}"
        )
        return pair, diag

    repaired = pair
    if bad.any():
        repaired = np.stack(
            [
                inpaint_bad_pixels(pair[ch], bad[ch], window=config.inpaint_window)
                for ch in range(2)
            ]
        )
        diag.repaired = True
        diag.reason = "inpainted non-finite/saturated pixels"

    obs, n_clipped = clip_difference_outliers(repaired[0], repaired[1], config)
    if n_clipped:
        repaired = np.stack([repaired[0], obs])
        diag.n_clipped = n_clipped
        diag.repaired = True
        diag.reason = (diag.reason + "; " if diag.reason else "") + (
            f"sigma-clipped {n_clipped} difference outlier(s)"
        )
    return repaired, diag


def diagnose_and_repair_batch(
    pairs: np.ndarray, visits: np.ndarray, config: RepairConfig | None = None
) -> tuple[np.ndarray, list[InputDiagnostics], np.ndarray]:
    """Vectorised :func:`diagnose_and_repair` over a flat visit batch.

    ``pairs`` is ``(M, 2, S, S)`` — the serving engine's ``(N, V)`` axes
    flattened — and ``visits`` the ``(M,)`` visit index of each pair.
    Returns ``(repaired, diagnostics, kept)``: the float32 repaired
    pairs (rejected entries keep their original content), one
    :class:`InputDiagnostics` per pair, and the boolean keep mask.

    The result matches the per-visit loop bit for bit: diagnosis masks
    and sigma-clipping are computed with whole-batch array ops (the
    median filter runs with a size-1 footprint on the batch axis, so no
    statistic crosses visits), while the rare flagged visits are
    inpainted through the same :func:`inpaint_bad_pixels` the scalar
    path uses.
    """
    config = config or RepairConfig()
    pairs = np.asarray(pairs, dtype=np.float32)
    if pairs.ndim != 4 or pairs.shape[1] != 2:
        raise ValueError(f"expected (M, 2, S, S) pairs, got shape {pairs.shape}")
    visits = np.asarray(visits)
    if visits.shape != (pairs.shape[0],):
        raise ValueError(
            f"visits shape {visits.shape} does not match batch {pairs.shape[0]}"
        )
    m = pairs.shape[0]
    n_pixels = int(pairs[0, 0].size)
    pair_size = 2 * n_pixels

    finite = np.isfinite(pairs)
    saturated = finite & (pairs >= config.saturation_level)
    bad = ~finite | saturated
    n_nonfinite = (~finite).sum(axis=(1, 2, 3))
    n_saturated = saturated.sum(axis=(1, 2, 3))
    bad_count = bad.sum(axis=(1, 2, 3))
    bad_fraction = bad_count / pair_size
    channel_dead = bad.all(axis=(2, 3))  # (M, 2)
    missing = channel_dead.any(axis=1)
    over_budget = ~missing & (bad_fraction > config.max_repair_fraction)
    kept = ~missing & ~over_budget

    repaired = pairs.copy()
    inpainted = kept & (bad_count > 0)
    for i in np.flatnonzero(inpainted):
        for channel in range(2):
            repaired[i, channel] = inpaint_bad_pixels(
                pairs[i, channel], bad[i, channel], window=config.inpaint_window
            )

    # Batched sigma-clip of every kept visit (see clip_difference_outliers).
    n_clipped = np.zeros(m, dtype=np.int64)
    kept_idx = np.flatnonzero(kept)
    if kept_idx.size:
        reference = repaired[kept_idx, 0]
        observation = repaired[kept_idx, 1]
        diff = observation - reference
        med = np.median(diff, axis=(1, 2))
        mad = np.median(np.abs(diff - med[:, None, None]), axis=(1, 2))
        sigma = 1.4826 * mad.astype(np.float64)
        excess = diff - med[:, None, None]
        # Threshold rounded to float32 exactly as the scalar comparison does.
        threshold = (config.clip_sigma * sigma).astype(np.float32)
        candidates = excess > threshold[:, None, None]
        active = candidates.any(axis=(1, 2)) & (sigma > 0)
        # The 3x3 median filter dwarfs every other statistic here, and an
        # outlier must first be a candidate — so filter only the visits
        # that have at least one candidate pixel.  Clean traffic (no pixel
        # past clip_sigma) skips it entirely; the result is bit-identical
        # because outliers is a subset of candidates & active.
        active_idx = np.flatnonzero(active)
        if active_idx.size:
            local = ndimage.median_filter(
                diff[active_idx], size=(1, 3, 3), mode="nearest"
            )
            sub_med = med[active_idx, None, None]
            sub_excess = excess[active_idx]
            unsupported = (local - sub_med) < np.float32(
                config.clip_support_ratio
            ) * sub_excess
            outliers = candidates[active_idx] & unsupported
            counts = outliers.sum(axis=(1, 2))
            if counts.any():
                sub_obs = observation[active_idx]
                sub_obs[outliers] = reference[active_idx][outliers] + local[outliers]
                repaired[kept_idx[active_idx], 1] = sub_obs
            n_clipped[kept_idx[active_idx]] = counts

    n_bands = len(GRIZY)
    diags: list[InputDiagnostics] = []
    for i in range(m):
        diag = InputDiagnostics(
            visit=int(visits[i]),
            band=GRIZY[int(visits[i]) % n_bands].name,
            n_pixels=n_pixels,
            n_nonfinite=int(n_nonfinite[i]),
            n_saturated=int(n_saturated[i]),
            bad_fraction=float(bad_fraction[i]),
        )
        if missing[i]:
            diag.rejected = True
            diag.reason = (
                "reference" if channel_dead[i, 0] else "observation"
            ) + " channel entirely unusable (missing visit)"
        elif over_budget[i]:
            diag.rejected = True
            diag.reason = (
                f"bad-pixel fraction {diag.bad_fraction:.3f} exceeds repair "
                f"budget {config.max_repair_fraction:.3f}"
            )
        else:
            if inpainted[i]:
                diag.repaired = True
                diag.reason = "inpainted non-finite/saturated pixels"
            if n_clipped[i]:
                diag.n_clipped = int(n_clipped[i])
                diag.repaired = True
                diag.reason = (diag.reason + "; " if diag.reason else "") + (
                    f"sigma-clipped {diag.n_clipped} difference outlier(s)"
                )
        diags.append(diag)
    return repaired, diags, kept
