"""Per-visit input validation and repair for the serving path.

A production classifier sees cutouts the training loop never does:
missing visits, NaN and saturated pixels, cosmic-ray hits, and images
whose tail rows never arrived.  This module turns one (reference,
observation) stamp pair into a :class:`InputDiagnostics` verdict and,
where the damage is below the repair budget, a cleaned copy:

* non-finite and saturated pixels are *inpainted* with the median of
  their finite neighbourhood (falling back to the channel median);
* sharp outliers on the difference image — cosmic-ray morphology, high
  above the robust noise but unsupported by their neighbours the way a
  PSF-spread source would be — are sigma-clipped back to the local
  background.

Visits whose bad-pixel fraction exceeds the budget, or that are missing
outright (all-NaN channel, non-finite date), are marked *rejected*; the
engine masks them out of the feature vector instead of serving garbage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..photometry import GRIZY

__all__ = [
    "InputDiagnostics",
    "RepairConfig",
    "diagnose_and_repair",
    "inpaint_bad_pixels",
    "clip_difference_outliers",
    "DEFAULT_SATURATION_LEVEL",
]

#: Counts level treated as full well when the caller does not override it.
DEFAULT_SATURATION_LEVEL = 30000.0


@dataclass
class RepairConfig:
    """Knobs of the validate-and-repair stage.

    Attributes
    ----------
    saturation_level:
        Pixels at or above this count are treated as saturated.
    max_repair_fraction:
        Largest fraction of bad (non-finite + saturated) pixels per
        channel that inpainting may bridge; beyond it the visit is
        rejected and masked instead.
    clip_sigma:
        Difference-image pixels more than this many robust sigmas above
        the median are outlier candidates.
    clip_support_ratio:
        An outlier candidate is clipped only when its 3x3 neighbourhood
        median stays below this fraction of its own value — a PSF-spread
        real source keeps neighbour support well above it, an isolated
        cosmic-ray pixel does not.
    inpaint_window:
        Half-width of the neighbourhood used for median inpainting.
    """

    saturation_level: float = DEFAULT_SATURATION_LEVEL
    max_repair_fraction: float = 0.25
    clip_sigma: float = 10.0
    clip_support_ratio: float = 0.2
    inpaint_window: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_repair_fraction <= 1.0:
            raise ValueError("max_repair_fraction must be in [0, 1]")
        if self.clip_sigma <= 0 or self.inpaint_window < 1:
            raise ValueError("clip_sigma must be positive and inpaint_window >= 1")


@dataclass
class InputDiagnostics:
    """What validation found (and fixed) in one visit's stamp pair.

    ``bad_fraction`` is the pre-repair fraction of unusable pixels over
    both channels; ``repaired`` means the visit was cleaned and kept,
    ``rejected`` that it was masked out of the feature vector.
    """

    visit: int
    band: str
    n_pixels: int
    n_nonfinite: int = 0
    n_saturated: int = 0
    n_clipped: int = 0
    bad_fraction: float = 0.0
    repaired: bool = False
    rejected: bool = False
    reason: str = ""

    @property
    def clean(self) -> bool:
        """True when the visit needed no intervention at all."""
        return not (self.repaired or self.rejected)

    def to_dict(self) -> dict:
        """JSON-ready representation (used by the classify CLI stream)."""
        return {
            "visit": self.visit,
            "band": self.band,
            "n_nonfinite": self.n_nonfinite,
            "n_saturated": self.n_saturated,
            "n_clipped": self.n_clipped,
            "bad_fraction": round(self.bad_fraction, 6),
            "repaired": self.repaired,
            "rejected": self.rejected,
            "reason": self.reason,
        }


def inpaint_bad_pixels(
    image: np.ndarray, bad: np.ndarray, window: int = 2
) -> np.ndarray:
    """Replace flagged pixels with the median of their good neighbours.

    Works in place on a float copy and returns it.  Each bad pixel takes
    the median of the good pixels inside a ``(2*window+1)`` square around
    it; pixels with no good neighbour fall back to the image's global
    good-pixel median (0 when nothing survives).
    """
    out = np.asarray(image, dtype=np.float32).copy()
    bad = np.asarray(bad, dtype=bool)
    if not bad.any():
        return out
    good = ~bad
    fallback = float(np.median(out[good])) if good.any() else 0.0
    rows, cols = np.nonzero(bad)
    side = out.shape[-1]
    for r, c in zip(rows, cols):
        r0, r1 = max(0, r - window), min(side, r + window + 1)
        c0, c1 = max(0, c - window), min(side, c + window + 1)
        patch = out[r0:r1, c0:c1]
        patch_good = good[r0:r1, c0:c1]
        out[r, c] = float(np.median(patch[patch_good])) if patch_good.any() else fallback
    return out


def clip_difference_outliers(
    reference: np.ndarray, observation: np.ndarray, config: RepairConfig
) -> tuple[np.ndarray, int]:
    """Sigma-clip cosmic-ray-like pixels off the observation stamp.

    Outliers are found on the *difference* image (observation minus
    reference): a pixel must sit ``clip_sigma`` robust sigmas above the
    median difference **and** lack neighbourhood support (see
    :class:`RepairConfig.clip_support_ratio`), which spares the
    PSF-spread supernova itself.  Clipped pixels are pulled back to the
    reference plus the local median difference.  Returns the repaired
    observation and the number of clipped pixels.
    """
    diff = observation - reference
    med = float(np.median(diff))
    sigma = 1.4826 * float(np.median(np.abs(diff - med)))
    if sigma <= 0:
        return observation.copy(), 0
    local = ndimage.median_filter(diff, size=3, mode="nearest")
    excess = diff - med
    candidates = excess > config.clip_sigma * sigma
    unsupported = (local - med) < config.clip_support_ratio * excess
    outliers = candidates & unsupported
    n = int(outliers.sum())
    repaired = observation.copy()
    if n:
        repaired[outliers] = reference[outliers] + local[outliers]
    return repaired, n


def diagnose_and_repair(
    pair: np.ndarray, visit: int, config: RepairConfig | None = None
) -> tuple[np.ndarray, InputDiagnostics]:
    """Validate one ``(2, S, S)`` stamp pair; repair or reject it.

    Returns ``(repaired_pair, diagnostics)``.  The repaired pair is
    always finite when the visit was kept; when ``rejected`` its content
    is unspecified and the caller must mask the visit.
    """
    config = config or RepairConfig()
    pair = np.asarray(pair, dtype=np.float32)
    band = GRIZY[visit % len(GRIZY)].name
    n_pixels = int(pair[0].size)
    diag = InputDiagnostics(visit=visit, band=band, n_pixels=n_pixels)

    finite = np.isfinite(pair)
    saturated = finite & (pair >= config.saturation_level)
    bad = ~finite | saturated
    diag.n_nonfinite = int((~finite).sum())
    diag.n_saturated = int(saturated.sum())
    diag.bad_fraction = float(bad.sum() / pair.size)

    # A channel with nothing usable in it means the visit never arrived.
    for channel in range(2):
        if bad[channel].all():
            diag.rejected = True
            diag.reason = (
                "reference" if channel == 0 else "observation"
            ) + " channel entirely unusable (missing visit)"
            return pair, diag
    if diag.bad_fraction > config.max_repair_fraction:
        diag.rejected = True
        diag.reason = (
            f"bad-pixel fraction {diag.bad_fraction:.3f} exceeds repair "
            f"budget {config.max_repair_fraction:.3f}"
        )
        return pair, diag

    repaired = pair
    if bad.any():
        repaired = np.stack(
            [
                inpaint_bad_pixels(pair[ch], bad[ch], window=config.inpaint_window)
                for ch in range(2)
            ]
        )
        diag.repaired = True
        diag.reason = "inpainted non-finite/saturated pixels"

    obs, n_clipped = clip_difference_outliers(repaired[0], repaired[1], config)
    if n_clipped:
        repaired = np.stack([repaired[0], obs])
        diag.n_clipped = n_clipped
        diag.repaired = True
        diag.reason = (diag.reason + "; " if diag.reason else "") + (
            f"sigma-clipped {n_clipped} difference outlier(s)"
        )
    return repaired, diag
