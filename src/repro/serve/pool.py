"""Multi-process scoring pool with zero-copy shared-memory IPC.

One Python process cannot scale ``classify_arrays`` past a single
core's BLAS throughput — the interpreter serialises everything around
the GEMMs.  :class:`ScoringPool` runs N warm worker *processes*, each
holding its own :class:`~repro.serve.engine.InferenceEngine`, and
scatters micro-batches onto them:

* **Zero pickle of pixel data.**  Request tensors and result arrays
  move through a :class:`multiprocessing.shared_memory.SharedMemory`
  ring of fixed-size slots; only ``(task_id, slot, shape)`` tuples and
  per-sample diagnostics cross the pipe.  A batch too large for a slot
  falls back to pickle transport (counted in :meth:`stats`).
* **BLAS thread pinning.**  Workers are spawned (never forked — the
  daemon owns threads) under :func:`repro.nn.pinned_blas_env`, so each
  child's numpy import sizes its BLAS pool to ``cores // workers``
  threads and N workers never oversubscribe the machine.
* **Deterministic gather.**  A batch of ``n`` samples is split into
  contiguous shards, one per worker, and results are reassembled in
  request order.  At float32 the engine's scores are chunk-size
  invariant, so pool output is bit-identical to the single-process
  path; float16 is covered by the benchmark's AUC gate.
* **Crash isolation.**  A worker dying mid-shard (OOM-killed, SIGKILL)
  is respawned under a :class:`~repro.runtime.retry.RetrySpec` budget
  and its shard is re-scored sample by sample; a sample that kills the
  replacement too comes back as a flagged
  :meth:`PredictionResult.failed` placeholder instead of sinking the
  batch.  A worker that is *alive but silent* — wedged inside a GEMM,
  stopped, swapping — is caught by the gather's no-progress deadline
  (``task_timeout_s``), terminated and healed through the same respawn
  path, so a dispatch can never block forever.  The budget replenishes
  after a crash-free ``respawn_reset_s`` period (it bounds *flapping*,
  not lifetime crashes); exhausting it inside one unhealthy window
  marks the pool broken (:class:`PoolBrokenError`) so the daemon can
  drain with exit code 4.  :meth:`close` never waits on a stuck
  dispatch: if the scoring lock cannot be acquired promptly it
  terminates the workers outright and unlinks the shm ring, so a drain
  cannot deadlock behind a wedge.
* **Hot reload.**  :meth:`reload` broadcasts a new model directory and
  an incremented version epoch; it returns only once every worker has
  acked the epoch, and it holds the dispatch lock, so a registry swap
  is exactly-once pool-wide and no in-flight batch ever mixes versions.
"""

from __future__ import annotations

import math
import os
import json
import pickle
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator

import multiprocessing
from multiprocessing import connection, shared_memory

import numpy as np

from ..nn.threads import blas_env_settings, blas_thread_plan, pinned_blas_env
from ..obs import trace as obs_trace
from ..perf.instrument import count as _count
from ..perf.instrument import timed as _timed
from ..photometry import GRIZY
from ..runtime.errors import CorruptArtifactError
from ..runtime.retry import RetrySpec
from .engine import DegradedInputError, InferenceEngine, PredictionResult

__all__ = [
    "PoolConfig",
    "PoolError",
    "PoolBrokenError",
    "WorkerCrashError",
    "ScoringPool",
    "DEFAULT_RESPAWN_SPEC",
]

#: Worker-respawn budget: generous enough to heal a poison batch (one
#: group crash plus the culprit's single-sample crash) a few times over,
#: bounded so a worker that dies on every batch cannot flap forever.
DEFAULT_RESPAWN_SPEC = RetrySpec(
    max_attempts=8, base_delay_s=0.05, factor=1.5, max_delay_s=1.0, jitter=0.0
)


class PoolError(RuntimeError):
    """Scoring-pool failure that is not a per-sample scoring error."""


class PoolBrokenError(PoolError):
    """The pool exhausted its respawn budget (or was closed) — drain."""


class WorkerCrashError(PoolError):
    """A scoring worker process died while scoring a sample."""


@dataclass(frozen=True)
class PoolConfig:
    """Tunables of :class:`ScoringPool`.

    ``slot_bytes`` bounds the largest batch served through shared
    memory: a shard needing more falls back to pickle transport (still
    correct, just slower).  The default fits a 16-sample batch of
    5-visit 160x160 stamp pairs with room to spare.
    """

    workers: int = 2
    #: Ring slots; 0 means ``2 * workers`` (dispatch never blocks on a
    #: free slot: at most ``workers`` tasks are in flight at once).
    slots: int = 0
    slot_bytes: int = 16 << 20
    #: BLAS threads per worker; 0 means ``max(1, cores // workers)``.
    blas_threads: int = 0
    respawn: RetrySpec = field(default_factory=lambda: DEFAULT_RESPAWN_SPEC)
    start_timeout_s: float = 120.0
    reload_timeout_s: float = 120.0
    #: No-progress deadline per gather: a worker that is alive but has
    #: sent nothing for this long while owing a shard is treated as
    #: wedged — terminated, its shard marked crashed, healed via the
    #: respawn path.  The daemon sets this from ``wedge_timeout_s``.
    task_timeout_s: float = 30.0
    #: A crash-free period this long replenishes the respawn budget, so
    #: the budget bounds flapping rather than total lifetime crashes.
    respawn_reset_s: float = 60.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.slots < 0:
            raise ValueError("slots must be >= 0")
        if self.slot_bytes < 4096:
            raise ValueError("slot_bytes must be >= 4096")
        if self.blas_threads < 0:
            raise ValueError("blas_threads must be >= 0")
        if (
            self.start_timeout_s <= 0
            or self.reload_timeout_s <= 0
            or self.task_timeout_s <= 0
            or self.respawn_reset_s <= 0
        ):
            raise ValueError("timeouts must be positive")


# ----------------------------------------------------------------------
# Shared-memory slot layout
# ----------------------------------------------------------------------
_ALIGN = 8

#: Result record: probability/confidence/flux_feature float64 + the
#: degraded flag and usable-band bitmask as single bytes per sample.
_RESULT_BYTES_PER_SAMPLE = 8 * 3 + 2


def _align(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def _slot_layout(n: int, v: int, s: int) -> tuple[int, int, int]:
    """``(mjd_offset, result_offset, total_bytes)`` for one task.

    Both sides derive the layout from the ``(n, v, s)`` shape tuple in
    the task message — nothing but indices and shapes crosses the pipe.
    """
    pairs_bytes = n * v * 2 * s * s * 4
    mjd_off = _align(pairs_bytes)
    res_off = _align(mjd_off + n * v * 4)
    return mjd_off, res_off, res_off + n * _RESULT_BYTES_PER_SAMPLE


def _result_views(
    buf, res_off: int, n: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    prob = np.ndarray((n,), dtype=np.float64, buffer=buf, offset=res_off)
    conf = np.ndarray((n,), dtype=np.float64, buffer=buf, offset=res_off + 8 * n)
    flux = np.ndarray((n,), dtype=np.float64, buffer=buf, offset=res_off + 16 * n)
    degraded = np.ndarray((n,), dtype=np.uint8, buffer=buf, offset=res_off + 24 * n)
    bands = np.ndarray((n,), dtype=np.uint8, buffer=buf, offset=res_off + 25 * n)
    return prob, conf, flux, degraded, bands


_BAND_BIT = {band.name: 1 << band.index for band in GRIZY}


def _store_results(buf, res_off: int, results: list[PredictionResult]) -> dict:
    """Worker side: pack results into the slot; return pipe extras.

    Everything numeric goes through shared memory at full float64
    precision (bit-exact round trip); only the per-visit diagnostics of
    non-clean samples — absent entirely on the clean hot path — are
    returned for pipe transport.
    """
    n = len(results)
    prob, conf, flux, degraded, bands = _result_views(buf, res_off, n)
    diags: dict[int, list] = {}
    for i, result in enumerate(results):
        prob[i] = result.probability
        conf[i] = result.confidence
        flux[i] = result.flux_feature
        degraded[i] = 1 if result.degraded else 0
        mask = 0
        for name in result.usable_bands:
            mask |= _BAND_BIT[name]
        bands[i] = mask
        if result.diagnostics:
            diags[i] = result.diagnostics
    return diags


def _load_results(
    buf, res_off: int, n: int, start_index: int, diags: dict
) -> list[PredictionResult]:
    """Parent side: rebuild :class:`PredictionResult` objects from a slot."""
    prob, conf, flux, degraded, bands = _result_views(buf, res_off, n)
    results = []
    for i in range(n):
        mask = int(bands[i])
        results.append(
            PredictionResult(
                index=start_index + i,
                probability=float(prob[i]),
                degraded=bool(degraded[i]),
                usable_bands=[
                    band.name for band in GRIZY if mask & (1 << band.index)
                ],
                confidence=float(conf[i]),
                diagnostics=diags.get(i, []),
                flux_feature=float(flux[i]),
            )
        )
    return results


# ----------------------------------------------------------------------
# Exception transport: descriptors over the pipe, rebuilt parent-side
# ----------------------------------------------------------------------
_ERROR_TYPES: dict[str, type[Exception]] = {
    "ValueError": ValueError,
    "TypeError": TypeError,
    "KeyError": KeyError,
    "IndexError": IndexError,
    "RuntimeError": RuntimeError,
    "OverflowError": OverflowError,
    "ZeroDivisionError": ZeroDivisionError,
    "FloatingPointError": FloatingPointError,
    "OSError": OSError,
    "NotImplementedError": NotImplementedError,
}


def _describe_error(exc: BaseException) -> dict:
    """A picklable descriptor — custom ``__init__`` signatures (e.g.
    :class:`DegradedInputError`) make default exception pickling lossy.

    The repo's own typed errors travel by explicit field so pool callers
    can catch the exact types the in-process path raises; anything else
    outside the builtin allowlist is attached as a pickle blob when it
    provably round-trips (same type, same message), with the descriptor
    as the fallback wire format.
    """
    desc = {"type": type(exc).__name__, "message": str(exc)}
    if isinstance(exc, DegradedInputError):
        desc["index"] = exc.index
        desc["request_id"] = exc.request_id
    elif isinstance(exc, CorruptArtifactError):
        desc["path"] = exc.path
        desc["reason"] = exc.reason
    elif type(exc).__name__ not in _ERROR_TYPES:
        try:
            blob = pickle.dumps(exc)
            rebuilt = pickle.loads(blob)
            if type(rebuilt) is type(exc) and str(rebuilt) == str(exc):
                desc["pickle"] = blob
        except Exception:  # noqa: BLE001 - descriptor fallback is always valid
            pass
    return desc


def _rebuild_error(desc: dict) -> Exception:
    if desc["type"] == "DegradedInputError":
        return DegradedInputError(
            desc["message"],
            index=desc.get("index"),
            request_id=desc.get("request_id"),
        )
    if desc["type"] == "CorruptArtifactError":
        return CorruptArtifactError(desc["path"], desc["reason"])
    blob = desc.get("pickle")
    if blob is not None:
        try:
            exc = pickle.loads(blob)
            if type(exc).__name__ == desc["type"]:
                return exc
        except Exception:  # noqa: BLE001 - fall back to the descriptor
            pass
    cls = _ERROR_TYPES.get(desc["type"])
    if cls is not None:
        return cls(desc["message"])
    return PoolError(f"{desc['type']}: {desc['message']}")


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _load_worker_engine(
    model_source: str,
    engine_kwargs: dict,
    worker_init: Callable | None,
    worker_id: int,
) -> InferenceEngine:
    engine = InferenceEngine.from_directory(model_source, **engine_kwargs)
    engine.pipeline.cnn.eval()
    engine.pipeline.classifier.eval()
    if worker_init is not None:
        worker_init(engine, worker_id)
    return engine


def _task_span(wire, task_id: int, n_samples: int):
    """The worker-side ``worker.compute`` span, resumed from the wire
    context that rode the task message; ``NULL_SPAN`` when the task's
    request is unsampled or the worker has no segment tracer."""
    tracer = obs_trace.tracer()
    if wire is None or tracer is None:
        return obs_trace.NULL_SPAN
    return tracer.resume(wire, "worker.compute", f"t{task_id}", n_samples=n_samples)


def _run_task(engine: InferenceEngine, buf, slot_bytes: int, msg: tuple) -> tuple:
    """Score one shm task; views over ``buf`` die at function exit."""
    _, task_id, slot, shape, strict, start_index, wire = msg
    n, v, s = shape
    base = slot * slot_bytes
    mjd_off, res_off, _ = _slot_layout(n, v, s)
    pairs = np.ndarray((n, v, 2, s, s), dtype=np.float32, buffer=buf, offset=base)
    mjd = np.ndarray((n, v), dtype=np.float32, buffer=buf, offset=base + mjd_off)
    started = time.perf_counter()
    try:
        with _task_span(wire, task_id, n):
            results = engine.classify_arrays(
                pairs, mjd, strict=strict, start_index=start_index
            )
        diags = _store_results(buf, base + res_off, results)
    except Exception as exc:  # noqa: BLE001 - shipped to the parent, typed
        return ("task_error", task_id, _describe_error(exc),
                time.perf_counter() - started)
    return ("task_done", task_id, len(results), diags,
            time.perf_counter() - started)


def _run_task_pickle(engine: InferenceEngine, msg: tuple) -> tuple:
    """Pickle-transport fallback for batches larger than one slot."""
    _, task_id, pairs, mjd, strict, start_index, wire = msg
    started = time.perf_counter()
    try:
        with _task_span(wire, task_id, int(np.asarray(pairs).shape[0])):
            results = engine.classify_arrays(
                pairs, mjd, strict=strict, start_index=start_index
            )
    except Exception as exc:  # noqa: BLE001
        return ("task_error", task_id, _describe_error(exc),
                time.perf_counter() - started)
    return ("results_pickle", task_id, results, time.perf_counter() - started)


def _worker_main(
    conn,
    shm_name: str,
    slot_bytes: int,
    worker_id: int,
    model_source: str,
    engine_kwargs: dict,
    worker_init: Callable | None,
    trace_dir: str | None = None,
) -> None:
    """Entry point of one spawned scoring worker.

    Spawned (not forked) so the pinned BLAS environment is read by a
    fresh numpy import and no daemon thread state leaks in.  The worker
    owns one warm engine, answers ``task`` messages against the shared
    ring and swaps its engine on ``reload`` broadcasts, acking each
    version epoch so the parent can prove an exactly-once swap.

    With ``trace_dir`` set (the parent's telemetry directory when
    tracing is on) a :class:`~repro.obs.trace.SegmentTracer` is
    installed: ``worker.compute`` spans — resumed from the wire context
    in each task message — append to ``trace-worker<id>.jsonl`` and the
    parent merges them into the main event log at gather time.
    """
    if trace_dir is not None:
        obs_trace.install(
            obs_trace.SegmentTracer(
                obs_trace.worker_segment_path(trace_dir, worker_id),
                worker=worker_id,
            )
        )
    shm = None
    try:
        # Attaching re-registers the segment with the resource tracker the
        # spawned child shares with the parent — a set-add no-op.  Do NOT
        # unregister here: that would strip the parent's registration and
        # break its own unlink-at-close bookkeeping.
        shm = shared_memory.SharedMemory(name=shm_name)
        engine = _load_worker_engine(
            model_source, engine_kwargs, worker_init, worker_id
        )
    except Exception as exc:  # noqa: BLE001 - boot failures go to the parent
        try:
            conn.send(("boot_error", worker_id, _describe_error(exc)))
        except OSError:
            pass
        if shm is not None:
            shm.close()
        return
    conn.send(("ready", worker_id, os.getpid(), blas_env_settings()))
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg[0]
        if kind == "stop":
            break
        if kind == "reload":
            _, epoch, source = msg
            try:
                engine = _load_worker_engine(
                    source, engine_kwargs, worker_init, worker_id
                )
                conn.send(("reload_ack", worker_id, epoch, None))
            except Exception as exc:  # noqa: BLE001
                conn.send(("reload_ack", worker_id, epoch, _describe_error(exc)))
            continue
        if kind == "task":
            reply = _run_task(engine, shm.buf, slot_bytes, msg)
        elif kind == "task_pickle":
            reply = _run_task_pickle(engine, msg)
        else:  # pragma: no cover - protocol bug
            reply = ("task_error", None,
                     {"type": "PoolError", "message": f"unknown message {kind}"},
                     0.0)
        try:
            conn.send((reply[0], worker_id) + reply[1:])
        except (BrokenPipeError, OSError):
            break
    try:
        shm.close()
    except BufferError:  # pragma: no cover - a leaked view; exiting anyway
        pass
    segment = obs_trace.tracer()
    if isinstance(segment, obs_trace.SegmentTracer):
        segment.close()
    conn.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _Worker:
    """Parent-side handle of one worker process."""

    __slots__ = (
        "id", "process", "conn", "pid", "blas_env",
        "tasks", "samples", "busy_s", "crashes",
    )

    def __init__(self, worker_id: int, process, conn) -> None:
        self.id = worker_id
        self.process = process
        self.conn = conn
        self.pid: int | None = None
        self.blas_env: dict | None = None
        self.tasks = 0
        self.samples = 0
        self.busy_s = 0.0
        self.crashes = 0


class _Shard:
    """One in-flight scatter unit: a contiguous sample range on a worker."""

    __slots__ = ("task_id", "worker", "slot", "res_off", "offset", "count",
                 "start_index", "outcome")

    def __init__(self, task_id: int, worker: _Worker, slot: int | None,
                 res_off: int | None, offset: int, count: int,
                 start_index: int) -> None:
        self.task_id = task_id
        self.worker = worker
        self.slot = slot
        self.res_off = res_off
        self.offset = offset
        self.count = count
        self.start_index = start_index
        #: ("ok", results) | ("error", exception) | ("crash", None)
        self.outcome: tuple | None = None


class ScoringPool:
    """A warm pool of scoring worker processes (see module docstring).

    Construct with either ``model_source`` (a saved model directory —
    what ``repro serve --registry`` and ``repro classify --model``
    already have) or a live ``engine`` (persisted once to a pool-owned
    temp directory so spawned workers can load it).  ``engine_kwargs``
    are forwarded to :meth:`InferenceEngine.from_directory` in every
    worker and on every reload, mirroring the daemon's contract.

    ``worker_init(engine, worker_id)`` is the chaos seam: a *picklable*
    callable applied to each worker's engine after load (the pool
    equivalent of ``reload_hook``); the fault suite uses it to plant
    deterministic crashes inside worker processes.
    """

    def __init__(
        self,
        model_source: str | os.PathLike | None = None,
        engine: InferenceEngine | None = None,
        config: PoolConfig | None = None,
        engine_kwargs: dict | None = None,
        worker_init: Callable | None = None,
    ) -> None:
        if (model_source is None) == (engine is None):
            raise ValueError("pass exactly one of model_source or engine")
        self.config = config or PoolConfig()
        self._engine_kwargs = dict(engine_kwargs or {})
        self._default_strict = bool(self._engine_kwargs.get("strict", False))
        self._worker_init = worker_init
        self._engine = engine
        self._model_source = (
            os.fspath(model_source) if model_source is not None else None
        )
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.RLock()
        #: Guards only the closed flag, so close() can make the pool
        #: terminal without first winning the dispatch lock.
        self._close_lock = threading.Lock()
        self._workers: list[_Worker] = []
        self._free_slots: deque[int] = deque()
        self._shm: shared_memory.SharedMemory | None = None
        self._n_slots = self.config.slots or 2 * self.config.workers
        self._blas_threads = self.config.blas_threads or blas_thread_plan(
            self.config.workers
        )
        self._respawn_delays = self.config.respawn.delays()
        self._last_crash_at: float | None = None
        self._started_at: float | None = None
        self._started = False
        self._closed = False
        self._broken: str | None = None
        self._task_counter = 0
        self._next_worker = 0
        self._epoch = 0
        self._respawns = 0
        self._crashes = 0
        self._wedges = 0
        self._overflow = 0
        self._tasks = 0
        self._samples = 0
        self._scatter_s = 0.0
        self._gather_s = 0.0
        # Last-60s exponentially-decayed windows over scatter/gather work
        # (seconds of work in the recent window; decays to 0 when idle).
        self._window_t: float | None = None
        self._scatter_win = 0.0
        self._gather_win = 0.0
        # Tracing: telemetry dir for worker span segments (set at start
        # when a tracer is installed) and per-worker merge offsets.
        self._trace_dir: str | None = None
        self._segment_offsets: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ScoringPool":
        """Create the shm ring and spawn + await every worker."""
        with self._lock:
            if self._started:
                raise PoolError("pool already started")
            if self._closed:
                raise PoolBrokenError("pool is closed")
            if self._model_source is None:
                self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-pool-")
                self._engine.save(self._tmpdir.name)
                self._model_source = self._tmpdir.name
            self._shm = shared_memory.SharedMemory(
                create=True, size=self._n_slots * self.config.slot_bytes
            )
            self._free_slots = deque(range(self._n_slots))
            tracer = obs_trace.tracer()
            if tracer is not None and tracer.directory is not None:
                self._trace_dir = tracer.directory
            try:
                for worker_id in range(self.config.workers):
                    self._workers.append(self._spawn(worker_id))
                for worker in self._workers:
                    self._await_ready(worker, self.config.start_timeout_s)
            except BaseException:
                self._teardown()
                raise
            self._started = True
            self._started_at = time.monotonic()
            return self

    def __enter__(self) -> "ScoringPool":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self, timeout_s: float = 5.0) -> None:
        """Stop every worker and release the shm ring; idempotent.

        Never blocks behind a stuck dispatch: when the scoring lock
        cannot be acquired promptly (a wedged worker holding a gather
        hostage), the worker processes are terminated outright and the
        shm ring name is unlinked anyway.  The killed workers wake the
        stuck gather (dead sentinels), its shards settle as crashes, and
        the now-closed pool raises :class:`PoolBrokenError` out of the
        dispatch instead of respawning into torn-down state — so a
        daemon drain can always complete.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        acquired = self._lock.acquire(timeout=min(timeout_s, 2.0))
        try:
            if acquired:
                for worker in self._workers:
                    try:
                        worker.conn.send(("stop",))
                    except (BrokenPipeError, OSError):
                        pass
            deadline = time.monotonic() + timeout_s
            for worker in self._workers:
                worker.process.join(max(0.1, deadline - time.monotonic()))
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(1.0)
                if worker.process.is_alive():  # pragma: no cover - last resort
                    worker.process.kill()
                    worker.process.join(1.0)
                if acquired:
                    worker.conn.close()
            if acquired:
                self._teardown()
            else:
                # Forced path: the dispatch thread may still hold views
                # over the slab, so only unlink the name (the mapping is
                # freed with the process); conns stay open for the stuck
                # gather to drain its error exits through.
                self._broken = "pool closed while a dispatch was stuck"
                self._unlink_shm()
        finally:
            if acquired:
                self._lock.release()

    def _teardown(self) -> None:
        if self._shm is not None:
            self._shm.close()
            self._unlink_shm()
            self._shm = None
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def _unlink_shm(self) -> None:
        if self._shm is not None:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass

    @property
    def started(self) -> bool:
        """True once :meth:`start` has completed (workers are warm)."""
        return self._started

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has begun; the pool is terminal."""
        return self._closed

    def pids(self) -> list[int]:
        """Live worker process ids (the chaos suite's SIGKILL targets)."""
        return [w.process.pid for w in self._workers if w.process.pid]

    # ------------------------------------------------------------------
    # Worker management
    # ------------------------------------------------------------------
    def _spawn(self, worker_id: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                self._shm.name,
                self.config.slot_bytes,
                worker_id,
                self._model_source,
                self._engine_kwargs,
                self._worker_init,
                self._trace_dir,
            ),
            name=f"repro-pool-{worker_id}",
            daemon=True,
        )
        with pinned_blas_env(self._blas_threads):
            process.start()
        child_conn.close()
        return _Worker(worker_id, process, parent_conn)

    def _await_ready(self, worker: _Worker, timeout_s: float) -> None:
        deadline = time.monotonic() + timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise PoolError(f"worker {worker.id} not ready after {timeout_s}s")
            if worker.conn.poll(min(remaining, 0.5)):
                try:
                    msg = worker.conn.recv()
                except (EOFError, OSError):
                    raise PoolError(
                        f"worker {worker.id} died during boot "
                        f"(exitcode {worker.process.exitcode})"
                    ) from None
                if msg[0] == "ready":
                    worker.pid = msg[2]
                    worker.blas_env = msg[3]
                    return
                if msg[0] == "boot_error":
                    raise PoolError(
                        f"worker {worker.id} failed to boot: "
                        f"{msg[2]['type']}: {msg[2]['message']}"
                    )
            elif not worker.process.is_alive():
                raise PoolError(
                    f"worker {worker.id} died during boot "
                    f"(exitcode {worker.process.exitcode})"
                )

    def _note_crash(self, worker: _Worker) -> _Worker:
        """Respawn a dead worker under the budget; broken pool raises."""
        if self._closed:
            # close() tore the workers down under us (forced drain);
            # never respawn into unlinked shm — surface the endgame.
            raise PoolBrokenError("pool is closed")
        current = self._workers[worker.id]
        if current is not worker:
            return current  # another path already replaced it
        worker.crashes += 1
        self._crashes += 1
        _count("pool.worker_crashes")
        worker.process.join(1.0)
        worker.conn.close()
        now = time.monotonic()
        if (
            self._last_crash_at is not None
            and now - self._last_crash_at >= self.config.respawn_reset_s
        ):
            # A sustained healthy period replenishes the budget: it
            # bounds flapping, not total crashes over a long uptime.
            self._respawn_delays = self.config.respawn.delays()
        self._last_crash_at = now
        delay = next(self._respawn_delays, None)
        if delay is None:
            self._broken = (
                f"worker {worker.id} died and the respawn budget "
                f"({self.config.respawn.max_attempts - 1} respawns) is exhausted"
            )
            raise PoolBrokenError(self._broken)
        time.sleep(delay)
        self._respawns += 1
        _count("pool.worker_respawns")
        replacement = self._spawn(worker.id)
        replacement.crashes = worker.crashes
        self._await_ready(replacement, self.config.start_timeout_s)
        self._workers[worker.id] = replacement
        return replacement

    def _ensure_live(self) -> None:
        if self._broken is not None:
            raise PoolBrokenError(self._broken)
        if not self._started:
            raise PoolError("pool not started")
        if self._closed:
            raise PoolBrokenError("pool is closed")

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def classify_arrays(
        self,
        pairs: np.ndarray,
        mjd: np.ndarray,
        strict: bool | None = None,
        start_index: int = 0,
    ) -> list[PredictionResult]:
        """Scatter one batch across the pool; gather in request order.

        Mirrors :meth:`InferenceEngine.classify_arrays` exactly: at
        float32 the returned scores are bit-identical to the
        single-process path, scoring exceptions (strict degradation,
        malformed batches) re-raise with the same types, and a worker
        crash is healed internally (respawn + per-sample re-score) with
        only repeat offenders flagged as failed placeholders.
        """
        pairs_arr = np.asarray(pairs)
        mjd_arr = np.asarray(mjd)
        # Mirror the engine's batch-level checks the shm layout depends
        # on (same messages), before any bytes move.
        if pairs_arr.ndim != 5 or pairs_arr.shape[2] != 2:
            raise ValueError(
                f"expected (N, V, 2, S, S) stamp pairs, got shape {pairs_arr.shape}"
            )
        if pairs_arr.shape[3] != pairs_arr.shape[4]:
            raise ValueError(
                f"stamps must be square, got {pairs_arr.shape[3]}x{pairs_arr.shape[4]}"
            )
        if not np.issubdtype(pairs_arr.dtype, np.number):
            raise ValueError(f"pairs must be numeric, got dtype {pairs_arr.dtype}")
        if mjd_arr.shape != pairs_arr.shape[:2]:
            raise ValueError(
                f"visit_mjd shape {mjd_arr.shape} does not match pairs "
                f"{pairs_arr.shape[:2]}"
            )
        n = pairs_arr.shape[0]
        if n == 0:
            return []
        # The engine casts to float32 on entry anyway; casting here means
        # the ring carries half the bytes with zero numeric difference.
        pairs32 = np.ascontiguousarray(pairs_arr, dtype=np.float32)
        mjd32 = np.ascontiguousarray(mjd_arr, dtype=np.float32)
        dispatch_parent = obs_trace.current_span()
        with self._lock:
            self._ensure_live()
            scatter_before, gather_before = self._scatter_s, self._gather_s
            wire = obs_trace.wire_context(dispatch_parent)
            with obs_trace.span(
                "pool.scatter",
                parent=dispatch_parent,
                n_samples=n,
                workers=len(self._workers),
            ):
                shards: list[_Shard] = []
                for offset, count in self._plan_shards(n):
                    worker = self._pick_worker()
                    shards.append(
                        self._submit(worker, pairs32, mjd32, offset, count,
                                     strict, start_index, wire)
                    )
            with obs_trace.span(
                "pool.gather", parent=dispatch_parent, shards=len(shards)
            ):
                self._gather(shards)
                results = self._settle(shards, pairs32, mjd32, strict,
                                       start_index)
            self._drain_trace_segments()
            self._note_window(self._scatter_s - scatter_before,
                              self._gather_s - gather_before)
        self._tasks += 1
        self._samples += n
        _count("pool.batches")
        _count("pool.samples", n)
        return results

    def _plan_shards(self, n: int) -> list[tuple[int, int]]:
        """Contiguous ``(offset, count)`` shards, one per worker."""
        shard_count = min(self.config.workers, n)
        base, extra = divmod(n, shard_count)
        plan = []
        offset = 0
        for k in range(shard_count):
            count = base + (1 if k < extra else 0)
            plan.append((offset, count))
            offset += count
        return plan

    def _pick_worker(self) -> _Worker:
        """Round-robin over workers, respawning one found already dead."""
        worker = self._workers[self._next_worker % len(self._workers)]
        self._next_worker += 1
        if not worker.process.is_alive():
            worker = self._note_crash(worker)
        return worker

    def _submit(
        self,
        worker: _Worker,
        pairs32: np.ndarray,
        mjd32: np.ndarray,
        offset: int,
        count: int,
        strict: bool | None,
        start_index: int,
        wire: tuple | None = None,
    ) -> _Shard:
        shard_pairs = pairs32[offset : offset + count]
        shard_mjd = mjd32[offset : offset + count]
        n, v, s = count, pairs32.shape[1], pairs32.shape[3]
        mjd_off, res_off, needed = _slot_layout(n, v, s)
        task_id = self._task_counter
        self._task_counter += 1
        started = time.perf_counter()
        slot: int | None = None
        if needed <= self.config.slot_bytes and self._free_slots:
            slot = self._free_slots.popleft()
            base = slot * self.config.slot_bytes
            with _timed("pool.scatter"):
                self._write_slot(base, mjd_off, shard_pairs, shard_mjd)
                message = ("task", task_id, slot, (n, v, s), strict,
                           start_index + offset, wire)
        else:
            self._overflow += 1
            res_off = None
            _count("pool.shm_overflow")
            with _timed("pool.scatter"):
                message = ("task_pickle", task_id, shard_pairs, shard_mjd,
                           strict, start_index + offset, wire)
        shard = _Shard(task_id, worker, slot, res_off, offset, count,
                       start_index + offset)
        try:
            worker.conn.send(message)
        except (BrokenPipeError, OSError):
            shard.outcome = ("crash", None)
            self._free_slot(shard)
        self._scatter_s += time.perf_counter() - started
        return shard

    def _write_slot(self, base: int, mjd_off: int,
                    shard_pairs: np.ndarray, shard_mjd: np.ndarray) -> None:
        buf = self._shm.buf
        dst_pairs = np.ndarray(
            shard_pairs.shape, dtype=np.float32, buffer=buf, offset=base
        )
        dst_pairs[...] = shard_pairs
        dst_mjd = np.ndarray(
            shard_mjd.shape, dtype=np.float32, buffer=buf, offset=base + mjd_off
        )
        dst_mjd[...] = shard_mjd

    def _free_slot(self, shard: _Shard) -> None:
        if shard.slot is not None:
            self._free_slots.append(shard.slot)
            shard.slot = None

    def _gather(self, shards: list[_Shard]) -> None:
        """Wait for every shard's outcome; crashes become outcomes too.

        Bounded: any message (or a settled worker death) resets the
        no-progress deadline, but a worker that stays *alive yet silent*
        past ``task_timeout_s`` is declared wedged — terminated, its
        shards settled as crashes for the respawn path to heal — so a
        hung GEMM or a stopped process can never hold the dispatch lock
        (and, through it, a daemon drain) forever.
        """
        started = time.perf_counter()
        pending = {s.task_id: s for s in shards if s.outcome is None}
        deadline = time.monotonic() + self.config.task_timeout_s
        with _timed("pool.gather"):
            while pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._kill_wedged(pending)
                    break
                workers = {s.worker for s in pending.values()}
                sentinels = {w.process.sentinel: w for w in workers}
                conns = {w.conn: w for w in workers}
                ready = connection.wait(
                    list(conns) + list(sentinels), timeout=min(1.0, remaining)
                )
                progressed = False
                for item in ready:
                    worker = conns.get(item)
                    if worker is None:
                        continue
                    progressed |= self._drain_conn(worker, pending)
                if progressed:
                    deadline = time.monotonic() + self.config.task_timeout_s
                    continue
                for item in ready:
                    worker = sentinels.get(item)
                    if worker is None or worker.process.is_alive():
                        continue
                    # Dead with no message for its shard: a mid-task crash.
                    for shard in list(pending.values()):
                        if shard.worker is worker:
                            shard.outcome = ("crash", None)
                            self._free_slot(shard)
                            del pending[shard.task_id]
                            progressed = True
                if progressed:
                    deadline = time.monotonic() + self.config.task_timeout_s
        self._gather_s += time.perf_counter() - started

    def _kill_wedged(self, pending: dict[int, _Shard]) -> None:
        """Terminate every silent worker still owing a shard.

        The shards settle as crashes, so :meth:`_settle` heals them
        through the exact path a SIGKILLed worker takes: respawn under
        the retry budget, per-sample re-score, repeat offenders flagged.
        """
        for shard in list(pending.values()):
            worker = shard.worker
            if worker.process.is_alive():
                self._wedges += 1
                _count("pool.worker_wedges")
                worker.process.terminate()
                worker.process.join(1.0)
                if worker.process.is_alive():  # pragma: no cover - last resort
                    worker.process.kill()
                    worker.process.join(1.0)
            shard.outcome = ("crash", None)
            self._free_slot(shard)
            del pending[shard.task_id]

    def _drain_conn(self, worker: _Worker, pending: dict[int, _Shard]) -> bool:
        progressed = False
        try:
            while worker.conn.poll():
                msg = worker.conn.recv()
                progressed |= self._handle_message(worker, msg, pending)
        except (EOFError, OSError):
            pass
        return progressed

    def _handle_message(
        self, worker: _Worker, msg: tuple, pending: dict[int, _Shard]
    ) -> bool:
        kind = msg[0]
        if kind == "task_done":
            _, _, task_id, count, diags, elapsed = msg
            shard = pending.pop(task_id, None)
            if shard is None:  # pragma: no cover - stale reply
                return False
            base = shard.slot * self.config.slot_bytes
            results = _load_results(
                self._shm.buf, base + shard.res_off, count,
                shard.start_index, diags
            )
            self._free_slot(shard)
            shard.outcome = ("ok", results)
            self._note_done(worker, shard, elapsed)
            return True
        if kind == "results_pickle":
            _, _, task_id, results, elapsed = msg
            shard = pending.pop(task_id, None)
            if shard is None:  # pragma: no cover
                return False
            shard.outcome = ("ok", results)
            self._note_done(worker, shard, elapsed)
            return True
        if kind == "task_error":
            _, _, task_id, desc, elapsed = msg
            shard = pending.pop(task_id, None)
            if shard is None:  # pragma: no cover
                return False
            self._free_slot(shard)
            shard.outcome = ("error", _rebuild_error(desc))
            self._note_done(worker, shard, elapsed)
            return True
        # reload_ack or unknown mid-scoring: impossible under the dispatch
        # lock; ignore defensively.
        return False  # pragma: no cover

    def _note_done(self, worker: _Worker, shard: _Shard, elapsed: float) -> None:
        worker.tasks += 1
        worker.samples += shard.count
        worker.busy_s += elapsed

    def _settle(
        self,
        shards: list[_Shard],
        pairs32: np.ndarray,
        mjd32: np.ndarray,
        strict: bool | None,
        start_index: int,
    ) -> list[PredictionResult]:
        """Combine shard outcomes; heal crashes; re-raise scoring errors."""
        errors = [
            (shard.start_index, shard.outcome[1])
            for shard in shards
            if shard.outcome is not None and shard.outcome[0] == "error"
        ]
        if errors:
            errors.sort(key=lambda item: item[0])
            raise errors[0][1]
        results: list[PredictionResult] = []
        for shard in shards:
            kind = shard.outcome[0] if shard.outcome else "crash"
            if kind == "ok":
                results.extend(shard.outcome[1])
                continue
            # Crash: respawn the dead worker(s) eagerly (under the retry
            # budget), then re-score one sample at a time so the culprit
            # is isolated, not the whole shard.
            _count("pool.crashed_shards")
            for dead in list(self._workers):
                if not dead.process.is_alive():
                    self._note_crash(dead)
            results.extend(
                self._rescore_singles(
                    pairs32, mjd32, shard.offset, shard.count, strict,
                    start_index
                )
            )
        return results

    def _rescore_singles(
        self,
        pairs32: np.ndarray,
        mjd32: np.ndarray,
        offset: int,
        count: int,
        strict: bool | None,
        start_index: int,
    ) -> list[PredictionResult]:
        effective_strict = (
            self._default_strict if strict is None else bool(strict)
        )
        healed: list[PredictionResult] = []
        # Called inside the gather span's scope, so the heal — and the
        # respawned workers' compute spans resumed from its wire context
        # — records as a child of ``pool.gather``.
        with obs_trace.span("pool.heal", n_samples=count, offset=offset):
            wire = obs_trace.wire_context()
            for i in range(offset, offset + count):
                worker = self._pick_worker()
                shard = self._submit(worker, pairs32, mjd32, i, 1, strict,
                                     start_index, wire)
                self._gather([shard])
                kind = shard.outcome[0] if shard.outcome else "crash"
                if kind == "ok":
                    healed.extend(shard.outcome[1])
                elif kind == "error":
                    raise shard.outcome[1]
                else:
                    # This sample killed a worker twice: flag it, keep going.
                    self._note_crash(shard.worker)
                    crash = WorkerCrashError(
                        f"sample {start_index + i} crashed the scoring worker; "
                        "served at the no-information prior"
                    )
                    if effective_strict:
                        raise crash
                    _count("pool.poison_samples")
                    healed.append(
                        PredictionResult.failed(start_index + i, crash)
                    )
        return healed

    # ------------------------------------------------------------------
    # Tracing + windowed rates
    # ------------------------------------------------------------------
    #: Time constant of the scatter/gather work windows in stats().
    _WINDOW_TAU_S = 60.0

    def _note_window(self, scatter_s: float, gather_s: float) -> None:
        """Fold one dispatch's scatter/gather work into the 60s windows.

        The windows are exponentially-decayed sums (time constant 60s):
        recent dispatches dominate, an idle minute decays them to ~zero,
        so ``/healthz`` reflects current rather than lifetime behavior.
        """
        now = time.monotonic()
        if self._window_t is not None:
            decay = math.exp(-(now - self._window_t) / self._WINDOW_TAU_S)
            self._scatter_win *= decay
            self._gather_win *= decay
        self._window_t = now
        self._scatter_win += scatter_s
        self._gather_win += gather_s

    def _window_now(self) -> tuple[float, float]:
        if self._window_t is None:
            return 0.0, 0.0
        decay = math.exp(
            -(time.monotonic() - self._window_t) / self._WINDOW_TAU_S
        )
        return self._scatter_win * decay, self._gather_win * decay

    def _drain_trace_segments(self) -> None:
        """Merge new worker-segment span lines into the parent tracer.

        Each worker appends completed ``worker.compute`` (and nested
        engine-stage) spans to its own JSONL segment; the parent tails
        every segment from its last offset and routes each record
        through :meth:`Tracer.merge`, which lands it in the main event
        log (or the live trace's slow-mode buffer).  Torn tail lines —
        a worker mid-write or freshly killed — are left for next time.
        """
        tracer = obs_trace.tracer()
        if self._trace_dir is None or not isinstance(tracer, obs_trace.Tracer):
            return
        for worker in self._workers:
            path = obs_trace.worker_segment_path(self._trace_dir, worker.id)
            offset = self._segment_offsets.get(worker.id, 0)
            try:
                with open(path, "rb") as fh:
                    fh.seek(offset)
                    data = fh.read()
            except OSError:
                continue
            end = data.rfind(b"\n")
            if end < 0:
                continue
            self._segment_offsets[worker.id] = offset + end + 1
            for line in data[:end].split(b"\n"):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    tracer.merge(record)

    def stream(
        self,
        dataset,
        batch_size: int = 64,
        strict: bool | None = None,
    ) -> Iterator[PredictionResult]:
        """Yield results for a dataset, ``workers`` batches in flight.

        The pool-backed analogue of :meth:`InferenceEngine.stream`:
        chunks of ``batch_size * workers`` samples are scattered so every
        worker scores one engine-sized batch per round, and results
        stream in request order.  Non-strict chunk failures are contained
        as :meth:`PredictionResult.failed` placeholders, matching the
        thread path's contract.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        effective_strict = (
            self._default_strict if strict is None else bool(strict)
        )
        step = batch_size * self.config.workers
        total = len(dataset)
        for start in range(0, total, step):
            stop = min(start + step, total)
            try:
                results = self.classify_arrays(
                    dataset.pairs[start:stop],
                    dataset.visit_mjd[start:stop],
                    strict=strict,
                    start_index=start,
                )
            except PoolBrokenError:
                raise
            except Exception as exc:  # noqa: BLE001 - containment contract
                if effective_strict:
                    raise
                _count("pool.contained_chunk_failures")
                results = [
                    PredictionResult.failed(i, exc) for i in range(start, stop)
                ]
            yield from results

    # ------------------------------------------------------------------
    # Hot reload
    # ------------------------------------------------------------------
    def reload(self, model_source: str | os.PathLike) -> int:
        """Swap every worker to a new model directory; exactly-once.

        Holds the dispatch lock, so no batch is in flight during the
        swap and no batch ever mixes versions; blocks until every worker
        acks the new epoch.  On any worker failing the load, the
        remaining workers are rolled back to the previous source and the
        error re-raises — the pool never serves a half-swapped state.
        """
        source = os.fspath(model_source)
        with self._lock:
            self._ensure_live()
            previous = self._model_source
            self._epoch += 1
            epoch = self._epoch
            self._model_source = source
            with _timed("pool.reload"):
                try:
                    self._broadcast_reload(source, epoch)
                except PoolError:
                    self._model_source = previous
                    self._epoch += 1
                    self._broadcast_reload(previous, self._epoch)
                    raise
            _count("pool.reloads")
            return epoch

    def _broadcast_reload(self, source: str, epoch: int) -> None:
        for worker in self._workers:
            if not worker.process.is_alive():
                # A fresh spawn loads self._model_source — already `source`.
                self._note_crash(worker)
        pending: dict[int, _Worker] = {}
        for worker in self._workers:
            try:
                worker.conn.send(("reload", epoch, source))
                pending[worker.id] = worker
            except (BrokenPipeError, OSError):
                self._note_crash(worker)
        deadline = time.monotonic() + self.config.reload_timeout_s
        failures: list[str] = []
        while pending:
            if time.monotonic() > deadline:
                raise PoolError(
                    f"reload epoch {epoch} not acked by workers "
                    f"{sorted(pending)} within {self.config.reload_timeout_s}s"
                )
            workers = list(pending.values())
            sentinels = {w.process.sentinel: w for w in workers}
            conns = {w.conn: w for w in workers}
            ready = connection.wait(list(conns) + list(sentinels), timeout=0.5)
            for item in ready:
                worker = conns.get(item)
                if worker is None:
                    continue
                try:
                    while worker.conn.poll():
                        msg = worker.conn.recv()
                        if msg[0] != "reload_ack" or msg[2] != epoch:
                            continue
                        pending.pop(worker.id, None)
                        if msg[3] is not None:
                            failures.append(
                                f"worker {worker.id}: {msg[3]['type']}: "
                                f"{msg[3]['message']}"
                            )
                except (EOFError, OSError):
                    pass
            for item in ready:
                worker = sentinels.get(item)
                if worker is None or worker.process.is_alive():
                    continue
                if worker.id in pending:
                    del pending[worker.id]
                    # The respawn loads the new source directly.
                    self._note_crash(worker)
        if failures:
            raise PoolError("reload failed: " + "; ".join(failures))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The version epoch every live worker has acked."""
        return self._epoch

    @property
    def blas_threads(self) -> int:
        """BLAS threads pinned into each worker's environment."""
        return self._blas_threads

    def stats(self) -> dict:
        """Pool-level and per-worker utilization/queue/occupancy stats."""
        uptime = (
            time.monotonic() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        scatter_win, gather_win = self._window_now()
        per_worker = []
        for worker in self._workers:
            per_worker.append(
                {
                    "worker": worker.id,
                    "pid": worker.pid,
                    "alive": worker.process.is_alive(),
                    "tasks": worker.tasks,
                    "samples": worker.samples,
                    "busy_s": round(worker.busy_s, 6),
                    "utilization": (
                        round(worker.busy_s / uptime, 6) if uptime > 0 else 0.0
                    ),
                    "crashes": worker.crashes,
                }
            )
        return {
            "workers": len(self._workers),
            "blas_threads": self._blas_threads,
            "slots": self._n_slots,
            "slots_free": len(self._free_slots),
            "slot_bytes": self.config.slot_bytes,
            "batches": self._tasks,
            "samples": self._samples,
            "crashes": self._crashes,
            "wedges": self._wedges,
            "respawns": self._respawns,
            "shm_overflow": self._overflow,
            "reload_epoch": self._epoch,
            "scatter_s_total": round(self._scatter_s, 6),
            "gather_s_total": round(self._gather_s, 6),
            "scatter_s_window60s": round(scatter_win, 6),
            "gather_s_window60s": round(gather_win, 6),
            "broken": self._broken,
            "per_worker": per_worker,
        }
