"""Resilient serving daemon: warm pipeline, micro-batching, backpressure.

``repro serve --model DIR --port P`` runs a persistent stdlib-HTTP
server around an :class:`~repro.serve.engine.InferenceEngine`.  The
design goal is not merely "batch fast" but *degrade predictably*: every
admitted request receives exactly one typed response, no matter what
the traffic, the payloads or the scoring thread do.

Request flow
------------
1. **Admission control** — ``POST /classify`` bodies are read under a
   client deadline (dribbling clients get a typed ``slow_client`` 408),
   parsed and shape-validated up front (typed ``bad_request`` 400), then
   admitted into a bounded queue.  A full queue sheds the request with a
   typed ``shed`` 429 + ``Retry-After`` instead of growing unboundedly;
   a draining daemon refuses with a typed ``draining`` 503.
2. **Micro-batching** — a scoring worker coalesces queued requests into
   adaptive batches: it waits at most ``batch_deadline_ms`` from the
   oldest queued request, caps batches at ``batch_max_size``, and groups
   by (shape, strict) so one GEMM serves the lot.  Scoring goes through
   :meth:`InferenceEngine.classify_arrays` — the same path as ``repro
   classify`` — so daemon responses are bit-identical to the batch CLI.
3. **Per-request deadlines** — each request carries a deadline (its own
   ``deadline_ms`` or the config default).  The handler thread waits at
   most that long and answers a typed ``timeout`` 504 itself; a late
   scoring result finds the request already resolved and is discarded
   (resolution is exactly-once by construction).
4. **Poison isolation** — an exception escaping a scoring batch (strict
   :class:`DegradedInputError`, a payload the validators missed, an
   injected chaos fault) triggers per-sample re-scoring: the poison
   sample alone gets its typed error response while its batch-mates are
   scored normally.
5. **Watchdog** — a supervisor thread detects a wedged scoring worker
   (in-flight batch older than ``wedge_timeout_s``), answers its
   in-flight requests, abandons the thread and starts a replacement
   under a bounded :class:`~repro.runtime.retry.RetrySpec` budget —
   without ever dropping the accept loop.  A exhausted restart budget
   drains the daemon with exit code 4.
6. **Graceful drain** — SIGTERM/SIGINT (or :meth:`ServingDaemon.drain`)
   stops admission, flushes every in-flight batch, emits a terminal
   ``serve.drained`` audit event and exits 0.

Endpoints: ``POST /classify``, ``GET /healthz`` (live/ready/draining),
``GET /metrics`` (Prometheus text exposition via :mod:`repro.obs`).
Responses are stamped with deterministic request ids
(``<run_id>/r<admission_index>``), matching the ids the telemetry
session's per-request audit uses.

Model registry integration
--------------------------
Given a :class:`~repro.registry.ModelRegistry` the daemon closes the
deploy loop (``repro serve --registry DIR``):

* **hot reload** — a version watcher polls ``registry.json``; when the
  production pointer moves it verifies + loads the new version off the
  scoring path and swaps it in *between* micro-batches.  Each batch
  captures one ``(engine, version)`` snapshot, so in-flight work drains
  on the old engine, every request is scored wholly by a single version
  and nothing is dropped.  A failed load (corrupt version dir, bad
  weights) leaves the current model serving and emits a typed
  ``registry.reload_failed`` event.
* **shadow scoring** — when a candidate is staged (``repro models
  promote --shadow``) admitted traffic is also scored on the candidate
  from a bounded queue that sheds under load (the primary path is never
  slowed), tracking per-sample score divergence |Δp|.
* **automatic rollback** — a daemon-owned
  :class:`~repro.obs.drift.DriftMonitor` watches the production scores
  against the model's committed baseline; sustained PSI/KS drift (or a
  candidate blowing the shadow-divergence budget) makes the
  :class:`~repro.registry.RollbackGuard` trip: the daemon rolls back to
  the last-known-good version (quarantining the bad one in the registry
  as ``rolled_back``) and records a ``registry.rolled_back`` audit
  event, all without dropping in-flight requests.
"""

from __future__ import annotations

import json
import math
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

import numpy as np

from .. import obs
from ..nn import workspace_total_stats
from ..obs import trace as obs_trace
from ..obs.drift import DriftMonitor
from ..obs.metrics import MetricsRegistry
from ..registry import GuardConfig, ModelRegistry, RegistryError, RollbackGuard
from ..runtime.retry import RetrySpec
from .engine import DegradedInputError, InferenceEngine, PredictionResult
from .pool import PoolBrokenError, PoolConfig, ScoringPool

__all__ = ["DaemonConfig", "ServingDaemon", "DEFAULT_RESTART_SPEC"]

#: Restart budget for wedged scoring workers: two replacements, then
#: the daemon drains with exit code 4 rather than flap forever.
DEFAULT_RESTART_SPEC = RetrySpec(
    max_attempts=3, base_delay_s=0.05, factor=2.0, jitter=0.0
)

#: Batch-size histogram buckets (requests per scored micro-batch).
_BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: Shadow score-divergence histogram buckets (per-sample |Δp|).
_DIVERGENCE_BUCKETS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0)


@dataclass(frozen=True)
class DaemonConfig:
    """Tunables of the serving daemon; defaults suit a survey alert feed.

    ``queue_depth`` is the hard admission limit — the most requests that
    may wait for a batch slot; beyond it the daemon sheds.  In-flight
    (already batched) requests do not count against it.
    ``worker_restarts`` follows :class:`~repro.runtime.retry.RetrySpec`
    semantics: ``max_attempts - 1`` worker replacements are allowed
    before the daemon gives up and drains with exit code 4.
    """

    host: str = "127.0.0.1"
    port: int = 0
    batch_max_size: int = 16
    batch_deadline_ms: float = 10.0
    queue_depth: int = 64
    request_deadline_ms: float = 2000.0
    client_body_deadline_s: float = 5.0
    max_body_bytes: int = 32 << 20
    strict: bool = False
    wedge_timeout_s: float = 5.0
    watchdog_interval_s: float = 0.1
    drain_timeout_s: float = 10.0
    run_id: str = "serve"
    worker_restarts: RetrySpec = field(default_factory=lambda: DEFAULT_RESTART_SPEC)
    #: How often the version watcher re-reads ``registry.json`` (with a
    #: registry attached); a promote becomes live within about one poll.
    reload_poll_s: float = 0.25
    #: Most shadow items (scored micro-batches) allowed to wait for the
    #: shadow worker; beyond it shadow copies are shed, never queued.
    shadow_queue_depth: int = 8
    #: Scoring worker *processes*.  0 (the default) scores in-process on
    #: the daemon's scoring thread; N >= 1 scatters each micro-batch
    #: across a :class:`~repro.serve.pool.ScoringPool` of N warm spawned
    #: workers over shared memory, with BLAS threads split N ways.
    scoring_workers: int = 0
    #: End-to-end latency histogram buckets in milliseconds (``None``
    #: keeps :data:`~repro.obs.metrics.DEFAULT_LATENCY_BUCKETS_S`).  A
    #: deployment serving a slower model than the defaults assume can
    #: widen these without code changes; /metrics exposition format is
    #: unchanged.
    latency_buckets_ms: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.batch_max_size < 1:
            raise ValueError("batch_max_size must be >= 1")
        if self.batch_deadline_ms < 0:
            raise ValueError("batch_deadline_ms must be non-negative")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.request_deadline_ms <= 0:
            raise ValueError("request_deadline_ms must be positive")
        if self.client_body_deadline_s <= 0:
            raise ValueError("client_body_deadline_s must be positive")
        if self.wedge_timeout_s <= 0:
            raise ValueError("wedge_timeout_s must be positive")
        if self.drain_timeout_s <= 0:
            raise ValueError("drain_timeout_s must be positive")
        if self.reload_poll_s <= 0:
            raise ValueError("reload_poll_s must be positive")
        if self.shadow_queue_depth < 1:
            raise ValueError("shadow_queue_depth must be >= 1")
        if self.scoring_workers < 0:
            raise ValueError("scoring_workers must be >= 0")
        if self.latency_buckets_ms is not None:
            buckets = tuple(float(b) for b in self.latency_buckets_ms)
            if not buckets:
                raise ValueError("latency_buckets_ms must not be empty")
            if any(b <= 0 for b in buckets):
                raise ValueError("latency_buckets_ms must all be positive")
            if any(b >= c for b, c in zip(buckets, buckets[1:])):
                raise ValueError("latency_buckets_ms must increase strictly")
            object.__setattr__(self, "latency_buckets_ms", buckets)


def _error_payload(request_id: str | None, kind: str, message: str) -> dict:
    """The typed error body every non-200 response carries."""
    return {
        "request_id": request_id,
        "error": {"type": kind, "message": message},
    }


class _Pending:
    """One admitted request waiting for its exactly-once resolution.

    ``resolve`` is first-writer-wins: the scoring worker, the handler's
    deadline timeout and the watchdog may all try to answer; exactly one
    of them succeeds and the others' payloads are discarded.  The
    handler thread blocks on ``event`` and sends whatever ``status`` /
    ``payload`` won.
    """

    __slots__ = (
        "index", "request_id", "pairs", "mjd", "strict",
        "enqueued", "deadline", "event", "status", "payload", "trace", "_lock",
    )

    def __init__(
        self,
        index: int,
        request_id: str,
        pairs: np.ndarray,
        mjd: np.ndarray,
        strict: bool,
        deadline_s: float,
        trace: "obs_trace.Span | None" = None,
    ) -> None:
        self.index = index
        self.request_id = request_id
        self.pairs = pairs
        self.mjd = mjd
        self.strict = strict
        #: Root span of this request's trace; None when unsampled/off.
        self.trace = trace
        self.enqueued = time.monotonic()
        self.deadline = self.enqueued + deadline_s
        self.event = threading.Event()
        self.status: int | None = None
        self.payload: dict | None = None
        self._lock = threading.Lock()

    def resolve(self, status: int, payload: dict) -> bool:
        """Record the response if unresolved; True when this call won."""
        with self._lock:
            if self.status is not None:
                return False
            self.status = status
            self.payload = payload
        self.event.set()
        return True

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.deadline

    @property
    def group_key(self) -> tuple:
        """Requests sharing this key can share one ``classify_arrays`` call."""
        return (self.pairs.shape, self.strict)


class _Batcher:
    """Bounded FIFO of pending requests with a batch-coalescing window."""

    def __init__(self, max_depth: int, batch_max: int, batch_deadline_s: float) -> None:
        self.max_depth = max_depth
        self.batch_max = batch_max
        self.batch_deadline_s = batch_deadline_s
        self._items: deque[_Pending] = deque()
        self._cond = threading.Condition()
        self._closed = False

    def submit(self, factory: Callable[[], _Pending]) -> _Pending | None:
        """Admit ``factory()`` under the depth cap; ``None`` = shed/closed.

        The factory runs under the queue lock, so admission indices are
        assigned in exactly the order requests join the queue —
        deterministic request ids fall out for free.
        """
        with self._cond:
            if self._closed or len(self._items) >= self.max_depth:
                return None
            pending = factory()
            self._items.append(pending)
            self._cond.notify()
            return pending

    def next_batch(self) -> list[_Pending] | None:
        """Block for the next micro-batch; ``None`` once closed and empty.

        Returns as soon as ``batch_max`` requests are queued or the
        *oldest* queued request has waited ``batch_deadline_s`` —
        the adaptive-latency contract: a lone request never waits more
        than one batch deadline for company.
        """
        with self._cond:
            while not self._items:
                if self._closed:
                    return None
                self._cond.wait(0.05)
            first_enqueued = self._items[0].enqueued
            while len(self._items) < self.batch_max and not self._closed:
                remaining = first_enqueued + self.batch_deadline_s - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            take = min(self.batch_max, len(self._items))
            return [self._items.popleft() for _ in range(take)]

    def waiting(self) -> int:
        return len(self._items)

    def close(self) -> None:
        """Refuse further submissions and wake the worker."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain_remaining(self) -> list[_Pending]:
        """Remove and return whatever is still queued (post-close cleanup)."""
        with self._cond:
            items = list(self._items)
            self._items.clear()
            return items


class _ScoringWorker(threading.Thread):
    """The single thread that turns queued requests into scored batches."""

    def __init__(self, daemon: "ServingDaemon", generation: int) -> None:
        super().__init__(name=f"repro-serve-scorer-{generation}", daemon=True)
        self.owner = daemon
        self.generation = generation
        #: Monotonic start of the batch currently being scored (watchdog input).
        self.batch_started: float | None = None
        self.current: list[_Pending] | None = None
        #: Set by the watchdog when this worker is declared wedged; its
        #: remaining resolves become no-ops and it must exit.
        self.abandoned = False

    def run(self) -> None:
        while not self.abandoned:
            batch = self.owner._batcher.next_batch()
            if batch is None:
                return  # drained and closed
            self.current = batch
            self.batch_started = time.monotonic()
            try:
                self._run_batch(batch)
            finally:
                self.current = None
                self.batch_started = None

    # ------------------------------------------------------------------
    def _run_batch(self, batch: list[_Pending]) -> None:
        owner = self.owner
        live: list[_Pending] = []
        for pending in batch:
            if pending.expired:
                if pending.resolve(
                    504,
                    _error_payload(
                        pending.request_id, "timeout",
                        "request deadline expired before scoring",
                    ),
                ):
                    owner.metrics.counter("daemon.timeouts").inc()
                continue
            live.append(pending)
        if not live:
            return
        owner.metrics.counter("daemon.batches").inc()
        owner.metrics.histogram(
            "daemon.batch_size", buckets=_BATCH_SIZE_BUCKETS
        ).observe(len(live))
        tracer = obs_trace.tracer()
        if tracer is not None:
            now = time.monotonic()
            lead: _Pending | None = None
            for pending in live:
                if pending.trace is None:
                    continue
                if lead is None:
                    lead = pending
                tracer.record(
                    "admission.queue_wait", now - pending.enqueued,
                    parent=pending.trace,
                )
            if lead is not None:
                # Batch-level stages attach to the first sampled request:
                # a micro-batch mixes traces, and duplicating the span
                # into every member would double-count the stage table.
                tracer.record(
                    "batch.form", now - batch[0].enqueued, parent=lead.trace,
                    batch_size=len(live), queue_depth=owner._batcher.waiting(),
                )
        groups: dict[tuple, list[_Pending]] = {}
        for pending in live:
            groups.setdefault(pending.group_key, []).append(pending)
        for group in groups.values():
            self._score(group, allow_split=True)

    def _score(self, group: list[_Pending], allow_split: bool) -> None:
        """Score one shape-uniform group; isolate poison members on failure."""
        owner = self.owner
        try:
            results = owner._score_group(group)
        except Exception as exc:  # noqa: BLE001 - every failure gets a typed reply
            if allow_split and len(group) > 1:
                owner.metrics.counter("daemon.poison_batches").inc()
                owner._emit(
                    "serve.poison_batch",
                    level="warning",
                    message=f"batch of {len(group)} failed ({exc}); re-scoring "
                    "each sample alone",
                    n_samples=len(group),
                    error_type=type(exc).__name__,
                )
                for pending in group:
                    self._score([pending], allow_split=False)
                return
            pending = group[0]
            status, payload = owner._failure_response(pending, exc)
            if pending.resolve(status, payload):
                owner.metrics.counter("daemon.request_errors").inc()
            return
        for pending, result in zip(group, results):
            payload = {"request_id": pending.request_id, "result": result.to_dict()}
            if pending.resolve(200, payload):
                owner.metrics.counter("daemon.responses").inc()
                owner._latency_hist.observe(time.monotonic() - pending.enqueued)
            else:
                # The handler already answered 504; the score is discarded.
                owner.metrics.counter("daemon.late_results").inc()


class _Watchdog(threading.Thread):
    """Detects a wedged scoring worker and swaps in a replacement."""

    def __init__(self, daemon: "ServingDaemon") -> None:
        super().__init__(name="repro-serve-watchdog", daemon=True)
        self.owner = daemon
        self.stop_event = threading.Event()

    def run(self) -> None:
        owner = self.owner
        interval = owner.config.watchdog_interval_s
        while not self.stop_event.wait(interval):
            worker = owner._worker
            started = worker.batch_started
            if started is None:
                continue
            if time.monotonic() - started > owner.config.wedge_timeout_s:
                owner._replace_wedged_worker(worker)


class _RegistryWatcher(threading.Thread):
    """Polls ``registry.json`` and drives hot reload / shadow sync.

    All actual state changes happen in the daemon's ``_sync_with_registry``
    under its reload lock; this thread only provides the cadence.
    """

    def __init__(self, daemon: "ServingDaemon") -> None:
        super().__init__(name="repro-serve-registry", daemon=True)
        self.owner = daemon
        self.stop_event = threading.Event()

    def run(self) -> None:
        while not self.stop_event.wait(self.owner.config.reload_poll_s):
            self.owner._sync_with_registry()


class _ShadowWorker(threading.Thread):
    """Scores shadow copies of admitted traffic on the candidate engine.

    Feeds from the daemon's bounded shadow queue; the primary scoring
    worker *offers* batches non-blockingly (a full queue sheds the copy)
    so shadow scoring can never slow the production path.
    """

    def __init__(self, daemon: "ServingDaemon") -> None:
        super().__init__(name="repro-serve-shadow", daemon=True)
        self.owner = daemon
        self.stop_event = threading.Event()

    def run(self) -> None:
        owner = self.owner
        while True:
            with owner._shadow_cond:
                while not owner._shadow_queue and not self.stop_event.is_set():
                    owner._shadow_cond.wait(0.1)
                if self.stop_event.is_set() and not owner._shadow_queue:
                    return
                item = owner._shadow_queue.popleft()
                engine = owner._shadow_engine
                version = owner._shadow_version
            if engine is not None and version is not None:
                owner._score_shadow(engine, version, item)


class _DaemonServer(ThreadingHTTPServer):
    # block_on_close: server_close() joins live handler threads, so every
    # admitted request's response hits the wire before the process exits.
    # The per-connection timeout on _Handler bounds how long an idle
    # keep-alive connection can delay that join.
    daemon_threads = True
    block_on_close = True
    #: Admission control must happen at the HTTP layer (typed 429s), not
    #: in the kernel: the default listen backlog of 5 silently resets
    #: connections under burst load before the daemon can answer them.
    request_queue_size = 128
    #: Back-reference installed by ServingDaemon.start().
    owner: "ServingDaemon"


class _SlowClientError(Exception):
    """Body did not arrive within the client deadline."""


class _BodyError(Exception):
    def __init__(self, status: int, kind: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.kind = kind


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"
    #: Socket timeout for the request line / idle keep-alive gaps, so a
    #: silent connection cannot pin its handler thread (and the
    #: block_on_close join) forever.
    timeout = 10.0

    # Telemetry owns request logging; the default stderr chatter would
    # swamp the drain test's pipe.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    def _send_json(self, status: int, payload: dict,
                   headers: dict[str, str] | None = None) -> int:
        body = json.dumps(payload, separators=(",", ":")).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; the response is typed either way
        return len(body)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        owner = self.server.owner
        started = time.monotonic()
        if self.path == "/healthz":
            status, payload = owner.health()
            n_bytes = self._send_json(status, payload)
        elif self.path == "/metrics":
            text = owner.prometheus().encode()
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(text)))
            self.end_headers()
            self.wfile.write(text)
            status, n_bytes = 200, len(text)
        else:
            status = 404
            n_bytes = self._send_json(
                404, _error_payload(None, "not_found", f"no route {self.path}")
            )
        owner._note_access(
            "GET", self.path, status, n_bytes, time.monotonic() - started
        )

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        owner = self.server.owner
        started = time.monotonic()
        if self.path != "/classify":
            n_bytes = self._send_json(
                404, _error_payload(None, "not_found", f"no route {self.path}")
            )
            owner._note_access(
                "POST", self.path, 404, n_bytes, time.monotonic() - started
            )
            return
        try:
            raw = self._read_body()
        except _SlowClientError:
            owner.metrics.counter("daemon.slow_clients").inc()
            self.close_connection = True
            n_bytes = self._send_json(
                408,
                _error_payload(
                    None, "slow_client",
                    f"request body did not arrive within "
                    f"{owner.config.client_body_deadline_s}s",
                ),
            )
            owner._note_access(
                "POST", self.path, 408, n_bytes, time.monotonic() - started
            )
            return
        except _BodyError as exc:
            owner.metrics.counter("daemon.bad_requests").inc()
            n_bytes = self._send_json(
                exc.status, _error_payload(None, exc.kind, str(exc))
            )
            owner._note_access(
                "POST", self.path, exc.status, n_bytes, time.monotonic() - started
            )
            return
        except (ConnectionError, TimeoutError, OSError):
            self.close_connection = True
            return  # client vanished mid-body; nothing was admitted
        read_s = time.monotonic() - started
        status, payload, headers = owner.handle_classify(raw, read_s=read_s)
        n_bytes = self._send_json(status, payload, headers)
        if status >= 400:
            # Successful classifies already leave a full audit trail
            # (request id in the payload, spans when traced); the access
            # log covers what that trail misses — refusals and errors.
            owner._note_access(
                "POST", self.path, status, n_bytes,
                time.monotonic() - started,
                request_id=payload.get("request_id"),
            )

    def _read_body(self) -> bytes:
        """Read the full body under the daemon's client deadline.

        Chunked reads bound a *dribbling* client (each chunk lands fast
        but the body takes forever); the socket timeout bounds a fully
        stalled one.  Either way the handler thread is free again within
        ``client_body_deadline_s`` + one socket timeout.
        """
        owner = self.server.owner
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            raise _BodyError(411, "length_required", "Content-Length is required")
        try:
            length = int(raw_length)
        except ValueError:
            raise _BodyError(400, "bad_request", f"bad Content-Length {raw_length!r}")
        if length < 0:
            raise _BodyError(400, "bad_request", "negative Content-Length")
        if length > owner.config.max_body_bytes:
            raise _BodyError(
                413, "too_large",
                f"body of {length} bytes exceeds the "
                f"{owner.config.max_body_bytes}-byte cap",
            )
        deadline = time.monotonic() + owner.config.client_body_deadline_s
        chunks: list[bytes] = []
        remaining = length
        while remaining > 0:
            time_left = deadline - time.monotonic()
            if time_left <= 0:
                raise _SlowClientError
            # read1 = at most one underlying recv, so a dribbling client
            # cannot pin us inside a single blocking read past the
            # deadline; the socket timeout bounds a fully stalled one.
            self.connection.settimeout(time_left)
            try:
                data = self.rfile.read1(min(remaining, 65536))
            except (TimeoutError, OSError):
                raise _SlowClientError
            if not data:
                raise _BodyError(
                    400, "bad_request", "client closed the connection mid-body"
                )
            chunks.append(data)
            remaining -= len(data)
        # Restore the base timeout: the dwindling per-read timeout must
        # not bound the response write or the next keep-alive request.
        self.connection.settimeout(self.timeout)
        return b"".join(chunks)


class ServingDaemon:
    """The persistent server wrapping one warm :class:`InferenceEngine`.

    Lifecycle::

        daemon = ServingDaemon(engine, DaemonConfig(port=8350))
        daemon.start()                  # binds, spawns worker/watchdog/accept
        daemon.install_signal_handlers()  # SIGTERM/SIGINT -> graceful drain
        exit_code = daemon.wait()       # blocks until drained; 0 or 4

    Tests drive it in-process: ``start()``, talk HTTP to ``daemon.port``,
    then ``drain()``.  ``fault_hook(batch_index, n_samples)`` is the
    chaos seam — the deterministic injectors in :mod:`repro.runtime.faults`
    (:class:`FailBatch`, :class:`WedgeBatch`) plug in here.

    With ``registry`` set the daemon serves the registry's *production*
    version (pass ``engine=None`` to have it loaded here), hot-reloads
    on promote, shadow-scores the candidate and auto-rolls-back per
    ``guard`` (a :class:`~repro.registry.GuardConfig`).  ``reload_hook
    (engine, version)`` runs after every registry load — the seam the
    chaos suite uses to poison a specific version's scores
    (:class:`~repro.runtime.faults.ShiftScores`); ``engine_kwargs`` are
    forwarded to :meth:`InferenceEngine.from_directory` on every reload
    so precision/strictness survive a swap.
    """

    def __init__(
        self,
        engine: InferenceEngine | None = None,
        config: DaemonConfig | None = None,
        fault_hook: Callable[[int, int], None] | None = None,
        registry: ModelRegistry | None = None,
        guard: GuardConfig | None = None,
        reload_hook: Callable[[InferenceEngine, str], None] | None = None,
        engine_kwargs: dict | None = None,
        pool: ScoringPool | None = None,
    ) -> None:
        self.config = config or DaemonConfig()
        self.fault_hook = fault_hook
        self.registry = registry
        self.reload_hook = reload_hook
        self._engine_kwargs = dict(engine_kwargs or {})
        #: Multi-process scoring pool; built in start() when
        #: ``config.scoring_workers > 0`` (or injected here by tests).
        self._pool = pool
        self._pool_broken_noted = False
        session = obs.active()
        self.metrics: MetricsRegistry = (
            session.metrics if session is not None else MetricsRegistry()
        )
        self.run_id = session.run_id if session is not None else self.config.run_id
        # End-to-end latency histogram, created once so configured
        # buckets (ms -> s) never race the lazy default-bucket creation.
        if self.config.latency_buckets_ms is not None:
            self._latency_hist = self.metrics.histogram(
                "daemon.latency_s",
                buckets=tuple(b / 1000.0 for b in self.config.latency_buckets_ms),
            )
        else:
            self._latency_hist = self.metrics.histogram("daemon.latency_s")
        # Registry / hot-reload state.  _engine_lock makes the
        # (engine, version, monitor) triple a consistent snapshot for the
        # scoring worker; _reload_lock serialises swaps (exactly-once).
        self._engine_lock = threading.Lock()
        self._reload_lock = threading.Lock()
        self._engine_version: str | None = None
        self._last_good: tuple[InferenceEngine, str] | None = None
        self._failed_production: str | None = None
        self._failed_candidate: str | None = None
        self._guard: RollbackGuard | None = (
            RollbackGuard(guard) if registry is not None else None
        )
        self._prod_monitor: DriftMonitor | None = None
        self._rollback_lock = threading.Lock()
        self._rollback_pending = False
        self._registry_watcher: _RegistryWatcher | None = None
        # Shadow scoring state (candidate engine + bounded queue).
        self._shadow_cond = threading.Condition()
        self._shadow_engine: InferenceEngine | None = None
        self._shadow_version: str | None = None
        self._shadow_queue: deque[tuple[np.ndarray, np.ndarray, list[float]]] = deque()
        self._shadow_worker: _ShadowWorker | None = None
        if engine is None:
            if registry is None:
                raise ValueError("ServingDaemon needs an engine or a registry")
            version = registry.production()
            if version is None:
                raise RegistryError(
                    "registry has no production version; "
                    "`repro models promote` one first"
                )
            engine = self._load_version(version)
            self._engine_version = version
        elif registry is not None:
            self._engine_version = registry.production()
        self.engine = engine
        self._prod_monitor = self._make_monitor(engine)
        self._batcher = _Batcher(
            self.config.queue_depth,
            self.config.batch_max_size,
            self.config.batch_deadline_ms / 1000.0,
        )
        self._admitted = 0
        self._batch_counter = 0
        self._batch_lock = threading.Lock()
        #: EWMA of the scoring worker's drain rate in requests/s, fed by
        #: _note_drained() after every scored group; None until the first
        #: batch completes.  Sizes the 429 Retry-After header.
        self._drain_rate: float | None = None
        self._drain_rate_lock = threading.Lock()
        self._restart_lock = threading.Lock()
        self._restart_delays = self.config.worker_restarts.delays()
        self._worker_generation = 0
        self._draining = False
        self._drain_lock = threading.Lock()
        self._done = threading.Event()
        self._exit_code = 0
        self._server: _DaemonServer | None = None
        self._serve_thread: threading.Thread | None = None
        self._worker: _ScoringWorker | None = None
        self._watchdog: _Watchdog | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("daemon not started")
        return self._server.server_address[1]

    def start(self) -> None:
        """Bind the port and spawn the worker, watchdog and accept threads."""
        if self._server is not None:
            raise RuntimeError("daemon already started")
        # Pin eval mode before any traffic: predict() must not toggle
        # train/eval while handler threads are alive.
        self.engine.pipeline.cnn.eval()
        self.engine.pipeline.classifier.eval()
        self._start_pool()
        self._server = _DaemonServer(
            (self.config.host, self.config.port), _Handler
        )
        self._server.owner = self
        self._worker = _ScoringWorker(self, self._worker_generation)
        self._worker.start()
        self._watchdog = _Watchdog(self)
        self._watchdog.start()
        self._serve_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-accept",
            daemon=True,
        )
        self._serve_thread.start()
        if self.registry is not None:
            # Pick up a candidate staged before boot, then poll.
            self._sync_with_registry()
            self._registry_watcher = _RegistryWatcher(self)
            self._registry_watcher.start()
        self._emit(
            "serve.listening",
            message=f"serving on {self.config.host}:{self.port}",
            host=self.config.host,
            port=self.port,
            queue_depth=self.config.queue_depth,
            batch_max_size=self.config.batch_max_size,
            model_version=self._engine_version,
            scoring_workers=(
                self._pool.config.workers if self._pool is not None else 0
            ),
        )

    def _start_pool(self) -> None:
        """Spawn the scoring pool (if configured) before traffic arrives.

        Registry mode hands workers the production version's directory —
        the same bytes every future :meth:`_swap_engine` hands them via
        ``pool.reload`` — while engine mode persists the live engine to
        a pool-owned temp directory.  A pool that cannot boot fails
        ``start()`` outright: better a loud refusal than a daemon that
        silently serves single-process at N-times the advertised
        latency.  An injected (test-seam) pool is started here too when
        it isn't already; its own worker count is authoritative — it is
        what /healthz and the ``pool.workers`` gauge report, regardless
        of ``config.scoring_workers``.
        """
        if self._pool is None:
            if self.config.scoring_workers < 1:
                return
            kwargs: dict = {
                # The pool detects its own wedged *processes* at half
                # the daemon's wedge horizon, so it usually terminates,
                # respawns and re-scores before the thread watchdog
                # fires; the watchdog stays the bounded backstop for the
                # scoring *thread*, and drain can never wait forever.
                "config": PoolConfig(
                    workers=self.config.scoring_workers,
                    task_timeout_s=max(0.05, self.config.wedge_timeout_s / 2.0),
                ),
                "engine_kwargs": self._engine_kwargs,
            }
            if self.registry is not None and self._engine_version is not None:
                kwargs["model_source"] = self.registry.path(self._engine_version)
            else:
                kwargs["engine"] = self.engine
            self._pool = ScoringPool(**kwargs)
        if not self._pool.started:
            self._pool.start()
        self.metrics.gauge("pool.workers").set(self._pool.config.workers)

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain (main thread only)."""

        def _on_signal(signum: int, frame: object) -> None:
            threading.Thread(
                target=self.drain,
                kwargs={"reason": signal.Signals(signum).name},
                name="repro-serve-drain",
                daemon=True,
            ).start()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)

    def wait(self) -> int:
        """Block until the daemon has drained; returns the exit code."""
        self._done.wait()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        if self._server is not None:
            self._server.server_close()
        return self._exit_code

    def drain(self, reason: str = "requested", exit_code: int | None = None) -> int:
        """Stop admitting, flush in-flight work, stop the server; idempotent.

        Returns the daemon exit code (0 for a clean drain, 4 when the
        worker-restart budget forced the drain).  Safe to call from any
        thread except the accept thread.
        """
        with self._drain_lock:
            if self._draining:
                self._done.wait()
                return self._exit_code
            self._draining = True
        if exit_code is not None:
            self._exit_code = exit_code
        self.metrics.gauge("daemon.draining").set(1)
        self._emit("serve.draining", message=f"drain started ({reason})", reason=reason)
        if self._registry_watcher is not None:
            self._registry_watcher.stop_event.set()

        # Flush: the worker keeps consuming until the queue is empty and
        # nothing is mid-score, bounded by the drain timeout.
        deadline = time.monotonic() + self.config.drain_timeout_s
        while time.monotonic() < deadline:
            worker = self._worker
            if self._batcher.waiting() == 0 and (
                worker is None or worker.abandoned or worker.current is None
            ):
                break
            time.sleep(0.02)
        self._batcher.close()
        for pending in self._batcher.drain_remaining():
            # Only reachable when the flush timed out (e.g. a dead worker):
            # stragglers still get a typed response rather than silence.
            if pending.resolve(
                503,
                _error_payload(
                    pending.request_id, "draining",
                    "daemon drained before this request could be scored",
                ),
            ):
                self.metrics.counter("daemon.drain_refused").inc()
        if self._watchdog is not None:
            self._watchdog.stop_event.set()
        if self._shadow_worker is not None:
            self._shadow_worker.stop_event.set()
            with self._shadow_cond:
                self._shadow_queue.clear()
                self._shadow_cond.notify_all()
            self._shadow_worker.join(timeout=2.0)
        worker = self._worker
        if worker is not None and not worker.abandoned:
            worker.join(timeout=2.0)
        if self._pool is not None:
            self._pool.close()
        if self._server is not None:
            self._server.shutdown()
        self._emit_terminal(reason)
        self._done.set()
        return self._exit_code

    # ------------------------------------------------------------------
    # Request handling (called from handler threads)
    # ------------------------------------------------------------------
    def handle_classify(
        self, raw: bytes, read_s: float = 0.0
    ) -> tuple[int, dict, dict[str, str] | None]:
        """Admit, wait and answer one ``/classify`` request body.

        ``read_s`` is how long the handler spent reading the body off
        the socket; a sampled trace's root span is backdated by it and
        gets an ``http.read`` child, so the waterfall starts at the
        first byte rather than at admission.
        """
        if self._draining:
            return (
                503,
                _error_payload(None, "draining", "daemon is draining; retry elsewhere"),
                None,
            )
        try:
            pairs, mjd, strict, deadline_s = self._parse_sample(raw)
        except ValueError as exc:
            self.metrics.counter("daemon.bad_requests").inc()
            return 400, _error_payload(None, "bad_request", str(exc)), None

        tracer = obs_trace.tracer()

        def _admit() -> _Pending:
            index = self._admitted
            self._admitted += 1
            request_id = f"{self.run_id}/r{index}"
            trace = None
            if isinstance(tracer, obs_trace.Tracer):
                trace = tracer.start_trace(
                    request_id,
                    t_offset_s=read_s,
                    n_visits=int(mjd.shape[0]),
                    deadline_ms=round(deadline_s * 1000.0, 3),
                )
                if trace is not None and read_s > 0.0:
                    tracer.record("http.read", read_s, parent=trace)
            return _Pending(
                index,
                request_id,
                pairs,
                mjd,
                strict,
                deadline_s,
                trace=trace,
            )

        pending = self._batcher.submit(_admit)
        if pending is None:
            if self._draining:
                return (
                    503,
                    _error_payload(None, "draining", "daemon is draining"),
                    None,
                )
            self.metrics.counter("daemon.shed").inc()
            return (
                429,
                _error_payload(
                    None, "shed",
                    f"admission queue full at {self.config.queue_depth}; retry later",
                ),
                {"Retry-After": self._retry_after()},
            )
        self.metrics.counter("daemon.admitted").inc()
        self.metrics.gauge("daemon.queue_depth").set(self._batcher.waiting())

        remaining = pending.deadline - time.monotonic()
        if not pending.event.wait(max(remaining, 0.0)):
            if pending.resolve(
                504,
                _error_payload(
                    pending.request_id, "timeout",
                    f"no result within the {deadline_s * 1000:.0f}ms deadline",
                ),
            ):
                self.metrics.counter("daemon.timeouts").inc()
        assert pending.status is not None and pending.payload is not None
        if pending.trace is not None:
            pending.trace.end(status=pending.status)
        return pending.status, pending.payload, None

    def _parse_sample(
        self, raw: bytes
    ) -> tuple[np.ndarray, np.ndarray, bool, float]:
        """Decode and shape-validate one request body; ValueError = 400."""
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"body is not valid JSON: {exc}")
        if not isinstance(doc, dict):
            raise ValueError("body must be a JSON object")
        missing = [key for key in ("pairs", "mjd") if key not in doc]
        if missing:
            raise ValueError(f"body is missing required field(s): {missing}")
        try:
            pairs = np.asarray(doc["pairs"], dtype=np.float32)
            mjd = np.asarray(doc["mjd"], dtype=np.float32)
        except (ValueError, TypeError) as exc:
            raise ValueError(f"'pairs'/'mjd' are not numeric arrays: {exc}")
        if pairs.ndim != 4:
            raise ValueError(
                f"'pairs' must be one (V, 2, S, S) sample, got shape {pairs.shape}"
            )
        if mjd.ndim != 1:
            raise ValueError(f"'mjd' must be a (V,) vector, got shape {mjd.shape}")
        strict = bool(doc.get("strict", self.config.strict))
        deadline_ms = doc.get("deadline_ms", self.config.request_deadline_ms)
        try:
            deadline_ms = float(deadline_ms)
        except (TypeError, ValueError):
            raise ValueError(f"'deadline_ms' must be a number, got {deadline_ms!r}")
        if not 1.0 <= deadline_ms <= 600_000.0:
            raise ValueError("'deadline_ms' must be in [1, 600000]")
        # Same up-front contract as classify_arrays — shape problems are
        # the *request's* fault and must never reach a shared batch.
        checked_pairs, checked_mjd = self.engine._validate_batch(
            pairs[None], mjd[None]
        )
        return checked_pairs[0], checked_mjd[0], strict, deadline_ms / 1000.0

    # ------------------------------------------------------------------
    # Scoring (called from the worker thread)
    # ------------------------------------------------------------------
    def _next_batch_index(self) -> int:
        with self._batch_lock:
            index = self._batch_counter
            self._batch_counter += 1
            return index

    def _score_group(self, group: list[_Pending]) -> list[PredictionResult]:
        batch_index = self._next_batch_index()
        if self.fault_hook is not None:
            self.fault_hook(batch_index, len(group))
        pairs = np.stack([pending.pairs for pending in group])
        mjd = np.stack([pending.mjd for pending in group])
        started = time.monotonic()
        # The scoring stage attaches to the first traced member's trace
        # (a shape group can mix sampled and unsampled requests); the
        # ambient push makes every nested stage — engine spans in
        # process, pool scatter/gather and worker.compute across the
        # pipe — parent under it without threading spans through calls.
        trace_parent = next(
            (pending.trace for pending in group if pending.trace is not None),
            None,
        )
        with obs_trace.span(
            "daemon.score", parent=trace_parent,
            batch_index=batch_index, n_samples=len(group),
        ):
            if self._pool is not None:
                # Pool mode holds _engine_lock across the dispatch: the pool
                # is shared mutable state (unlike an engine snapshot), so a
                # hot reload must not land between reading the version label
                # and the workers scoring — _swap_engine calls pool.reload()
                # under this same lock, which both serialises the swap
                # against in-flight batches and keeps the (scores, version)
                # pair consistent.
                lock_from = time.monotonic()
                with self._engine_lock:
                    obs_trace.record(
                        "engine.lock_wait", time.monotonic() - lock_from
                    )
                    version = self._engine_version
                    monitor = self._prod_monitor
                    try:
                        results = self._pool.classify_arrays(
                            pairs, mjd,
                            strict=group[0].strict, start_index=group[0].index,
                        )
                    except PoolBrokenError:
                        self._note_pool_broken()
                        raise
            else:
                # One consistent (engine, version, monitor) snapshot per
                # batch: a hot reload that lands mid-score only affects the
                # *next* batch, so every request is scored wholly by a
                # single version and the outgoing engine drains its
                # in-flight work before it is dropped.
                lock_from = time.monotonic()
                with self._engine_lock:
                    obs_trace.record(
                        "engine.lock_wait", time.monotonic() - lock_from
                    )
                    engine = self.engine
                    version = self._engine_version
                    monitor = self._prod_monitor
                results = engine.classify_arrays(
                    pairs, mjd, strict=group[0].strict, start_index=group[0].index
                )
        self._note_drained(len(group), time.monotonic() - started)
        if version is not None:
            self.metrics.counter(f"daemon.served.{version}").inc(len(results))
        if monitor is not None and self._guard is not None:
            self._observe_drift(monitor, version, results)
        self._offer_shadow(pairs, mjd, results)
        return results

    #: EWMA weight of the newest batch's drain-rate observation.
    _DRAIN_RATE_ALPHA = 0.3

    def _note_drained(self, n_requests: int, elapsed_s: float) -> None:
        """Fold one scored group into the drain-rate EWMA (requests/s)."""
        if n_requests <= 0:
            return
        rate = n_requests / max(elapsed_s, 1e-6)
        with self._drain_rate_lock:
            if self._drain_rate is None:
                self._drain_rate = rate
            else:
                self._drain_rate += self._DRAIN_RATE_ALPHA * (rate - self._drain_rate)
            self.metrics.gauge("daemon.drain_rate_rps").set(round(self._drain_rate, 3))

    def _retry_after(self) -> str:
        """Seconds a shed client should back off, from the observed drain rate.

        Queue depth divided by the drain-rate EWMA, rounded up and
        clamped to [1, 30] — a full queue behind a slow model tells
        bursty clients to stay away proportionally longer instead of
        hammering back after the old hardcoded 1 second.  Before any
        batch has been scored the conservative floor of 1s applies.
        """
        with self._drain_rate_lock:
            rate = self._drain_rate
        if rate is None or rate <= 0.0:
            return "1"
        backlog = max(self._batcher.waiting(), 1)
        return str(max(1, min(30, math.ceil(backlog / rate))))

    def _failure_response(
        self, pending: _Pending, exc: Exception
    ) -> tuple[int, dict]:
        """Map a single-sample scoring failure to its typed response."""
        if isinstance(exc, DegradedInputError):
            return 422, _error_payload(pending.request_id, "degraded", str(exc))
        if isinstance(exc, (ValueError, KeyError, TypeError)):
            return 400, _error_payload(pending.request_id, "bad_request", str(exc))
        self._emit(
            "serve.request_error",
            level="error",
            message=f"request {pending.request_id} failed: {exc}",
            request_id=pending.request_id,
            error_type=type(exc).__name__,
        )
        return 500, _error_payload(
            pending.request_id, "internal", f"{type(exc).__name__}: {exc}"
        )

    # ------------------------------------------------------------------
    # Model registry: hot reload, shadow scoring, automatic rollback
    # ------------------------------------------------------------------
    def _load_version(self, version: str) -> InferenceEngine:
        """Verify + load one registry version into a warm engine."""
        assert self.registry is not None
        self.registry.verify(version)
        engine = InferenceEngine.from_directory(
            self.registry.path(version), **self._engine_kwargs
        )
        engine.pipeline.cnn.eval()
        engine.pipeline.classifier.eval()
        if self.reload_hook is not None:
            self.reload_hook(engine, version)
        return engine

    def _make_monitor(self, engine: InferenceEngine) -> DriftMonitor | None:
        """Fresh production drift monitor for a newly swapped engine.

        Daemon-owned (independent of the engine's obs-session monitor)
        and recreated at every swap, so its window only ever holds
        scores produced by the *current* version — the rollback guard
        never blames a new model for its predecessor's traffic.
        """
        if self._guard is None or engine.drift_baseline is None:
            return None
        cfg = self._guard.config
        return DriftMonitor(
            engine.drift_baseline,
            window=cfg.drift_window,
            min_samples=cfg.drift_min_samples,
            psi_threshold=cfg.psi_threshold,
            ks_threshold=cfg.ks_threshold,
        )

    def _sync_with_registry(self) -> None:
        """One watcher tick: reconcile with the registry state file."""
        assert self.registry is not None
        try:
            state = self.registry.state()
        except Exception as exc:  # noqa: BLE001 - keep serving on a bad state file
            self._note_reload_failure(None, "state", exc)
            return
        production = state.get("production")
        if (
            production is not None
            and production != self._engine_version
            and production != self._failed_production
        ):
            self._reload_production(production)
        candidate = state.get("candidate")
        if candidate != self._shadow_version and candidate != self._failed_candidate:
            self._sync_shadow(candidate)

    def _reload_production(self, version: str) -> None:
        """Hot-swap to a newly promoted version; exactly-once per version."""
        with self._reload_lock:
            if version == self._engine_version:
                return  # another path already swapped it in
            try:
                engine = self._load_version(version)
            except Exception as exc:  # noqa: BLE001 - typed event, keep serving
                # Remember the bad version so one broken promote logs one
                # typed failure instead of one per poll tick.
                self._failed_production = version
                self._note_reload_failure(version, "production", exc)
                return
            self._failed_production = None
            self._swap_engine(engine, version)

    def _swap_engine(self, engine: InferenceEngine, version: str,
                     remember_previous: bool = True) -> bool:
        """Publish a new production engine (callers hold _reload_lock).

        With a scoring pool attached the swap happens *inside* the
        engine lock the scoring path holds across each pool dispatch:
        ``pool.reload`` therefore waits for the in-flight batch, swaps
        every worker exactly once, and the next batch reads the new
        version label with the new workers — no batch ever mixes
        versions, no request is dropped.  A failed pool reload (the
        pool rolls its workers back internally) aborts the publish and
        leaves the previous version serving; returns False in that
        case.
        """
        with self._engine_lock:
            if self._pool is not None and self.registry is not None:
                try:
                    self._pool.reload(self.registry.path(version))
                except Exception as exc:  # noqa: BLE001 - keep serving previous
                    self._note_reload_failure(version, "pool", exc)
                    return False
            previous, previous_version = self.engine, self._engine_version
            self.engine = engine
            self._engine_version = version
            self._prod_monitor = self._make_monitor(engine)
            if self._guard is not None:
                self._guard.reset_drift()
            if remember_previous and previous_version is not None:
                self._last_good = (previous, previous_version)
            else:
                self._last_good = None
        self.metrics.counter("daemon.reloads").inc()
        self._emit(
            "registry.reloaded",
            message=f"now serving {version} (was {previous_version})",
            version=version,
            previous=previous_version,
        )
        return True

    def _note_reload_failure(self, version: str | None, role: str,
                             exc: Exception) -> None:
        self.metrics.counter("daemon.reload_failures").inc()
        self._emit(
            "registry.reload_failed",
            level="error",
            message=f"failed to load {role} version {version}: {exc}",
            version=version,
            role=role,
            error_type=type(exc).__name__,
        )

    def _observe_drift(self, monitor: DriftMonitor, version: str | None,
                       results: list[PredictionResult]) -> None:
        """Feed one scored batch to the production monitor; maybe roll back."""
        report = monitor.observe(
            [result.probability for result in results],
            [result.flux_feature for result in results],
        )
        assert self._guard is not None
        if self._guard.note_drift(report.flagged):
            self._request_rollback(
                f"sustained drift on {version}: {'; '.join(report.reasons)}"
            )

    def _request_rollback(self, reason: str) -> None:
        """Kick off at most one asynchronous rollback.

        Runs on its own thread so the scoring worker never blocks on a
        model load — traffic keeps flowing (on the bad version, briefly)
        while the last-known-good engine is brought back.
        """
        with self._rollback_lock:
            if self._rollback_pending or self.registry is None:
                return
            self._rollback_pending = True
        threading.Thread(
            target=self._auto_rollback,
            args=(self._engine_version, reason),
            name="repro-serve-rollback",
            daemon=True,
        ).start()

    def _auto_rollback(self, bad_version: str | None, reason: str) -> None:
        assert self.registry is not None
        try:
            with self._reload_lock:
                if bad_version is None or self._engine_version != bad_version:
                    return  # already swapped away from the flagged version
                try:
                    quarantined, restored = self.registry.rollback(
                        reason=reason, by=f"daemon:{self.run_id}"
                    )
                except RegistryError as exc:
                    self._emit(
                        "registry.rollback_failed",
                        level="error",
                        message=f"cannot roll back {bad_version}: {exc}",
                        version=bad_version,
                    )
                    return
                engine = None
                if self._last_good is not None and self._last_good[1] == restored:
                    engine = self._last_good[0]  # still warm from the swap
                if engine is None:
                    try:
                        engine = self._load_version(restored)
                    except Exception as exc:  # noqa: BLE001
                        self._note_reload_failure(restored, "rollback", exc)
                        return
                if not self._swap_engine(engine, restored, remember_previous=False):
                    return
                self.metrics.counter("daemon.rollbacks").inc()
                self._emit(
                    "registry.rolled_back",
                    level="warning",
                    message=f"rolled back {quarantined} -> {restored}: {reason}",
                    version=quarantined,
                    restored=restored,
                    role="production",
                    reason=reason,
                )
        finally:
            with self._rollback_lock:
                self._rollback_pending = False

    # -- shadow scoring -------------------------------------------------
    def _sync_shadow(self, candidate: str | None) -> None:
        """Start/stop/replace shadow scoring to match the registry candidate."""
        with self._reload_lock:
            if candidate is None:
                self._stop_shadow("candidate cleared")
                return
            if candidate == self._shadow_version:
                return
            try:
                engine = self._load_version(candidate)
            except Exception as exc:  # noqa: BLE001
                self._failed_candidate = candidate
                self._note_reload_failure(candidate, "candidate", exc)
                return
            self._failed_candidate = None
            with self._shadow_cond:
                self._shadow_engine = engine
                self._shadow_version = candidate
                self._shadow_queue.clear()
            if self._guard is not None:
                self._guard.reset_divergence()
            if self._shadow_worker is None or not self._shadow_worker.is_alive():
                self._shadow_worker = _ShadowWorker(self)
                self._shadow_worker.start()
            self._emit(
                "registry.shadow_started",
                message=f"shadow-scoring candidate {candidate}",
                version=candidate,
            )

    def _stop_shadow(self, reason: str) -> str | None:
        """Detach the shadow engine (worker thread stays for reuse)."""
        with self._shadow_cond:
            version = self._shadow_version
            self._shadow_engine = None
            self._shadow_version = None
            self._shadow_queue.clear()
            self._shadow_cond.notify_all()
        if version is not None:
            self._emit(
                "registry.shadow_stopped",
                message=f"shadow scoring of {version} stopped: {reason}",
                version=version,
                reason=reason,
            )
        return version

    def _offer_shadow(self, pairs: np.ndarray, mjd: np.ndarray,
                      results: list[PredictionResult]) -> None:
        """Non-blocking hand-off of one scored batch to the shadow queue."""
        if self._shadow_engine is None:
            return
        primary = [result.probability for result in results]
        with self._shadow_cond:
            if self._shadow_engine is None:
                return
            if len(self._shadow_queue) >= self.config.shadow_queue_depth:
                # Shedding, not waiting: the primary path must never slow
                # down because the candidate cannot keep up.
                self.metrics.counter("daemon.shadow_shed").inc(len(results))
                return
            self._shadow_queue.append((pairs, mjd, primary))
            self._shadow_cond.notify()

    def _score_shadow(self, engine: InferenceEngine, version: str,
                      item: tuple[np.ndarray, np.ndarray, list[float]]) -> None:
        """Score one batch on the candidate; track divergence vs production."""
        pairs, mjd, primary = item
        try:
            results = engine.classify_arrays(pairs, mjd, strict=False)
        except Exception as exc:  # noqa: BLE001 - a crashing candidate is poison
            self.metrics.counter("daemon.shadow_errors").inc()
            self._quarantine_candidate(
                version, f"candidate {version} failed scoring: {exc}"
            )
            return
        divergences = [
            abs(result.probability - reference)
            for result, reference in zip(results, primary)
        ]
        self.metrics.counter("shadow.scored").inc(len(divergences))
        self.metrics.counter(f"shadow.scored.{version}").inc(len(divergences))
        histogram = self.metrics.histogram(
            "shadow.divergence", buckets=_DIVERGENCE_BUCKETS
        )
        for value in divergences:
            histogram.observe(value)
        if self._guard is None:
            return
        exceeded = self._guard.note_divergence(divergences)
        mean = self._guard.divergence_mean()
        if math.isfinite(mean):
            self.metrics.gauge("shadow.divergence_mean").set(round(mean, 6))
        if exceeded:
            self._quarantine_candidate(
                version,
                f"shadow divergence {mean:.4f} > budget "
                f"{self._guard.config.divergence_budget} over "
                f"{self._guard.divergence_count()} samples",
            )

    def _quarantine_candidate(self, version: str, reason: str) -> None:
        """Kill a bad candidate: stop shadowing, quarantine in the registry."""
        with self._reload_lock:
            if self._shadow_version != version:
                return  # already stopped or replaced
            self._stop_shadow(reason)
            if self.registry is not None:
                try:
                    self.registry.quarantine(
                        version, reason, by=f"daemon:{self.run_id}"
                    )
                except RegistryError:
                    pass  # e.g. promoted out from under us; state wins
            self.metrics.counter("daemon.quarantined").inc()
            self._emit(
                "registry.rolled_back",
                level="warning",
                message=f"candidate {version} quarantined: {reason}",
                version=version,
                restored=self._engine_version,
                role="candidate",
                reason=reason,
            )

    def shadow_stats(self) -> dict | None:
        """Shadow snapshot for /healthz; ``None`` when nothing is shadowed."""
        with self._shadow_cond:
            version = self._shadow_version
            queued = len(self._shadow_queue)
        if version is None:
            return None
        stats = {
            "version": version,
            "queued": queued,
            "scored": int(self.metrics.counter("shadow.scored").value),
            "shed": int(self.metrics.counter("daemon.shadow_shed").value),
        }
        if self._guard is not None:
            mean = self._guard.divergence_mean()
            stats["divergence_mean"] = round(mean, 6) if math.isfinite(mean) else None
        return stats

    # ------------------------------------------------------------------
    # Watchdog support
    # ------------------------------------------------------------------
    def _replace_wedged_worker(self, worker: _ScoringWorker) -> None:
        """Abandon a wedged worker, answer its batch, start a replacement."""
        with self._restart_lock:
            if self._worker is not worker or worker.abandoned:
                return
            worker.abandoned = True
            for pending in list(worker.current or []):
                if pending.resolve(
                    504,
                    _error_payload(
                        pending.request_id, "timeout",
                        "scoring worker wedged; request abandoned by the watchdog",
                    ),
                ):
                    self.metrics.counter("daemon.timeouts").inc()
            delay = next(self._restart_delays, None)
            if delay is None:
                self._emit(
                    "serve.worker_failed",
                    level="error",
                    message="scoring-worker restart budget exhausted; draining",
                    generation=worker.generation,
                )
                threading.Thread(
                    target=self.drain,
                    kwargs={"reason": "worker_failure", "exit_code": 4},
                    name="repro-serve-drain",
                    daemon=True,
                ).start()
                return
            self.metrics.counter("daemon.worker_restarts").inc()
            self._emit(
                "serve.worker_restarted",
                level="warning",
                message=f"scoring worker {worker.generation} wedged "
                f">{self.config.wedge_timeout_s}s; restarting after {delay:.3f}s",
                generation=worker.generation,
                backoff_s=round(delay, 6),
            )
            time.sleep(delay)
            self._worker_generation += 1
            self._worker = _ScoringWorker(self, self._worker_generation)
            self._worker.start()

    def _note_pool_broken(self) -> None:
        """The pool's respawn budget is spent: drain with exit code 4.

        The process-pool analogue of an exhausted scoring-thread restart
        budget — the daemon refuses to flap between broken pool states
        and instead drains loudly so an orchestrator restarts it whole.
        """
        with self._restart_lock:
            if self._pool_broken_noted:
                return
            self._pool_broken_noted = True
        self._emit(
            "serve.pool_broken",
            level="error",
            message="scoring pool respawn budget exhausted; draining",
        )
        threading.Thread(
            target=self.drain,
            kwargs={"reason": "pool_failure", "exit_code": 4},
            name="repro-serve-drain",
            daemon=True,
        ).start()

    # ------------------------------------------------------------------
    # Introspection endpoints
    # ------------------------------------------------------------------
    def health(self) -> tuple[int, dict]:
        """``/healthz`` body: liveness, queue stats and deploy state.

        ``model_version`` / ``reloads`` / ``rollbacks`` let an
        orchestrator detect a flapping deploy (version oscillating,
        rollback counter climbing) without scraping /metrics.
        """
        draining = self._draining
        payload = {
            "live": True,
            "ready": not draining and self._server is not None,
            "state": "draining" if draining else "ready",
            "queue_depth": self._batcher.waiting(),
            "admitted": self._admitted,
            "worker_generation": self._worker_generation,
            "model_version": self._engine_version,
            "precision": self.engine.precision,
            "reloads": int(self.metrics.counter("daemon.reloads").value),
            "reload_failures": int(
                self.metrics.counter("daemon.reload_failures").value
            ),
            "rollbacks": int(self.metrics.counter("daemon.rollbacks").value),
            "quarantined": int(self.metrics.counter("daemon.quarantined").value),
            "shadow": self.shadow_stats(),
            "scoring_pool": (
                self._pool.stats() if self._pool is not None else None
            ),
        }
        return (503 if draining else 200), payload

    def prometheus(self) -> str:
        """``/metrics`` body: the registry in text exposition format."""
        self.metrics.gauge("daemon.queue_depth").set(self._batcher.waiting())
        self.metrics.gauge("daemon.draining").set(1 if self._draining else 0)
        if self._pool is not None:
            self._export_pool_metrics()
        for name, value in workspace_total_stats().items():
            if name == "hit_rate":
                continue  # derivable from hits/misses; gauges stay raw counts
            self.metrics.gauge(f"nn.workspace_{name}").set(value)
        return self.metrics.to_prometheus()

    def _export_pool_metrics(self) -> None:
        """Fold the pool's stats into the registry as gauges."""
        stats = self._pool.stats()
        per_worker = stats.pop("per_worker")
        stats.pop("broken", None)
        for name, value in stats.items():
            self.metrics.gauge(f"pool.{name}").set(value)
        for entry in per_worker:
            wid = entry["worker"]
            self.metrics.gauge(f"pool.worker_utilization.{wid}").set(
                entry["utilization"]
            )
            self.metrics.gauge(f"pool.worker_samples.{wid}").set(entry["samples"])

    # ------------------------------------------------------------------
    # Telemetry plumbing
    # ------------------------------------------------------------------
    def _emit(self, event: str, level: str = "info",
              message: str | None = None, **fields: object) -> None:
        session = obs.active()
        if session is not None:
            session.emit(event, level=level, message=message, **fields)

    def _note_access(self, method: str, path: str, status: int,
                     n_bytes: int, duration_s: float,
                     request_id: str | None = None) -> None:
        """Access-log one non-classify (or failed-classify) response.

        Successful ``/classify`` responses are deliberately excluded:
        they already leave a per-request audit trail.  This covers what
        that trail misses — probes, scrapes, bad routes and refusals.
        """
        session = obs.active()
        if session is None:
            return
        fields: dict[str, object] = {
            "method": method,
            "path": path,
            "status": status,
            "bytes": n_bytes,
            "duration_ms": round(duration_s * 1000.0, 3),
        }
        if request_id is not None:
            fields["request_id"] = request_id
        session.emit("serve.access", **fields)

    def _summary(self) -> dict:
        counters = {
            name: int(self.metrics.counter(f"daemon.{name}").value)
            for name in (
                "admitted", "responses", "shed", "timeouts", "bad_requests",
                "request_errors", "poison_batches", "worker_restarts",
                "drain_refused", "reloads", "reload_failures", "rollbacks",
                "quarantined",
            )
        }
        counters["exit_code"] = self._exit_code
        return counters

    def _emit_terminal(self, reason: str) -> None:
        """The terminal audit record every drain leaves behind."""
        summary = self._summary()
        session = obs.active()
        if session is not None:
            session.emit(
                "serve.drained",
                message=f"drained ({reason}): {summary['responses']} scored, "
                f"{summary['shed']} shed, {summary['timeouts']} timed out",
                reason=reason,
                **summary,
            )
        else:
            import sys

            print(
                json.dumps({"event": "serve.drained", "reason": reason, **summary}),
                file=sys.stderr,
                flush=True,
            )
