"""Hardened inference: classify degraded samples instead of crashing.

:class:`InferenceEngine` wraps a fitted
:class:`~repro.core.pipeline.SupernovaPipeline` with the serving
contract a survey feed needs:

1. every incoming sample is validated per visit (shape, dtype, finite
   pixels, saturation) and lightly damaged visits are repaired
   (:mod:`repro.serve.validation`);
2. visits that are missing or beyond repair are *masked*: their slots in
   the 10-dimensional light-curve feature are imputed from the
   training-set per-band flux prior and excluded from date centring
   (:func:`repro.core.features.masked_features_from_arrays`);
3. every sample comes back as a :class:`PredictionResult` — probability,
   degradation flag, usable bands, confidence downgrade — and degraded
   inputs *never raise* unless ``strict`` mode asks them to.

Classification runs the two-stage path (band-wise CNN magnitudes into
the light-curve classifier): unlike the joint network, its feature seam
is exactly where missing bands can be masked and imputed.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from .. import obs
from ..core.features import masked_features_from_arrays
from ..core.pipeline import SupernovaPipeline
from ..datasets import N_BANDS, SupernovaDataset
from ..obs import trace as _trace
from ..obs.drift import DriftBaseline, DriftMonitor
from ..perf.instrument import count as _count
from ..perf.instrument import timed as _timed
from ..photometry import GRIZY, signed_log10
from .validation import InputDiagnostics, RepairConfig, diagnose_and_repair_batch

__all__ = ["FluxPrior", "PredictionResult", "DegradedInputError", "InferenceEngine"]

PRIOR_FILE = "flux_prior.json"


class DegradedInputError(ValueError):
    """Raised in strict mode when a sample could not be served clean.

    Carries the failing sample's position (``index``) and, when a
    telemetry session was active, the ``request_id`` stamped on the
    terminal ``serve.rejected`` event — so the CLI's exit-code-2 path
    can point at the exact request that died.
    """

    def __init__(self, message: str, index: int | None = None,
                 request_id: str | None = None) -> None:
        super().__init__(message)
        self.index = index
        self.request_id = request_id


@dataclass
class FluxPrior:
    """Per-band flux prior used to impute masked feature slots.

    ``flux_feature`` holds the training-set mean *signed-log* flux of
    each band — the value a masked band's flux slot takes so the
    classifier sees "a typical detection" instead of garbage.  The
    neutral prior (all zeros) means "no detection".
    """

    flux_feature: np.ndarray

    def __post_init__(self) -> None:
        self.flux_feature = np.asarray(self.flux_feature, dtype=float)
        if self.flux_feature.shape != (N_BANDS,):
            raise ValueError(f"flux_feature must be ({N_BANDS},)")
        if not np.isfinite(self.flux_feature).all():
            raise ValueError("flux prior must be finite")

    @classmethod
    def neutral(cls) -> "FluxPrior":
        """The no-information prior: signed-log flux 0 in every band."""
        return cls(np.zeros(N_BANDS))

    @classmethod
    def from_dataset(cls, dataset: SupernovaDataset) -> "FluxPrior":
        """Mean signed-log true flux per band over a training dataset."""
        feature = signed_log10(dataset.true_flux)
        means = np.zeros(N_BANDS)
        for b in range(N_BANDS):
            sel = dataset.visit_band == b
            if sel.any():
                means[b] = float(feature[sel].mean())
        return cls(means)

    def save(self, directory: str | os.PathLike) -> None:
        """Write the prior as ``flux_prior.json`` inside a model dir."""
        payload = {
            "bands": [band.name for band in GRIZY],
            "flux_feature": self.flux_feature.tolist(),
        }
        path = os.path.join(os.fspath(directory), PRIOR_FILE)
        with open(path + ".tmp", "w") as handle:
            json.dump(payload, handle, indent=2)
        os.replace(path + ".tmp", path)

    @classmethod
    def load(cls, directory: str | os.PathLike) -> "FluxPrior | None":
        """Read ``flux_prior.json`` from a model dir; ``None`` if absent."""
        path = os.path.join(os.fspath(directory), PRIOR_FILE)
        if not os.path.exists(path):
            return None
        from ..runtime import CorruptArtifactError

        try:
            with open(path) as handle:
                payload = json.load(handle)
            return cls(np.asarray(payload["flux_feature"], dtype=float))
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise CorruptArtifactError(path, f"unreadable flux prior: {exc}") from exc


@dataclass
class PredictionResult:
    """One served sample: probability plus how much to trust it.

    Attributes
    ----------
    index:
        Sample position in the request batch.
    probability:
        P(SNIa) from the classifier over the (possibly imputed) features.
    degraded:
        True when any used visit was repaired or rejected.
    usable_bands:
        Names of bands with at least one usable visit among the epochs
        served; empty means the score is pure prior.
    confidence:
        1.0 for a pristine sample, scaled down by the fraction of visits
        masked and the damage repaired in the kept ones (see
        :meth:`InferenceEngine._confidence`); 0.0 when everything was
        masked.
    diagnostics:
        Per-visit findings for every non-clean visit.
    flux_feature:
        Mean signed-log CNN flux over the usable visits (NaN when every
        visit was masked) — the input-side statistic the drift monitor
        tracks against the training baseline.
    error:
        ``None`` for a scored sample.  When serving machinery failed
        outright (a scoring exception contained by
        :meth:`InferenceEngine.stream` or the daemon's poison-batch
        isolation), the ``"ExcType: message"`` string — the probability
        is then the 0.5 no-information prior and ``confidence`` is 0.
    """

    index: int
    probability: float
    degraded: bool
    usable_bands: list[str]
    confidence: float
    diagnostics: list[InputDiagnostics] = field(default_factory=list)
    flux_feature: float = float("nan")
    error: str | None = None

    @classmethod
    def failed(cls, index: int, exc: BaseException) -> "PredictionResult":
        """The flagged placeholder for a sample whose scoring failed.

        Scored at the 0.5 no-information prior with zero confidence so
        downstream consumers that only read (probability, confidence)
        treat it as "know nothing" rather than silently trusting it.
        """
        return cls(
            index=index,
            probability=0.5,
            degraded=True,
            usable_bands=[],
            confidence=0.0,
            error=f"{type(exc).__name__}: {exc}",
        )

    def to_dict(self) -> dict:
        """JSON-ready representation (one line of the classify stream)."""
        payload = {
            "index": self.index,
            "probability": round(self.probability, 6),
            "degraded": self.degraded,
            "usable_bands": self.usable_bands,
            "confidence": round(self.confidence, 4),
            "n_repaired_visits": sum(1 for d in self.diagnostics if d.repaired),
            "n_rejected_visits": sum(1 for d in self.diagnostics if d.rejected),
            "flux_feature": (
                round(self.flux_feature, 6) if math.isfinite(self.flux_feature) else None
            ),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload

    def to_json(self) -> str:
        """Compact single-line JSON for streaming output."""
        return json.dumps(self.to_dict(), separators=(",", ":"))


class InferenceEngine:
    """Degradation-tolerant classification over a fitted pipeline.

    Parameters
    ----------
    pipeline:
        A :class:`SupernovaPipeline` with (at least) stages 1-2 fitted.
    prior:
        Per-band flux prior for imputing masked feature slots; defaults
        to the neutral (no-detection) prior.
    repair:
        Validation/repair thresholds (:class:`RepairConfig`).
    strict:
        When True, any degradation raises :class:`DegradedInputError`
        instead of serving a flagged result.  Per-call ``strict``
        arguments override this default.
    drift_baseline:
        Optional committed training-set :class:`~repro.obs.drift.DriftBaseline`;
        when present *and* a telemetry session is active, served scores
        and flux features feed a :class:`~repro.obs.drift.DriftMonitor`
        that raises ``drift.flagged`` events past its thresholds.
    fused:
        When True (default) the CNN stage runs the whole flattened
        ``(N·V)`` visit batch through :meth:`BandwiseCNN.fused_forward`
        — one GEMM per conv layer — instead of the chunked
        :meth:`~repro.core.flux_cnn.BandwiseCNN.predict` path.  At
        float32 the two are bit-identical.
    precision:
        ``"float32"`` (default) or ``"float16"`` — the inference
        activation storage precision of the fused path (GEMMs always
        accumulate in float32).  Implies ``fused=True`` behaviour for
        the CNN stage; accuracy is gated by the benchmark's AUC check.
    """

    def __init__(
        self,
        pipeline: SupernovaPipeline,
        prior: FluxPrior | None = None,
        repair: RepairConfig | None = None,
        strict: bool = False,
        drift_baseline: DriftBaseline | None = None,
        fused: bool = True,
        precision: str = "float32",
    ) -> None:
        if precision not in ("float32", "float16"):
            raise ValueError(
                f"unknown precision {precision!r}; expected 'float32' or 'float16'"
            )
        self.pipeline = pipeline
        self.prior = prior or FluxPrior.neutral()
        self.repair = repair or RepairConfig()
        self.strict = strict
        self.fused = bool(fused) and hasattr(pipeline.cnn, "fused_forward")
        self.precision = precision
        self.drift_baseline = drift_baseline
        self.drift_monitor = (
            DriftMonitor(drift_baseline) if drift_baseline is not None else None
        )
        self._drift_lock = threading.Lock()
        #: Chaos-only seam: when set, called with the classifier's raw
        #: probability array and its return value is served instead
        #: (see :class:`repro.runtime.faults.ShiftScores`).  Never set
        #: in production paths.
        self.score_hook = None

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @classmethod
    def from_directory(
        cls,
        directory: str,
        repair: RepairConfig | None = None,
        strict: bool = False,
        fused: bool = True,
        precision: str = "float32",
    ) -> "InferenceEngine":
        """Build an engine from a :meth:`SupernovaPipeline.save` directory.

        Reads the architecture manifest and, when present, the
        ``flux_prior.json`` written by :meth:`save`; raises
        :class:`~repro.runtime.errors.CorruptArtifactError` on truncated
        or inconsistent artifacts.
        """
        pipeline = SupernovaPipeline.load(directory)
        prior = FluxPrior.load(directory)
        baseline = DriftBaseline.load(directory)
        if baseline is None:
            session = obs.active()
            if session is not None:
                session.emit(
                    "serve.no_drift_baseline",
                    level="warning",
                    message=(
                        f"model dir {os.fspath(directory)} has no drift baseline; "
                        "drift monitoring and drift-triggered rollback are disabled"
                    ),
                    model_dir=os.fspath(directory),
                )
        return cls(pipeline, prior=prior, repair=repair, strict=strict,
                   drift_baseline=baseline, fused=fused, precision=precision)

    def save(self, directory: str) -> None:
        """Persist the pipeline, flux prior and (if set) drift baseline."""
        self.pipeline.save(directory)
        self.prior.save(directory)
        if self.drift_baseline is not None:
            self.drift_baseline.save(directory)

    def fit_drift_baseline(self, dataset: SupernovaDataset, n_bins: int = 20) -> DriftBaseline:
        """Capture the serving-drift baseline from a (training) dataset.

        Classifies the dataset through this engine's own path and bins
        the resulting scores and per-sample flux features — i.e. the
        baseline measures exactly the distributions the drift monitor
        will see at serve time.  Sets :attr:`drift_baseline` (persisted
        by :meth:`save`) and arms :attr:`drift_monitor`.
        """
        results = self.classify(dataset, strict=False)
        scores = np.array([r.probability for r in results], dtype=float)
        flux = np.array([r.flux_feature for r in results], dtype=float)
        flux = flux[np.isfinite(flux)]
        self.drift_baseline = DriftBaseline.from_samples(
            scores, flux if flux.size else None, n_bins=n_bins
        )
        self.drift_monitor = DriftMonitor(self.drift_baseline)
        return self.drift_baseline

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    @property
    def _n_used_visits(self) -> int:
        return self.pipeline.epochs_used * N_BANDS

    def _validate_batch(self, pairs: np.ndarray, mjd: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batch-level shape/dtype checks; bad requests always raise."""
        pairs = np.asarray(pairs)
        mjd = np.asarray(mjd)
        if pairs.ndim != 5 or pairs.shape[2] != 2:
            raise ValueError(
                f"expected (N, V, 2, S, S) stamp pairs, got shape {pairs.shape}"
            )
        if pairs.shape[3] != pairs.shape[4]:
            raise ValueError(
                f"stamps must be square, got {pairs.shape[3]}x{pairs.shape[4]}"
            )
        if not np.issubdtype(pairs.dtype, np.number):
            raise ValueError(f"pairs must be numeric, got dtype {pairs.dtype}")
        if mjd.shape != pairs.shape[:2]:
            raise ValueError(
                f"visit_mjd shape {mjd.shape} does not match pairs {pairs.shape[:2]}"
            )
        used = self._n_used_visits
        if pairs.shape[1] < used:
            raise ValueError(
                f"pipeline serves {self.pipeline.epochs_used} epoch(s) = {used} "
                f"visits, but samples carry only {pairs.shape[1]}"
            )
        if pairs.shape[1] % N_BANDS != 0:
            raise ValueError(
                f"visit count {pairs.shape[1]} is not a multiple of {N_BANDS} bands"
            )
        if pairs.shape[-1] < self.pipeline.input_size:
            raise ValueError(
                f"stamps of size {pairs.shape[-1]} are smaller than the CNN "
                f"input size {self.pipeline.input_size}"
            )
        return (
            pairs[:, :used].astype(np.float32, copy=False),
            # float32 keeps the whole serving path single-precision; MJD
            # rounding (<0.01 day) is far below the 50-day feature scale.
            np.asarray(mjd[:, :used]).astype(np.float32, copy=False),
        )

    def _confidence(self, usable: np.ndarray, diags: list[InputDiagnostics]) -> float:
        """Confidence downgrade: coverage times residual repair damage."""
        coverage = float(usable.mean()) if usable.size else 0.0
        repaired = [d for d in diags if d.repaired and not d.rejected]
        damage = float(np.mean([d.bad_fraction for d in repaired])) if repaired else 0.0
        return round(coverage * (1.0 - damage), 6)

    def classify_arrays(
        self,
        pairs: np.ndarray,
        mjd: np.ndarray,
        strict: bool | None = None,
        start_index: int = 0,
    ) -> list[PredictionResult]:
        """Serve a batch of raw ``(N, V, 2, S, S)`` pairs and ``(N, V)`` dates.

        Only the pipeline's first ``epochs_used`` epochs are consumed.
        Returns one :class:`PredictionResult` per sample; degraded
        samples are flagged, not raised — except in strict mode, where
        the first degradation aborts with :class:`DegradedInputError`.
        """
        strict = self.strict if strict is None else strict
        session = obs.active()
        t_start = time.perf_counter() if session is not None else 0.0
        pairs, mjd = self._validate_batch(pairs, mjd)
        n, used = pairs.shape[0], self._n_used_visits
        stamp = pairs.shape[-1]
        _count("serve.samples", n)

        # Validate/repair every visit of the batch in one vectorised pass
        # over the flattened (N*V) visit axis.
        with _timed("serve.repair"), _trace.span("serve.repair", n_samples=n):
            flat_pairs = np.ascontiguousarray(pairs.reshape(n * used, 2, stamp, stamp))
            visit_ids = np.tile(np.arange(used), n)
            repaired_flat, flat_diags, kept = diagnose_and_repair_batch(
                flat_pairs, visit_ids, self.repair
            )
        mjd_ok = np.isfinite(mjd)
        usable = kept.reshape(n, used) & mjd_ok
        for i, v in zip(*np.nonzero(~mjd_ok)):
            diag = flat_diags[i * used + v]
            if not diag.rejected:
                diag.rejected = True
                diag.repaired = False
                diag.reason = "non-finite observation date"

        all_diags: list[list[InputDiagnostics]] = []
        for i in range(n):
            diags = [d for d in flat_diags[i * used : (i + 1) * used] if not d.clean]
            if strict and diags:
                worst = diags[0]
                index = start_index + i
                request_id = None
                if session is not None:
                    request_id = session.new_request_id(index)
                    session.emit(
                        "serve.rejected",
                        level="error",
                        request_id=request_id,
                        index=index,
                        visit=worst.visit,
                        band=worst.band,
                        reason=worst.reason or "repaired input",
                    )
                    session.metrics.counter("serve.rejected").inc()
                raise DegradedInputError(
                    f"sample {index} is degraded (visit {worst.visit}, "
                    f"band {worst.band}: {worst.reason or 'repaired input'}); "
                    "re-run without --strict to serve it with masking",
                    index=index,
                    request_id=request_id,
                )
            all_diags.append(diags)

        # Batched CNN magnitudes for the usable visits only.
        flux = np.zeros((n, used), dtype=np.float32)
        flat_idx = np.flatnonzero(usable.reshape(-1))
        if flat_idx.size:
            # Clean traffic keeps every visit; skip the fancy-index copy
            # and hand the repaired batch to the CNN as-is.
            if flat_idx.size == repaired_flat.shape[0]:
                cnn_input = repaired_flat
            else:
                cnn_input = repaired_flat[flat_idx]
            with _timed("serve.cnn"), _trace.span("serve.cnn", n_visits=int(flat_idx.size)):
                if self.fused:
                    mags = self.pipeline.cnn.fused_forward(
                        cnn_input, precision=self.precision
                    )
                else:
                    mags = self.pipeline.cnn.predict(cnn_input)
            flux.reshape(-1)[flat_idx] = 10.0 ** (-0.4 * (mags - 27.0))

        with _timed("serve.features"), _trace.span("serve.features"):
            features = masked_features_from_arrays(
                flux,
                mjd,
                usable,
                self.pipeline.epochs_used,
                self.pipeline.epochs_used,
                prior_flux_feature=self.prior.flux_feature,
            )
            probs = self.pipeline.classifier.predict_proba(features)
        if self.score_hook is not None:
            probs = np.asarray(self.score_hook(probs))

        # Per-sample mean signed-log flux over usable visits: the
        # input-side statistic the drift monitor compares to training.
        flux_log = signed_log10(flux)
        n_usable = usable.sum(axis=1)
        with np.errstate(invalid="ignore"):
            flux_feature = np.where(
                n_usable > 0,
                (flux_log * usable).sum(axis=1) / np.maximum(n_usable, 1),
                np.nan,
            )

        results = []
        for i in range(n):
            present = {int(v) % N_BANDS for v in np.flatnonzero(usable[i])}
            bands = [band.name for band in GRIZY if band.index in present]
            results.append(
                PredictionResult(
                    index=start_index + i,
                    probability=float(probs[i]),
                    degraded=bool(all_diags[i]),
                    usable_bands=bands,
                    confidence=self._confidence(usable[i], all_diags[i]),
                    diagnostics=all_diags[i],
                    flux_feature=float(flux_feature[i]),
                )
            )
        if session is not None:
            self._audit(session, results, time.perf_counter() - t_start)
        return results

    #: Confidence histogram buckets: tenths of the [0, 1] range.
    _CONFIDENCE_BUCKETS = tuple(round(0.1 * k, 1) for k in range(1, 11))

    def _audit(
        self,
        session: "obs.TelemetrySession",
        results: list[PredictionResult],
        elapsed_s: float,
    ) -> None:
        """Write one audit event per served sample plus batch metrics.

        Called only with a live telemetry session; safe under the
        ``stream(workers=N)`` thread pool — the event log and the
        metrics instruments serialise internally, and the drift monitor
        transition check runs under the engine's own lock.
        """
        n = len(results)
        if n == 0:
            return
        metrics = session.metrics
        latency_hist = metrics.histogram("serve.latency_s")
        confidence_hist = metrics.histogram(
            "serve.confidence", buckets=self._CONFIDENCE_BUCKETS
        )
        per_sample_s = elapsed_s / n
        for result in results:
            latency_hist.observe(per_sample_s)
            confidence_hist.observe(result.confidence)
            masked = [
                band.name for band in GRIZY if band.name not in result.usable_bands
            ]
            session.emit(
                "serve.request",
                level="warning" if result.degraded else "info",
                request_id=session.new_request_id(result.index),
                index=result.index,
                probability=round(result.probability, 6),
                degraded=result.degraded,
                confidence=round(result.confidence, 4),
                usable_bands=result.usable_bands,
                masked_bands=masked,
                n_repaired_visits=sum(1 for d in result.diagnostics if d.repaired),
                n_rejected_visits=sum(1 for d in result.diagnostics if d.rejected),
                diagnostics=[d.to_dict() for d in result.diagnostics],
                flux_feature=(
                    round(result.flux_feature, 6)
                    if np.isfinite(result.flux_feature)
                    else None
                ),
                latency_s=round(per_sample_s, 9),
                latency_bucket=latency_hist.bucket_label(per_sample_s),
            )
        metrics.counter("serve.requests").inc(n)
        metrics.counter("serve.degraded").inc(sum(r.degraded for r in results))
        metrics.counter("serve.repaired_visits").inc(
            sum(1 for r in results for d in r.diagnostics if d.repaired)
        )
        metrics.counter("serve.rejected_visits").inc(
            sum(1 for r in results for d in r.diagnostics if d.rejected)
        )
        if self.drift_monitor is not None:
            self._feed_drift(session, results)

    def _feed_drift(
        self, session: "obs.TelemetrySession", results: list[PredictionResult]
    ) -> None:
        """Fold served scores/flux into the drift window; emit transitions."""
        monitor = self.drift_monitor
        scores = [r.probability for r in results]
        flux = [r.flux_feature for r in results]
        with self._drift_lock:
            previously_flagged = monitor.flagged
            report = monitor.observe(scores, flux)
            transition = report.flagged != previously_flagged
        metrics = session.metrics
        metrics.gauge("drift.score_psi").set(report.score_psi)
        metrics.gauge("drift.score_ks").set(report.score_ks)
        metrics.gauge("drift.flux_psi").set(report.flux_psi)
        metrics.gauge("drift.flux_ks").set(report.flux_ks)
        if transition and report.flagged:
            metrics.counter("drift.flagged").inc()
            session.emit(
                "drift.flagged",
                level="warning",
                message="served distribution drifted from the training baseline: "
                + "; ".join(report.reasons),
                **report.to_dict(),
            )
        elif transition:
            session.emit(
                "drift.recovered",
                message="served distribution back within the training baseline",
                **report.to_dict(),
            )

    def classify(
        self, dataset: SupernovaDataset, strict: bool | None = None
    ) -> list[PredictionResult]:
        """Serve every sample of a dataset (see :meth:`classify_arrays`)."""
        return self.classify_arrays(dataset.pairs, dataset.visit_mjd, strict=strict)

    def stream(
        self,
        dataset: SupernovaDataset,
        batch_size: int = 64,
        strict: bool | None = None,
        workers: int = 1,
        min_task_size: int | None = None,
    ) -> Iterator[PredictionResult]:
        """Yield :class:`PredictionResult` objects batch by batch.

        The classify CLI consumes this to emit per-sample JSON lines as
        soon as each batch clears the CNN, rather than after the whole
        dataset.

        With ``workers > 1`` micro-batches are classified on a thread
        pool — the BLAS GEMMs behind the CNN release the GIL, so batches
        genuinely overlap — while results still stream in request order.
        ``min_task_size`` coalesces adjacent micro-batches into thread
        tasks of at least that many samples (rounded up to whole
        batches): small ``--batch-size`` values keep their streaming
        granularity on the single-threaded path while the threaded path
        amortizes per-GEMM setup over engine-sized batches instead of
        scoring slivers.  ``None`` (the default) keeps one task per
        micro-batch, which is also the containment granularity below.

        A non-strict exception escaping one worker's batch (a scoring
        bug, a poison payload the validators missed) is contained to
        that batch: its samples come back as
        :meth:`PredictionResult.failed` placeholders and every other
        batch still streams.  Strict mode (``strict=True`` or the
        engine default) re-raises instead — but only after the pool has
        been told to drop the remaining batches, so the generator never
        abandons live futures.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if min_task_size is not None and min_task_size < 1:
            raise ValueError("min_task_size must be >= 1")
        effective_strict = self.strict if strict is None else strict
        starts = range(0, len(dataset), batch_size)
        if workers == 1:
            for start in starts:
                stop = min(start + batch_size, len(dataset))
                yield from self.classify_arrays(
                    dataset.pairs[start:stop],
                    dataset.visit_mjd[start:stop],
                    strict=strict,
                    start_index=start,
                )
            return

        # Pin eval mode up front: predict() toggles train/eval on the
        # shared modules, which must not race across worker threads.
        self.pipeline.cnn.eval()
        self.pipeline.classifier.eval()
        from concurrent.futures import ThreadPoolExecutor

        task_size = batch_size
        if min_task_size is not None and min_task_size > batch_size:
            task_size = -(-min_task_size // batch_size) * batch_size
        starts = range(0, len(dataset), task_size)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    self.classify_arrays,
                    dataset.pairs[start : start + task_size],
                    dataset.visit_mjd[start : start + task_size],
                    strict,
                    start,
                )
                for start in starts
            ]
            try:
                for start, future in zip(starts, futures):
                    try:
                        results = future.result()
                    except Exception as exc:
                        if effective_strict:
                            raise
                        stop = min(start + task_size, len(dataset))
                        _count("serve.contained_batch_failures")
                        session = obs.active()
                        if session is not None:
                            session.emit(
                                "serve.batch_failed",
                                level="error",
                                message=f"batch at {start} failed: {exc}",
                                start_index=start,
                                n_samples=stop - start,
                                error_type=type(exc).__name__,
                            )
                            session.metrics.counter("serve.batch_failures").inc()
                        results = [
                            PredictionResult.failed(i, exc)
                            for i in range(start, stop)
                        ]
                    yield from results
            except BaseException:
                # Strict re-raise or a consumer closing the generator:
                # don't leave queued batches running behind our back.
                for pending in futures:
                    pending.cancel()
                raise
