"""Hardened inference for production serving (degraded-input tolerance).

The training stack assumes clean (reference, observation) pairs in all
five bands; real survey traffic does not oblige.  This package wraps the
fitted :class:`~repro.core.pipeline.SupernovaPipeline` in an
:class:`InferenceEngine` that validates, repairs, masks and — when all
else fails — imputes, so every sample comes back as a
:class:`PredictionResult` instead of a traceback:

* :mod:`repro.serve.validation` — per-visit :class:`InputDiagnostics`
  (shape / dtype / finite-pixel / saturation checks), median inpainting
  and cosmic-ray sigma-clipping;
* :mod:`repro.serve.engine` — band masking over the light-curve feature
  vector, per-band :class:`FluxPrior` imputation, confidence downgrades
  and the strict-mode :class:`DegradedInputError` contract;
* :mod:`repro.serve.daemon` — the persistent ``repro serve`` HTTP
  daemon: admission control, adaptive micro-batching, per-request
  deadlines, poison-batch isolation, a wedge-detecting watchdog and
  graceful drain, with ``/healthz`` and Prometheus ``/metrics``.
"""

from .daemon import DaemonConfig, ServingDaemon
from .engine import DegradedInputError, FluxPrior, InferenceEngine, PredictionResult
from .pool import (
    PoolBrokenError,
    PoolConfig,
    PoolError,
    ScoringPool,
    WorkerCrashError,
)
from .validation import (
    DEFAULT_SATURATION_LEVEL,
    InputDiagnostics,
    RepairConfig,
    clip_difference_outliers,
    diagnose_and_repair,
    diagnose_and_repair_batch,
    inpaint_bad_pixels,
)

__all__ = [
    "InferenceEngine",
    "PredictionResult",
    "FluxPrior",
    "DegradedInputError",
    "ServingDaemon",
    "DaemonConfig",
    "ScoringPool",
    "PoolConfig",
    "PoolError",
    "PoolBrokenError",
    "WorkerCrashError",
    "InputDiagnostics",
    "RepairConfig",
    "diagnose_and_repair",
    "diagnose_and_repair_batch",
    "inpaint_bad_pixels",
    "clip_difference_outliers",
    "DEFAULT_SATURATION_LEVEL",
]
