"""Light-curve feature construction (Section 4, Fig. 6).

The classification network consumes a feature vector holding, per band,
the (estimated or true) flux and the observation date.  A single epoch
therefore yields the 10-dimensional vector of the paper; ``k`` epochs
yield ``10 k`` dimensions.

Normalisation (identical for true and estimated fluxes so the classifier
and the joint model see the same feature space):

* fluxes pass through the signed log ``sgn(f) log10(|f| + 1)`` — the same
  compression the CNN applies to pixels;
* dates are centred on the mean date of the visits used and scaled by a
  characteristic light-curve timescale (50 days).
"""

from __future__ import annotations

import numpy as np

from ..datasets import N_BANDS, SupernovaDataset
from ..photometry import signed_log10

__all__ = [
    "DATE_SCALE_DAYS",
    "features_from_arrays",
    "masked_features_from_arrays",
    "ground_truth_features",
    "windowed_epoch_features",
    "dataset_windowed_features",
    "FLUX_FEATURE_DIM",
]

DATE_SCALE_DAYS = 50.0
FLUX_FEATURE_DIM = 2  # (flux, date) per band per epoch


def _as_float(a: np.ndarray) -> np.ndarray:
    """Floating view of ``a``: float32/float64 pass through untouched
    (the serving path stays single-precision end to end), anything else
    — integer or bool flux/date arrays — is cast to float32, matching
    the float32 dtype policy of the rest of the pipeline."""
    a = np.asarray(a)
    return a if np.issubdtype(a.dtype, np.floating) else a.astype(np.float32)


def features_from_arrays(
    flux: np.ndarray,
    mjd: np.ndarray,
    epochs: int | list[int] = 1,
    n_epochs_total: int | None = None,
) -> np.ndarray:
    """Build classifier features from per-visit flux and date arrays.

    Parameters
    ----------
    flux:
        (N, V) supernova fluxes, epoch-major visit order (V = E * 5).
    mjd:
        (N, V) observation dates, same layout.
    epochs:
        Which epochs to include — an epoch count ``k`` (uses the first
        ``k``) or an explicit list of epoch indices.
    n_epochs_total:
        Total epochs in the visit axis; inferred from V when omitted.

    Returns
    -------
    (N, 10 * len(epochs)) float32 feature matrix: for each requested
    epoch, 5 signed-log fluxes followed by 5 scaled dates.
    """
    flux = _as_float(flux)
    mjd = _as_float(mjd)
    if flux.shape != mjd.shape or flux.ndim != 2:
        raise ValueError("flux and mjd must both be (N, V)")
    n_visits = flux.shape[1]
    total = n_epochs_total or n_visits // N_BANDS
    if total * N_BANDS != n_visits:
        raise ValueError(f"visit axis {n_visits} is not {total} epochs x {N_BANDS} bands")

    epoch_list = list(range(epochs)) if isinstance(epochs, int) else list(epochs)
    if not epoch_list:
        raise ValueError("need at least one epoch")
    for e in epoch_list:
        if not 0 <= e < total:
            raise IndexError(f"epoch {e} out of range [0, {total})")

    visit_idx = np.concatenate(
        [np.arange(e * N_BANDS, (e + 1) * N_BANDS) for e in epoch_list]
    )
    f = flux[:, visit_idx]
    d = mjd[:, visit_idx]
    d_centered = (d - d.mean(axis=1, keepdims=True)) / DATE_SCALE_DAYS

    blocks = []
    n_sel = len(epoch_list)
    f_blocks = f.reshape(-1, n_sel, N_BANDS)
    d_blocks = d_centered.reshape(-1, n_sel, N_BANDS)
    for k in range(n_sel):
        blocks.append(signed_log10(f_blocks[:, k]))
        blocks.append(d_blocks[:, k])
    return np.concatenate(blocks, axis=1).astype(np.float32)


def masked_features_from_arrays(
    flux: np.ndarray,
    mjd: np.ndarray,
    usable: np.ndarray,
    epochs: int | list[int] = 1,
    n_epochs_total: int | None = None,
    prior_flux_feature: np.ndarray | None = None,
) -> np.ndarray:
    """Classifier features for samples with missing or rejected visits.

    Degraded-input counterpart of :func:`features_from_arrays`: ``usable``
    is an (N, V) boolean mask marking visits whose flux estimate can be
    trusted.  Masked entries never touch the arithmetic — their flux and
    date values may be NaN —

    * the flux feature of a masked visit is imputed from
      ``prior_flux_feature``, the per-band mean signed-log flux of the
      training set (zeros — "no detection" — when omitted);
    * the date features are centred on the mean date of the *usable*
      visits only, and masked dates sit at 0, the centre of the window.

    A sample with no usable visit at all degenerates to the pure prior
    vector, so downstream scores fall back to the training-set base rate
    instead of NaN.  Returns the (N, 10 * len(epochs)) float32 matrix.
    """
    flux = _as_float(flux)
    mjd = _as_float(mjd)
    usable = np.asarray(usable, dtype=bool)
    if flux.shape != mjd.shape or flux.ndim != 2:
        raise ValueError("flux and mjd must both be (N, V)")
    if usable.shape != flux.shape:
        raise ValueError(
            f"usable mask shape {usable.shape} does not match flux {flux.shape}"
        )
    n_visits = flux.shape[1]
    total = n_epochs_total or n_visits // N_BANDS
    if total * N_BANDS != n_visits:
        raise ValueError(f"visit axis {n_visits} is not {total} epochs x {N_BANDS} bands")
    if prior_flux_feature is None:
        prior_flux_feature = np.zeros(N_BANDS)
    prior_flux_feature = np.asarray(prior_flux_feature, dtype=float)
    if prior_flux_feature.shape != (N_BANDS,):
        raise ValueError(f"prior_flux_feature must be ({N_BANDS},)")

    epoch_list = list(range(epochs)) if isinstance(epochs, int) else list(epochs)
    if not epoch_list:
        raise ValueError("need at least one epoch")
    for e in epoch_list:
        if not 0 <= e < total:
            raise IndexError(f"epoch {e} out of range [0, {total})")

    visit_idx = np.concatenate(
        [np.arange(e * N_BANDS, (e + 1) * N_BANDS) for e in epoch_list]
    )
    f = flux[:, visit_idx]
    d = mjd[:, visit_idx]
    m = usable[:, visit_idx]

    # Per-band prior for every selected visit (epoch-major layout),
    # matched to the flux dtype so imputation never upcasts the batch.
    prior = prior_flux_feature[visit_idx % N_BANDS].astype(flux.dtype)
    f_safe = np.where(m, f, 0.0)  # keep NaN/Inf of masked entries out of the math
    d_safe = np.where(m, d, 0.0)
    f_feat = np.where(m, signed_log10(f_safe), prior[None, :])

    # Centre dates on the usable visits only; masked dates sit at 0.
    n_usable = m.sum(axis=1, keepdims=True)
    d_sum = d_safe.sum(axis=1, keepdims=True)
    d_mean = np.divide(d_sum, n_usable, out=np.zeros_like(d_sum), where=n_usable > 0)
    d_feat = np.where(m, (d_safe - d_mean) / DATE_SCALE_DAYS, 0.0)

    blocks = []
    n_sel = len(epoch_list)
    f_blocks = f_feat.reshape(-1, n_sel, N_BANDS)
    d_blocks = d_feat.reshape(-1, n_sel, N_BANDS)
    for k in range(n_sel):
        blocks.append(f_blocks[:, k])
        blocks.append(d_blocks[:, k])
    return np.concatenate(blocks, axis=1).astype(np.float32)


def ground_truth_features(
    dataset: SupernovaDataset, epochs: int | list[int] = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Features from the *true* light curve (Figs. 9-10 experiments).

    Returns ``(features, labels)``.
    """
    features = features_from_arrays(
        dataset.true_flux, dataset.visit_mjd, epochs, dataset.n_epochs
    )
    return features, dataset.labels.astype(np.float32)


def windowed_epoch_features(
    flux: np.ndarray,
    mjd: np.ndarray,
    labels: np.ndarray,
    k_epochs: int,
    n_epochs_total: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """All contiguous ``k``-epoch windows as independent samples.

    The paper "split each sample into 4 subsets" to simulate single-epoch
    observations (Section 5): a sample with E epochs yields E single-epoch
    sub-samples.  Generalised to k-epoch windows, a sample yields
    ``E - k + 1`` sub-samples of ``10 k`` features each.  Returns the
    stacked ``(features, labels)``.
    """
    flux = np.asarray(flux)
    total = n_epochs_total or flux.shape[1] // N_BANDS
    if not 1 <= k_epochs <= total:
        raise ValueError(f"k_epochs must be in [1, {total}]")
    features, ys = [], []
    for start in range(total - k_epochs + 1):
        window = list(range(start, start + k_epochs))
        features.append(features_from_arrays(flux, mjd, window, total))
        ys.append(np.asarray(labels, dtype=np.float32))
    return np.concatenate(features), np.concatenate(ys)


def dataset_windowed_features(
    dataset: SupernovaDataset, k_epochs: int
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`windowed_epoch_features` over a dataset's true light curves."""
    return windowed_epoch_features(
        dataset.true_flux,
        dataset.visit_mjd,
        dataset.labels,
        k_epochs,
        dataset.n_epochs,
    )
