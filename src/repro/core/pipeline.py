"""High-level API: the full three-stage method of the paper.

:class:`SupernovaPipeline` wires the pieces together exactly as Section 4
describes:

1. ``fit_flux_cnn``     — pre-train the band-wise CNN on (pair, magnitude)
   visits;
2. ``fit_classifier``   — pre-train the light-curve classifier on
   CNN-estimated (or ground-truth) features;
3. ``fine_tune``        — join the two networks and fine-tune end-to-end.

Every stage returns its training :class:`~repro.core.training.History`
and the pipeline keeps the fitted components accessible for evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets import N_BANDS, SupernovaDataset
from ..eval import auc_score
from .augment import make_pair_augmenter
from .classifier import LightCurveClassifier
from .features import DATE_SCALE_DAYS, features_from_arrays, windowed_epoch_features
from .flux_cnn import BandwiseCNN
from .joint import JointModel
from .training import History, TrainConfig, fit, fit_classifier, fit_regressor

__all__ = ["SupernovaPipeline", "scaled_dates", "epoch_visit_indices", "MANIFEST_NAME"]

#: Architecture manifest written next to the weight archives by ``save``.
MANIFEST_NAME = "manifest.json"
_MANIFEST_VERSION = 1


def epoch_visit_indices(dataset: SupernovaDataset, epochs: int | list[int]) -> np.ndarray:
    """Visit indices covering the requested epochs (epoch-major layout).

    ``epochs`` is either an epoch count (uses the first ``epochs``) or an
    explicit list of epoch indices; both are validated up front against
    the dataset's epoch range so a bad request fails with a descriptive
    message instead of an opaque indexing error downstream.
    """
    epoch_list = list(range(epochs)) if isinstance(epochs, int) else list(epochs)
    if not epoch_list:
        raise ValueError("need at least one epoch")
    total = dataset.n_epochs
    for e in epoch_list:
        if not isinstance(e, (int, np.integer)):
            raise TypeError(f"epoch indices must be integers, got {e!r}")
    bad = [int(e) for e in epoch_list if not 0 <= e < total]
    if bad:
        raise IndexError(
            f"epoch indices {bad} out of range [0, {total}) for a dataset "
            f"with {total} epochs"
        )
    return np.concatenate([dataset.epoch_slice(int(e)) for e in epoch_list])


def scaled_dates(mjd: np.ndarray) -> np.ndarray:
    """Centre dates per sample and scale by the 50-day light-curve scale."""
    mjd = np.asarray(mjd, dtype=float)
    return ((mjd - mjd.mean(axis=1, keepdims=True)) / DATE_SCALE_DAYS).astype(np.float32)


@dataclass
class _StageData:
    """Arrays one training stage consumes (train + validation)."""

    train: tuple[np.ndarray, ...]
    val: tuple[np.ndarray, ...]


class SupernovaPipeline:
    """The paper's method end to end.

    Parameters
    ----------
    input_size:
        CNN crop size (Table 1; paper uses 60).
    units:
        Classifier hidden width (Fig. 9; paper uses 100).
    epochs_used:
        How many observation epochs feed the classifier (1 = the paper's
        single-epoch headline setting).
    seed:
        Seed for weight initialisation.
    """

    def __init__(
        self,
        input_size: int = 60,
        units: int = 100,
        epochs_used: int = 1,
        seed: int = 0,
    ) -> None:
        self.input_size = input_size
        self.units = units
        self.epochs_used = epochs_used
        rng = np.random.default_rng(seed)
        self.cnn = BandwiseCNN(input_size=input_size, rng=rng)
        n_visits = epochs_used * N_BANDS
        self.classifier = LightCurveClassifier(
            input_dim=2 * n_visits, units=units, rng=rng
        )
        self.joint: JointModel | None = None

    # ------------------------------------------------------------------
    # Stage 1: flux CNN
    # ------------------------------------------------------------------
    def fit_flux_cnn(
        self,
        train: SupernovaDataset,
        val: SupernovaDataset,
        config: TrainConfig | None = None,
        min_flux: float = 1.0,
        augment: bool = True,
    ) -> History:
        """Pre-train the band-wise CNN on all visible visits.

        ``augment`` enables dihedral + random-crop augmentation, which
        substitutes for the paper's 100x larger training corpus.
        """
        config = config or TrainConfig(epochs=10, batch_size=64)
        x_train, y_train, m_train = train.flux_pairs(min_flux)
        x_val, y_val, m_val = val.flux_pairs(min_flux)
        augment_fn = make_pair_augmenter(self.input_size) if augment else None
        return fit_regressor(
            self.cnn,
            x_train[m_train],
            y_train[m_train],
            config,
            x_val[m_val],
            y_val[m_val],
            augment_fn=augment_fn,
        )

    def estimate_magnitudes(self, dataset: SupernovaDataset) -> np.ndarray:
        """CNN magnitude estimates for every visit: (N, V)."""
        flat = dataset.pairs.reshape(-1, 2, dataset.stamp_size, dataset.stamp_size)
        mags = self.cnn.predict(flat)
        return mags.reshape(len(dataset), dataset.n_visits)

    def estimated_fluxes(self, dataset: SupernovaDataset) -> np.ndarray:
        """CNN flux estimates (ZP-27 counts) for every visit."""
        return 10.0 ** (-0.4 * (self.estimate_magnitudes(dataset) - 27.0))

    # ------------------------------------------------------------------
    # Stage 2: classifier
    # ------------------------------------------------------------------
    def _classifier_features(
        self, dataset: SupernovaDataset, use_ground_truth: bool, windowed: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """(features, labels); windowed mode stacks every k-epoch window.

        The paper "split each sample into 4 subsets" to simulate
        single-epoch observations, so a 4-epoch sample yields
        ``n_epochs - epochs_used + 1`` independent sub-samples.
        """
        flux = (
            dataset.true_flux if use_ground_truth else self.estimated_fluxes(dataset)
        )
        if windowed:
            return windowed_epoch_features(
                flux, dataset.visit_mjd, dataset.labels, self.epochs_used, dataset.n_epochs
            )
        features = features_from_arrays(
            flux, dataset.visit_mjd, self.epochs_used, dataset.n_epochs
        )
        return features, dataset.labels.astype(np.float32)

    def fit_classifier(
        self,
        train: SupernovaDataset,
        val: SupernovaDataset,
        config: TrainConfig | None = None,
        use_ground_truth: bool = False,
        windowed: bool = True,
    ) -> History:
        """Pre-train the classifier on light-curve features.

        ``use_ground_truth=True`` reproduces the Figs. 9-10 experiments
        (true fluxes); ``False`` uses the stage-1 CNN's estimates, which
        is the correct pre-training for the joint model.
        """
        config = config or TrainConfig(epochs=50, batch_size=64)
        x_train, y_train = self._classifier_features(train, use_ground_truth, windowed)
        x_val, y_val = self._classifier_features(val, use_ground_truth, windowed)
        return fit_classifier(
            self.classifier,
            x_train,
            y_train,
            config,
            x_val,
            y_val,
            metric=auc_score,
        )

    # ------------------------------------------------------------------
    # Stage 3: joint fine-tuning
    # ------------------------------------------------------------------
    def _joint_inputs(
        self, dataset: SupernovaDataset, windowed: bool = False
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(pairs, dates, labels) for the joint model.

        With ``windowed=True``, every contiguous ``epochs_used`` window of
        each sample becomes an independent sub-sample (the paper's
        single-epoch subset protocol), multiplying the data available to
        the expensive joint stage.
        """
        if not windowed:
            idx = epoch_visit_indices(dataset, self.epochs_used)
            return (
                dataset.pairs[:, idx],
                scaled_dates(dataset.visit_mjd[:, idx]),
                dataset.labels.astype(np.float32),
            )
        pairs_list, dates_list, labels_list = [], [], []
        n_windows = dataset.n_epochs - self.epochs_used + 1
        for start in range(n_windows):
            idx = epoch_visit_indices(
                dataset, list(range(start, start + self.epochs_used))
            )
            pairs_list.append(dataset.pairs[:, idx])
            dates_list.append(scaled_dates(dataset.visit_mjd[:, idx]))
            labels_list.append(dataset.labels.astype(np.float32))
        return (
            np.concatenate(pairs_list),
            np.concatenate(dates_list),
            np.concatenate(labels_list),
        )

    def fine_tune(
        self,
        train: SupernovaDataset,
        val: SupernovaDataset,
        config: TrainConfig | None = None,
        from_scratch: bool = False,
        seed: int = 1,
        windowed: bool = True,
    ) -> History:
        """Train the joint model (fine-tuned or from scratch — Fig. 12)."""
        config = config or TrainConfig(epochs=5, batch_size=32)
        if from_scratch:
            self.joint = JointModel.fresh(
                n_visits=self.epochs_used * N_BANDS,
                input_size=self.input_size,
                units=self.units,
                rng=np.random.default_rng(seed),
            )
        else:
            self.joint = JointModel.from_pretrained(self.cnn, self.classifier)

        pairs_train, dates_train, y_train = self._joint_inputs(train, windowed)
        pairs_val, dates_val, y_val = self._joint_inputs(val, windowed)

        from .. import nn
        from ..nn.tensor import Tensor

        bce = nn.BCEWithLogitsLoss()

        def loss_fn(model, batch_inputs, batch_target):
            logits = model(Tensor(batch_inputs[0]), Tensor(batch_inputs[1]))
            return bce(logits, batch_target)

        def scores(model, val_inputs):
            return model.predict_proba(val_inputs[0], val_inputs[1])

        return fit(
            self.joint,
            [pairs_train, dates_train],
            y_train,
            loss_fn,
            config,
            val_inputs=[pairs_val, dates_val],
            val_target=y_val,
            metric=auc_score,
            metric_scores=scores,
        )

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict_proba(
        self, dataset: SupernovaDataset, use_joint: bool = True
    ) -> np.ndarray:
        """P(SNIa) per sample (first ``epochs_used`` epochs).

        With ``use_joint`` (and a fine-tuned joint model) the end-to-end
        network is used; otherwise the two-stage CNN-features + classifier
        path.
        """
        if use_joint and self.joint is not None:
            pairs, dates, _ = self._joint_inputs(dataset, windowed=False)
            return self.joint.predict_proba(pairs, dates)
        features, _ = self._classifier_features(
            dataset, use_ground_truth=False, windowed=False
        )
        return self.classifier.predict_proba(features)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str) -> None:
        """Write all fitted components as ``.npz`` state dicts.

        Creates ``flux_cnn.npz``, ``classifier.npz``, if fine-tuned
        ``joint.npz``, and a ``manifest.json`` recording the architecture
        hyper-parameters so :meth:`load` can rebuild the pipeline without
        the caller re-supplying them.
        """
        import json
        import os

        from ..nn import save_module

        os.makedirs(directory, exist_ok=True)
        save_module(self.cnn, os.path.join(directory, "flux_cnn.npz"))
        save_module(self.classifier, os.path.join(directory, "classifier.npz"))
        if self.joint is not None:
            save_module(self.joint, os.path.join(directory, "joint.npz"))
        manifest = {
            "format_version": _MANIFEST_VERSION,
            "input_size": self.input_size,
            "units": self.units,
            "epochs_used": self.epochs_used,
            "has_joint": self.joint is not None,
        }
        tmp = os.path.join(directory, MANIFEST_NAME + ".tmp")
        with open(tmp, "w") as handle:
            json.dump(manifest, handle, indent=2)
        os.replace(tmp, os.path.join(directory, MANIFEST_NAME))

    @staticmethod
    def read_manifest(directory: str) -> dict | None:
        """Parse and validate ``manifest.json``; ``None`` for legacy dirs.

        Raises :class:`~repro.runtime.errors.CorruptArtifactError` when a
        manifest exists but is unreadable, from an unknown format version,
        or missing/mistyping required fields.
        """
        import json
        import os

        from ..runtime import CorruptArtifactError

        path = os.path.join(directory, MANIFEST_NAME)
        if not os.path.exists(path):
            return None
        try:
            with open(path) as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise CorruptArtifactError(path, f"unreadable manifest: {exc}") from exc
        if not isinstance(manifest, dict):
            raise CorruptArtifactError(path, "manifest must be a JSON object")
        version = manifest.get("format_version")
        if version != _MANIFEST_VERSION:
            raise CorruptArtifactError(
                path, f"unsupported manifest format_version {version!r} "
                f"(this build reads version {_MANIFEST_VERSION})"
            )
        for key in ("input_size", "units", "epochs_used"):
            value = manifest.get(key)
            if not isinstance(value, int) or value <= 0:
                raise CorruptArtifactError(
                    path, f"manifest field {key!r} must be a positive integer, "
                    f"got {value!r}"
                )
        return manifest

    @classmethod
    def load(
        cls,
        directory: str,
        input_size: int | None = None,
        units: int | None = None,
        epochs_used: int | None = None,
    ) -> "SupernovaPipeline":
        """Rebuild a pipeline saved by :meth:`save`.

        Architecture hyper-parameters come from the directory's
        ``manifest.json``; explicitly passed values are cross-checked
        against it and a conflict raises
        :class:`~repro.runtime.errors.CorruptArtifactError` (the directory
        does not hold what the caller expects).  Directories written
        before the manifest existed still load — pass the original
        hyper-parameters as before (defaults: 60 / 100 / 1).  Weight
        archives that do not fit the declared architecture are likewise
        reported as corrupt artifacts.
        """
        import os

        from ..nn import load_module
        from ..runtime import CorruptArtifactError

        manifest = cls.read_manifest(directory)
        if manifest is not None:
            requested = {
                "input_size": input_size, "units": units, "epochs_used": epochs_used,
            }
            for key, value in requested.items():
                if value is not None and value != manifest[key]:
                    raise CorruptArtifactError(
                        os.path.join(directory, MANIFEST_NAME),
                        f"requested {key}={value} but the saved run used "
                        f"{key}={manifest[key]}",
                    )
            input_size = manifest["input_size"]
            units = manifest["units"]
            epochs_used = manifest["epochs_used"]
        else:
            input_size = 60 if input_size is None else input_size
            units = 100 if units is None else units
            epochs_used = 1 if epochs_used is None else epochs_used

        pipe = cls(input_size=input_size, units=units, epochs_used=epochs_used)
        joint_path = os.path.join(directory, "joint.npz")
        if manifest is not None and manifest.get("has_joint") and not os.path.exists(joint_path):
            raise CorruptArtifactError(
                joint_path, "manifest declares a fine-tuned joint model but "
                "joint.npz is missing"
            )
        # Each archive is loaded under its own guard so any failure —
        # checksum mismatch (raised by verified_load with the path) or
        # architecture mismatch (wrapped here) — names the file that is
        # actually at fault, not just the directory.
        def _load_weights(module, path: str, what: str) -> None:
            try:
                load_module(module, path)
            except (KeyError, ValueError) as exc:
                raise CorruptArtifactError(
                    path,
                    f"{what} weights do not match the declared architecture: {exc}",
                ) from exc

        _load_weights(pipe.cnn, os.path.join(directory, "flux_cnn.npz"), "flux CNN")
        _load_weights(
            pipe.classifier, os.path.join(directory, "classifier.npz"), "classifier"
        )
        if os.path.exists(joint_path):
            pipe.joint = JointModel.from_pretrained(pipe.cnn, pipe.classifier)
            _load_weights(pipe.joint, joint_path, "joint model")
        return pipe

    def evaluate_auc(
        self, dataset: SupernovaDataset, use_joint: bool = True, windowed: bool = True
    ) -> float:
        """AUC against the dataset labels.

        With ``windowed=True`` (the paper's protocol) every epoch window
        of every sample is scored as an independent sub-sample.
        """
        if not windowed:
            return auc_score(dataset.labels, self.predict_proba(dataset, use_joint))
        if use_joint and self.joint is not None:
            pairs, dates, labels = self._joint_inputs(dataset, windowed=True)
            return auc_score(labels, self.joint.predict_proba(pairs, dates))
        features, labels = self._classifier_features(
            dataset, use_ground_truth=False, windowed=True
        )
        return auc_score(labels, self.classifier.predict_proba(features))
