"""The paper's contribution: band-wise flux CNN, light-curve classifier,
joint model and training pipeline (Section 4)."""

from .augment import dihedral_transform, make_pair_augmenter, random_crop
from .calibrate import TemperatureScaler
from .classifier import LightCurveClassifier
from .features import (
    DATE_SCALE_DAYS,
    FLUX_FEATURE_DIM,
    dataset_windowed_features,
    features_from_arrays,
    ground_truth_features,
    windowed_epoch_features,
)
from .flux_cnn import MAG_CENTER, MAG_SCALE, BandwiseCNN, PerBandCNNEnsemble
from .joint import JointModel
from .pipeline import SupernovaPipeline, epoch_visit_indices, scaled_dates
from .training import History, TrainConfig, fit, fit_classifier, fit_regressor

__all__ = [
    "dihedral_transform",
    "make_pair_augmenter",
    "random_crop",
    "TemperatureScaler",
    "BandwiseCNN",
    "PerBandCNNEnsemble",
    "MAG_CENTER",
    "MAG_SCALE",
    "LightCurveClassifier",
    "JointModel",
    "SupernovaPipeline",
    "epoch_visit_indices",
    "scaled_dates",
    "features_from_arrays",
    "ground_truth_features",
    "windowed_epoch_features",
    "dataset_windowed_features",
    "DATE_SCALE_DAYS",
    "FLUX_FEATURE_DIM",
    "History",
    "TrainConfig",
    "fit",
    "fit_classifier",
    "fit_regressor",
]
