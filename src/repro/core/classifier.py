"""The light-curve classification network — paper Fig. 6 (right part).

A fully connected network over the 10-dimensional (per epoch) light-curve
features: input layer -> two highway layers -> output layer, trained with
binary cross-entropy to separate SNIa from the other types.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.tensor import Tensor

__all__ = ["LightCurveClassifier"]


class LightCurveClassifier(nn.Module):
    """Binary SNIa classifier over light-curve feature vectors.

    Parameters
    ----------
    input_dim:
        Feature dimension — 10 per epoch (flux + date for 5 bands).
    units:
        Hidden width; the paper's Fig. 9 sweeps this and finds 100 enough.
    n_highway:
        Number of highway layers between the FC layers (paper: 2).
    use_highway:
        If False, replaces highway layers with plain FC + PReLU blocks of
        the same width (architecture ablation).
    """

    def __init__(
        self,
        input_dim: int = 10,
        units: int = 100,
        n_highway: int = 2,
        use_highway: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if input_dim <= 0 or units <= 0:
            raise ValueError("input_dim and units must be positive")
        if n_highway < 0:
            raise ValueError("n_highway must be non-negative")
        rng = rng or np.random.default_rng()
        self.input_dim = input_dim
        self.units = units

        blocks: list[nn.Module] = [nn.Linear(input_dim, units, rng=rng), nn.PReLU()]
        for _ in range(n_highway):
            if use_highway:
                blocks.append(nn.Highway(units, activation="relu", rng=rng))
            else:
                blocks.append(nn.Linear(units, units, rng=rng))
                blocks.append(nn.PReLU())
        blocks.append(nn.Linear(units, 1, rng=rng))
        self.network = nn.Sequential(*blocks)

    def forward(self, features: Tensor) -> Tensor:
        """Map (N, input_dim) features to (N,) logits."""
        if features.ndim != 2 or features.shape[1] != self.input_dim:
            raise ValueError(
                f"expected (N, {self.input_dim}) features, got {features.shape}"
            )
        return self.network(features).reshape(-1)

    def predict_proba(
        self, features: np.ndarray, batch_size: int = 4096, check_finite: bool = True
    ) -> np.ndarray:
        """P(SNIa) for a NumPy feature matrix.

        With ``check_finite`` (the default) non-finite features are
        rejected with a descriptive error instead of silently producing
        garbage probabilities; :class:`repro.serve.InferenceEngine` masks
        and imputes degraded inputs before they reach this point.
        """
        features = np.asarray(features)
        if check_finite and features.size and not np.isfinite(features).all():
            bad_rows = np.flatnonzero(~np.isfinite(features).all(axis=tuple(range(1, features.ndim))))
            raise ValueError(
                f"features contain non-finite values in {bad_rows.size} row(s) "
                f"(first: {bad_rows[:5].tolist()}); use repro.serve.InferenceEngine "
                "to serve degraded inputs"
            )
        was_training = self.training
        self.eval()
        outputs = []
        with nn.no_grad():
            for start in range(0, len(features), batch_size):
                logits = self.forward(Tensor(features[start : start + batch_size]))
                outputs.append(logits.sigmoid().numpy())
        if was_training:
            self.train()
        return np.concatenate(outputs) if outputs else np.empty(0, dtype=np.float32)
