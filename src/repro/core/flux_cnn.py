"""The band-wise CNN flux (magnitude) estimator — paper Fig. 7.

Input is a pair of PSF-matched stamps (reference, observation); the
network computes their difference, compresses it with the signed
logarithm, crops to the configured input size, and regresses the stellar
magnitude of the embedded transient through three convolution modules
(5x5 conv -> batch norm -> PReLU -> 2x2 max pool; 10/20/30 channels) and
three fully connected layers.

All five bands share one set of weights (the paper's design); a per-band
ensemble is available for the ablation.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.tensor import Tensor

__all__ = ["BandwiseCNN", "PerBandCNNEnsemble", "MAG_CENTER", "MAG_SCALE"]

# The regressed output is (mag - MAG_CENTER) / MAG_SCALE, keeping the FC
# output near unit scale for magnitudes in the survey's 21-27 range.
MAG_CENTER = 24.5
MAG_SCALE = 2.5


class BandwiseCNN(nn.Module):
    """Magnitude regressor over (reference, observation) stamp pairs.

    Parameters
    ----------
    input_size:
        Side length the difference image is centre-cropped to before the
        convolutions (Table 1 sweeps 36..65; 60 is the paper's choice).
    channels:
        Channel widths of the three conv modules (paper: 10, 20, 30).
    fc_hidden:
        Widths of the two hidden fully connected layers.
    input_transform:
        ``'signed_log'`` (paper) or ``'linear'`` (ablation).
    pool:
        ``'max'`` (paper — at most one SN per stamp) or ``'avg'``.
    """

    def __init__(
        self,
        input_size: int = 60,
        channels: tuple[int, int, int] = (10, 20, 30),
        fc_hidden: tuple[int, int] = (64, 32),
        input_transform: str = "signed_log",
        pool: str = "max",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if input_transform not in ("signed_log", "linear"):
            raise ValueError(f"unknown input_transform {input_transform!r}")
        if pool not in ("max", "avg"):
            raise ValueError(f"unknown pool {pool!r}")
        if len(channels) != 3:
            raise ValueError("exactly three conv modules (paper architecture)")
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.input_transform = input_transform
        self.pool_kind = pool

        size = input_size
        in_ch = 1
        conv_layers: list[nn.Module] = []
        for ch in channels:
            conv_layers.append(nn.Conv2d(in_ch, ch, kernel_size=5, rng=rng))
            conv_layers.append(nn.BatchNorm2d(ch))
            conv_layers.append(nn.PReLU(ch))
            pool_layer = nn.MaxPool2d(2) if pool == "max" else nn.AvgPool2d(2)
            conv_layers.append(pool_layer)
            size = (size - 4) // 2
            if size < 1:
                raise ValueError(f"input_size {input_size} too small for 3 conv modules")
            in_ch = ch
        self.convs = nn.Sequential(*conv_layers)
        # (conv, bn, act, pool) views of the same modules, consumed by the
        # folded inference path in _conv_inference.
        self._conv_blocks = [
            tuple(conv_layers[i : i + 4]) for i in range(0, len(conv_layers), 4)
        ]
        self.feature_dim = channels[-1] * size * size

        self.fc = nn.Sequential(
            nn.Linear(self.feature_dim, fc_hidden[0], rng=rng),
            nn.PReLU(),
            nn.Linear(fc_hidden[0], fc_hidden[1], rng=rng),
            nn.PReLU(),
            nn.Linear(fc_hidden[1], 1, rng=rng),
        )

    # ------------------------------------------------------------------
    def _crop(self, pairs: Tensor) -> Tensor:
        """Centre-crop the spatial axes to ``input_size``."""
        size = pairs.shape[-1]
        if size < self.input_size:
            raise ValueError(
                f"stamps of size {size} are smaller than input_size {self.input_size}"
            )
        if size == self.input_size:
            return pairs
        start = (size - self.input_size) // 2
        stop = start + self.input_size
        return pairs[:, :, start:stop, start:stop]

    def forward(self, pairs: Tensor) -> Tensor:
        """Map (N, 2, S, S) stamp pairs to (N,) magnitudes."""
        if pairs.ndim != 4 or pairs.shape[1] != 2:
            raise ValueError(f"expected (N, 2, S, S) pairs, got {pairs.shape}")
        pairs = self._crop(pairs)
        diff = pairs[:, 1:2] - pairs[:, 0:1]  # (N, 1, S, S)
        if self.input_transform == "signed_log":
            diff = F.signed_log10(diff)
        if not self.training and not nn.is_grad_enabled():
            features = self._conv_inference(diff).flatten(start_dim=1)
        else:
            features = self.convs(diff).flatten(start_dim=1)
        out = self.fc(features)
        return out.reshape(-1) * MAG_SCALE + MAG_CENTER

    def _conv_inference(self, x: Tensor) -> Tensor:
        """Conv stack with batch norm folded into the conv weights.

        At inference batch norm is a fixed per-channel affine map, so it
        folds into the convolution: ``w' = w * scale`` and
        ``b' = b * scale + shift`` with ``scale = gamma / sqrt(var + eps)``
        and ``shift = beta - mean * scale``.  That removes the separate
        normalisation pass over each conv activation (the largest one is
        the full L1 output).  Both inference entry points
        (:meth:`predict` and :meth:`fused_forward`) route through here,
        so their bit-identity contract is unaffected.  Training uses the
        unfolded ``self.convs`` stack.

        Half-precision inputs compute each block in float32 (half ufuncs
        are an order of magnitude slower than single on CPU) and narrow
        back to float16 at the block boundary, after pooling has shrunk
        the activation 4x — the layer-to-layer storage stays half
        precision without paying half-precision arithmetic.
        """
        half = x.data.dtype == np.float16
        for conv, bn, act, pool in self._conv_blocks:
            if x.data.dtype == np.float16:
                x = Tensor(x.data.astype(np.float32))
            scale = bn.gamma.data / np.sqrt(bn.running_var + bn.eps)
            shift = bn.beta.data - bn.running_mean * scale
            w = conv.weight.data * scale[:, None, None, None]
            b = conv.bias.data * scale + shift if conv.bias is not None else shift
            out = nn.conv2d(
                x,
                Tensor(w.astype(np.float32, copy=False)),
                Tensor(b.astype(np.float32, copy=False)),
                stride=conv.stride,
                padding=conv.padding,
                # The conv output only lives until the activation below
                # reads it, so it can borrow a cached workspace buffer.
                scratch_out=True,
            )
            x = pool(act(out))
            if half:
                x = Tensor(x.data.astype(np.float16))
        return x

    # ------------------------------------------------------------------
    def predict(self, pairs: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Chunked inference over a NumPy batch of pairs; returns magnitudes.

        The fixed-size chunking bounds the im2col workspace of each conv
        layer; it is the float32 reference path that
        :meth:`fused_forward` is pinned bit-identical to.
        """
        was_training = self.training
        self.eval()
        outputs = []
        with nn.no_grad():
            for start in range(0, len(pairs), batch_size):
                chunk = Tensor(pairs[start : start + batch_size])
                outputs.append(self.forward(chunk).numpy())
        if was_training:
            self.train()
        return np.concatenate(outputs) if outputs else np.empty(0, dtype=np.float32)

    def fused_forward(
        self, pairs: np.ndarray, precision: str = "float32"
    ) -> np.ndarray:
        """Single-pass inference over the whole ``(M, 2, S, S)`` batch.

        The serving engine flattens its ``(N, V)`` sample/visit axes into
        one row axis, so every conv layer sees the entire request batch
        as one GEMM instead of :meth:`predict`'s fixed 256-row chunks —
        no per-chunk Tensor/workspace churn, and the bucketed workspace
        cache in :mod:`repro.nn.ops` is reused across the whole batch.

        ``precision="float16"`` stores inter-layer activations in half
        precision while every GEMM still accumulates in float32 (see
        :class:`repro.nn.tensor.inference_precision`); the returned
        magnitudes are always float32.  At float32 the result is
        bit-identical to :meth:`predict`.
        """
        pairs = np.asarray(pairs)
        if len(pairs) == 0:
            return np.empty(0, dtype=np.float32)
        was_training = self.training
        self.eval()
        with nn.no_grad(), nn.inference_precision(precision):
            if nn.inference_dtype() == np.float16:
                pairs = pairs.astype(np.float16)
            out = self.forward(Tensor(pairs)).numpy()
        if was_training:
            self.train()
        return out.astype(np.float32, copy=False)


class PerBandCNNEnsemble(nn.Module):
    """Five independent CNNs, one per band (weight-sharing ablation)."""

    def __init__(self, n_bands: int = 5, rng: np.random.Generator | None = None, **kwargs) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.members = nn.ModuleList([BandwiseCNN(rng=rng, **kwargs) for _ in range(n_bands)])

    def forward(self, pairs: Tensor, band_idx: np.ndarray) -> Tensor:
        """Route each pair to its band's CNN.

        ``band_idx`` is an (N,) integer array aligned with ``pairs``.
        """
        band_idx = np.asarray(band_idx)
        if band_idx.shape[0] != pairs.shape[0]:
            raise ValueError("band_idx must align with pairs")
        outputs: list[Tensor] = []
        order: list[np.ndarray] = []
        for b, member in enumerate(self.members):
            sel = np.flatnonzero(band_idx == b)
            if sel.size == 0:
                continue
            outputs.append(member(pairs[sel]))
            order.append(sel)
        if not outputs:
            # Empty input (or every band filtered out): nothing to
            # concatenate — return an empty float32 result like
            # BandwiseCNN.predict does instead of crashing in concat.
            return Tensor(np.empty(0, dtype=np.float32))
        merged = nn.concat(outputs, axis=0)
        # Undo the per-band grouping.
        permutation = np.concatenate(order)
        inverse = np.empty_like(permutation)
        inverse[permutation] = np.arange(permutation.size)
        return merged[inverse]
