"""The joint end-to-end model — paper Figs. 11-12.

The band-wise CNN and the light-curve classifier are both neural
networks, so they can be glued into one network mapping raw stamp pairs
(plus observation dates) directly to a SNIa probability.  The paper's key
training insight is that the joint network should be *fine-tuned* from
the separately pre-trained components rather than trained from scratch
(Fig. 12 shows fine-tuning converges faster and higher).

The estimated magnitude is converted inside the graph to the same
signed-log flux feature the classifier was pre-trained on, so the two
parts remain compatible at the seam.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.tensor import Tensor, concat
from ..photometry import ZERO_POINT
from .classifier import LightCurveClassifier
from .flux_cnn import BandwiseCNN

__all__ = ["JointModel"]

_LN10 = float(np.log(10.0))


class JointModel(nn.Module):
    """End-to-end classifier: stamp pairs + dates -> SNIa logit.

    Parameters
    ----------
    cnn:
        Band-wise magnitude estimator (weights shared across the visits).
    classifier:
        Light-curve classifier whose ``input_dim`` must equal
        ``2 * n_visits`` for the visits this model will consume.
    """

    def __init__(self, cnn: BandwiseCNN, classifier: LightCurveClassifier) -> None:
        super().__init__()
        self.cnn = cnn
        self.classifier = classifier

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def fresh(
        cls,
        n_visits: int = 5,
        input_size: int = 60,
        units: int = 100,
        rng: np.random.Generator | None = None,
    ) -> "JointModel":
        """Randomly initialised joint model (the Fig. 12 'scratch' arm)."""
        rng = rng or np.random.default_rng()
        return cls(
            BandwiseCNN(input_size=input_size, rng=rng),
            LightCurveClassifier(input_dim=2 * n_visits, units=units, rng=rng),
        )

    @classmethod
    def from_pretrained(
        cls, cnn: BandwiseCNN, classifier: LightCurveClassifier
    ) -> "JointModel":
        """Joint model seeded with *copies* of pre-trained components.

        Copies keep fine-tuning from mutating the original stage-wise
        models (needed when comparing strategies on the same parts).
        """
        cnn_clone = BandwiseCNN(input_size=cnn.input_size)
        cnn_clone.load_state_dict(cnn.state_dict())
        clf_clone = LightCurveClassifier(
            input_dim=classifier.input_dim, units=classifier.units
        )
        clf_clone.load_state_dict(classifier.state_dict())
        return cls(cnn_clone, clf_clone)

    # ------------------------------------------------------------------
    @staticmethod
    def _flux_feature(magnitudes: Tensor) -> Tensor:
        """Differentiable signed-log flux feature from magnitudes.

        flux = 10^(-0.4 (mag - ZP)) is positive, so the signed log is just
        log10(flux + 1).
        """
        flux = ((ZERO_POINT - magnitudes) * (0.4 * _LN10)).exp()
        return (flux + 1.0).log() * (1.0 / _LN10)

    def forward(self, pairs: Tensor, date_features: Tensor) -> Tensor:
        """Compute SNIa logits.

        Parameters
        ----------
        pairs:
            (N, V, 2, S, S) stamp pairs, epoch-major visit order.
        date_features:
            (N, V) *already scaled* observation-date features (as produced
            by :func:`repro.core.features.features_from_arrays`' date
            half: centred per sample, divided by the 50-day scale).
        """
        if pairs.ndim != 5:
            raise ValueError(f"expected (N, V, 2, S, S), got {pairs.shape}")
        n, v = pairs.shape[0], pairs.shape[1]
        if date_features.shape != (n, v):
            raise ValueError("date_features must be (N, V) aligned with pairs")
        expected_dim = 2 * v
        if self.classifier.input_dim != expected_dim:
            raise ValueError(
                f"classifier expects {self.classifier.input_dim} features, "
                f"but {v} visits produce {expected_dim}"
            )
        flat = pairs.reshape(n * v, 2, pairs.shape[3], pairs.shape[4])
        mags = self.cnn(flat).reshape(n, v)
        flux_feats = self._flux_feature(mags)

        from ..datasets import N_BANDS

        blocks: list[Tensor] = []
        for start in range(0, v, N_BANDS):
            stop = min(start + N_BANDS, v)
            blocks.append(flux_feats[:, start:stop])
            blocks.append(date_features[:, start:stop])
        features = concat(blocks, axis=1)
        return self.classifier(features)

    # ------------------------------------------------------------------
    def predict_proba(
        self, pairs: np.ndarray, date_features: np.ndarray, batch_size: int = 64
    ) -> np.ndarray:
        """P(SNIa) for NumPy inputs."""
        was_training = self.training
        self.eval()
        outputs = []
        with nn.no_grad():
            for start in range(0, len(pairs), batch_size):
                logits = self.forward(
                    Tensor(pairs[start : start + batch_size]),
                    Tensor(date_features[start : start + batch_size]),
                )
                outputs.append(logits.sigmoid().numpy())
        if was_training:
            self.train()
        return np.concatenate(outputs) if outputs else np.empty(0, dtype=np.float32)
