"""Training-time image augmentation.

Sky stamps have no preferred orientation, so the eight dihedral
transforms (4 rotations x optional flip) are exact symmetries of the
learning problem; random sub-crops (instead of the fixed centre crop)
teach the CNN translation robustness that max-pooling alone provides
only coarsely.  Both are applied per batch, multiplying the effective
training-set size — essential because the CPU-scale datasets are ~100x
smaller than the paper's.

The supernova sits at the stamp centre; random crops keep it inside the
crop as long as ``crop_size`` is not much smaller than the stamp.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["dihedral_transform", "random_crop", "make_pair_augmenter"]


def dihedral_transform(images: np.ndarray, k_rot: int, flip: bool) -> np.ndarray:
    """Apply one of the 8 dihedral-group elements to (..., H, W) images."""
    out = np.rot90(images, k=k_rot % 4, axes=(-2, -1))
    if flip:
        out = out[..., ::-1]
    return out


def random_crop(
    images: np.ndarray, crop_size: int, rng: np.random.Generator
) -> np.ndarray:
    """Crop (..., S, S) images to ``crop_size`` at a random common offset."""
    size = images.shape[-1]
    if crop_size > size:
        raise ValueError(f"crop_size {crop_size} exceeds image size {size}")
    if crop_size == size:
        return images
    max_off = size - crop_size
    row = int(rng.integers(0, max_off + 1))
    col = int(rng.integers(0, max_off + 1))
    return images[..., row : row + crop_size, col : col + crop_size]


def make_pair_augmenter(
    crop_size: int | None = None,
) -> Callable[[np.ndarray, np.random.Generator], np.ndarray]:
    """Build an augmenter for (N, C, S, S) stamp batches.

    Each call applies one random dihedral transform to the whole batch
    and, if ``crop_size`` is given, one random crop.  Returns contiguous
    float32 output ready for the CNN.
    """

    def augment(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if batch.ndim < 3:
            raise ValueError("augmenter expects image batches (..., H, W)")
        out = dihedral_transform(batch, int(rng.integers(4)), bool(rng.integers(2)))
        if crop_size is not None:
            out = random_crop(out, crop_size, rng)
        return np.ascontiguousarray(out)

    return augment
