"""Probability calibration for the classifier outputs.

Spectroscopic follow-up targets are selected by thresholding P(SNIa), so
the probabilities must mean what they say.  Neural classifiers trained
with early stopping are often over- or under-confident; temperature
scaling (Guo et al. 2017) fixes this post hoc with a single scalar:
``p = sigmoid(logit / T)`` with ``T`` fitted on validation data by
minimising the negative log-likelihood (golden-section search — the NLL
is unimodal in ``T``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["TemperatureScaler"]


def _nll(logits: np.ndarray, labels: np.ndarray, temperature: float) -> float:
    scaled = logits / temperature
    # Stable log(1 + exp(x)).
    softplus = np.maximum(scaled, 0.0) + np.log1p(np.exp(-np.abs(scaled)))
    return float(np.mean(softplus - labels * scaled))


class TemperatureScaler:
    """Fit and apply a temperature to binary classifier logits."""

    def __init__(self) -> None:
        self.temperature: float | None = None

    def fit(
        self,
        logits: np.ndarray,
        labels: np.ndarray,
        bounds: tuple[float, float] = (0.05, 20.0),
        tolerance: float = 1e-4,
    ) -> "TemperatureScaler":
        """Find the NLL-minimising temperature on held-out data."""
        logits = np.asarray(logits, dtype=float).reshape(-1)
        labels = np.asarray(labels, dtype=float).reshape(-1)
        if logits.shape != labels.shape:
            raise ValueError("logits and labels must have the same length")
        if logits.size == 0:
            raise ValueError("empty inputs")
        if not np.all(np.isin(labels, [0.0, 1.0])):
            raise ValueError("labels must be binary")

        low, high = bounds
        if not 0 < low < high:
            raise ValueError("bounds must satisfy 0 < low < high")
        # Golden-section search on the unimodal NLL.
        golden = (np.sqrt(5.0) - 1.0) / 2.0
        a, b = low, high
        c = b - golden * (b - a)
        d = a + golden * (b - a)
        while b - a > tolerance:
            if _nll(logits, labels, c) < _nll(logits, labels, d):
                b = d
            else:
                a = c
            c = b - golden * (b - a)
            d = a + golden * (b - a)
        self.temperature = float((a + b) / 2.0)
        return self

    def transform(self, logits: np.ndarray) -> np.ndarray:
        """Calibrated probabilities for raw logits."""
        if self.temperature is None:
            raise RuntimeError("scaler is not fitted")
        scaled = np.asarray(logits, dtype=float) / self.temperature
        exp_neg_abs = np.exp(-np.abs(scaled))
        return np.where(
            scaled >= 0, 1.0 / (1.0 + exp_neg_abs), exp_neg_abs / (1.0 + exp_neg_abs)
        )

    @staticmethod
    def probabilities_to_logits(probs: np.ndarray, eps: float = 1e-7) -> np.ndarray:
        """Invert a sigmoid (clipped for numerical safety)."""
        probs = np.clip(np.asarray(probs, dtype=float), eps, 1.0 - eps)
        return np.log(probs / (1.0 - probs))
