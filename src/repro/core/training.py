"""Training loops with history tracking and early stopping.

One generic engine drives all three of the paper's training stages
(flux CNN regression, classifier, joint fine-tuning): mini-batch SGD over
``(inputs..., target)`` arrays, per-epoch validation, optional early
stopping on the validation loss, and a :class:`History` record that the
Fig. 12 benchmark plots directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .. import nn
from ..nn.tensor import Tensor

__all__ = ["TrainConfig", "History", "fit", "fit_regressor", "fit_classifier"]


@dataclass
class TrainConfig:
    """Hyper-parameters of one training run."""

    epochs: int = 20
    batch_size: int = 64
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    optimizer: str = "adam"
    momentum: float = 0.9
    grad_clip: float | None = 5.0
    early_stopping_patience: int | None = None
    seed: int = 0
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}")

    def make_optimizer(self, model: nn.Module) -> nn.Optimizer:
        if self.optimizer == "adam":
            return nn.Adam(
                model.parameters(), lr=self.learning_rate, weight_decay=self.weight_decay
            )
        return nn.SGD(
            model.parameters(),
            lr=self.learning_rate,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
        )


@dataclass
class History:
    """Per-epoch training record."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_metric: list[float] = field(default_factory=list)
    best_epoch: int = -1

    @property
    def n_epochs(self) -> int:
        return len(self.train_loss)

    @property
    def best_val_loss(self) -> float:
        return min(self.val_loss) if self.val_loss else float("nan")


LossFn = Callable[[nn.Module, tuple[np.ndarray, ...], np.ndarray], Tensor]


def _default_loss(loss_module: nn.Module) -> LossFn:
    def compute(model: nn.Module, inputs: tuple[np.ndarray, ...], target: np.ndarray) -> Tensor:
        prediction = model(*(Tensor(x) for x in inputs))
        return loss_module(prediction, target)

    return compute


def fit(
    model: nn.Module,
    inputs: Sequence[np.ndarray],
    target: np.ndarray,
    loss_fn: LossFn,
    config: TrainConfig,
    val_inputs: Sequence[np.ndarray] | None = None,
    val_target: np.ndarray | None = None,
    metric: Callable[[np.ndarray, np.ndarray], float] | None = None,
    metric_scores: Callable[[nn.Module, tuple[np.ndarray, ...]], np.ndarray] | None = None,
    augment_fn: Callable[[np.ndarray, np.random.Generator], np.ndarray] | None = None,
) -> History:
    """Generic mini-batch training.

    Parameters
    ----------
    inputs:
        One or more arrays whose first axis indexes samples; each batch is
        passed to the model positionally (wrapped in Tensors by
        ``loss_fn``).
    loss_fn:
        ``loss_fn(model, batch_inputs, batch_target) -> scalar Tensor``.
    metric / metric_scores:
        Optional validation metric: ``metric_scores`` maps the model and
        validation inputs to score arrays, ``metric(target, scores)``
        reduces them (e.g. AUC).
    augment_fn:
        Optional per-batch augmentation applied to the *first* input
        array only (the image input) during training.
    """
    n = len(target)
    if any(len(x) != n for x in inputs):
        raise ValueError("all input arrays must match the target length")
    rng = np.random.default_rng(config.seed)
    optimizer = config.make_optimizer(model)
    history = History()
    best_state: dict[str, np.ndarray] | None = None
    patience_left = config.early_stopping_patience

    for epoch in range(config.epochs):
        model.train()
        order = rng.permutation(n)
        epoch_losses: list[float] = []
        for start in range(0, n, config.batch_size):
            idx = order[start : start + config.batch_size]
            if len(idx) < 2:
                continue  # batch-norm needs at least two samples
            batch_inputs = tuple(x[idx] for x in inputs)
            if augment_fn is not None:
                batch_inputs = (augment_fn(batch_inputs[0], rng),) + batch_inputs[1:]
            batch_target = target[idx]
            model.zero_grad()
            loss = loss_fn(model, batch_inputs, batch_target)
            if not np.isfinite(loss.item()):
                raise RuntimeError(
                    f"non-finite training loss at epoch {epoch + 1}; "
                    "check inputs for NaN/inf or lower the learning rate"
                )
            loss.backward()
            if config.grad_clip is not None:
                nn.clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            epoch_losses.append(loss.item())
        history.train_loss.append(float(np.mean(epoch_losses)))

        if val_inputs is not None and val_target is not None:
            model.eval()
            with nn.no_grad():
                val_loss = loss_fn(model, tuple(val_inputs), val_target).item()
            history.val_loss.append(val_loss)
            if metric is not None and metric_scores is not None:
                scores = metric_scores(model, tuple(val_inputs))
                history.val_metric.append(float(metric(val_target, scores)))
            if history.best_epoch < 0 or val_loss < history.val_loss[history.best_epoch]:
                history.best_epoch = len(history.val_loss) - 1
                best_state = model.state_dict()
                patience_left = config.early_stopping_patience
            elif config.early_stopping_patience is not None:
                patience_left -= 1
                if patience_left < 0:
                    if config.verbose:
                        print(f"  early stop at epoch {epoch + 1}")
                    break
        if config.verbose:
            msg = f"  epoch {epoch + 1}/{config.epochs} train={history.train_loss[-1]:.4f}"
            if history.val_loss:
                msg += f" val={history.val_loss[-1]:.4f}"
            if history.val_metric:
                msg += f" metric={history.val_metric[-1]:.4f}"
            print(msg)

    if best_state is not None:
        model.load_state_dict(best_state)
    return history


def fit_regressor(
    model: nn.Module,
    x: np.ndarray,
    y: np.ndarray,
    config: TrainConfig,
    x_val: np.ndarray | None = None,
    y_val: np.ndarray | None = None,
    augment_fn: Callable[[np.ndarray, np.random.Generator], np.ndarray] | None = None,
) -> History:
    """Train with mean-squared error (flux CNN stage)."""
    return fit(
        model,
        [x],
        y.astype(np.float32),
        _default_loss(nn.MSELoss()),
        config,
        val_inputs=[x_val] if x_val is not None else None,
        val_target=y_val.astype(np.float32) if y_val is not None else None,
        augment_fn=augment_fn,
    )


def fit_classifier(
    model: nn.Module,
    x: np.ndarray,
    y: np.ndarray,
    config: TrainConfig,
    x_val: np.ndarray | None = None,
    y_val: np.ndarray | None = None,
    metric: Callable[[np.ndarray, np.ndarray], float] | None = None,
) -> History:
    """Train with binary cross-entropy (classifier / joint stages)."""

    def scores(m: nn.Module, val_in: tuple[np.ndarray, ...]) -> np.ndarray:
        with nn.no_grad():
            return m(*(Tensor(v) for v in val_in)).sigmoid().numpy()

    return fit(
        model,
        [x],
        y.astype(np.float32),
        _default_loss(nn.BCEWithLogitsLoss()),
        config,
        val_inputs=[x_val] if x_val is not None else None,
        val_target=y_val.astype(np.float32) if y_val is not None else None,
        metric=metric,
        metric_scores=scores if metric is not None else None,
    )
