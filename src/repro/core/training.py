"""Training loops with history tracking, early stopping and fault tolerance.

One generic engine drives all three of the paper's training stages
(flux CNN regression, classifier, joint fine-tuning): mini-batch SGD over
``(inputs..., target)`` arrays, per-epoch validation, optional early
stopping on the validation loss, and a :class:`History` record that the
Fig. 12 benchmark plots directly.

The engine is wrapped by the resilience runtime
(:mod:`repro.runtime`): it can snapshot model / optimizer / RNG state and
the :class:`History` to an atomic checkpoint every ``checkpoint_every``
epochs, resume bit-identically from such a checkpoint after a kill, and
recover from non-finite losses or gradients by rolling back to the last
good epoch with a decayed learning rate (bounded by
:class:`~repro.runtime.guards.RetryPolicy`; exhaustion raises
:class:`~repro.runtime.errors.TrainingDiverged`).
"""

from __future__ import annotations

import copy
import os
import sys
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .. import nn, obs
from ..nn.tensor import Tensor
from ..runtime import RetryPolicy, TrainCheckpoint, TrainingDiverged, grads_are_finite

__all__ = ["TrainConfig", "History", "fit", "fit_regressor", "fit_classifier"]


@dataclass
class TrainConfig:
    """Hyper-parameters of one training run."""

    epochs: int = 20
    batch_size: int = 64
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    optimizer: str = "adam"
    momentum: float = 0.9
    grad_clip: float | None = 5.0
    early_stopping_patience: int | None = None
    seed: int = 0
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}")

    def make_optimizer(self, model: nn.Module) -> nn.Optimizer:
        if self.optimizer == "adam":
            return nn.Adam(
                model.parameters(), lr=self.learning_rate, weight_decay=self.weight_decay
            )
        return nn.SGD(
            model.parameters(),
            lr=self.learning_rate,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
        )

    def fingerprint(self) -> dict:
        """Identity of a run for checkpoint-compatibility checks."""
        return {
            "batch_size": self.batch_size,
            "seed": self.seed,
            "optimizer": self.optimizer,
        }


@dataclass
class History:
    """Per-epoch training record."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_metric: list[float] = field(default_factory=list)
    best_epoch: int = -1

    @property
    def n_epochs(self) -> int:
        return len(self.train_loss)

    @property
    def best_val_loss(self) -> float:
        return min(self.val_loss) if self.val_loss else float("nan")

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by checkpoints)."""
        return {
            "train_loss": list(self.train_loss),
            "val_loss": list(self.val_loss),
            "val_metric": list(self.val_metric),
            "best_epoch": self.best_epoch,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "History":
        """Inverse of :meth:`to_dict`."""
        return cls(
            train_loss=list(data.get("train_loss", [])),
            val_loss=list(data.get("val_loss", [])),
            val_metric=list(data.get("val_metric", [])),
            best_epoch=int(data.get("best_epoch", -1)),
        )


LossFn = Callable[[nn.Module, tuple[np.ndarray, ...], np.ndarray], Tensor]


def _default_loss(loss_module: nn.Module) -> LossFn:
    def compute(model: nn.Module, inputs: tuple[np.ndarray, ...], target: np.ndarray) -> Tensor:
        prediction = model(*(Tensor(x) for x in inputs))
        return loss_module(prediction, target)

    return compute


def fit(
    model: nn.Module,
    inputs: Sequence[np.ndarray],
    target: np.ndarray,
    loss_fn: LossFn,
    config: TrainConfig,
    val_inputs: Sequence[np.ndarray] | None = None,
    val_target: np.ndarray | None = None,
    metric: Callable[[np.ndarray, np.ndarray], float] | None = None,
    metric_scores: Callable[[nn.Module, tuple[np.ndarray, ...]], np.ndarray] | None = None,
    augment_fn: Callable[[np.ndarray, np.random.Generator], np.ndarray] | None = None,
    *,
    checkpoint_path: str | os.PathLike | None = None,
    checkpoint_every: int = 1,
    resume: str | os.PathLike | None = None,
    retry_policy: RetryPolicy | None = None,
    on_epoch_end: Callable[[int, History], None] | None = None,
) -> History:
    """Generic mini-batch training.

    Parameters
    ----------
    inputs:
        One or more arrays whose first axis indexes samples; each batch is
        passed to the model positionally (wrapped in Tensors by
        ``loss_fn``).
    loss_fn:
        ``loss_fn(model, batch_inputs, batch_target) -> scalar Tensor``.
    metric / metric_scores:
        Optional validation metric: ``metric_scores`` maps the model and
        validation inputs to score arrays, ``metric(target, scores)``
        reduces them (e.g. AUC).
    augment_fn:
        Optional per-batch augmentation applied to the *first* input
        array only (the image input) during training.
    checkpoint_path / checkpoint_every:
        When set, a :class:`~repro.runtime.checkpoint.TrainCheckpoint`
        (model, optimizer, RNG, history, early-stopping state) is written
        atomically after every ``checkpoint_every``-th epoch and at the
        final epoch.
    resume:
        Path to a checkpoint written by a previous run with the same
        ``config``; training restores every piece of state and continues
        at the next epoch, producing results bit-identical to an
        uninterrupted run.
    retry_policy:
        Divergence handling (default :class:`~repro.runtime.RetryPolicy`):
        on a non-finite loss or gradient the run rolls back to the last
        good epoch, multiplies the learning rate by the policy's backoff
        and retries; after ``max_retries`` rollbacks it raises
        :class:`~repro.runtime.TrainingDiverged` carrying the history.
    on_epoch_end:
        Optional ``callback(epoch, history)`` invoked after each
        completed (and checkpointed) epoch — LR schedules, progress
        reporting, or fault injection in tests.
    """
    n = len(target)
    if any(len(x) != n for x in inputs):
        raise ValueError("all input arrays must match the target length")
    if checkpoint_every <= 0:
        raise ValueError("checkpoint_every must be positive")
    policy = retry_policy or RetryPolicy()
    rng = np.random.default_rng(config.seed)
    optimizer = config.make_optimizer(model)
    history = History()
    best_state: dict[str, np.ndarray] | None = None
    patience_left = config.early_stopping_patience
    start_epoch = 0
    retries_used = 0
    stopped = False

    if resume is not None:
        ckpt = TrainCheckpoint.load(resume)
        if ckpt.fingerprint and ckpt.fingerprint != config.fingerprint():
            raise ValueError(
                f"checkpoint {os.fspath(resume)} was written by an incompatible run: "
                f"{ckpt.fingerprint} != {config.fingerprint()}"
            )
        model.load_state_dict(ckpt.model_state)
        optimizer.load_state_dict(ckpt.optimizer_state)
        rng.bit_generator.state = ckpt.rng_state
        history = History.from_dict(ckpt.history)
        best_state = ckpt.best_state
        patience_left = ckpt.patience_left
        retries_used = ckpt.retries_used
        start_epoch = ckpt.epoch + 1
        stopped = ckpt.stopped

    def snapshot() -> dict:
        return {
            "model": model.state_dict(),
            "optim": optimizer.state_dict(),
            "rng": copy.deepcopy(rng.bit_generator.state),
            "history": history.to_dict(),
            "best": best_state,
            "patience": patience_left,
        }

    def restore(snap: dict) -> None:
        nonlocal history, best_state, patience_left
        model.load_state_dict(snap["model"])
        optimizer.load_state_dict(snap["optim"])
        rng.bit_generator.state = copy.deepcopy(snap["rng"])
        history = History.from_dict(snap["history"])
        best_state = snap["best"]
        patience_left = snap["patience"]

    def write_checkpoint(epoch: int) -> None:
        if checkpoint_path is None:
            return
        TrainCheckpoint(
            epoch=epoch,
            model_state=model.state_dict(),
            optimizer_state=optimizer.state_dict(),
            rng_state=rng.bit_generator.state,
            history=history.to_dict(),
            best_state=best_state,
            patience_left=patience_left,
            retries_used=retries_used,
            lr=optimizer.lr,
            stopped=stopped,
            fingerprint=config.fingerprint(),
        ).save(checkpoint_path)

    last_good = snapshot()

    epoch = start_epoch
    while epoch < config.epochs and not stopped:
        telemetry = obs.active()
        model.train()
        order = rng.permutation(n)
        epoch_losses: list[float] = []
        epoch_grad_norms: list[float] = []
        diverged = False
        for start in range(0, n, config.batch_size):
            idx = order[start : start + config.batch_size]
            if len(idx) < 2:
                continue  # batch-norm needs at least two samples
            batch_inputs = tuple(x[idx] for x in inputs)
            if augment_fn is not None:
                batch_inputs = (augment_fn(batch_inputs[0], rng),) + batch_inputs[1:]
            batch_target = target[idx]
            model.zero_grad()
            loss = loss_fn(model, batch_inputs, batch_target)
            if not np.isfinite(loss.item()):
                diverged = True
                break
            loss.backward()
            if not grads_are_finite(model.parameters()):
                diverged = True
                break
            if config.grad_clip is not None:
                epoch_grad_norms.append(
                    nn.clip_grad_norm(model.parameters(), config.grad_clip)
                )
            elif telemetry is not None:
                epoch_grad_norms.append(
                    float(
                        np.sqrt(
                            sum(
                                float((p.grad**2).sum())
                                for p in model.parameters()
                                if p.grad is not None
                            )
                        )
                    )
                )
            optimizer.step()
            epoch_losses.append(loss.item())

        if diverged:
            retries_used += 1
            failed_lr = optimizer.lr
            if telemetry is not None:
                telemetry.emit(
                    "train.divergence",
                    level="warning",
                    epoch=epoch,
                    retry=retries_used,
                    max_retries=policy.max_retries,
                    failed_lr=failed_lr,
                )
                telemetry.metrics.counter("train.divergence_retries").inc()
            if retries_used > policy.max_retries:
                raise TrainingDiverged(
                    f"non-finite training loss at epoch {epoch + 1} after "
                    f"{policy.max_retries} recovery attempts; check inputs for "
                    "NaN/inf or lower the learning rate",
                    history=history,
                    attempts=retries_used - 1,
                    last_lr=failed_lr,
                )
            restore(last_good)
            optimizer.lr = policy.next_lr(failed_lr)
            if config.verbose and telemetry is None:
                print(
                    f"  divergence at epoch {epoch + 1}: rolled back, "
                    f"retry {retries_used}/{policy.max_retries} at lr={optimizer.lr:.2e}",
                    file=sys.stderr,
                )
            continue  # retry the same epoch from the last good state

        history.train_loss.append(float(np.mean(epoch_losses)))

        if val_inputs is not None and val_target is not None:
            model.eval()
            with nn.no_grad():
                val_loss = loss_fn(model, tuple(val_inputs), val_target).item()
            history.val_loss.append(val_loss)
            if metric is not None and metric_scores is not None:
                scores = metric_scores(model, tuple(val_inputs))
                history.val_metric.append(float(metric(val_target, scores)))
            if history.best_epoch < 0 or val_loss < history.val_loss[history.best_epoch]:
                history.best_epoch = len(history.val_loss) - 1
                best_state = model.state_dict()
                patience_left = config.early_stopping_patience
            elif config.early_stopping_patience is not None:
                patience_left -= 1
                if patience_left < 0:
                    stopped = True
                    if config.verbose and telemetry is None:
                        print(f"  early stop at epoch {epoch + 1}", file=sys.stderr)
        if telemetry is not None:
            grad_norm = float(np.mean(epoch_grad_norms)) if epoch_grad_norms else None
            telemetry.emit(
                "train.epoch",
                epoch=epoch,
                train_loss=history.train_loss[-1],
                val_loss=history.val_loss[-1] if history.val_loss else None,
                val_metric=history.val_metric[-1] if history.val_metric else None,
                lr=optimizer.lr,
                grad_norm=grad_norm,
                retries_used=retries_used,
                best_epoch=history.best_epoch,
                early_stopped=stopped,
            )
            metrics = telemetry.metrics
            metrics.counter("train.epochs").inc()
            metrics.gauge("train.lr").set(optimizer.lr)
            metrics.gauge("train.train_loss").set(history.train_loss[-1])
            if history.val_loss:
                metrics.gauge("train.val_loss").set(history.val_loss[-1])
            if grad_norm is not None:
                metrics.gauge("train.grad_norm").set(grad_norm)
        if config.verbose and telemetry is None:
            msg = f"  epoch {epoch + 1}/{config.epochs} train={history.train_loss[-1]:.4f}"
            if history.val_loss:
                msg += f" val={history.val_loss[-1]:.4f}"
            if history.val_metric:
                msg += f" metric={history.val_metric[-1]:.4f}"
            print(msg, file=sys.stderr)

        last_good = snapshot()
        if (epoch + 1) % checkpoint_every == 0 or epoch + 1 == config.epochs or stopped:
            write_checkpoint(epoch)
        if on_epoch_end is not None:
            on_epoch_end(epoch, history)
        epoch += 1

    if best_state is not None:
        model.load_state_dict(best_state)
    return history


def fit_regressor(
    model: nn.Module,
    x: np.ndarray,
    y: np.ndarray,
    config: TrainConfig,
    x_val: np.ndarray | None = None,
    y_val: np.ndarray | None = None,
    augment_fn: Callable[[np.ndarray, np.random.Generator], np.ndarray] | None = None,
    **fit_kwargs: object,
) -> History:
    """Train with mean-squared error (flux CNN stage).

    Keyword arguments (``checkpoint_path``, ``resume``, ...) are passed
    through to :func:`fit`.
    """
    return fit(
        model,
        [x],
        y.astype(np.float32),
        _default_loss(nn.MSELoss()),
        config,
        val_inputs=[x_val] if x_val is not None else None,
        val_target=y_val.astype(np.float32) if y_val is not None else None,
        augment_fn=augment_fn,
        **fit_kwargs,
    )


def fit_classifier(
    model: nn.Module,
    x: np.ndarray,
    y: np.ndarray,
    config: TrainConfig,
    x_val: np.ndarray | None = None,
    y_val: np.ndarray | None = None,
    metric: Callable[[np.ndarray, np.ndarray], float] | None = None,
    **fit_kwargs: object,
) -> History:
    """Train with binary cross-entropy (classifier / joint stages).

    Keyword arguments (``checkpoint_path``, ``resume``, ...) are passed
    through to :func:`fit`.
    """

    def scores(m: nn.Module, val_in: tuple[np.ndarray, ...]) -> np.ndarray:
        with nn.no_grad():
            return m(*(Tensor(v) for v in val_in)).sigmoid().numpy()

    return fit(
        model,
        [x],
        y.astype(np.float32),
        _default_loss(nn.BCEWithLogitsLoss()),
        config,
        val_inputs=[x_val] if x_val is not None else None,
        val_target=y_val.astype(np.float32) if y_val is not None else None,
        metric=metric,
        metric_scores=scores if metric is not None else None,
        **fit_kwargs,
    )
