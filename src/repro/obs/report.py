"""Render a telemetry directory as one human-readable report.

Backs the ``repro metrics DIR`` subcommand: reads the ``events.jsonl``
stream and the ``metrics.json`` snapshot written by a telemetry session
and produces a single report covering session identity, event volumes,
counters, gauges, histograms and the perf-timer breakdown — so "what
did that run do" needs one command, not three files and a jq pipeline.
"""

from __future__ import annotations

import json
import os

from .log import EVENTS_FILE, read_events
from .metrics import METRICS_FILE, prometheus_from_snapshot

__all__ = [
    "load_snapshot",
    "summarize_directory",
    "tail_events",
    "format_event",
]


def load_snapshot(directory: str | os.PathLike) -> dict:
    """The ``metrics.json`` snapshot of a telemetry dir (``{}`` if absent)."""
    path = os.path.join(os.fspath(directory), METRICS_FILE)
    if not os.path.exists(path):
        return {}
    with open(path) as handle:
        return json.load(handle)


def _events_path(directory: str | os.PathLike) -> str:
    return os.path.join(os.fspath(directory), EVENTS_FILE)


def format_event(record: dict) -> str:
    """One-line human rendering of a structured event record."""
    header_keys = ("schema", "ts", "seq", "level", "event", "message")
    extras = {k: v for k, v in record.items() if k not in header_keys}
    parts = [
        f"#{record.get('seq', '?')}",
        f"[{record.get('level', '?')}]",
        str(record.get("event", "?")),
    ]
    message = record.get("message")
    if message:
        parts.append(str(message))
    if extras:
        parts.append(
            " ".join(f"{k}={json.dumps(v, separators=(',', ':'))}" for k, v in sorted(extras.items()))
        )
    return " ".join(parts)


def tail_events(directory: str | os.PathLike, n: int = 10) -> list[dict]:
    """The last ``n`` records of the directory's event stream."""
    path = _events_path(directory)
    if not os.path.exists(path):
        return []
    records = list(read_events(path))
    return records[-n:] if n > 0 else []


def _histogram_lines(name: str, hist: dict) -> list[str]:
    lines = [
        f"  {name}: count={hist['count']} sum={hist['sum']:.6g}"
        + (
            f" mean={hist['sum'] / hist['count']:.6g}"
            if hist["count"]
            else ""
        )
    ]
    bounds = list(hist["buckets"]) + [float("inf")]
    for bound, count in zip(bounds, hist["counts"]):
        if count == 0:
            continue
        label = "+Inf" if bound == float("inf") else f"{bound:g}"
        lines.append(f"    le={label}: {count}")
    return lines


def summarize_directory(directory: str | os.PathLike) -> str:
    """Full text report of one telemetry directory.

    Sections: session (from the first/last events), event volume by name
    with worst level, counters, gauges, histograms, perf timers.  Raises
    :class:`FileNotFoundError` when the directory holds neither an event
    stream nor a metrics snapshot.
    """
    directory = os.fspath(directory)
    events_path = _events_path(directory)
    snapshot = load_snapshot(directory)
    has_events = os.path.exists(events_path)
    if not has_events and not snapshot:
        raise FileNotFoundError(
            f"{directory} contains neither {EVENTS_FILE} nor {METRICS_FILE}; "
            "is it a telemetry directory?"
        )

    lines: list[str] = [f"telemetry report: {directory}"]
    n_events = 0
    by_event: dict[str, int] = {}
    by_level: dict[str, int] = {}
    run_ids: dict[str, None] = {}
    span_stats: dict[str, list[float]] = {}  # stage -> [count, total_s]
    trace_ids: set[str] = set()
    first = last = None
    if has_events:
        for record in read_events(events_path):
            n_events += 1
            if first is None:
                first = record
            last = record
            by_event[record.get("event", "?")] = by_event.get(record.get("event", "?"), 0) + 1
            by_level[record.get("level", "?")] = by_level.get(record.get("level", "?"), 0) + 1
            rid = record.get("run_id")
            if rid:
                run_ids[rid] = None
            if record.get("event") == "trace.span":
                name = record.get("name")
                duration = record.get("duration_s")
                if isinstance(name, str) and isinstance(duration, (int, float)):
                    entry = span_stats.setdefault(name, [0, 0.0])
                    entry[0] += 1
                    entry[1] += float(duration)
                tid = record.get("trace_id")
                if isinstance(tid, str):
                    trace_ids.add(tid)

    lines.append("")
    lines.append("session")
    if run_ids:
        lines.append(f"  run_id: {', '.join(run_ids)}")
    if first is not None and last is not None:
        lines.append(
            f"  events: {n_events} spanning {max(last.get('ts', 0) - first.get('ts', 0), 0.0):.3f}s"
        )
        if last.get("event") == "session.end":
            lines.append(
                f"  status: {last.get('status', '?')} "
                f"(duration {last.get('duration_s', '?')}s)"
            )
    if by_level:
        lines.append(
            "  levels: "
            + " ".join(f"{lvl}={by_level[lvl]}" for lvl in ("error", "warning", "info", "debug") if lvl in by_level)
        )

    if by_event:
        lines.append("")
        lines.append("events by type")
        width = max(len(name) for name in by_event)
        for name in sorted(by_event):
            lines.append(f"  {name:<{width}}  {by_event[name]}")

    if span_stats:
        lines.append("")
        lines.append(f"trace spans ({len(trace_ids)} trace(s); "
                     "details via `repro trace DIR`)")
        width = max(len(name) for name in span_stats)
        for name in sorted(span_stats):
            count, total = span_stats[name]
            lines.append(
                f"  {name:<{width}}  count={int(count)} total={total:.6f}s "
                f"mean={total / count:.6f}s"
            )

    counters = snapshot.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}}  {value:g}")

    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("gauges")
        width = max(len(name) for name in gauges)
        for name, value in gauges.items():
            lines.append(f"  {name:<{width}}  {value:g}")

    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("histograms")
        for name, hist in histograms.items():
            lines.extend(_histogram_lines(name, hist))

    perf = snapshot.get("sources", {}).get("perf", {})
    timers = perf.get("timers", {})
    if timers:
        lines.append("")
        lines.append("perf timers")
        width = max(len(name) for name in timers)
        for name, entry in timers.items():
            lines.append(
                f"  {name:<{width}}  calls={entry['calls']} "
                f"total={entry['total_s']:.6f}s mean={entry['mean_s']:.6f}s"
            )
    perf_counters = perf.get("counters", {})
    if perf_counters:
        lines.append("")
        lines.append("perf counters")
        width = max(len(name) for name in perf_counters)
        for name, value in perf_counters.items():
            lines.append(f"  {name:<{width}}  {value:g}")

    return "\n".join(lines) + "\n"


def prometheus_report(directory: str | os.PathLike) -> str:
    """Prometheus text exposition re-rendered from ``metrics.json``."""
    return prometheus_from_snapshot(load_snapshot(directory))
