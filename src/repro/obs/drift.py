"""Score/flux drift monitoring against a committed training baseline.

Single-epoch classification degrades *silently*: a feed whose bands
stopped arriving, or whose photometric calibration slid, still produces
probabilities — they just stop meaning anything.  The serving layer
therefore compares the rolling distribution of what it outputs (the
classifier score) and what it sees (the mean signed-log flux feature per
sample) against a :class:`DriftBaseline` captured from the training set
and committed next to the model weights:

* **PSI** (population stability index) over the baseline's fixed bins —
  the standard "has the population shifted" number; > 0.25 is the
  conventional "act now" threshold;
* **KS** (two-sample Kolmogorov–Smirnov statistic, evaluated on the bin
  grid) — sensitive to localised shape changes PSI smears out.

:class:`DriftMonitor` keeps a bounded rolling window, is thread-safe
(serving worker threads feed it concurrently), and reports a
:class:`DriftReport` whose ``flagged`` bit trips when either statistic
of either distribution crosses its threshold with enough samples in the
window.  The serving engine emits a ``drift.flagged`` event on the clean
→ drifted transition (and ``drift.recovered`` on the way back), so a
quiet feed stays quiet.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "BASELINE_FILE",
    "DriftBaseline",
    "DriftMonitor",
    "DriftReport",
    "psi_statistic",
    "ks_statistic",
]

#: File name of the committed baseline inside a model directory.
BASELINE_FILE = "drift_baseline.json"

_EPS = 1e-4


def _histogram_probs(samples: np.ndarray, edges: np.ndarray) -> np.ndarray:
    counts, _ = np.histogram(samples, bins=edges)
    total = counts.sum()
    if total == 0:
        return np.full(len(edges) - 1, 1.0 / (len(edges) - 1))
    return counts / total


def psi_statistic(expected: np.ndarray, observed: np.ndarray) -> float:
    """Population stability index between two probability vectors.

    Both vectors live on the same bins; zero cells are floored at a
    small epsilon so one empty bucket cannot produce an infinite PSI.
    """
    expected = np.clip(np.asarray(expected, dtype=float), _EPS, None)
    observed = np.clip(np.asarray(observed, dtype=float), _EPS, None)
    expected = expected / expected.sum()
    observed = observed / observed.sum()
    return float(np.sum((observed - expected) * np.log(observed / expected)))


def ks_statistic(expected: np.ndarray, observed: np.ndarray) -> float:
    """Max CDF distance between two binned probability vectors."""
    expected = np.asarray(expected, dtype=float)
    observed = np.asarray(observed, dtype=float)
    e = expected / max(expected.sum(), _EPS)
    o = observed / max(observed.sum(), _EPS)
    return float(np.max(np.abs(np.cumsum(e) - np.cumsum(o))))


@dataclass
class DriftBaseline:
    """Binned reference distributions captured at training time.

    ``score_edges`` / ``score_probs`` bin the classifier probability on
    ``[0, 1]``; ``flux_edges`` / ``flux_probs`` (optional) bin the mean
    signed-log flux feature per sample.  ``n`` records how many training
    samples the baseline summarises.
    """

    score_edges: np.ndarray
    score_probs: np.ndarray
    flux_edges: np.ndarray | None = None
    flux_probs: np.ndarray | None = None
    n: int = 0

    def __post_init__(self) -> None:
        self.score_edges = np.asarray(self.score_edges, dtype=float)
        self.score_probs = np.asarray(self.score_probs, dtype=float)
        if self.score_edges.ndim != 1 or len(self.score_edges) < 3:
            raise ValueError("score_edges must be a 1-D array of >= 3 bin edges")
        if len(self.score_probs) != len(self.score_edges) - 1:
            raise ValueError("score_probs must have one entry per bin")
        if self.flux_edges is not None:
            self.flux_edges = np.asarray(self.flux_edges, dtype=float)
            self.flux_probs = np.asarray(self.flux_probs, dtype=float)
            if len(self.flux_probs) != len(self.flux_edges) - 1:
                raise ValueError("flux_probs must have one entry per bin")

    @classmethod
    def from_samples(
        cls,
        scores: np.ndarray,
        flux: np.ndarray | None = None,
        n_bins: int = 20,
    ) -> "DriftBaseline":
        """Bin training-set scores (and optionally flux features).

        Score bins are fixed on ``[0, 1]``; flux bins span the observed
        range widened by 10% so serving values just outside the training
        range do not all collapse into the edge bins.
        """
        scores = np.asarray(scores, dtype=float).ravel()
        if scores.size == 0:
            raise ValueError("cannot build a drift baseline from zero scores")
        score_edges = np.linspace(0.0, 1.0, n_bins + 1)
        flux_edges = flux_probs = None
        if flux is not None:
            flux = np.asarray(flux, dtype=float).ravel()
            lo, hi = float(np.min(flux)), float(np.max(flux))
            pad = 0.1 * max(hi - lo, 1e-6)
            flux_edges = np.linspace(lo - pad, hi + pad, n_bins + 1)
            flux_probs = _histogram_probs(flux, flux_edges)
        return cls(
            score_edges=score_edges,
            score_probs=_histogram_probs(scores, score_edges),
            flux_edges=flux_edges,
            flux_probs=flux_probs,
            n=int(scores.size),
        )

    def save(self, directory: str | os.PathLike) -> None:
        """Write ``drift_baseline.json`` into a model directory."""
        payload = {
            "score_edges": self.score_edges.tolist(),
            "score_probs": self.score_probs.tolist(),
            "n": self.n,
        }
        if self.flux_edges is not None:
            payload["flux_edges"] = self.flux_edges.tolist()
            payload["flux_probs"] = self.flux_probs.tolist()
        path = os.path.join(os.fspath(directory), BASELINE_FILE)
        with open(path + ".tmp", "w") as handle:
            json.dump(payload, handle, indent=2)
        os.replace(path + ".tmp", path)

    @classmethod
    def load(cls, directory: str | os.PathLike) -> "DriftBaseline | None":
        """Read the committed baseline from a model dir; ``None`` if absent."""
        path = os.path.join(os.fspath(directory), BASELINE_FILE)
        if not os.path.exists(path):
            return None
        from ..runtime import CorruptArtifactError

        try:
            with open(path) as handle:
                payload = json.load(handle)
            return cls(
                score_edges=np.asarray(payload["score_edges"], dtype=float),
                score_probs=np.asarray(payload["score_probs"], dtype=float),
                flux_edges=(
                    np.asarray(payload["flux_edges"], dtype=float)
                    if "flux_edges" in payload
                    else None
                ),
                flux_probs=(
                    np.asarray(payload["flux_probs"], dtype=float)
                    if "flux_probs" in payload
                    else None
                ),
                n=int(payload.get("n", 0)),
            )
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise CorruptArtifactError(path, f"unreadable drift baseline: {exc}") from exc


@dataclass
class DriftReport:
    """One evaluation of the rolling window against the baseline."""

    n_window: int
    score_psi: float = 0.0
    score_ks: float = 0.0
    flux_psi: float = 0.0
    flux_ks: float = 0.0
    flagged: bool = False
    reasons: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-ready form (embedded in ``drift.flagged`` events)."""
        return {
            "n_window": self.n_window,
            "score_psi": round(self.score_psi, 6),
            "score_ks": round(self.score_ks, 6),
            "flux_psi": round(self.flux_psi, 6),
            "flux_ks": round(self.flux_ks, 6),
            "flagged": self.flagged,
            "reasons": list(self.reasons),
        }


class DriftMonitor:
    """Rolling-window drift detector over served scores (and flux).

    Parameters
    ----------
    baseline:
        The committed training-set :class:`DriftBaseline`.
    window:
        Maximum number of recent samples retained.
    min_samples:
        Evaluations with fewer window samples never flag — PSI on a
        handful of scores is noise, not signal.
    psi_threshold / ks_threshold:
        Trip levels per statistic (applied to scores and flux alike).
    """

    def __init__(
        self,
        baseline: DriftBaseline,
        window: int = 500,
        min_samples: int = 50,
        psi_threshold: float = 0.25,
        ks_threshold: float = 0.30,
    ) -> None:
        if window < 1 or min_samples < 1:
            raise ValueError("window and min_samples must be >= 1")
        self.baseline = baseline
        self.min_samples = int(min_samples)
        self.psi_threshold = float(psi_threshold)
        self.ks_threshold = float(ks_threshold)
        self._scores: deque[float] = deque(maxlen=int(window))
        self._flux: deque[float] = deque(maxlen=int(window))
        self._lock = threading.Lock()
        #: Whether the last :meth:`check` came back flagged.
        self.flagged = False

    def update(
        self,
        scores: np.ndarray | list[float] | float,
        flux: np.ndarray | list[float] | float | None = None,
    ) -> None:
        """Fold served sample scores (and flux features) into the window."""
        scores = np.atleast_1d(np.asarray(scores, dtype=float))
        flux_arr = (
            None if flux is None else np.atleast_1d(np.asarray(flux, dtype=float))
        )
        with self._lock:
            self._scores.extend(float(s) for s in scores)
            if flux_arr is not None:
                self._flux.extend(float(f) for f in flux_arr if np.isfinite(f))

    def observe(self, scores, flux=None) -> "DriftReport":
        """:meth:`update` then :meth:`check` in one call."""
        self.update(scores, flux)
        return self.check()

    def check(self) -> DriftReport:
        """Evaluate the current window; updates :attr:`flagged`."""
        base = self.baseline
        with self._lock:
            scores = np.asarray(self._scores, dtype=float)
            flux = np.asarray(self._flux, dtype=float)
        report = DriftReport(n_window=int(scores.size))
        if scores.size >= self.min_samples:
            observed = _histogram_probs(np.clip(scores, 0.0, 1.0), base.score_edges)
            report.score_psi = psi_statistic(base.score_probs, observed)
            report.score_ks = ks_statistic(base.score_probs, observed)
            if report.score_psi > self.psi_threshold:
                report.reasons.append(
                    f"score PSI {report.score_psi:.3f} > {self.psi_threshold}"
                )
            if report.score_ks > self.ks_threshold:
                report.reasons.append(
                    f"score KS {report.score_ks:.3f} > {self.ks_threshold}"
                )
        if base.flux_edges is not None and flux.size >= self.min_samples:
            observed = _histogram_probs(flux, base.flux_edges)
            report.flux_psi = psi_statistic(base.flux_probs, observed)
            report.flux_ks = ks_statistic(base.flux_probs, observed)
            if report.flux_psi > self.psi_threshold:
                report.reasons.append(
                    f"flux PSI {report.flux_psi:.3f} > {self.psi_threshold}"
                )
            if report.flux_ks > self.ks_threshold:
                report.reasons.append(
                    f"flux KS {report.flux_ks:.3f} > {self.ks_threshold}"
                )
        report.flagged = bool(report.reasons)
        self.flagged = report.flagged
        return report
