"""Telemetry session lifecycle: the one switch the whole stack checks.

Telemetry is **off by default** and must cost nothing while off.  The
entire disabled path is :func:`active` — a read of one module-level
reference returning ``None`` — mirroring the no-op-scope trick of
:mod:`repro.perf.instrument`.  Instrumented code does::

    session = obs.active()
    if session is not None:
        session.emit("serve.request", ...)
        session.metrics.counter("serve.requests").inc()

:func:`start` opens a :class:`TelemetrySession` bound to a directory:

* ``events.jsonl`` — the structured event stream (:mod:`repro.obs.log`);
* ``metrics.json`` — the registry snapshot, written on :func:`stop`;

pushes the session's ``run_id`` onto the *process-wide* context layer so
every thread stamps it, enables :mod:`repro.perf` collection, and
registers the perf timers as a metrics source so one ``repro metrics``
report covers events, counters, histograms *and* timers.

Sessions do not nest: :func:`start` while a session is active raises —
one process serves one telemetry directory at a time, which is what
keeps the hot-path check a single load.
"""

from __future__ import annotations

import os
import secrets
import threading
import time

from .log import EVENTS_FILE, EventLog, context
from .metrics import METRICS_FILE, MetricsRegistry

__all__ = ["TelemetrySession", "start", "stop", "active", "new_id"]

_STATE_LOCK = threading.Lock()
_SESSION: "TelemetrySession | None" = None


def new_id(prefix: str = "run") -> str:
    """Fresh identifier: ``<prefix>-<utc-compact-time>-<6 hex chars>``."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{prefix}-{stamp}-{secrets.token_hex(3)}"


class TelemetrySession:
    """One enabled telemetry run bound to an output directory.

    Created via :func:`start`; carries the :class:`EventLog`, the
    :class:`MetricsRegistry` and the ``run_id`` every event is stamped
    with.  Per-request identifiers are minted with
    :meth:`new_request_id`, which scopes them under the run so one
    ``grep request_id events.jsonl`` finds both the serving audit record
    and any terminal error event of the same sample.
    """

    def __init__(self, directory: str | os.PathLike, run_id: str | None = None) -> None:
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.run_id = run_id or new_id()
        self.log = EventLog(os.path.join(self.directory, EVENTS_FILE))
        self.metrics = MetricsRegistry()
        self.tracer = None  # set by start(..., trace=...)
        self._context = context(scope="process", run_id=self.run_id)
        self._request_counter = 0
        self._counter_lock = threading.Lock()
        self._started = time.time()
        self._closed = False

    # ------------------------------------------------------------------
    # Emission helpers
    # ------------------------------------------------------------------
    def emit(self, event: str, level: str = "info", message: str | None = None,
             **fields: object) -> dict:
        """Emit one structured event through the session log."""
        return self.log.emit(event, level=level, message=message, **fields)

    def new_request_id(self, index: int | None = None) -> str:
        """Mint a request identifier scoped under this session's run.

        With ``index`` given (a dataset/sample position) the id is
        deterministic per run — ``<run_id>/r<index>`` — so replaying the
        same dataset yields correlatable ids; otherwise a process-unique
        counter is used.
        """
        if index is not None:
            return f"{self.run_id}/r{int(index)}"
        with self._counter_lock:
            self._request_counter += 1
            return f"{self.run_id}/q{self._request_counter}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _open(self, **start_fields: object) -> None:
        self._context.__enter__()
        self.emit("session.start", directory=self.directory, **start_fields)

    def close(self, status: str = "ok", **end_fields: object) -> dict:
        """Emit the terminal event, write ``metrics.json``, close the log.

        Returns the final metrics snapshot.  Idempotent: a second close
        returns an empty dict.
        """
        if self._closed:
            return {}
        self._closed = True
        self.emit(
            "session.end",
            level="info" if status == "ok" else "error",
            status=status,
            duration_s=round(time.time() - self._started, 6),
            **end_fields,
        )
        snapshot = self.metrics.write(os.path.join(self.directory, METRICS_FILE))
        self.log.close()
        self._context.__exit__(None, None, None)
        return snapshot


def start(
    directory: str | os.PathLike,
    run_id: str | None = None,
    enable_perf: bool = True,
    trace: object = None,
    **start_fields: object,
) -> TelemetrySession:
    """Enable telemetry into ``directory`` and return the live session.

    ``start_fields`` ride on the ``session.start`` event (the CLI passes
    the subcommand and its arguments).  With ``enable_perf`` (default)
    the :mod:`repro.perf` timers are reset, switched on, and registered
    as the ``perf`` metrics source.  ``trace`` enables request tracing:
    pass a :class:`repro.obs.trace.TraceConfig`, a spec string
    (``"always"`` / ``"rate:0.1"`` / ``"slow:250"``), or ``True`` for
    the default policy; the tracer sinks spans into this session's
    event log and is uninstalled by :func:`stop`.
    """
    global _SESSION
    from .. import perf

    with _STATE_LOCK:
        if _SESSION is not None:
            raise RuntimeError(
                f"telemetry already active in {_SESSION.directory}; stop() it first"
            )
        session = TelemetrySession(directory, run_id=run_id)
        if enable_perf:
            perf.reset()
            perf.enable()
            session.metrics.register_source("perf", perf.metrics_source)
        from ..nn import workspace_metrics_source

        session.metrics.register_source("nn.workspace", workspace_metrics_source)
        if trace is not None and trace is not False:
            from . import trace as trace_mod

            if isinstance(trace, str):
                config = trace_mod.TraceConfig.parse(trace)
            elif trace is True:
                config = trace_mod.TraceConfig()
            else:
                config = trace
            session.tracer = trace_mod.Tracer(session, config)
            trace_mod.install(session.tracer)
        session._open(**start_fields)
        _SESSION = session
    return session


def stop(status: str = "ok", **end_fields: object) -> dict:
    """Close the active session (no-op if none); returns its final snapshot."""
    global _SESSION
    from .. import perf

    with _STATE_LOCK:
        session = _SESSION
        _SESSION = None
    if session is None:
        return {}
    if session.tracer is not None:
        from . import trace as trace_mod

        trace_mod.uninstall()
    snapshot = session.close(status=status, **end_fields)
    perf.disable()
    return snapshot


def active() -> TelemetrySession | None:
    """The live session, or ``None`` — the entire cost of disabled telemetry."""
    return _SESSION
