"""Unified telemetry: structured events, metrics, tracing, drift watch.

Every layer of the system reports through this package when (and only
when) a telemetry session is active:

* :mod:`repro.obs.log` — schema-versioned JSONL event records with a
  process-wide + thread-local context stack stamping ``run_id`` /
  ``request_id`` onto every line;
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms with JSON snapshots and Prometheus text exposition, plus
  pluggable sources (the :mod:`repro.perf` timers register as one);
* :mod:`repro.obs.session` — the on/off switch: ``start(dir)`` /
  ``stop()``; the disabled path is a single ``active() is None`` check,
  so library code is free to instrument unconditionally;
* :mod:`repro.obs.trace` — request tracing: spans (trace_id / span_id /
  parent_id, start, duration) recorded through the event log, with
  cross-process propagation into pool workers, sampling, and the
  ``repro trace`` analysis CLI;
* :mod:`repro.obs.drift` — PSI/KS monitoring of the served score and
  flux distributions against a baseline committed with the model;
* :mod:`repro.obs.schema` / :mod:`repro.obs.report` — validation and
  the ``repro metrics`` report over a telemetry directory.

The CLI wires it up via ``--telemetry DIR`` on ``build-dataset``, the
training commands and ``classify``, and reads it back with
``repro metrics DIR``.
"""

from .drift import (
    BASELINE_FILE,
    DriftBaseline,
    DriftMonitor,
    DriftReport,
    ks_statistic,
    psi_statistic,
)
from .log import (
    EVENTS_FILE,
    LEVELS,
    SCHEMA_VERSION,
    EventLog,
    context,
    current_context,
    read_events,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    METRICS_FILE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    prometheus_from_snapshot,
)
from .report import summarize_directory, tail_events
from .schema import validate_event, validate_file
from .session import TelemetrySession, active, new_id, start, stop
from .trace import (
    SLOW_EVENT,
    SPAN_EVENT,
    SegmentTracer,
    Span,
    TraceConfig,
    Tracer,
    derive_trace_id,
    load_spans,
    validate_spans,
)

__all__ = [
    "SCHEMA_VERSION",
    "LEVELS",
    "EVENTS_FILE",
    "METRICS_FILE",
    "BASELINE_FILE",
    "EventLog",
    "context",
    "current_context",
    "read_events",
    "validate_event",
    "validate_file",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
    "prometheus_from_snapshot",
    "DriftBaseline",
    "DriftMonitor",
    "DriftReport",
    "psi_statistic",
    "ks_statistic",
    "TelemetrySession",
    "start",
    "stop",
    "active",
    "new_id",
    "summarize_directory",
    "tail_events",
    "SPAN_EVENT",
    "SLOW_EVENT",
    "Span",
    "TraceConfig",
    "Tracer",
    "SegmentTracer",
    "derive_trace_id",
    "load_spans",
    "validate_spans",
]
