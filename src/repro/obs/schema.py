"""Event-record schema: what every telemetry line must carry.

The contract is deliberately small so producers stay cheap and the
validator stays honest:

* header fields (always): ``schema`` (== :data:`~repro.obs.log.SCHEMA_VERSION`),
  ``ts`` (unix seconds), ``seq`` (positive, per-log monotonic),
  ``level`` (one of :data:`~repro.obs.log.LEVELS`), ``event``
  (dotted lower-case name, e.g. ``serve.request``);
* identity (always): at least one of ``run_id`` / ``request_id``;
* span records (``event == "trace.span"``, schema v2): additionally
  ``trace_id`` / ``span_id`` / ``name`` (strings) and ``duration_s``
  (number) — see :mod:`repro.obs.trace`;
* everything else is free-form JSON owned by the emitting subsystem.

:func:`validate_event` checks one record and returns the list of
violations (empty = valid); :func:`validate_file` folds that over a
whole ``events.jsonl`` and additionally checks ``seq`` monotonicity.
The CI ``obs-smoke`` job runs ``repro metrics DIR --validate`` which is
a thin wrapper over :func:`validate_file`.
"""

from __future__ import annotations

import os
import re

from .log import LEVELS, SCHEMA_VERSION, read_events
from .trace import SPAN_EVENT, SPAN_FIELDS

__all__ = ["validate_event", "validate_file"]

_EVENT_NAME = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$")

#: Header fields and their accepted types.
_HEADER_TYPES = {
    "schema": int,
    "ts": (int, float),
    "seq": int,
    "level": str,
    "event": str,
}

#: Fields that establish which unit of work emitted the record.
_ID_FIELDS = ("run_id", "request_id")


def validate_event(record: object) -> list[str]:
    """Violations of the event schema in one record (empty list = valid)."""
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, not an object"]
    errors: list[str] = []
    for name, types in _HEADER_TYPES.items():
        if name not in record:
            errors.append(f"missing required field {name!r}")
        elif not isinstance(record[name], types) or isinstance(record[name], bool):
            errors.append(
                f"field {name!r} has type {type(record[name]).__name__}"
            )
    if isinstance(record.get("schema"), int) and record["schema"] != SCHEMA_VERSION:
        errors.append(
            f"schema version {record['schema']} != supported {SCHEMA_VERSION}"
        )
    if isinstance(record.get("seq"), int) and record["seq"] < 1:
        errors.append(f"seq must be >= 1, got {record['seq']}")
    if isinstance(record.get("level"), str) and record["level"] not in LEVELS:
        errors.append(f"unknown level {record['level']!r}")
    if isinstance(record.get("event"), str) and not _EVENT_NAME.match(record["event"]):
        errors.append(f"event name {record['event']!r} is not dotted lower-case")
    if not any(isinstance(record.get(f), str) and record[f] for f in _ID_FIELDS):
        errors.append("record carries neither run_id nor request_id")
    if record.get("event") == SPAN_EVENT:
        for name, types in SPAN_FIELDS.items():
            if name not in record:
                errors.append(f"span record missing field {name!r}")
            elif not isinstance(record[name], types) or isinstance(record[name], bool):
                errors.append(
                    f"span field {name!r} has type {type(record[name]).__name__}"
                )
    return errors


def validate_file(path: str | os.PathLike) -> tuple[int, list[str]]:
    """Validate every line of an ``events.jsonl``.

    Returns ``(n_records, errors)`` where each error string is prefixed
    with the record's position.  Beyond per-record checks, ``seq`` must
    increase strictly — a reset or duplicate means two processes wrote
    the same file or a record was lost.
    """
    errors: list[str] = []
    last_seq = 0
    n = 0
    try:
        for n, record in enumerate(read_events(path), start=1):
            for problem in validate_event(record):
                errors.append(f"record {n}: {problem}")
            seq = record.get("seq") if isinstance(record, dict) else None
            if isinstance(seq, int):
                if seq <= last_seq:
                    errors.append(
                        f"record {n}: seq {seq} does not increase past {last_seq}"
                    )
                last_seq = seq
    except ValueError as exc:
        errors.append(str(exc))
    return n, errors
