"""Metrics registry: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` per telemetry session accumulates the
numeric side of observability — how many requests, how degraded, how
slow — and exports it two ways:

* :meth:`MetricsRegistry.snapshot` — a plain JSON-ready dict, written as
  ``metrics.json`` into the telemetry directory when the session closes;
* :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition
  (version 0.0.4), so a scrape endpoint or ``repro metrics
  --prometheus`` can feed a real monitoring stack.

External *sources* can be registered so one report covers subsystems
that keep their own state: the telemetry session registers
:func:`repro.perf.instrument.metrics_source`, which folds the perf
timers (GEMM, repair, features, ...) into every snapshot as
``perf_timer_*`` series.

All mutating operations take the registry lock; instruments themselves
are lock-free on read.  Histograms use *fixed* bucket upper bounds
chosen at creation — cumulative counts are derived at export time, the
hot-path ``observe`` is one ``searchsorted``-style scan.
"""

from __future__ import annotations

import bisect
import json
import math
import os
import re
import threading
from typing import Callable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
    "prometheus_from_snapshot",
    "METRICS_FILE",
]

#: File name of the metrics snapshot inside a telemetry directory.
METRICS_FILE = "metrics.json"

#: Default per-sample serving latency buckets (seconds): sub-ms to 10 s.
DEFAULT_LATENCY_BUCKETS_S = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0
)

_NAME = re.compile(r"^[a-z][a-z0-9_.]*$")


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, n: float = 1) -> None:
        """Add ``n`` (must be >= 0) to the total."""
        if n < 0:
            raise ValueError("counters only go up; use a gauge for deltas")
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram of observed values.

    ``buckets`` are strictly increasing upper bounds; every observation
    lands in the first bucket whose bound is >= the value, or in the
    implicit ``+Inf`` overflow bucket.  Bucket *edges are inclusive on
    the upper side* (Prometheus ``le`` semantics): observing exactly a
    bound counts into that bound's bucket.
    """

    __slots__ = ("name", "buckets", "_counts", "_sum", "_n", "_lock")

    def __init__(self, name: str, buckets: tuple[float, ...] | list[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase, got {bounds}")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self.name = name
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf overflow
        self._sum = 0.0
        self._n = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> int:
        """Record one value; returns the index of the bucket it fell in."""
        value = float(value)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._n += 1
        return index

    def bucket_label(self, value: float) -> str:
        """Human label of the bucket ``value`` would land in (``le=<bound>``)."""
        index = bisect.bisect_left(self.buckets, value)
        bound = "+Inf" if index == len(self.buckets) else repr(self.buckets[index])
        return f"le={bound}"

    @property
    def count(self) -> int:
        return self._n

    @property
    def sum(self) -> float:
        return self._sum

    def to_dict(self) -> dict:
        """JSON-ready form: bounds, per-bucket (non-cumulative) counts, sum, count."""
        with self._lock:
            return {
                "buckets": list(self.buckets),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._n,
            }


class MetricsRegistry:
    """Process-local collection of named instruments plus external sources."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._sources: dict[str, Callable[[], dict]] = {}

    @staticmethod
    def _check_name(name: str) -> str:
        if not _NAME.match(name):
            raise ValueError(
                f"metric name {name!r} must be lower-case dotted/underscored"
            )
        return name

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(self._check_name(name))
            return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(self._check_name(name))
            return instrument

    def histogram(
        self, name: str, buckets: tuple[float, ...] | list[float] = DEFAULT_LATENCY_BUCKETS_S
    ) -> Histogram:
        """Get or create the histogram ``name`` (buckets fixed on creation)."""
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    self._check_name(name), buckets
                )
            elif tuple(float(b) for b in buckets) != instrument.buckets:
                raise ValueError(
                    f"histogram {name!r} already exists with different buckets"
                )
            return instrument

    def register_source(self, name: str, source: Callable[[], dict]) -> None:
        """Attach an external snapshot provider folded into every export.

        ``source()`` must return a JSON-ready dict; it is called at
        snapshot time, so registering is free for the hot path.
        """
        with self._lock:
            self._sources[self._check_name(name)] = source

    def snapshot(self) -> dict:
        """JSON-ready state of every instrument and registered source."""
        with self._lock:
            counters = {n: c.value for n, c in sorted(self._counters.items())}
            gauges = {n: g.value for n, g in sorted(self._gauges.items())}
            histograms = {n: h.to_dict() for n, h in sorted(self._histograms.items())}
            sources = dict(self._sources)
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "sources": {name: fn() for name, fn in sorted(sources.items())},
        }

    def to_prometheus(self) -> str:
        """Prometheus text exposition of :meth:`snapshot`."""
        return prometheus_from_snapshot(self.snapshot())

    def write(self, path: str | os.PathLike) -> dict:
        """Atomically write :meth:`snapshot` as indented JSON; returns it."""
        data = self.snapshot()
        path = os.fspath(path)
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        return data


def _promname(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_from_snapshot(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as text exposition.

    Shared by the live registry and ``repro metrics --prometheus`` (which
    re-renders a ``metrics.json`` written by an earlier run).  Histogram
    buckets are emitted cumulatively with the standard ``le`` label and
    trailing ``+Inf`` / ``_sum`` / ``_count`` series.  Perf timers from
    the ``perf`` source become ``perf_timer_seconds_total`` /
    ``perf_timer_calls_total`` keyed by a ``name`` label.
    """
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        prom = _promname(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_fmt(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        prom = _promname(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_fmt(value)}")
    for name, hist in snapshot.get("histograms", {}).items():
        prom = _promname(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, count in zip(hist["buckets"], hist["counts"]):
            cumulative += count
            lines.append(f'{prom}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
        cumulative += hist["counts"][len(hist["buckets"])]
        lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{prom}_sum {repr(float(hist['sum']))}")
        lines.append(f"{prom}_count {hist['count']}")
    perf = snapshot.get("sources", {}).get("perf", {})
    timers = perf.get("timers", {})
    if timers:
        lines.append("# TYPE perf_timer_seconds_total counter")
        for name, entry in timers.items():
            lines.append(
                f'perf_timer_seconds_total{{name="{_promname(name)}"}} '
                f"{repr(float(entry['total_s']))}"
            )
        lines.append("# TYPE perf_timer_calls_total counter")
        for name, entry in timers.items():
            lines.append(
                f'perf_timer_calls_total{{name="{_promname(name)}"}} {entry["calls"]}'
            )
    for name, value in perf.get("counters", {}).items():
        prom = f"perf_{_promname(name)}_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_fmt(value)}")
    return "\n".join(lines) + ("\n" if lines else "")
