"""Request tracing: spans over the event log with cross-process propagation.

A *span* is one timed stage of a request (``http.read``,
``admission.queue_wait``, ``worker.compute``, ...) recorded as a
``trace.span`` event in the session's schema-versioned event log.  Spans
carry ``trace_id`` / ``span_id`` / ``parent_id`` and form a tree per
request; trace ids derive deterministically from the request id
(``<run_id>/r<index>``) so a request can be correlated across processes
and across re-runs.

Design mirrors :mod:`repro.obs.log`:

- a process-wide plus thread-local *span-context stack* supplies the
  ambient parent for nested spans, exactly like the event-context stack;
- the disabled path is one module-level reference read
  (:func:`tracer` / the ``_TRACER is None`` check inside :func:`span`),
  so instrumentation points cost nothing when tracing is off;
- sampling is decided once per trace: ``always``, deterministic
  ``rate:F`` (hash of the request id), or ``slow:MS`` (buffer the span
  tree, emit only if the root exceeds the threshold — the slow-request
  capture).

Cross-process: pool workers have no telemetry session.  They install a
:class:`SegmentTracer` that appends span records to a per-worker JSONL
segment (``trace-worker<id>.jsonl``); the parent merges new segment
lines into the main event log at gather time, so worker spans end up in
the same file, correctly parented via the wire context ``(trace_id,
parent_span_id, request_id)`` that rides the task message across the
pipe.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "MODES",
    "SPAN_EVENT",
    "SLOW_EVENT",
    "WORKER_SEGMENT_PREFIX",
    "TraceConfig",
    "Span",
    "Tracer",
    "SegmentTracer",
    "derive_trace_id",
    "derive_span_id",
    "install",
    "uninstall",
    "tracer",
    "current_span",
    "span",
    "record",
    "wire_context",
    "load_spans",
    "validate_spans",
    "stage_table",
    "build_trees",
    "render_waterfall",
    "critical_paths",
]

SPAN_EVENT = "trace.span"
SLOW_EVENT = "trace.slow_request"
WORKER_SEGMENT_PREFIX = "trace-worker"
MODES = ("always", "rate", "slow")

# Fields every span record must carry (validated by ``validate_spans``
# and, for schema-v2 event lines, by ``repro.obs.schema``).
SPAN_FIELDS: Dict[str, type | tuple] = {
    "trace_id": str,
    "span_id": str,
    "name": str,
    "duration_s": (int, float),
}


def derive_trace_id(request_id: str) -> str:
    """Deterministic 16-hex trace id for a ``<run_id>/r<index>`` request id."""
    return hashlib.sha256(request_id.encode("utf-8")).hexdigest()[:16]


def derive_span_id(trace_id: str, seed: str) -> str:
    """Deterministic span id from the trace id and a per-trace seed."""
    return hashlib.sha256(f"{trace_id}/{seed}".encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class TraceConfig:
    """Sampling policy for a tracer.

    mode
        ``always`` samples every trace; ``rate`` samples the
        deterministic fraction ``rate`` of request ids; ``slow`` buffers
        every trace and emits only those whose root span exceeds
        ``slow_threshold_s`` (the slow-request capture).
    slow_threshold_s
        In ``always``/``rate`` mode a root over this threshold emits an
        additional ``trace.slow_request`` event at warning level.
    """

    mode: str = "always"
    rate: float = 1.0
    slow_threshold_s: float = 0.25

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"trace mode must be one of {MODES}, got {self.mode!r}")
        if not 0.0 <= float(self.rate) <= 1.0:
            raise ValueError(f"trace rate must be in [0, 1], got {self.rate!r}")
        if not float(self.slow_threshold_s) > 0.0:
            raise ValueError(
                f"slow threshold must be positive, got {self.slow_threshold_s!r}"
            )

    @classmethod
    def parse(cls, spec: str) -> "TraceConfig":
        """Parse a CLI spec: ``always`` | ``rate:0.1`` | ``slow:250`` (ms)."""
        spec = spec.strip().lower()
        if spec == "always":
            return cls(mode="always")
        if spec.startswith("rate:"):
            return cls(mode="rate", rate=float(spec[len("rate:"):]))
        if spec.startswith("slow:"):
            ms = float(spec[len("slow:"):])
            return cls(mode="slow", slow_threshold_s=ms / 1000.0)
        raise ValueError(
            f"bad trace spec {spec!r}: expected always | rate:FRACTION | slow:MS"
        )


# ----------------------------------------------------------------------
# Ambient span-context stack (process-wide + thread-local, mirroring the
# event-context stack in repro.obs.log)
# ----------------------------------------------------------------------
_PROCESS_STACK: List["Span"] = []
_PROCESS_LOCK = threading.Lock()
_THREAD = threading.local()


def _thread_stack() -> List["Span"]:
    stack = getattr(_THREAD, "stack", None)
    if stack is None:
        stack = _THREAD.stack = []
    return stack


def current_span() -> Optional["Span"]:
    """The innermost ambient span: thread-local first, then process-wide."""
    stack = getattr(_THREAD, "stack", None)
    if stack:
        return stack[-1]
    if _PROCESS_STACK:
        return _PROCESS_STACK[-1]
    return None


class _TraceState:
    """Per-trace bookkeeping: span-id counter and the slow-mode buffer."""

    __slots__ = ("trace_id", "request_id", "buffer", "counter", "lock")

    def __init__(self, trace_id: str, request_id: str, buffered: bool) -> None:
        self.trace_id = trace_id
        self.request_id = request_id
        self.buffer: Optional[List[dict]] = [] if buffered else None
        self.counter = 0
        self.lock = threading.Lock()

    def next_seed(self) -> str:
        with self.lock:
            self.counter += 1
            return str(self.counter)


class Span:
    """One timed stage.  Context-manager entry pushes it on the ambient
    stack (``scope="thread"`` by default, ``"process"`` for run-level
    roots); exit pops and ends it.  ``end()`` is idempotent."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "request_id",
        "attrs",
        "start_ts",
        "duration_s",
        "_t0",
        "_tracer",
        "_state",
        "_scope",
        "_ended",
    )

    def __init__(
        self,
        tracer: "_BaseTracer",
        state: Optional[_TraceState],
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        request_id: Optional[str],
        attrs: Optional[dict] = None,
        scope: str = "thread",
        t_offset_s: float = 0.0,
    ) -> None:
        if scope not in ("thread", "process"):
            raise ValueError(f"span scope must be 'thread' or 'process', got {scope!r}")
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.request_id = request_id
        self.attrs = dict(attrs) if attrs else {}
        self.start_ts = round(time.time() - t_offset_s, 6)
        self.duration_s: Optional[float] = None
        self._t0 = time.perf_counter() - t_offset_s
        self._tracer = tracer
        self._state = state
        self._scope = scope
        self._ended = False

    @property
    def is_root(self) -> bool:
        return self.parent_id is None

    def annotate(self, **fields: Any) -> None:
        self.attrs.update(fields)

    def end(self, **fields: Any) -> None:
        if self._ended:
            return
        self._ended = True
        if fields:
            self.attrs.update(fields)
        self.duration_s = round(time.perf_counter() - self._t0, 6)
        self._tracer._finish(self)

    def to_record(self) -> dict:
        record = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "start_ts": self.start_ts,
            "duration_s": self.duration_s,
        }
        if self.parent_id is not None:
            record["parent_id"] = self.parent_id
        if self.request_id is not None:
            record["request_id"] = self.request_id
        record.update(self.attrs)
        return record

    def __enter__(self) -> "Span":
        if self._scope == "process":
            with _PROCESS_LOCK:
                _PROCESS_STACK.append(self)
        else:
            _thread_stack().append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._scope == "process":
            with _PROCESS_LOCK:
                if self in _PROCESS_STACK:
                    _PROCESS_STACK.remove(self)
        else:
            stack = _thread_stack()
            if self in stack:
                stack.remove(self)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.end()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, trace={self.trace_id}, span={self.span_id})"


class _NullSpan:
    """No-op stand-in returned on every disabled/unsampled path."""

    __slots__ = ()
    name = None
    trace_id = None
    span_id = None
    parent_id = None
    request_id = None
    duration_s = None
    is_root = False

    def annotate(self, **fields: Any) -> None:
        pass

    def end(self, **fields: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _BaseTracer:
    """Shared span-construction machinery; subclasses define the sink."""

    directory: Optional[str] = None

    def child(self, parent: Span, name: str, attrs: Optional[dict] = None) -> Span:
        state = parent._state
        seed = state.next_seed() if state is not None else self._next_seed()
        return Span(
            self,
            state,
            name,
            parent.trace_id,
            derive_span_id(parent.trace_id, seed),
            parent.span_id,
            parent.request_id,
            attrs,
        )

    def resume(
        self, wire: Tuple[str, str, Optional[str]], name: str, seed: str, **attrs: Any
    ) -> Span:
        """A span parented across a process boundary via a wire context."""
        trace_id, parent_id, request_id = wire
        return Span(
            self,
            None,
            name,
            trace_id,
            derive_span_id(trace_id, seed),
            parent_id,
            request_id,
            attrs,
        )

    def record(
        self,
        name: str,
        duration_s: float,
        parent: Optional[Span],
        **attrs: Any,
    ) -> None:
        """Record an already-measured stage as a completed child span."""
        if parent is None or parent is NULL_SPAN:
            return
        child = self.child(parent, name, attrs)
        child.start_ts = round(time.time() - duration_s, 6)
        child._ended = True
        child.duration_s = round(float(duration_s), 6)
        self._finish(child)

    def _next_seed(self) -> str:
        raise NotImplementedError

    def _finish(self, span_obj: Span) -> None:
        raise NotImplementedError


class Tracer(_BaseTracer):
    """Parent-process tracer: sinks spans into the session's event log
    and per-stage latency histograms in the session's metrics registry."""

    def __init__(self, session, config: Optional[TraceConfig] = None) -> None:
        self._session = session
        self.config = config or TraceConfig()
        self.directory = getattr(session, "directory", None)
        self._live: Dict[str, _TraceState] = {}
        self._lock = threading.Lock()
        self._counter = 0

    # -- sampling ------------------------------------------------------
    def sample(self, request_id: str) -> bool:
        mode = self.config.mode
        if mode in ("always", "slow"):
            return True
        # Deterministic per-request-id fraction: the same request id is
        # sampled (or not) identically across processes and re-runs.
        digest = int(derive_trace_id(request_id), 16)
        return digest / float(1 << 64) < self.config.rate

    # -- trace lifecycle ----------------------------------------------
    def start_trace(
        self,
        request_id: str,
        name: str = "request",
        scope: str = "thread",
        t_offset_s: float = 0.0,
        **attrs: Any,
    ) -> Optional[Span]:
        """Root span for one request, or ``None`` if not sampled."""
        if not self.sample(request_id):
            return None
        trace_id = derive_trace_id(request_id)
        state = _TraceState(trace_id, request_id, buffered=self.config.mode == "slow")
        with self._lock:
            self._live[trace_id] = state
        return Span(
            self,
            state,
            name,
            trace_id,
            derive_span_id(trace_id, "root"),
            None,
            request_id,
            attrs,
            scope=scope,
            t_offset_s=t_offset_s,
        )

    def merge(self, record_dict: dict) -> None:
        """Fold a worker-segment span record into this tracer's sink.

        Routed into the live trace's buffer when the trace is still
        slow-mode buffered, otherwise emitted directly.
        """
        state = None
        trace_id = record_dict.get("trace_id")
        if isinstance(trace_id, str):
            with self._lock:
                state = self._live.get(trace_id)
        if state is not None and state.buffer is not None:
            with state.lock:
                state.buffer.append(dict(record_dict))
            return
        self._emit_record(dict(record_dict))

    # -- internals -----------------------------------------------------
    def _next_seed(self) -> str:
        with self._lock:
            self._counter += 1
            return f"x{self._counter}"

    def _finish(self, span_obj: Span) -> None:
        state = span_obj._state
        record_dict = span_obj.to_record()
        if state is not None and state.buffer is not None:
            with state.lock:
                state.buffer.append(record_dict)
            if span_obj.is_root:
                self._close_slow_trace(state, span_obj)
            return
        self._emit_record(record_dict)
        if span_obj.is_root:
            with self._lock:
                self._live.pop(span_obj.trace_id, None)
            duration = span_obj.duration_s or 0.0
            if duration >= self.config.slow_threshold_s:
                self._emit_slow(span_obj)

    def _close_slow_trace(self, state: _TraceState, root: Span) -> None:
        with self._lock:
            self._live.pop(state.trace_id, None)
        duration = root.duration_s or 0.0
        with state.lock:
            buffered, state.buffer = state.buffer, None
        if duration < self.config.slow_threshold_s:
            return  # fast request: drop the tree (slow-only capture)
        for record_dict in buffered or ():
            self._emit_record(record_dict)
        self._emit_slow(root)

    def _emit_slow(self, root: Span) -> None:
        self._session.emit(
            SLOW_EVENT,
            level="warning",
            message=f"request exceeded {self.config.slow_threshold_s * 1000:.0f}ms",
            trace_id=root.trace_id,
            request_id=root.request_id,
            duration_s=root.duration_s,
            threshold_s=self.config.slow_threshold_s,
        )

    def _emit_record(self, record_dict: dict) -> None:
        self._session.emit(SPAN_EVENT, **record_dict)
        duration = record_dict.get("duration_s")
        name = record_dict.get("name")
        if isinstance(duration, (int, float)) and isinstance(name, str):
            try:
                self._session.metrics.histogram(f"trace.{name}_s").observe(duration)
            except ValueError:
                pass  # span name not a valid metric name: skip the histogram


class SegmentTracer(_BaseTracer):
    """Worker-process tracer: appends span records to a JSONL segment.

    Workers have no telemetry session; the parent merges segment lines
    into the main event log at gather time (``Tracer.merge``).  Every
    record is stamped with the worker id and pid.
    """

    def __init__(self, path: str, worker: Optional[int] = None) -> None:
        self.path = path
        self.worker = worker
        self._fh = None
        self._lock = threading.Lock()
        self._counter = 0

    def _next_seed(self) -> str:
        with self._lock:
            self._counter += 1
            return f"w{self.worker}.{os.getpid()}.{self._counter}"

    def _finish(self, span_obj: Span) -> None:
        record_dict = span_obj.to_record()
        if self.worker is not None:
            record_dict.setdefault("worker", self.worker)
        record_dict.setdefault("pid", os.getpid())
        line = json.dumps(record_dict, separators=(",", ":"), default=str)
        with self._lock:
            if self._fh is None:
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


# ----------------------------------------------------------------------
# Module-level tracer: one reference read on the disabled path
# ----------------------------------------------------------------------
_TRACER: Optional[_BaseTracer] = None


def install(t: _BaseTracer) -> None:
    global _TRACER
    _TRACER = t


def uninstall() -> None:
    global _TRACER
    _TRACER = None


def tracer() -> Optional[_BaseTracer]:
    return _TRACER


def span(name: str, parent: Optional[Span] = None, **attrs: Any):
    """An ambient child span, or ``NULL_SPAN`` when tracing is off or no
    trace is live on this thread/process."""
    t = _TRACER
    if t is None:
        return NULL_SPAN
    if parent is None:
        parent = current_span()
    if parent is None or parent is NULL_SPAN:
        return NULL_SPAN
    return t.child(parent, name, attrs or None)


def record(
    name: str, duration_s: float, parent: Optional[Span] = None, **attrs: Any
) -> None:
    """Record an already-measured stage; no-op when tracing is off."""
    t = _TRACER
    if t is None:
        return
    if parent is None:
        parent = current_span()
    if parent is None or parent is NULL_SPAN:
        return
    t.record(name, duration_s, parent, **attrs)


def wire_context(parent: Optional[Span] = None) -> Optional[Tuple[str, str, Optional[str]]]:
    """Serializable ``(trace_id, parent_span_id, request_id)`` for IPC."""
    t = _TRACER
    if t is None:
        return None
    if parent is None:
        parent = current_span()
    if parent is None or parent is NULL_SPAN:
        return None
    return (parent.trace_id, parent.span_id, parent.request_id)


def worker_segment_path(directory: str, worker_id: int) -> str:
    return os.path.join(directory, f"{WORKER_SEGMENT_PREFIX}{worker_id}.jsonl")


# ----------------------------------------------------------------------
# Analysis: loading, validation, per-stage stats, waterfall, critical path
# (backs the ``repro trace DIR`` CLI and the report)
# ----------------------------------------------------------------------
def load_spans(directory: str) -> List[dict]:
    """All span records under a telemetry directory.

    Reads ``trace.span`` events from the event log plus any un-merged
    tails of worker segments (a killed daemon may not have drained
    them), de-duplicated on ``(trace_id, span_id)``.
    """
    from .log import EVENTS_FILE, read_events

    spans: List[dict] = []
    seen = set()

    def _add(record_dict: dict) -> None:
        key = (record_dict.get("trace_id"), record_dict.get("span_id"))
        if key in seen:
            return
        seen.add(key)
        spans.append(record_dict)

    events_path = os.path.join(directory, EVENTS_FILE)
    if os.path.exists(events_path):
        for event in read_events(events_path):
            if event.get("event") == SPAN_EVENT:
                _add(event)
    for entry in sorted(os.listdir(directory)):
        if not (entry.startswith(WORKER_SEGMENT_PREFIX) and entry.endswith(".jsonl")):
            continue
        with open(os.path.join(directory, entry), "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    _add(json.loads(line))
                except ValueError:
                    continue  # torn tail line from a killed worker
    return spans


def validate_spans(spans: Iterable[dict]) -> List[str]:
    """Structural violations in span records; empty means valid."""
    errors: List[str] = []
    ids = set()
    records = list(spans)
    for i, record_dict in enumerate(records):
        where = f"span {i}"
        for field, expected in SPAN_FIELDS.items():
            value = record_dict.get(field)
            if value is None:
                errors.append(f"{where}: missing field {field!r}")
            elif not isinstance(value, expected) or isinstance(value, bool):
                errors.append(
                    f"{where}: field {field!r} has type "
                    f"{type(value).__name__}, expected {expected}"
                )
        duration = record_dict.get("duration_s")
        if isinstance(duration, (int, float)) and duration < 0:
            errors.append(f"{where}: negative duration {duration!r}")
        parent = record_dict.get("parent_id")
        if parent is not None and not isinstance(parent, str):
            errors.append(f"{where}: field 'parent_id' must be a string")
        key = (record_dict.get("trace_id"), record_dict.get("span_id"))
        if None not in key:
            if key in ids:
                errors.append(f"{where}: duplicate span id {key[1]!r} in trace {key[0]!r}")
            ids.add(key)
    return errors


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def stage_table(spans: Iterable[dict]) -> List[dict]:
    """Aggregated per-stage latency rows: count, p50/p99 ms, total s."""
    by_name: Dict[str, List[float]] = {}
    for record_dict in spans:
        name = record_dict.get("name")
        duration = record_dict.get("duration_s")
        if isinstance(name, str) and isinstance(duration, (int, float)):
            by_name.setdefault(name, []).append(float(duration))
    rows = []
    for name, durations in sorted(by_name.items()):
        durations.sort()
        rows.append(
            {
                "stage": name,
                "count": len(durations),
                "p50_ms": round(_percentile(durations, 0.50) * 1000.0, 3),
                "p99_ms": round(_percentile(durations, 0.99) * 1000.0, 3),
                "total_s": round(sum(durations), 6),
            }
        )
    rows.sort(key=lambda r: -r["total_s"])
    return rows


def build_trees(spans: Iterable[dict]) -> List[dict]:
    """Group spans into per-trace trees.

    Returns one dict per trace: ``{"trace_id", "request_id", "root",
    "spans", "children"}`` where ``children`` maps span_id -> list of
    child records.  Traces without a root (e.g. slow-mode discards with
    a straggling worker span) are skipped.
    """
    by_trace: Dict[str, List[dict]] = {}
    for record_dict in spans:
        trace_id = record_dict.get("trace_id")
        if isinstance(trace_id, str):
            by_trace.setdefault(trace_id, []).append(record_dict)
    trees = []
    for trace_id, members in by_trace.items():
        roots = [m for m in members if m.get("parent_id") is None]
        if not roots:
            continue
        root = roots[0]
        children: Dict[str, List[dict]] = {}
        for member in members:
            parent = member.get("parent_id")
            if isinstance(parent, str):
                children.setdefault(parent, []).append(member)
        for sibling_list in children.values():
            sibling_list.sort(key=lambda m: m.get("start_ts") or 0.0)
        request_id = root.get("request_id")
        trees.append(
            {
                "trace_id": trace_id,
                "request_id": request_id,
                "root": root,
                "spans": members,
                "children": children,
            }
        )
    trees.sort(key=lambda t: -(t["root"].get("duration_s") or 0.0))
    return trees


def render_waterfall(tree: dict, width: int = 40) -> List[str]:
    """Text waterfall for one trace: offset, duration and a scaled bar."""
    root = tree["root"]
    t0 = root.get("start_ts") or 0.0
    total = max(root.get("duration_s") or 0.0, 1e-9)
    lines = [
        f"waterfall: {tree.get('request_id') or tree['trace_id']}  "
        f"({total * 1000.0:.1f}ms, trace {tree['trace_id']})"
    ]

    def _bar(offset_s: float, duration_s: float) -> str:
        start = int(max(0.0, min(1.0, offset_s / total)) * width)
        length = max(1, int(min(1.0, duration_s / total) * width))
        length = min(length, width - start) or 1
        return " " * start + "#" * length

    def _walk(record_dict: dict, depth: int) -> None:
        offset = max(0.0, (record_dict.get("start_ts") or t0) - t0)
        duration = record_dict.get("duration_s") or 0.0
        name = "  " * depth + str(record_dict.get("name"))
        extra = ""
        if record_dict.get("worker") is not None:
            extra = f"  [worker {record_dict['worker']}]"
        lines.append(
            f"  {name:<30} {offset * 1000.0:>8.1f}ms {duration * 1000.0:>8.1f}ms "
            f"|{_bar(offset, duration):<{width}}|{extra}"
        )
        for child in tree["children"].get(record_dict.get("span_id"), ()):
            _walk(child, depth + 1)

    _walk(root, 0)
    return lines


def critical_paths(trees: Iterable[dict]) -> List[dict]:
    """Dominant stage chain per trace, aggregated across traces.

    For each trace, descend from the root into the longest-duration
    child at every level; the resulting chain is that request's critical
    path.  Returns one row per distinct path with its frequency, mean
    leaf duration, and mean fraction of end-to-end latency.
    """
    aggregate: Dict[tuple, List[Tuple[float, float]]] = {}
    for tree in trees:
        node = tree["root"]
        total = max(node.get("duration_s") or 0.0, 1e-9)
        path = [str(node.get("name"))]
        while True:
            kids = tree["children"].get(node.get("span_id"), ())
            if not kids:
                break
            node = max(kids, key=lambda m: m.get("duration_s") or 0.0)
            path.append(str(node.get("name")))
        leaf = node.get("duration_s") or 0.0
        aggregate.setdefault(tuple(path), []).append((leaf, leaf / total))
    rows = []
    for path, samples in aggregate.items():
        rows.append(
            {
                "path": " > ".join(path),
                "count": len(samples),
                "mean_leaf_ms": round(
                    sum(s[0] for s in samples) / len(samples) * 1000.0, 3
                ),
                "mean_fraction": round(
                    sum(s[1] for s in samples) / len(samples), 4
                ),
            }
        )
    rows.sort(key=lambda r: -r["count"])
    return rows
