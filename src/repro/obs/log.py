"""Structured JSONL event logging with a process-wide context stack.

Every subsystem reports through one funnel: an :class:`EventLog` writes
schema-versioned JSON records (one per line) to ``events.jsonl`` inside
a telemetry directory, and a *context stack* stamps each record with
whatever identifies the work in flight — a ``run_id`` for builds and
training runs, a ``request_id`` for served samples.

The stack has two layers:

* a **process-wide** layer (:func:`push_context` with ``scope="process"``)
  holding identifiers every thread should inherit — the CLI pushes the
  session ``run_id`` here so serving worker threads stamp it too;
* a **thread-local** layer (the default) for nested, short-lived scopes
  — a batch index, an epoch number — which unwinds with the ``with``
  block that pushed it.

Records look like::

    {"schema": 2, "ts": 1754400000.123, "seq": 7, "level": "info",
     "event": "train.epoch", "run_id": "run-...", "epoch": 3,
     "train_loss": 0.41, ...}

``schema`` is :data:`SCHEMA_VERSION` and bumps on any breaking change to
the required fields; :mod:`repro.obs.schema` validates records against
it.  Writing is serialised under a lock, so one log is safe to share
across the serving thread pool; ``seq`` is a per-log monotonic counter
that makes the interleaved stream totally ordered even when two events
land in the same clock tick.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
from typing import Any, Iterator

__all__ = [
    "SCHEMA_VERSION",
    "LEVELS",
    "EVENTS_FILE",
    "EventLog",
    "context",
    "current_context",
    "read_events",
]

#: Version stamped into every record; bump on breaking field changes.
#: v2 added the ``trace.span`` record family (trace_id/span_id/name/
#: duration_s required on those lines — see :mod:`repro.obs.trace`).
SCHEMA_VERSION = 2

#: Recognised severity levels, least to most severe.
LEVELS = ("debug", "info", "warning", "error")

#: File name of the event stream inside a telemetry directory.
EVENTS_FILE = "events.jsonl"

_LEVEL_RANK = {name: rank for rank, name in enumerate(LEVELS)}

# Context stack: one process-wide list shared by all threads plus a
# thread-local overlay.  Both hold plain dicts of stamped fields.
_PROCESS_STACK: list[dict[str, Any]] = []
_PROCESS_LOCK = threading.Lock()
_THREAD = threading.local()


def _thread_stack() -> list[dict[str, Any]]:
    stack = getattr(_THREAD, "stack", None)
    if stack is None:
        stack = _THREAD.stack = []
    return stack


def current_context() -> dict[str, Any]:
    """Merged view of the context stack (process layer first, thread on top)."""
    merged: dict[str, Any] = {}
    with _PROCESS_LOCK:
        for frame in _PROCESS_STACK:
            merged.update(frame)
    for frame in _thread_stack():
        merged.update(frame)
    return merged


class context:
    """Context manager pushing fields onto the context stack.

    ``scope="thread"`` (default) pushes onto the calling thread's stack;
    ``scope="process"`` pushes onto the process-wide layer every thread
    inherits.  Frames unwind in LIFO order on exit, so nesting works::

        with obs.context(run_id=run_id, scope="process"):
            with obs.context(epoch=3):
                log.emit("train.epoch", ...)   # carries run_id AND epoch
    """

    def __init__(self, scope: str = "thread", **fields: Any) -> None:
        if scope not in ("thread", "process"):
            raise ValueError(f"scope must be 'thread' or 'process', got {scope!r}")
        self.scope = scope
        self.fields = dict(fields)

    def __enter__(self) -> "context":
        if self.scope == "process":
            with _PROCESS_LOCK:
                _PROCESS_STACK.append(self.fields)
        else:
            _thread_stack().append(self.fields)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self.scope == "process":
            with _PROCESS_LOCK:
                if self.fields in _PROCESS_STACK:
                    _PROCESS_STACK.remove(self.fields)
        else:
            stack = _thread_stack()
            if self.fields in stack:
                stack.remove(self.fields)


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars / arrays / paths into JSON-native values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _jsonable(item())
        except (TypeError, ValueError):
            pass
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return _jsonable(tolist())
    return str(value)


class EventLog:
    """Append-only JSONL event sink (thread-safe).

    Parameters
    ----------
    path:
        Target ``.jsonl`` file; parent directory must exist.  Pass a
        file-like object instead to capture events in memory (tests).
    min_level:
        Events below this severity are dropped without being written.
    """

    def __init__(self, path: str | os.PathLike | io.TextIOBase, min_level: str = "debug") -> None:
        if min_level not in _LEVEL_RANK:
            raise ValueError(f"unknown level {min_level!r}; choose from {LEVELS}")
        self.min_level = min_level
        self._lock = threading.Lock()
        self._seq = 0
        if isinstance(path, (str, os.PathLike)):
            self.path: str | None = os.fspath(path)
            self._handle: io.TextIOBase = open(self.path, "a")
            self._owns_handle = True
        else:
            self.path = None
            self._handle = path
            self._owns_handle = False
        self._closed = False

    def emit(self, event: str, level: str = "info", message: str | None = None,
             **fields: Any) -> dict:
        """Write one structured record; returns it (or ``{}`` if filtered).

        The record carries the schema version, a wall-clock timestamp, a
        per-log sequence number, the merged context stack, and the
        caller's fields.  Caller fields win over context fields of the
        same name; the reserved header fields always win over both.
        """
        if not event:
            raise ValueError("event name must be non-empty")
        if level not in _LEVEL_RANK:
            raise ValueError(f"unknown level {level!r}; choose from {LEVELS}")
        if _LEVEL_RANK[level] < _LEVEL_RANK[self.min_level]:
            return {}
        record: dict[str, Any] = dict(current_context())
        record.update({str(k): _jsonable(v) for k, v in fields.items()})
        if message is not None:
            record["message"] = str(message)
        with self._lock:
            if self._closed:
                return {}
            self._seq += 1
            record.update(
                schema=SCHEMA_VERSION,
                ts=round(time.time(), 6),
                seq=self._seq,
                level=level,
                event=event,
            )
            self._handle.write(json.dumps(record, separators=(",", ":"), default=str) + "\n")
            self._handle.flush()
        return record

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._handle.flush()
            if self._owns_handle:
                self._handle.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_events(path: str | os.PathLike) -> Iterator[dict]:
    """Yield every record of an ``events.jsonl`` file in emission order.

    Raises :class:`ValueError` on a line that is not valid JSON — a
    truncated tail line (crash mid-write) is reported with its line
    number rather than silently skipped.
    """
    with open(os.fspath(path)) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{os.fspath(path)}:{lineno}: malformed event line: {exc}"
                ) from exc
