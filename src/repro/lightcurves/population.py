"""Population priors: which supernovae exist and with which parameters.

The paper draws type, stretch and colour "randomly ... following the
already known distributions" (Section 3, ref [12] — Mosher et al. 2014).
We encode the standard choices: x1 ~ N(0, 1), c ~ N(0, 0.1), per-type
intrinsic magnitude scatter, and volumetric-rate-like fractions for the
contaminant types.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .salt2 import SALT2LikeModel, SALT2Parameters
from .templates import TEMPLATES, SNType, Template

__all__ = ["PopulationModel", "NonIaRealization", "DEFAULT_NON_IA_FRACTIONS"]

# Relative frequencies of the contaminant classes among non-Ia SNe,
# roughly following core-collapse volumetric rates.
DEFAULT_NON_IA_FRACTIONS: dict[SNType, float] = {
    SNType.IB: 0.15,
    SNType.IC: 0.15,
    SNType.IIP: 0.40,
    SNType.IIL: 0.20,
    SNType.IIN: 0.10,
}


class NonIaRealization:
    """A non-Ia template with a realised magnitude offset and mild stretch.

    Exposes ``rest_mag`` / ``sn_type`` / ``peak_abs_mag_b`` so it is
    interchangeable with :class:`~repro.lightcurves.salt2.SALT2LikeModel`.
    """

    def __init__(self, template: Template, magnitude_offset: float, stretch: float) -> None:
        if stretch <= 0:
            raise ValueError("stretch must be positive")
        self._template = template
        self.magnitude_offset = magnitude_offset
        self.stretch = stretch

    @property
    def sn_type(self) -> SNType:
        return self._template.sn_type

    @property
    def peak_abs_mag_b(self) -> float:
        return self._template.peak_abs_mag_b + self.magnitude_offset

    def rest_mag(self, phase: float | np.ndarray, wavelength: float) -> float | np.ndarray:
        stretched = np.asarray(phase, dtype=float) / self.stretch
        return self._template.rest_mag(stretched, wavelength) + self.magnitude_offset


@dataclass
class PopulationModel:
    """Sampler over supernova models.

    Parameters
    ----------
    non_ia_fractions:
        Relative frequency of each contaminant type; normalised on use.
    x1_sigma, c_sigma:
        Widths of the Ia stretch and colour priors.
    """

    non_ia_fractions: dict[SNType, float] = field(
        default_factory=lambda: dict(DEFAULT_NON_IA_FRACTIONS)
    )
    x1_sigma: float = 1.0
    c_sigma: float = 0.1

    def __post_init__(self) -> None:
        if not self.non_ia_fractions:
            raise ValueError("non_ia_fractions must not be empty")
        bad = [t for t in self.non_ia_fractions if t.is_ia]
        if bad:
            raise ValueError("non_ia_fractions must not contain SNType.IA")
        total = sum(self.non_ia_fractions.values())
        if total <= 0:
            raise ValueError("non_ia_fractions must have positive total weight")
        self._types = list(self.non_ia_fractions)
        self._weights = np.array([self.non_ia_fractions[t] for t in self._types]) / total

    def sample_ia(self, rng: np.random.Generator) -> SALT2LikeModel:
        """Draw a Type-Ia model from the stretch/colour priors."""
        params = SALT2Parameters(
            x1=float(np.clip(rng.normal(0.0, self.x1_sigma), -4.9, 4.9)),
            c=float(np.clip(rng.normal(0.0, self.c_sigma), -0.45, 0.45)),
            magnitude_offset=float(rng.normal(0.0, TEMPLATES[SNType.IA].mag_scatter)),
        )
        return SALT2LikeModel(params)

    def sample_non_ia(self, rng: np.random.Generator) -> NonIaRealization:
        """Draw one of the contaminant types with realistic scatter."""
        sn_type = self._types[int(rng.choice(len(self._types), p=self._weights))]
        template = TEMPLATES[sn_type]
        return NonIaRealization(
            template,
            magnitude_offset=float(rng.normal(0.0, template.mag_scatter)),
            stretch=float(np.clip(rng.normal(1.0, 0.1), 0.7, 1.3)),
        )

    def sample(self, is_ia: bool, rng: np.random.Generator) -> SALT2LikeModel | NonIaRealization:
        """Draw a model of the requested class."""
        return self.sample_ia(rng) if is_ia else self.sample_non_ia(rng)
