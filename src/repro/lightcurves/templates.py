"""Rest-frame light-curve templates for the six supernova types.

The paper generates light curves from SALT-II-style parametric models
(Section 3, ref [12]).  SALT-II itself is a proprietary trained model, so
we build the closest open equivalent: each supernova type is described by

* an absolute peak magnitude in rest-frame B,
* a rise/decline shape ``delta_mag_b(phase)`` in the B band,
* a photospheric temperature track ``temperature(phase)`` that, through a
  blackbody spectral energy distribution, fixes the colour at every
  wavelength (and therefore the behaviour of every observed band at every
  redshift — an automatic, smooth K-correction).

Phases are rest-frame days relative to B-band maximum.  The shapes encode
the canonical observational facts: SNeIa rise in ~18 d and decline with
the Phillips two-slope pattern; stripped-envelope Ib/c are ~1.5-2 mag
fainter and faster; IIP shows a ~90 d plateau followed by a sharp drop;
IIL declines linearly; IIn is bright, hot and slow.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable

import numpy as np

__all__ = ["SNType", "Template", "TEMPLATES", "blackbody_color", "color_law", "B_WAVELENGTH"]

B_WAVELENGTH = 4400.0  # rest-frame B-band reference wavelength [Angstrom]
_V_WAVELENGTH = 5500.0

# hc/k in units of Angstrom * Kelvin.
_HC_OVER_K = 1.43878e8


class SNType(Enum):
    """Supernova types of the dataset: Ia versus the five contaminants."""

    IA = "Ia"
    IB = "Ib"
    IC = "Ic"
    IIL = "IIL"
    IIN = "IIN"
    IIP = "IIP"

    @property
    def is_ia(self) -> bool:
        return self is SNType.IA

    @classmethod
    def non_ia(cls) -> tuple["SNType", ...]:
        return (cls.IB, cls.IC, cls.IIL, cls.IIN, cls.IIP)


def _planck(wavelength: np.ndarray, temperature: float) -> np.ndarray:
    """Blackbody spectral radiance B_lambda up to a constant factor."""
    wl = np.asarray(wavelength, dtype=float)
    x = _HC_OVER_K / (wl * temperature)
    # expm1 keeps precision for small x (long wavelengths / hot photospheres).
    return 1.0 / (wl**5 * np.expm1(x))


def blackbody_color(temperature: float, wavelength: float | np.ndarray) -> float | np.ndarray:
    """Colour term (mag) of a blackbody at ``wavelength`` relative to B.

    Negative values mean brighter than B (bluer SED peak), positive means
    fainter.  This is the smooth SED model that turns a B-band light curve
    into every other band.
    """
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    ratio = _planck(np.asarray(wavelength, dtype=float), temperature) / _planck(
        np.array(B_WAVELENGTH), temperature
    )
    color = -2.5 * np.log10(ratio)
    return color if np.ndim(wavelength) else float(color)


def color_law(wavelength: float | np.ndarray) -> float | np.ndarray:
    """SALT2-like linear colour law, normalised so CL(B)=1 and CL(V)=0.

    A colour parameter ``c`` adds ``c * color_law(wavelength)`` magnitudes,
    mimicking dust reddening / intrinsic colour variation.
    """
    wl = np.asarray(wavelength, dtype=float)
    inv = 1.0 / wl
    cl = (inv - 1.0 / _V_WAVELENGTH) / (1.0 / B_WAVELENGTH - 1.0 / _V_WAVELENGTH)
    return cl if np.ndim(wavelength) else float(cl)


def _fireball_rise(phase: np.ndarray, rise_time: float) -> np.ndarray:
    """Pre-maximum magnitudes from the L ~ t^2 expanding-fireball law.

    Returns the magnitude offset above peak (>= 0) for ``phase < 0``;
    very early phases are capped at +8 mag (effectively zero flux).
    """
    frac = np.clip((phase + rise_time) / rise_time, 1e-4, 1.0)
    return np.minimum(-2.5 * np.log10(frac**2), 8.0)


@dataclass(frozen=True)
class Template:
    """Rest-frame behaviour of one supernova type.

    Attributes
    ----------
    sn_type:
        The :class:`SNType` this template describes.
    peak_abs_mag_b:
        Mean absolute magnitude at B maximum.
    rise_time:
        Rest-frame days from explosion to B maximum.
    shape:
        ``shape(phase)`` -> magnitudes above peak for ``phase >= 0``.
    temperature:
        ``temperature(phase)`` -> photospheric temperature in K.
    mag_scatter:
        Intrinsic Gaussian scatter of the peak magnitude.
    uv_suppression:
        (strength_mag, cutoff_wavelength, width) of the blue/UV flux
        deficit relative to a blackbody.  Thermonuclear (Ia) and
        stripped-envelope (Ib/c) spectra are heavily line-blanketed below
        ~3700 A, while hydrogen-rich type-II SNe stay blue — the colour
        signature that makes photometric typing possible at all.
    """

    sn_type: SNType
    peak_abs_mag_b: float
    rise_time: float
    shape: Callable[[np.ndarray], np.ndarray]
    temperature: Callable[[np.ndarray], np.ndarray]
    mag_scatter: float
    uv_suppression: tuple[float, float, float] = (0.0, 3400.0, 250.0)

    def uv_deficit(self, wavelength: float) -> float:
        """Magnitudes of flux deficit below the UV cutoff (>= 0)."""
        strength, cutoff, width = self.uv_suppression
        if strength == 0.0:
            return 0.0
        return float(strength / (1.0 + np.exp((wavelength - cutoff) / width)))

    def delta_mag_b(self, phase: float | np.ndarray) -> float | np.ndarray:
        """Magnitudes above peak in rest-frame B at rest-frame ``phase``."""
        phase_arr = np.atleast_1d(np.asarray(phase, dtype=float))
        out = np.where(
            phase_arr < 0,
            _fireball_rise(phase_arr, self.rise_time),
            self.shape(np.maximum(phase_arr, 0.0)),
        )
        out = np.minimum(out, 8.0)
        return out if np.ndim(phase) else float(out[0])

    def rest_mag(self, phase: float | np.ndarray, wavelength: float) -> float | np.ndarray:
        """Absolute magnitude at rest ``phase`` for a single rest ``wavelength``."""
        phase_arr = np.atleast_1d(np.asarray(phase, dtype=float))
        temps = np.maximum(self.temperature(phase_arr), 2500.0)
        colors = np.array([blackbody_color(float(t), wavelength) for t in temps])
        mag = (
            self.peak_abs_mag_b
            + self.delta_mag_b(phase_arr)
            + colors
            + self.uv_deficit(wavelength)
        )
        return mag if np.ndim(phase) else float(mag[0])


# ----------------------------------------------------------------------
# Per-type shapes (phase >= 0, magnitudes above peak)
# ----------------------------------------------------------------------

def _ia_shape(phase: np.ndarray) -> np.ndarray:
    """Phillips-like two-slope decline: ~1.1 mag in 15 d, then the
    radioactive ^56Co tail at ~0.014 mag/day after day 30."""
    early = 1.1 / 15.0 * phase
    tail = 1.1 / 15.0 * 30.0 + 0.014 * (phase - 30.0)
    return np.where(phase <= 30.0, early, tail)


def _ia_temperature(phase: np.ndarray) -> np.ndarray:
    return 11000.0 - 120.0 * np.clip(phase, -10.0, 40.0)


def _ibc_shape(decline: float) -> Callable[[np.ndarray], np.ndarray]:
    def shape(phase: np.ndarray) -> np.ndarray:
        early = decline / 15.0 * phase
        tail = decline / 15.0 * 25.0 + 0.018 * (phase - 25.0)
        return np.where(phase <= 25.0, early, tail)

    return shape


def _ibc_temperature(phase: np.ndarray) -> np.ndarray:
    return 8000.0 - 80.0 * np.clip(phase, -10.0, 35.0)


def _iip_shape(phase: np.ndarray) -> np.ndarray:
    """Plateau of ~90 d, a 2-mag drop over ~15 d, then a slow tail."""
    drop_start = 90.0
    plateau_end = 0.006 * drop_start
    plateau = 0.006 * phase
    drop = plateau_end + 2.0 / 15.0 * (phase - drop_start)
    tail = plateau_end + 2.0 + 0.010 * (phase - drop_start - 15.0)
    return np.where(
        phase <= drop_start, plateau, np.where(phase <= drop_start + 15.0, drop, tail)
    )


def _iip_temperature(phase: np.ndarray) -> np.ndarray:
    return np.maximum(11000.0 - 90.0 * np.clip(phase, 0.0, 60.0), 5500.0)


def _iil_shape(phase: np.ndarray) -> np.ndarray:
    return 0.05 * phase


def _iil_temperature(phase: np.ndarray) -> np.ndarray:
    return 10000.0 - 70.0 * np.clip(phase, 0.0, 60.0)


def _iin_shape(phase: np.ndarray) -> np.ndarray:
    return 0.02 * phase


def _iin_temperature(phase: np.ndarray) -> np.ndarray:
    return 10000.0 - 25.0 * np.clip(phase, 0.0, 100.0)


TEMPLATES: dict[SNType, Template] = {
    SNType.IA: Template(
        SNType.IA, -19.36, 18.0, _ia_shape, _ia_temperature, 0.15,
        uv_suppression=(3.2, 3700.0, 300.0),
    ),
    SNType.IB: Template(
        SNType.IB, -17.45, 15.0, _ibc_shape(1.2), _ibc_temperature, 0.45,
        uv_suppression=(2.2, 3500.0, 300.0),
    ),
    SNType.IC: Template(
        SNType.IC, -17.65, 13.0, _ibc_shape(1.3), _ibc_temperature, 0.45,
        uv_suppression=(2.4, 3500.0, 300.0),
    ),
    SNType.IIL: Template(
        SNType.IIL, -17.98, 8.0, _iil_shape, _iil_temperature, 0.50,
        uv_suppression=(0.4, 3000.0, 250.0),
    ),
    SNType.IIN: Template(
        SNType.IIN, -18.53, 12.0, _iin_shape, _iin_temperature, 0.60,
        uv_suppression=(0.3, 3000.0, 250.0),
    ),
    SNType.IIP: Template(
        SNType.IIP, -16.80, 7.0, _iip_shape, _iip_temperature, 0.60,
        uv_suppression=(0.5, 3000.0, 250.0),
    ),
}
