"""Light-curve model fitting — the "photometric approach" machinery.

The classical pipeline the paper replaces fits flux measurements to a
parametric light-curve model.  This module implements that fit for the
SALT2-like Ia model: given multi-band fluxes with errors, recover
``(peak_mjd, x1, c, amplitude)`` by chi-square minimisation over a
coarse grid refined with a local simplex search.

Used for parameter-recovery studies (how well does photometry constrain
stretch and colour at a given cadence/noise?) and by the Karpenka-style
baseline features.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from ..cosmology import DEFAULT_COSMOLOGY, FlatLambdaCDM
from ..photometry import GRIZY
from .salt2 import SALT2LikeModel, SALT2Parameters
from .sampler import LightCurve

__all__ = ["Salt2FitResult", "fit_salt2"]


@dataclass(frozen=True)
class Salt2FitResult:
    """Best-fit SALT2-like parameters for one supernova.

    Attributes
    ----------
    peak_mjd, x1, c, amplitude:
        Fitted parameters; ``amplitude`` rescales the model flux
        (1 = the Tripp-standardised brightness at the given redshift).
    chi2:
        Chi-square at the optimum.
    n_dof:
        Number of observations minus fitted parameters.
    """

    peak_mjd: float
    x1: float
    c: float
    amplitude: float
    chi2: float
    n_dof: int

    @property
    def reduced_chi2(self) -> float:
        return self.chi2 / max(self.n_dof, 1)


def _model_fluxes(
    params: np.ndarray,
    redshift: float,
    mjd: np.ndarray,
    band_idx: np.ndarray,
    cosmology: FlatLambdaCDM,
) -> np.ndarray:
    peak_mjd, x1, c = params
    model = SALT2LikeModel(
        SALT2Parameters(
            x1=float(np.clip(x1, -4.9, 4.9)), c=float(np.clip(c, -0.45, 0.45))
        )
    )
    curve = LightCurve(model, redshift=redshift, peak_mjd=float(peak_mjd), cosmology=cosmology)
    out = np.empty(len(mjd))
    for b in np.unique(band_idx):
        sel = band_idx == b
        out[sel] = curve.flux(GRIZY[int(b)], mjd[sel])
    return out


def fit_salt2(
    flux: np.ndarray,
    flux_err: np.ndarray,
    mjd: np.ndarray,
    band_idx: np.ndarray,
    redshift: float,
    cosmology: FlatLambdaCDM = DEFAULT_COSMOLOGY,
    peak_grid_step: float = 8.0,
) -> Salt2FitResult:
    """Fit the SALT2-like Ia model to multi-band photometry.

    The amplitude is profiled analytically at every trial point; the
    remaining ``(peak_mjd, x1, c)`` are optimised by a coarse peak-date
    grid followed by Nelder-Mead refinement.

    Parameters
    ----------
    flux, flux_err, mjd, band_idx:
        Aligned per-observation arrays.
    redshift:
        Known (e.g. host photo-z) redshift; the classical approach
        requires one.
    """
    flux = np.asarray(flux, dtype=float)
    flux_err = np.asarray(flux_err, dtype=float)
    mjd = np.asarray(mjd, dtype=float)
    band_idx = np.asarray(band_idx)
    if not (flux.shape == flux_err.shape == mjd.shape == band_idx.shape):
        raise ValueError("flux, flux_err, mjd and band_idx must align")
    if flux.size < 4:
        raise ValueError("need at least 4 observations to fit 4 parameters")
    if np.any(flux_err <= 0):
        raise ValueError("flux errors must be positive")
    if redshift <= 0:
        raise ValueError("redshift must be positive")

    weights = 1.0 / flux_err**2

    def chi2_profiled(params: np.ndarray) -> tuple[float, float]:
        model = _model_fluxes(params, redshift, mjd, band_idx, cosmology)
        denom = float(np.sum(weights * model**2))
        if denom <= 0:
            return float(np.sum(weights * flux**2)), 0.0
        amp = max(float(np.sum(weights * flux * model)) / denom, 0.0)
        return float(np.sum(weights * (flux - amp * model) ** 2)), amp

    # Coarse scan over the peak date (the least convex direction).
    best: tuple[float, np.ndarray, float] | None = None
    for peak in np.arange(mjd.min() - 20.0, mjd.max() + 20.0, peak_grid_step):
        params = np.array([peak, 0.0, 0.0])
        chi2, amp = chi2_profiled(params)
        if best is None or chi2 < best[0]:
            best = (chi2, params, amp)

    result = optimize.minimize(
        lambda p: chi2_profiled(p)[0],
        best[1],
        method="Nelder-Mead",
        options={"xatol": 0.05, "fatol": 1e-3, "maxiter": 300},
    )
    chi2, amplitude = chi2_profiled(result.x)
    peak_mjd, x1, c = result.x
    return Salt2FitResult(
        peak_mjd=float(peak_mjd),
        x1=float(np.clip(x1, -4.9, 4.9)),
        c=float(np.clip(c, -0.45, 0.45)),
        amplitude=float(amplitude),
        chi2=float(chi2),
        n_dof=int(flux.size - 4),
    )
