"""Light-curve substrate: SALT2-like templates, priors and observer-frame sampling."""

from .fitting import Salt2FitResult, fit_salt2
from .population import DEFAULT_NON_IA_FRACTIONS, NonIaRealization, PopulationModel
from .salt2 import M0_IA, SALT2LikeModel, SALT2Parameters, TRIPP_ALPHA, TRIPP_BETA
from .sampler import LightCurve, RestFrameModel
from .templates import B_WAVELENGTH, TEMPLATES, SNType, Template, blackbody_color, color_law

__all__ = [
    "Salt2FitResult",
    "fit_salt2",
    "SNType",
    "Template",
    "TEMPLATES",
    "B_WAVELENGTH",
    "blackbody_color",
    "color_law",
    "SALT2Parameters",
    "SALT2LikeModel",
    "TRIPP_ALPHA",
    "TRIPP_BETA",
    "M0_IA",
    "PopulationModel",
    "NonIaRealization",
    "DEFAULT_NON_IA_FRACTIONS",
    "LightCurve",
    "RestFrameModel",
]
