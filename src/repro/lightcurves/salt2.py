"""SALT2-like parametrisation of Type-Ia light curves.

SNeIa are standardisable candles: their absolute peak magnitude follows
the Tripp relation

    M_B = M0 - alpha * x1 + beta * c

where ``x1`` is the stretch and ``c`` the colour.  Stretch also rescales
the light-curve time axis.  This module wraps the Ia template of
:mod:`repro.lightcurves.templates` with those corrections, which is the
structure SALT-II exposes to downstream classification code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .templates import TEMPLATES, SNType, Template, color_law

__all__ = ["SALT2Parameters", "SALT2LikeModel", "TRIPP_ALPHA", "TRIPP_BETA", "M0_IA"]

TRIPP_ALPHA = 0.14
TRIPP_BETA = 3.1
M0_IA = TEMPLATES[SNType.IA].peak_abs_mag_b


@dataclass(frozen=True)
class SALT2Parameters:
    """Per-object Ia parameters.

    Attributes
    ----------
    x1:
        Stretch; positive values are broader and brighter.
    c:
        Colour; positive values are redder and fainter.
    magnitude_offset:
        Intrinsic scatter realisation added to the Tripp magnitude.
    """

    x1: float = 0.0
    c: float = 0.0
    magnitude_offset: float = 0.0

    def __post_init__(self) -> None:
        if not -5.0 <= self.x1 <= 5.0:
            raise ValueError(f"x1={self.x1} outside the physical range [-5, 5]")
        if not -0.5 <= self.c <= 0.5:
            raise ValueError(f"c={self.c} outside the physical range [-0.5, 0.5]")

    @property
    def stretch(self) -> float:
        """Time-axis stretch factor s = 1 + 0.07 * x1."""
        return 1.0 + 0.07 * self.x1


class SALT2LikeModel:
    """A stretch/colour-corrected Ia light-curve model.

    Exposes the same ``rest_mag(phase, wavelength)`` interface as a plain
    :class:`~repro.lightcurves.templates.Template`, so the observer-frame
    sampler treats Ia and non-Ia uniformly.
    """

    def __init__(self, params: SALT2Parameters) -> None:
        self.params = params
        self._template: Template = TEMPLATES[SNType.IA]

    @property
    def sn_type(self) -> SNType:
        return SNType.IA

    @property
    def peak_abs_mag_b(self) -> float:
        """Tripp-standardised absolute peak magnitude in B."""
        return (
            M0_IA
            - TRIPP_ALPHA * self.params.x1
            + TRIPP_BETA * self.params.c
            + self.params.magnitude_offset
        )

    def rest_mag(self, phase: float | np.ndarray, wavelength: float) -> float | np.ndarray:
        """Absolute magnitude at rest-frame phase/wavelength.

        The stretch rescales the phase axis; the colour adds
        ``c * CL(wavelength)`` on top of the template's blackbody colour.
        """
        stretched = np.asarray(phase, dtype=float) / self.params.stretch
        base = self._template.rest_mag(stretched, wavelength)
        shift = self.peak_abs_mag_b - self._template.peak_abs_mag_b
        return base + shift + self.params.c * color_law(wavelength)
