"""Observer-frame light curves.

A :class:`LightCurve` binds a rest-frame supernova model to a redshift,
a peak date and a cosmology, and answers the only question the rest of
the pipeline asks: *what is the flux in band b at observation date t?*

Observer-frame effects handled here:

* distance dimming through the Lambda-CDM distance modulus,
* (1 + z) time dilation of the phase axis,
* band redshifting — band ``b`` at redshift ``z`` samples the rest-frame
  SED at ``lambda_eff / (1 + z)``, which is how the blackbody colour
  model produces K-correction-like behaviour for free.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from ..cosmology import DEFAULT_COSMOLOGY, FlatLambdaCDM
from ..photometry import Band, mag_to_flux
from .templates import SNType

__all__ = ["RestFrameModel", "LightCurve"]

_MIN_REST_WAVELENGTH = 900.0  # below the UV cutoff the SED model is meaningless


class RestFrameModel(Protocol):
    """Anything with a rest-frame magnitude surface and a type."""

    @property
    def sn_type(self) -> SNType: ...

    def rest_mag(self, phase: float | np.ndarray, wavelength: float) -> float | np.ndarray: ...


class LightCurve:
    """Observer-frame multi-band light curve of one supernova.

    Parameters
    ----------
    model:
        Rest-frame model (``SALT2LikeModel`` or ``NonIaRealization``).
    redshift:
        Cosmological redshift of the host, > 0.
    peak_mjd:
        Observer-frame date of B maximum.
    cosmology:
        Distance calculator; defaults to the module-wide flat Lambda-CDM.
    """

    def __init__(
        self,
        model: RestFrameModel,
        redshift: float,
        peak_mjd: float,
        cosmology: FlatLambdaCDM = DEFAULT_COSMOLOGY,
    ) -> None:
        if redshift <= 0:
            raise ValueError(f"redshift must be positive, got {redshift}")
        self.model = model
        self.redshift = float(redshift)
        self.peak_mjd = float(peak_mjd)
        self.cosmology = cosmology
        self._mu = cosmology.distance_modulus(self.redshift)

    @property
    def sn_type(self) -> SNType:
        return self.model.sn_type

    @property
    def is_ia(self) -> bool:
        return self.model.sn_type.is_ia

    def rest_phase(self, mjd: float | np.ndarray) -> float | np.ndarray:
        """Rest-frame days from peak for observer date(s) ``mjd``."""
        return (np.asarray(mjd, dtype=float) - self.peak_mjd) / (1.0 + self.redshift)

    def magnitude(self, band: Band, mjd: float | np.ndarray) -> float | np.ndarray:
        """Apparent magnitude in ``band`` at observer date(s) ``mjd``."""
        rest_wavelength = max(
            band.effective_wavelength / (1.0 + self.redshift), _MIN_REST_WAVELENGTH
        )
        rest = self.model.rest_mag(self.rest_phase(mjd), rest_wavelength)
        return rest + self._mu

    def flux(self, band: Band, mjd: float | np.ndarray) -> float | np.ndarray:
        """Flux (zero-point-27 counts) in ``band`` at observer date(s)."""
        return mag_to_flux(self.magnitude(band, mjd))

    def peak_magnitude(self, band: Band, window: float = 120.0) -> float:
        """Brightest apparent magnitude in ``band`` near the peak.

        Scans [-window/2, +window] observer days around ``peak_mjd``;
        band maxima shift slightly against B maximum with colour evolution.
        """
        dates = self.peak_mjd + np.linspace(-window / 2.0, window, 200)
        return float(np.min(self.magnitude(band, dates)))

    def __repr__(self) -> str:
        return (
            f"LightCurve(type={self.sn_type.value}, z={self.redshift:.3f}, "
            f"peak_mjd={self.peak_mjd:.1f})"
        )
