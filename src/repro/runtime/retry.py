"""Generic bounded retry with exponential backoff and deterministic jitter.

Extracted from the training-only learning-rate backoff of
:class:`repro.runtime.guards.RetryPolicy` into a reusable primitive: any
subsystem that needs "try again, but not forever" — the serving daemon
restarting a wedged scoring worker, a flaky artifact fetch, a lock
acquisition — describes its budget as a :class:`RetrySpec` and either
iterates :meth:`RetrySpec.delays` itself or hands a callable to
:func:`retry_call`.

Two properties matter for this repo's contracts:

* **determinism** — jitter is drawn from :class:`random.Random` seeded by
  the spec, so the delay sequence of attempt ``k`` is a pure function of
  the spec.  Chaos tests that assert "the watchdog restarted the worker
  after exactly these backoffs" reproduce bit-for-bit;
* **boundedness** — both an attempt budget *and* an overall wall-clock
  deadline cap the loop, so a retry loop can never hold a drain hostage.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator, TypeVar

__all__ = ["RetrySpec", "RetryBudgetExceeded", "geometric_value", "retry_call"]

T = TypeVar("T")


def geometric_value(initial: float, factor: float, attempt: int, floor: float = 0.0) -> float:
    """``initial * factor**attempt`` clamped below by ``floor``.

    The one formula behind every backoff in the repo: the training
    guard's learning-rate decay (``factor < 1``, ``floor = min_lr``) and
    the retry delays here (``factor > 1``, capped separately by
    ``max_delay_s``) are both instances.
    """
    if attempt < 0:
        raise ValueError("attempt must be non-negative")
    return max(initial * factor**attempt, floor)


class RetryBudgetExceeded(RuntimeError):
    """Raised by :func:`retry_call` when attempts or the deadline run out.

    ``__cause__`` carries the last underlying failure.
    """

    def __init__(self, message: str, attempts: int) -> None:
        super().__init__(message)
        self.attempts = attempts


@dataclass(frozen=True)
class RetrySpec:
    """A bounded retry budget: attempts, backoff shape, overall deadline.

    Parameters
    ----------
    max_attempts:
        Total tries including the first one (``1`` means no retries).
    base_delay_s:
        Delay before the first retry; subsequent delays grow by
        ``factor``.
    factor:
        Exponential growth per retry (``>= 1``).
    max_delay_s:
        Ceiling on any single delay.
    jitter:
        Fraction of each delay replaced by a deterministic uniform draw
        in ``[1 - jitter, 1 + jitter]``; ``0`` disables jitter.
    seed:
        Seed of the jitter stream — the same spec always produces the
        same delay sequence.
    deadline_s:
        Overall wall-clock budget measured from the first attempt;
        ``None`` means attempts alone bound the loop.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    factor: float = 2.0
    max_delay_s: float = 5.0
    jitter: float = 0.1
    seed: int = 0
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0:
            raise ValueError("base_delay_s must be non-negative")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1 (use max_delay_s to cap growth)")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive when set")

    def delays(self) -> Iterator[float]:
        """The deterministic delay (seconds) before each retry.

        Yields ``max_attempts - 1`` values: the wait between attempt
        ``k`` and attempt ``k + 1``.
        """
        rng = random.Random(self.seed)
        for attempt in range(self.max_attempts - 1):
            delay = min(
                geometric_value(self.base_delay_s, self.factor, attempt),
                self.max_delay_s,
            )
            if self.jitter:
                delay *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
            yield delay


def retry_call(
    fn: Callable[[], T],
    spec: RetrySpec | None = None,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    on_retry: Callable[[int, BaseException, float], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> T:
    """Call ``fn`` under a :class:`RetrySpec` budget; return its result.

    Exceptions matching ``retry_on`` consume one attempt and wait out the
    next backoff delay; anything else propagates immediately.  When the
    attempt budget or the overall ``deadline_s`` is exhausted,
    :class:`RetryBudgetExceeded` is raised with the last failure chained
    as ``__cause__``.  ``on_retry(attempt, exc, delay_s)`` is invoked
    before each wait — the serving daemon uses it to emit
    ``serve.worker_restart`` telemetry.
    """
    spec = spec or RetrySpec()
    started = clock()
    delays = spec.delays()
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn()
        except retry_on as exc:
            delay = next(delays, None)
            if delay is None:
                raise RetryBudgetExceeded(
                    f"gave up after {attempt} attempt(s): {exc}", attempts=attempt
                ) from exc
            if (
                spec.deadline_s is not None
                and clock() - started + delay > spec.deadline_s
            ):
                raise RetryBudgetExceeded(
                    f"retry deadline of {spec.deadline_s}s exhausted after "
                    f"{attempt} attempt(s): {exc}",
                    attempts=attempt,
                ) from exc
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            sleep(delay)
