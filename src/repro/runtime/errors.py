"""Structured errors raised by the resilience runtime.

Every long-running workload (dataset build, training, artifact IO) maps
its failure modes onto one of these types so callers — in particular
:mod:`repro.cli` — can translate them into exit codes and one-line
messages instead of raw tracebacks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .report import BuildReport

__all__ = ["CorruptArtifactError", "TrainingDiverged", "BuildAborted"]


class CorruptArtifactError(RuntimeError):
    """An on-disk artifact (dataset or weights ``.npz``) failed integrity checks.

    Raised when a file is truncated, unreadable as a zip archive, missing
    required fields, or its embedded checksum does not match the stored
    arrays.  ``path`` and ``reason`` are kept as attributes for
    programmatic handling.
    """

    def __init__(self, path: object, reason: str) -> None:
        self.path = str(path)
        self.reason = reason
        super().__init__(f"corrupt artifact {self.path}: {reason}")


class TrainingDiverged(RuntimeError):
    """Training hit non-finite losses/gradients and exhausted its retries.

    Carries the :class:`~repro.core.training.History` accumulated up to
    the last good epoch plus the retry bookkeeping, so callers can
    inspect how far the run got before giving up.
    """

    def __init__(self, message: str, history: Any = None, attempts: int = 0,
                 last_lr: float = float("nan")) -> None:
        self.history = history
        self.attempts = attempts
        self.last_lr = last_lr
        super().__init__(message)


class BuildAborted(RuntimeError):
    """A dataset build failed permanently despite per-sample retries.

    Raised when a single sample slot keeps failing after
    ``max_sample_retries`` resampling attempts; carries the accumulated
    :class:`~repro.runtime.report.BuildReport` as ``report``.
    """

    def __init__(self, message: str, report: "BuildReport | None" = None) -> None:
        self.report = report
        super().__init__(message)
