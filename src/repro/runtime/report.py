"""Build reports: what the dataset builder quarantined and retried.

A :class:`BuildReport` is produced by every
:meth:`~repro.datasets.builder.DatasetBuilder.build` call.  Each failed
sample attempt becomes a :class:`QuarantineRecord` carrying the slot,
class, error and the seed descriptor of the attempt (as a JSON string:
``{"seed": ..., "spawn_key": [slot, attempt]}`` under the version-2
per-sample seeding contract), so any quarantined draw can be replayed in
isolation by reconstructing that ``SeedSequence`` child.

``BuildReport.n_built`` always counts *completed sample slots* — the
invariant holds for serial, parallel and resumed builds alike, including
the report attached to a :class:`~repro.runtime.errors.BuildAborted`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

__all__ = ["QuarantineRecord", "BuildReport"]


@dataclass
class QuarantineRecord:
    """One failed sample-build attempt."""

    slot: int
    attempt: int
    is_ia: bool
    error_type: str
    error_message: str
    rng_state: str = ""

    @classmethod
    def from_exception(
        cls, slot: int, attempt: int, is_ia: bool, exc: BaseException, rng_state: dict | None = None
    ) -> "QuarantineRecord":
        """Build a record from a caught exception and the pre-attempt RNG state."""
        return cls(
            slot=slot,
            attempt=attempt,
            is_ia=is_ia,
            error_type=type(exc).__name__,
            error_message=str(exc),
            rng_state=json.dumps(rng_state) if rng_state is not None else "",
        )


@dataclass
class BuildReport:
    """Aggregate outcome of one dataset build (possibly across resumes)."""

    #: Sample slots requested by the build configuration.
    n_target: int = 0
    #: Sample slots completed so far (monotone; equals ``n_target`` on
    #: success, and the true completed count on :class:`BuildAborted`).
    n_built: int = 0
    quarantined: list[QuarantineRecord] = field(default_factory=list)
    resumed: int = 0

    @property
    def n_quarantined(self) -> int:
        """Total failed attempts recorded."""
        return len(self.quarantined)

    def record(self, record: QuarantineRecord) -> None:
        """Append one quarantine record."""
        self.quarantined.append(record)

    def summary(self) -> str:
        """One-line human-readable outcome."""
        return (
            f"BuildReport(built={self.n_built}/{self.n_target}, "
            f"quarantined={self.n_quarantined}, resumed={self.resumed})"
        )

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "n_target": self.n_target,
            "n_built": self.n_built,
            "resumed": self.resumed,
            "quarantined": [asdict(rec) for rec in self.quarantined],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "BuildReport":
        """Inverse of :meth:`to_dict`."""
        return cls(
            n_target=int(data.get("n_target", 0)),
            n_built=int(data.get("n_built", 0)),
            resumed=int(data.get("resumed", 0)),
            quarantined=[QuarantineRecord(**rec) for rec in data.get("quarantined", [])],
        )

    @classmethod
    def from_json(cls, text: str) -> "BuildReport":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))
