"""Deterministic fault injection for testing the resilience runtime.

Every injector is counter- or index-driven — no wall clock, no global
randomness — so a test that injects "fail on the 3rd sample" or "NaN on
the 5th batch" reproduces exactly.  Three fault families cover the three
workloads:

* :func:`raise_on_nth_sample` — a builder ``fault_hook`` that makes one
  stamp render fail (exercises per-sample quarantine);
* :class:`FailSlot` — a picklable ``fault_hook`` addressing one
  ``(slot, attempt)`` pair, for parallel (``workers > 1``) builds where
  hooks are shipped into worker processes;
* :class:`NanBatchFault` — wraps a training ``loss_fn`` and poisons the
  inputs of chosen batches with NaN (exercises the divergence guard);
* :func:`truncate_file` — chops bytes off an artifact on disk
  (exercises checksum / corrupt-artifact detection).

:class:`SimulatedCrash` deliberately subclasses :class:`BaseException`
so it sails through the per-sample ``except Exception`` quarantine in
the builder exactly like a real ``SIGKILL`` would, which is what the
kill-and-resume tests need.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

__all__ = [
    "InjectedFault",
    "SimulatedCrash",
    "raise_on_nth_sample",
    "crash_on_nth_sample",
    "FailSlot",
    "NanBatchFault",
    "KillSwitch",
    "truncate_file",
]


class InjectedFault(RuntimeError):
    """A deliberately injected, recoverable fault (quarantinable)."""


class SimulatedCrash(BaseException):
    """A simulated hard kill; bypasses ``except Exception`` handlers."""


def raise_on_nth_sample(n: int, exc: type[BaseException] = InjectedFault) -> Callable[[int, int], None]:
    """Builder ``fault_hook`` raising ``exc`` on the ``n``-th build attempt.

    Counts every ``(sample, attempt)`` invocation (0-based) and raises
    exactly once, so the builder's resampling retry succeeds afterwards.
    """
    calls = {"count": 0}

    def hook(index: int, attempt: int) -> None:
        current = calls["count"]
        calls["count"] += 1
        if current == n:
            raise exc(f"injected fault at sample {index} (attempt {attempt})")

    return hook


def crash_on_nth_sample(n: int) -> Callable[[int, int], None]:
    """Builder ``fault_hook`` simulating a process kill before sample ``n``."""
    return raise_on_nth_sample(n, exc=SimulatedCrash)


class FailSlot:
    """Builder ``fault_hook`` failing one specific sample slot.

    Unlike the closure-based injectors, instances are picklable, so this
    is the hook of choice for ``workers > 1`` builds where the hook
    travels into worker processes.  Addressing is by ``(slot, attempt)``
    rather than a global call counter — exactly the per-slot retry
    semantics of the version-2 seeding contract: attempts
    ``0 .. fail_attempts-1`` of ``slot`` raise ``exc``, every other call
    passes.
    """

    def __init__(
        self,
        slot: int,
        fail_attempts: int = 1,
        exc: type[BaseException] = InjectedFault,
    ) -> None:
        self.slot = slot
        self.fail_attempts = fail_attempts
        self.exc = exc

    def __call__(self, slot: int, attempt: int) -> None:
        """Raise the configured exception on the targeted attempts."""
        if slot == self.slot and attempt < self.fail_attempts:
            raise self.exc(f"injected fault at sample {slot} (attempt {attempt})")


class NanBatchFault:
    """Wrap a training ``loss_fn`` so chosen batches produce NaN losses.

    ``batches`` is a set of 0-based global batch counters to poison, or
    the string ``"all"`` to poison every batch (forcing retry
    exhaustion).  Poisoning replaces the first input array with NaNs, so
    the NaN propagates through the model exactly like bad data would.
    """

    def __init__(self, loss_fn: Callable, batches: set[int] | str) -> None:
        self.loss_fn = loss_fn
        self.batches = batches
        self.calls = 0

    def _poison(self, count: int) -> bool:
        if self.batches == "all":
            return True
        return count in self.batches

    def __call__(self, model, inputs, target):
        """Evaluate the wrapped loss, poisoning this batch if selected."""
        count = self.calls
        self.calls += 1
        if self._poison(count):
            inputs = (np.full_like(inputs[0], np.nan),) + tuple(inputs[1:])
        return self.loss_fn(model, inputs, target)


class KillSwitch:
    """``on_epoch_end`` callback that simulates a kill after ``after_epoch``.

    Raises :class:`SimulatedCrash` once the given 0-based epoch has
    completed (and therefore been checkpointed), emulating a process
    death between epochs.
    """

    def __init__(self, after_epoch: int) -> None:
        self.after_epoch = after_epoch

    def __call__(self, epoch: int, history) -> None:
        """Raise :class:`SimulatedCrash` when the target epoch finishes."""
        if epoch >= self.after_epoch:
            raise SimulatedCrash(f"simulated kill after epoch {epoch}")


def truncate_file(path: str | os.PathLike, keep_fraction: float = 0.5) -> int:
    """Truncate a file to ``keep_fraction`` of its size; returns new size.

    Used to emulate a crash mid-write of a non-atomic producer or a
    partially transferred artifact.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError("keep_fraction must be in [0, 1)")
    path = os.fspath(path)
    size = os.path.getsize(path)
    new_size = int(size * keep_fraction)
    with open(path, "r+b") as handle:
        handle.truncate(new_size)
    return new_size
