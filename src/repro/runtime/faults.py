"""Deterministic fault injection for testing the resilience runtime.

Every injector is counter- or index-driven — no wall clock, no global
randomness — so a test that injects "fail on the 3rd sample" or "NaN on
the 5th batch" reproduces exactly.  Three fault families cover the three
workloads:

* :func:`raise_on_nth_sample` — a builder ``fault_hook`` that makes one
  stamp render fail (exercises per-sample quarantine);
* :class:`FailSlot` — a picklable ``fault_hook`` addressing one
  ``(slot, attempt)`` pair, for parallel (``workers > 1``) builds where
  hooks are shipped into worker processes;
* :class:`NanBatchFault` — wraps a training ``loss_fn`` and poisons the
  inputs of chosen batches with NaN (exercises the divergence guard);
* :func:`truncate_file` — chops bytes off an artifact on disk
  (exercises checksum / corrupt-artifact detection);
* :class:`InputCorruption` subclasses (:class:`DropBand`,
  :class:`NaNPixels`, :class:`SaturateRegion`, :class:`TruncateCutout`)
  — degrade stamp-pair batches the way real survey traffic does
  (exercises the :mod:`repro.serve` degraded-input path);
* the daemon chaos kit — :class:`FailBatch` / :class:`WedgeBatch`
  scoring hooks, :func:`malformed_bodies` payload variants,
  :func:`send_slow_request` dribbling clients and :class:`BurstSchedule`
  arrival plans (exercises :mod:`repro.serve.daemon` admission control,
  deadlines, poison isolation and the watchdog).

:class:`SimulatedCrash` deliberately subclasses :class:`BaseException`
so it sails through the per-sample ``except Exception`` quarantine in
the builder exactly like a real ``SIGKILL`` would, which is what the
kill-and-resume tests need.
"""

from __future__ import annotations

import os
import socket
import threading
from typing import Callable

import numpy as np

__all__ = [
    "InjectedFault",
    "SimulatedCrash",
    "raise_on_nth_sample",
    "crash_on_nth_sample",
    "FailSlot",
    "NanBatchFault",
    "KillSwitch",
    "truncate_file",
    "CrashWorkerOnMarker",
    "WedgeWorkerOnMarker",
    "RaiseWorkerOnMarker",
    "InputCorruption",
    "DropBand",
    "NaNPixels",
    "SaturateRegion",
    "TruncateCutout",
    "FailBatch",
    "WedgeBatch",
    "ShiftScores",
    "BurstSchedule",
    "malformed_bodies",
    "send_slow_request",
]


class InjectedFault(RuntimeError):
    """A deliberately injected, recoverable fault (quarantinable)."""


class SimulatedCrash(BaseException):
    """A simulated hard kill; bypasses ``except Exception`` handlers."""


def raise_on_nth_sample(n: int, exc: type[BaseException] = InjectedFault) -> Callable[[int, int], None]:
    """Builder ``fault_hook`` raising ``exc`` on the ``n``-th build attempt.

    Counts every ``(sample, attempt)`` invocation (0-based) and raises
    exactly once, so the builder's resampling retry succeeds afterwards.
    """
    calls = {"count": 0}

    def hook(index: int, attempt: int) -> None:
        current = calls["count"]
        calls["count"] += 1
        if current == n:
            raise exc(f"injected fault at sample {index} (attempt {attempt})")

    return hook


def crash_on_nth_sample(n: int) -> Callable[[int, int], None]:
    """Builder ``fault_hook`` simulating a process kill before sample ``n``."""
    return raise_on_nth_sample(n, exc=SimulatedCrash)


class FailSlot:
    """Builder ``fault_hook`` failing one specific sample slot.

    Unlike the closure-based injectors, instances are picklable, so this
    is the hook of choice for ``workers > 1`` builds where the hook
    travels into worker processes.  Addressing is by ``(slot, attempt)``
    rather than a global call counter — exactly the per-slot retry
    semantics of the version-2 seeding contract: attempts
    ``0 .. fail_attempts-1`` of ``slot`` raise ``exc``, every other call
    passes.
    """

    def __init__(
        self,
        slot: int,
        fail_attempts: int = 1,
        exc: type[BaseException] = InjectedFault,
    ) -> None:
        self.slot = slot
        self.fail_attempts = fail_attempts
        self.exc = exc

    def __call__(self, slot: int, attempt: int) -> None:
        """Raise the configured exception on the targeted attempts."""
        if slot == self.slot and attempt < self.fail_attempts:
            raise self.exc(f"injected fault at sample {slot} (attempt {attempt})")


class NanBatchFault:
    """Wrap a training ``loss_fn`` so chosen batches produce NaN losses.

    ``batches`` is a set of 0-based global batch counters to poison, or
    the string ``"all"`` to poison every batch (forcing retry
    exhaustion).  Poisoning replaces the first input array with NaNs, so
    the NaN propagates through the model exactly like bad data would.
    """

    def __init__(self, loss_fn: Callable, batches: set[int] | str) -> None:
        self.loss_fn = loss_fn
        self.batches = batches
        self.calls = 0

    def _poison(self, count: int) -> bool:
        if self.batches == "all":
            return True
        return count in self.batches

    def __call__(self, model, inputs, target):
        """Evaluate the wrapped loss, poisoning this batch if selected."""
        count = self.calls
        self.calls += 1
        if self._poison(count):
            inputs = (np.full_like(inputs[0], np.nan),) + tuple(inputs[1:])
        return self.loss_fn(model, inputs, target)


class KillSwitch:
    """``on_epoch_end`` callback that simulates a kill after ``after_epoch``.

    Raises :class:`SimulatedCrash` once the given 0-based epoch has
    completed (and therefore been checkpointed), emulating a process
    death between epochs.
    """

    def __init__(self, after_epoch: int) -> None:
        self.after_epoch = after_epoch

    def __call__(self, epoch: int, history) -> None:
        """Raise :class:`SimulatedCrash` when the target epoch finishes."""
        if epoch >= self.after_epoch:
            raise SimulatedCrash(f"simulated kill after epoch {epoch}")


class CrashWorkerOnMarker:
    """Picklable pool ``worker_init`` that SIGKILLs on a marked sample.

    The process-pool analogue of :class:`FailBatch`: instances travel
    into :class:`~repro.serve.pool.ScoringPool` workers (via the
    ``worker_init`` seam) and wrap the worker engine's
    ``classify_arrays`` so a batch whose first pixel carries the magic
    ``marker`` value kills the worker process mid-batch — a real
    ``SIGKILL``, not an exception, exercising the pool's crash
    detection, respawn budget and per-sample culprit isolation.

    ``min_batch`` scopes the blast radius: with the default 1 the marked
    sample kills every worker that ever scores it (a repeat offender the
    pool must eventually give up on); with ``min_batch=2`` only grouped
    batches die, so the pool's per-sample re-score heals the batch and
    every sample still gets its bit-exact score.
    """

    def __init__(self, marker: float, min_batch: int = 1) -> None:
        self.marker = float(marker)
        self.min_batch = int(min_batch)

    def __call__(self, engine, worker_id: int) -> None:
        """Wrap ``engine.classify_arrays`` with the marker tripwire."""
        import signal as _signal

        inner = engine.classify_arrays
        marker, min_batch = self.marker, self.min_batch

        def classify_arrays(pairs, mjd, strict=None, start_index=0):
            arr = np.asarray(pairs)
            if (
                arr.ndim == 5
                and arr.shape[0] >= min_batch
                and np.any(arr[:, 0, 0, 0, 0] == marker)
            ):
                os.kill(os.getpid(), _signal.SIGKILL)
            return inner(pairs, mjd, strict=strict, start_index=start_index)

        engine.classify_arrays = classify_arrays


class WedgeWorkerOnMarker:
    """Picklable pool ``worker_init`` that hangs — alive but silent — on
    a marked sample.

    The wedge analogue of :class:`CrashWorkerOnMarker`: instead of a
    ``SIGKILL`` the worker sleeps ``hang_s`` (default: effectively
    forever) inside its scoring call, so neither its pipe nor its
    process sentinel ever fires.  Exercises the pool gather's
    no-progress deadline: the parent must declare the worker wedged,
    terminate it and heal through the respawn path.  ``min_batch``
    scopes the blast radius exactly as for the crash injector.
    """

    def __init__(self, marker: float, min_batch: int = 1,
                 hang_s: float = 3600.0) -> None:
        self.marker = float(marker)
        self.min_batch = int(min_batch)
        self.hang_s = float(hang_s)

    def __call__(self, engine, worker_id: int) -> None:
        """Wrap ``engine.classify_arrays`` with the marker tripwire."""
        import time as _time

        inner = engine.classify_arrays
        marker, min_batch, hang_s = self.marker, self.min_batch, self.hang_s

        def classify_arrays(pairs, mjd, strict=None, start_index=0):
            arr = np.asarray(pairs)
            if (
                arr.ndim == 5
                and arr.shape[0] >= min_batch
                and np.any(arr[:, 0, 0, 0, 0] == marker)
            ):
                _time.sleep(hang_s)
            return inner(pairs, mjd, strict=strict, start_index=start_index)

        engine.classify_arrays = classify_arrays


class RaiseWorkerOnMarker:
    """Picklable pool ``worker_init`` raising a typed error on a marked
    sample.

    ``factory`` is a picklable zero-argument callable (a module-level
    function) returning the exception instance to raise; it is invoked
    inside the worker, so the raised exception exercises the pool's
    exception transport end to end — descriptor fields for the repo's
    typed errors, pickle round-trip for everything else.
    """

    def __init__(self, marker: float, factory) -> None:
        self.marker = float(marker)
        self.factory = factory

    def __call__(self, engine, worker_id: int) -> None:
        """Wrap ``engine.classify_arrays`` with the marker tripwire."""
        inner = engine.classify_arrays
        marker, factory = self.marker, self.factory

        def classify_arrays(pairs, mjd, strict=None, start_index=0):
            arr = np.asarray(pairs)
            if arr.ndim == 5 and np.any(arr[:, 0, 0, 0, 0] == marker):
                raise factory()
            return inner(pairs, mjd, strict=strict, start_index=start_index)

        engine.classify_arrays = classify_arrays


class InputCorruption:
    """Base class for deterministic, picklable input corruptors.

    An input corruption maps a batch of stamp-pair arrays
    ``(N, V, 2, S, S)`` to a degraded *copy* — the model of a survey
    feed with missing visits, detector defects, or half-transferred
    cutouts.  Randomised corruptors draw per-sample streams from
    ``SeedSequence(seed, spawn_key=(sample,))``, so the damage done to
    sample ``i`` is independent of batch composition and reproduces
    exactly — the same contract as the builder's per-slot seeding.

    Subclasses implement :meth:`corrupt_sample` on one ``(V, 2, S, S)``
    sample; instances hold only plain attributes so they pickle cleanly
    into worker processes.
    """

    def __call__(self, pairs: np.ndarray) -> np.ndarray:
        """Return a corrupted float copy of the ``(N, V, 2, S, S)`` batch."""
        pairs = np.asarray(pairs)
        if pairs.ndim != 5 or pairs.shape[2] != 2:
            raise ValueError(f"expected (N, V, 2, S, S) pairs, got {pairs.shape}")
        out = pairs.astype(np.float32, copy=True)
        for i in range(out.shape[0]):
            self.corrupt_sample(out[i], i)
        return out

    def corrupt_sample(self, sample: np.ndarray, index: int) -> None:
        """Degrade one ``(V, 2, S, S)`` sample in place."""
        raise NotImplementedError

    def _rng(self, index: int) -> np.random.Generator:
        """Per-sample generator (subclasses with randomness set ``seed``)."""
        return np.random.default_rng(
            np.random.SeedSequence(getattr(self, "seed", 0), spawn_key=(index,))
        )


class DropBand(InputCorruption):
    """Blank out whole bands, as when a filter's visit never arrived.

    ``bands`` is a band index or list of indices (0=g .. 4=y); every
    visit of those bands (optionally restricted to ``epochs``) becomes
    all-NaN in both the reference and observation channel — the serve
    layer must recognise the visit as missing and mask it.
    """

    def __init__(self, bands: int | list[int], epochs: list[int] | None = None,
                 n_bands: int = 5) -> None:
        self.bands = [bands] if isinstance(bands, int) else list(bands)
        self.epochs = None if epochs is None else list(epochs)
        self.n_bands = n_bands
        if any(not 0 <= b < n_bands for b in self.bands):
            raise ValueError(f"band indices must be in [0, {n_bands})")

    def corrupt_sample(self, sample: np.ndarray, index: int) -> None:
        """NaN every visit of the dropped bands."""
        n_epochs = sample.shape[0] // self.n_bands
        epochs = range(n_epochs) if self.epochs is None else self.epochs
        for e in epochs:
            for b in self.bands:
                sample[e * self.n_bands + b] = np.nan


class NaNPixels(InputCorruption):
    """Scatter NaN pixels across the stamps (bad columns, masked pixels).

    ``fraction`` of all pixels of every visit is replaced with NaN, the
    positions drawn from the per-sample stream.  Small fractions are
    repairable by median inpainting; past the engine's repair budget the
    affected visits are rejected outright.
    """

    def __init__(self, fraction: float, seed: int = 0) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        self.fraction = fraction
        self.seed = seed

    def corrupt_sample(self, sample: np.ndarray, index: int) -> None:
        """NaN a deterministic random subset of each channel's pixels."""
        rng = self._rng(index)
        n_pix = sample.shape[-2] * sample.shape[-1]
        n_bad = int(round(self.fraction * n_pix))
        if n_bad == 0:
            return
        for visit in range(sample.shape[0]):
            for channel in range(sample.shape[1]):
                flat = sample[visit, channel].reshape(-1)
                flat[rng.choice(n_pix, size=n_bad, replace=False)] = np.nan


class SaturateRegion(InputCorruption):
    """Clamp a square region of every observation stamp to full well.

    Emulates a bright star bleeding into the cutout: a ``size`` x
    ``size`` block at a per-sample random position is set to ``level``
    (which the serve layer's saturation threshold must catch — the
    values are finite, so a plain NaN check would serve them as real
    flux).
    """

    def __init__(self, size: int, level: float = 30000.0, seed: int = 0) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size
        self.level = level
        self.seed = seed

    def corrupt_sample(self, sample: np.ndarray, index: int) -> None:
        """Saturate one block per observation stamp."""
        rng = self._rng(index)
        side = sample.shape[-1]
        size = min(self.size, side)
        for visit in range(sample.shape[0]):
            row = int(rng.integers(0, side - size + 1))
            col = int(rng.integers(0, side - size + 1))
            sample[visit, 1, row : row + size, col : col + size] = self.level


class TruncateCutout(InputCorruption):
    """NaN the trailing rows of every stamp (half-transferred cutout).

    A cutout service that dies mid-stream delivers the leading
    ``1 - fraction`` of each image; the missing remainder arrives as
    NaN rows.  Severities beyond the repair budget knock the whole visit
    out.
    """

    def __init__(self, fraction: float) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        self.fraction = fraction

    def corrupt_sample(self, sample: np.ndarray, index: int) -> None:
        """Blank the last ``fraction`` of rows in both channels."""
        side = sample.shape[-2]
        n_rows = int(round(self.fraction * side))
        if n_rows:
            sample[:, :, side - n_rows :, :] = np.nan


class FailBatch:
    """Daemon scoring ``fault_hook`` raising on chosen micro-batches.

    The serving daemon calls its hook as ``hook(batch_index, n_samples)``
    right before each scoring group runs; raising here models a poison
    batch — a request whose payload makes the scorer itself blow up, not
    merely a degraded input.  Addressing is by the daemon's global batch
    counter, so after the poisoned batch is isolated and its members are
    re-scored individually (each re-score is a *new* batch index), the
    retries pass — exactly the one-bad-apple contract the chaos suite
    asserts.
    """

    def __init__(self, batches: set[int] | str,
                 exc: type[BaseException] = InjectedFault) -> None:
        self.batches = batches
        self.exc = exc

    def __call__(self, batch_index: int, n_samples: int) -> None:
        """Raise on the targeted batch indices (or all with ``"all"``)."""
        if self.batches == "all" or batch_index in self.batches:
            raise self.exc(
                f"injected scoring fault at batch {batch_index} ({n_samples} sample(s))"
            )


class WedgeBatch:
    """Daemon scoring ``fault_hook`` that blocks chosen batches on an event.

    Models a wedged scoring thread (a hung BLAS call, a deadlocked
    allocator): the hook parks the worker on an internal
    :class:`threading.Event` until :meth:`release` — long enough for the
    daemon's watchdog to declare the worker dead, answer its in-flight
    requests and start a replacement.  ``wedged`` is set once the worker
    is actually parked, so tests can synchronise without sleeps.
    """

    def __init__(self, batches: set[int], max_wedge_s: float = 30.0) -> None:
        self.batches = set(batches)
        self.max_wedge_s = max_wedge_s
        self.wedged = threading.Event()
        self._release = threading.Event()

    def __call__(self, batch_index: int, n_samples: int) -> None:
        """Park the calling thread when the batch index is targeted."""
        if batch_index in self.batches:
            self.wedged.set()
            # Bounded so an ungraceful test cannot leak a thread forever.
            self._release.wait(self.max_wedge_s)

    def release(self) -> None:
        """Un-wedge every parked worker thread."""
        self._release.set()


class BurstSchedule:
    """Deterministic open-loop arrival plan for overload tests.

    Produces request send offsets (seconds from test start) for
    ``duration_s`` of traffic at ``qps`` mean rate.  With
    ``burst_factor > 1`` the arrivals are compressed into the leading
    ``1 / burst_factor`` of each one-second window, so the instantaneous
    rate is ``burst_factor * qps`` — the pattern that must trip admission
    control while the mean rate alone would not.  Pure arithmetic, no
    randomness: the same schedule replays exactly.
    """

    def __init__(self, qps: float, duration_s: float, burst_factor: float = 1.0) -> None:
        if qps <= 0 or duration_s <= 0:
            raise ValueError("qps and duration_s must be positive")
        if burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        self.qps = qps
        self.duration_s = duration_s
        self.burst_factor = burst_factor

    def offsets(self) -> list[float]:
        """Send times in seconds, sorted ascending."""
        n = int(round(self.qps * self.duration_s))
        times = []
        for k in range(n):
            uniform = k / self.qps
            window = int(uniform)
            within = (uniform - window) / self.burst_factor
            times.append(window + within)
        return times


class ShiftScores:
    """Engine ``score_hook`` that shifts every served probability.

    Models a *poisoned model version* — one whose weights load fine and
    whose scorer never raises, but whose calibration is silently broken
    (a bad retrain, a mismatched preprocessing constant).  Installed on
    an :class:`~repro.serve.engine.InferenceEngine` via the registry
    reload hook, it adds ``delta`` to each probability and clips to
    ``[lo, hi]``, producing a sustained, deterministic divergence that
    the daemon's drift monitor / shadow comparison must catch and answer
    with an automatic rollback.  Pure arithmetic, no randomness.
    """

    def __init__(self, delta: float, lo: float = 0.005, hi: float = 0.995) -> None:
        if not lo < hi:
            raise ValueError("lo must be < hi")
        self.delta = float(delta)
        self.lo = float(lo)
        self.hi = float(hi)

    def __call__(self, probs: np.ndarray) -> np.ndarray:
        shifted = np.asarray(probs, dtype=np.float32) + np.float32(self.delta)
        return np.clip(shifted, np.float32(self.lo), np.float32(self.hi))


#: Canonical malformed /classify payloads, each a distinct failure class.
_MALFORMED_BODIES: tuple[tuple[str, bytes], ...] = (
    ("empty", b""),
    ("not-json", b"\x89PNG\r\n\x1a\n not a json document"),
    ("truncated-json", b'{"pairs": [[[[1.0, 2.0'),
    ("wrong-type", b'{"pairs": "nope", "mjd": 3}'),
    ("missing-fields", b'{"hello": "world"}'),
    ("ragged-array", b'{"pairs": [[[[1]], [[1, 2]]]], "mjd": [1.0]}'),
    ("wrong-rank", b'{"pairs": [1.0, 2.0, 3.0], "mjd": [1.0]}'),
    ("nan-mjd-string", b'{"pairs": [], "mjd": ["nan"]}'),
)


def malformed_bodies() -> list[tuple[str, bytes]]:
    """Named malformed request bodies for the daemon chaos suite.

    Every entry must draw a typed ``bad_request`` response — never a
    traceback, never a hung connection, and never collateral damage to a
    clean request sharing the batch window.
    """
    return list(_MALFORMED_BODIES)


def send_slow_request(
    host: str,
    port: int,
    body: bytes,
    path: str = "/classify",
    chunk_size: int = 64,
    delay_s: float = 0.05,
    timeout_s: float = 30.0,
) -> tuple[int, bytes]:
    """POST ``body`` one dribbled chunk at a time; return (status, body).

    A deterministic slow-loris-shaped client: headers go out at once,
    then the body trickles in ``chunk_size``-byte pieces separated by
    ``delay_s`` pauses.  The daemon must either serve the request (when
    the dribble finishes inside its client deadline) or answer with a
    typed ``slow_client`` response — it must never park a handler thread
    indefinitely.
    """
    import time as _time

    with socket.create_connection((host, port), timeout=timeout_s) as conn:
        conn.sendall(
            f"POST {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n".encode()
        )
        try:
            for start in range(0, len(body), chunk_size):
                conn.sendall(body[start : start + chunk_size])
                if start + chunk_size < len(body):
                    _time.sleep(delay_s)
        except (BrokenPipeError, ConnectionResetError):
            pass  # the server may have already answered and closed its side
        chunks = []
        try:
            while True:
                data = conn.recv(65536)
                if not data:
                    break
                chunks.append(data)
        except (ConnectionResetError, TimeoutError):
            pass
    raw = b"".join(chunks)
    if not raw.startswith(b"HTTP/"):
        raise ConnectionError("no HTTP response received")
    status = int(raw.split(b" ", 2)[1])
    payload = raw.split(b"\r\n\r\n", 1)[1] if b"\r\n\r\n" in raw else b""
    return status, payload


def truncate_file(path: str | os.PathLike, keep_fraction: float = 0.5) -> int:
    """Truncate a file to ``keep_fraction`` of its size; returns new size.

    Used to emulate a crash mid-write of a non-atomic producer or a
    partially transferred artifact.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError("keep_fraction must be in [0, 1)")
    path = os.fspath(path)
    size = os.path.getsize(path)
    new_size = int(size * keep_fraction)
    with open(path, "r+b") as handle:
        handle.truncate(new_size)
    return new_size
