"""Divergence detection and bounded-retry policy for training runs.

The training loop calls :func:`loss_is_finite` / :func:`grads_are_finite`
every step; when either trips, it rolls back to the last good snapshot
and asks the :class:`RetryPolicy` for a decayed learning rate.  After
``max_retries`` rollbacks the run raises
:class:`~repro.runtime.errors.TrainingDiverged`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .retry import geometric_value

__all__ = ["RetryPolicy", "loss_is_finite", "grads_are_finite"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to recover from divergence, and at what learning rate.

    Each recovery multiplies the optimiser learning rate by
    ``lr_backoff`` (never going below ``min_lr``); ``max_retries`` caps
    the total number of rollbacks for the whole run.
    """

    max_retries: int = 3
    lr_backoff: float = 0.5
    min_lr: float = 1e-7

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if not 0.0 < self.lr_backoff <= 1.0:
            raise ValueError("lr_backoff must be in (0, 1]")

    def next_lr(self, lr: float) -> float:
        """Learning rate to use after one more divergence recovery.

        One step of the shared geometric-backoff primitive in
        :mod:`repro.runtime.retry` — the time-domain counterpart
        (:class:`~repro.runtime.retry.RetrySpec`) drives the serving
        daemon's worker restarts.
        """
        return geometric_value(lr, self.lr_backoff, 1, floor=self.min_lr)


def loss_is_finite(value: float) -> bool:
    """True when a scalar loss is neither NaN nor infinite."""
    return bool(np.isfinite(value))


def grads_are_finite(parameters: Iterable) -> bool:
    """True when every non-``None`` parameter gradient is fully finite."""
    for param in parameters:
        grad = getattr(param, "grad", None)
        if grad is not None and not np.all(np.isfinite(grad)):
            return False
    return True
