"""Resilience runtime: checkpoints, divergence guards, fault isolation.

This package makes the repo's three long-running workloads — dataset
builds, flux-CNN training and classifier training — survivable:

* :mod:`repro.runtime.checkpoint` — atomic write-then-rename ``.npz``
  persistence with embedded checksums, plus :class:`TrainCheckpoint`
  snapshots that let ``fit`` resume bit-identically after a kill;
* :mod:`repro.runtime.guards` — NaN/Inf detection on losses and
  gradients with a bounded learning-rate-backoff :class:`RetryPolicy`;
* :mod:`repro.runtime.report` — per-sample quarantine records and the
  :class:`BuildReport` emitted by the dataset builder;
* :mod:`repro.runtime.retry` — generic bounded retry (attempt budget,
  exponential backoff, deterministic jitter, overall deadline) behind
  both the training LR backoff and the serving daemon's worker restarts;
* :mod:`repro.runtime.faults` — deterministic fault injection used by
  the test-suite (and handy for chaos-testing deployments), including
  the serving-daemon chaos kit (poison batches, wedged workers, slow
  clients, malformed bodies, burst schedules);
* :mod:`repro.runtime.errors` — the structured error types the CLI maps
  to exit codes.
"""

from .checkpoint import (
    CHECKSUM_KEY,
    TrainCheckpoint,
    array_checksum,
    atomic_savez,
    atomic_write_json,
    file_sha256,
    pack_json,
    unpack_json,
    verified_load,
)
from .errors import BuildAborted, CorruptArtifactError, TrainingDiverged
from .faults import (
    BurstSchedule,
    DropBand,
    FailBatch,
    FailSlot,
    InjectedFault,
    InputCorruption,
    KillSwitch,
    NaNPixels,
    NanBatchFault,
    SaturateRegion,
    ShiftScores,
    SimulatedCrash,
    TruncateCutout,
    WedgeBatch,
    crash_on_nth_sample,
    malformed_bodies,
    raise_on_nth_sample,
    send_slow_request,
    truncate_file,
)
from .guards import RetryPolicy, grads_are_finite, loss_is_finite
from .report import BuildReport, QuarantineRecord
from .retry import RetryBudgetExceeded, RetrySpec, geometric_value, retry_call

__all__ = [
    "CHECKSUM_KEY",
    "array_checksum",
    "atomic_savez",
    "atomic_write_json",
    "file_sha256",
    "verified_load",
    "pack_json",
    "unpack_json",
    "TrainCheckpoint",
    "CorruptArtifactError",
    "TrainingDiverged",
    "BuildAborted",
    "RetryPolicy",
    "loss_is_finite",
    "grads_are_finite",
    "BuildReport",
    "QuarantineRecord",
    "InjectedFault",
    "SimulatedCrash",
    "raise_on_nth_sample",
    "crash_on_nth_sample",
    "FailSlot",
    "NanBatchFault",
    "KillSwitch",
    "truncate_file",
    "InputCorruption",
    "DropBand",
    "NaNPixels",
    "SaturateRegion",
    "TruncateCutout",
    "FailBatch",
    "ShiftScores",
    "WedgeBatch",
    "BurstSchedule",
    "malformed_bodies",
    "send_slow_request",
    "RetrySpec",
    "RetryBudgetExceeded",
    "retry_call",
    "geometric_value",
]
