"""Resilience runtime: checkpoints, divergence guards, fault isolation.

This package makes the repo's three long-running workloads — dataset
builds, flux-CNN training and classifier training — survivable:

* :mod:`repro.runtime.checkpoint` — atomic write-then-rename ``.npz``
  persistence with embedded checksums, plus :class:`TrainCheckpoint`
  snapshots that let ``fit`` resume bit-identically after a kill;
* :mod:`repro.runtime.guards` — NaN/Inf detection on losses and
  gradients with a bounded learning-rate-backoff :class:`RetryPolicy`;
* :mod:`repro.runtime.report` — per-sample quarantine records and the
  :class:`BuildReport` emitted by the dataset builder;
* :mod:`repro.runtime.faults` — deterministic fault injection used by
  the test-suite (and handy for chaos-testing deployments);
* :mod:`repro.runtime.errors` — the structured error types the CLI maps
  to exit codes.
"""

from .checkpoint import (
    CHECKSUM_KEY,
    TrainCheckpoint,
    array_checksum,
    atomic_savez,
    pack_json,
    unpack_json,
    verified_load,
)
from .errors import BuildAborted, CorruptArtifactError, TrainingDiverged
from .faults import (
    DropBand,
    FailSlot,
    InjectedFault,
    InputCorruption,
    KillSwitch,
    NaNPixels,
    NanBatchFault,
    SaturateRegion,
    SimulatedCrash,
    TruncateCutout,
    crash_on_nth_sample,
    raise_on_nth_sample,
    truncate_file,
)
from .guards import RetryPolicy, grads_are_finite, loss_is_finite
from .report import BuildReport, QuarantineRecord

__all__ = [
    "CHECKSUM_KEY",
    "array_checksum",
    "atomic_savez",
    "verified_load",
    "pack_json",
    "unpack_json",
    "TrainCheckpoint",
    "CorruptArtifactError",
    "TrainingDiverged",
    "BuildAborted",
    "RetryPolicy",
    "loss_is_finite",
    "grads_are_finite",
    "BuildReport",
    "QuarantineRecord",
    "InjectedFault",
    "SimulatedCrash",
    "raise_on_nth_sample",
    "crash_on_nth_sample",
    "FailSlot",
    "NanBatchFault",
    "KillSwitch",
    "truncate_file",
    "InputCorruption",
    "DropBand",
    "NaNPixels",
    "SaturateRegion",
    "TruncateCutout",
]
