"""Atomic, checksummed ``.npz`` persistence and training checkpoints.

All durable artifacts in the repo (datasets, model weights, training and
build checkpoints) go through two primitives defined here:

* :func:`atomic_savez` — write-then-rename so a crash mid-write never
  leaves a half-written file at the destination path, plus an embedded
  SHA-256 checksum over every stored array;
* :func:`verified_load` — load that turns truncation, bad zip data and
  checksum mismatches into a structured
  :class:`~repro.runtime.errors.CorruptArtifactError`.

On top of those, :class:`TrainCheckpoint` packages everything
:func:`repro.core.training.fit` needs to continue a run bit-identically:
model state, optimizer state, generator state, history and the
early-stopping bookkeeping.

Dataset-build checkpoints (written by
:class:`~repro.datasets.builder.DatasetBuilder` through the same
primitives) record the *set of completed sample slots* rather than a
scan index or generator state: under the per-sample seeding contract
each slot derives its own ``SeedSequence`` child, so a resumed build —
serial or parallel, in any completion order — only needs to know which
slots are done to continue bit-identically.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from dataclasses import dataclass, field

import numpy as np

from .errors import CorruptArtifactError

__all__ = [
    "CHECKSUM_KEY",
    "array_checksum",
    "atomic_savez",
    "atomic_write_json",
    "file_sha256",
    "verified_load",
    "pack_json",
    "unpack_json",
    "TrainCheckpoint",
]

#: Reserved archive key holding the hex SHA-256 of all other arrays.
CHECKSUM_KEY = "__checksum__"


def array_checksum(arrays: dict[str, np.ndarray]) -> str:
    """Hex SHA-256 over the names, dtypes, shapes and bytes of ``arrays``.

    Keys are visited in sorted order so the digest is independent of
    insertion order; the :data:`CHECKSUM_KEY` entry itself is skipped.
    """
    digest = hashlib.sha256()
    for name in sorted(arrays):
        if name == CHECKSUM_KEY:
            continue
        arr = np.ascontiguousarray(arrays[name])
        digest.update(name.encode())
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


def _checksum_array(arrays: dict[str, np.ndarray]) -> np.ndarray:
    return np.frombuffer(array_checksum(arrays).encode(), dtype=np.uint8)


def atomic_savez(
    path: str | os.PathLike,
    arrays: dict[str, np.ndarray],
    compressed: bool = False,
    checksum: bool = True,
) -> None:
    """Write ``arrays`` to an ``.npz`` at ``path`` atomically.

    The archive is written to a temporary file in the destination
    directory, flushed to disk, then moved into place with
    :func:`os.replace`, so readers only ever see the old file or the
    complete new one.  With ``checksum`` (the default) a SHA-256 digest
    of every array is embedded under :data:`CHECKSUM_KEY` and verified by
    :func:`verified_load`.
    """
    path = os.fspath(path)
    payload = dict(arrays)
    if checksum:
        payload[CHECKSUM_KEY] = _checksum_array(arrays)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            if compressed:
                np.savez_compressed(handle, **payload)
            else:
                np.savez(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def verified_load(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Load an ``.npz`` into a dict, verifying its embedded checksum.

    Raises :class:`~repro.runtime.errors.CorruptArtifactError` when the
    file is missing-as-zip, truncated, undecodable, or its checksum does
    not match; plain :class:`FileNotFoundError` propagates unchanged so
    "no such file" keeps its usual meaning.  Archives written without a
    checksum (e.g. by older versions) load without verification.
    """
    path = os.fspath(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, ValueError, EOFError, KeyError, OSError) as exc:
        raise CorruptArtifactError(path, f"unreadable archive ({exc})") from exc
    if CHECKSUM_KEY in arrays:
        stored = arrays.pop(CHECKSUM_KEY).tobytes().decode()
        actual = array_checksum(arrays)
        if stored != actual:
            raise CorruptArtifactError(
                path, f"checksum mismatch (stored {stored[:12]}…, computed {actual[:12]}…)"
            )
    return arrays


def atomic_write_json(path: str | os.PathLike, obj: object, indent: int = 2) -> None:
    """Write ``obj`` as JSON to ``path`` atomically.

    Same write-then-rename discipline as :func:`atomic_savez`: the
    document is serialised to a temporary file in the destination
    directory, flushed to disk, then moved into place with
    :func:`os.replace`.  Readers only ever see the previous document or
    the complete new one — the model registry relies on this for its
    ``registry.json`` state file, which is read concurrently by the
    serving daemon's version watcher while the CLI mutates it.
    """
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".json.tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(obj, handle, indent=indent)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def file_sha256(path: str | os.PathLike, chunk_size: int = 1 << 20) -> str:
    """Hex SHA-256 of a file's raw bytes, read in ``chunk_size`` blocks.

    Used by the model registry to pin every file copied into an
    immutable ``versions/<vN>/`` directory; unlike the array-level
    :func:`array_checksum` embedded inside ``.npz`` archives this covers
    the container bytes themselves, so zip-level tampering and
    truncation are caught before an archive is even opened.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def pack_json(obj: object) -> np.ndarray:
    """Encode a JSON-serialisable object as a ``uint8`` array for ``.npz`` storage."""
    return np.frombuffer(json.dumps(obj).encode(), dtype=np.uint8)


def unpack_json(arr: np.ndarray) -> object:
    """Inverse of :func:`pack_json`."""
    return json.loads(np.asarray(arr, dtype=np.uint8).tobytes().decode())


_MODEL = "model:"
_BEST = "best:"
_OPTIM = "optim:"


@dataclass
class TrainCheckpoint:
    """Complete snapshot of a training run at an epoch boundary.

    ``history`` is stored structurally (dict of lists + ``best_epoch``)
    rather than as a :class:`~repro.core.training.History` instance to
    keep this module free of imports from :mod:`repro.core`.
    """

    epoch: int
    model_state: dict[str, np.ndarray]
    optimizer_state: dict[str, np.ndarray]
    rng_state: dict
    history: dict = field(default_factory=dict)
    best_state: dict[str, np.ndarray] | None = None
    patience_left: int | None = None
    retries_used: int = 0
    lr: float = float("nan")
    stopped: bool = False
    fingerprint: dict = field(default_factory=dict)

    def save(self, path: str | os.PathLike) -> None:
        """Write the checkpoint atomically with an embedded checksum."""
        arrays: dict[str, np.ndarray] = {}
        for name, value in self.model_state.items():
            arrays[_MODEL + name] = value
        for name, value in self.optimizer_state.items():
            arrays[_OPTIM + name] = value
        if self.best_state is not None:
            for name, value in self.best_state.items():
                arrays[_BEST + name] = value
        arrays["meta"] = pack_json(
            {
                "epoch": self.epoch,
                "rng_state": self.rng_state,
                "history": self.history,
                "patience_left": self.patience_left,
                "retries_used": self.retries_used,
                "lr": self.lr,
                "stopped": self.stopped,
                "has_best": self.best_state is not None,
                "fingerprint": self.fingerprint,
            }
        )
        atomic_savez(path, arrays)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "TrainCheckpoint":
        """Read a checkpoint written by :meth:`save`, verifying integrity."""
        arrays = verified_load(path)
        if "meta" not in arrays:
            raise CorruptArtifactError(path, "missing checkpoint metadata")
        meta = unpack_json(arrays.pop("meta"))
        model_state = {
            key[len(_MODEL):]: value
            for key, value in arrays.items()
            if key.startswith(_MODEL)
        }
        optimizer_state = {
            key[len(_OPTIM):]: value
            for key, value in arrays.items()
            if key.startswith(_OPTIM)
        }
        best_state = (
            {
                key[len(_BEST):]: value
                for key, value in arrays.items()
                if key.startswith(_BEST)
            }
            if meta.get("has_best")
            else None
        )
        return cls(
            epoch=int(meta["epoch"]),
            model_state=model_state,
            optimizer_state=optimizer_state,
            rng_state=meta["rng_state"],
            history=meta["history"],
            best_state=best_state,
            patience_left=meta["patience_left"],
            retries_used=int(meta["retries_used"]),
            lr=float(meta["lr"]),
            stopped=bool(meta["stopped"]),
            fingerprint=meta.get("fingerprint", {}),
        )
