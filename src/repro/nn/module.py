"""Module system: parameter containers with PyTorch-like ergonomics.

A :class:`Module` automatically registers :class:`Parameter` and child
``Module`` attributes, supports recursive iteration over parameters,
train/eval mode switching, and flat ``state_dict`` export/import used by
:mod:`repro.nn.serialization`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A tensor that is a learnable weight of a module."""

    def __init__(self, data: object, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for every neural-network component.

    Subclasses assign :class:`Parameter`, :class:`Module` and buffer
    (plain ``numpy`` array via :meth:`register_buffer`) attributes in
    ``__init__`` and implement :meth:`forward`.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Attribute registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-learnable persistent array (e.g. BN statistics)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def _update_buffer(self, name: str, value: np.ndarray) -> None:
        """Overwrite an existing buffer (keeps registry and attr in sync)."""
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r}")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield every parameter of this module and its descendants."""
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs recursively."""
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(dotted_name, buffer)`` pairs recursively."""
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants depth-first."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar weights."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Modes & gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects BN, dropout)."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # State persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of dotted names to arrays (parameters + buffers)."""
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        for name, buf in self.named_buffers():
            state["buffer:" + name] = np.asarray(buf).copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state_dict` (strict matching)."""
        params = dict(self.named_parameters())
        expected = set(params)
        expected_buffers = {name for name, _ in self.named_buffers()}
        provided_params = {k for k in state if not k.startswith("buffer:")}
        provided_buffers = {k[len("buffer:"):] for k in state if k.startswith("buffer:")}
        if provided_params != expected or provided_buffers != expected_buffers:
            missing = (expected - provided_params) | (expected_buffers - provided_buffers)
            unexpected = (provided_params - expected) | (provided_buffers - expected_buffers)
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in params.items():
            value = np.asarray(state[name])
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.shape}, got {value.shape}"
                )
            param.data = value.astype(param.data.dtype).copy()
        self._load_buffers(state, prefix="")

    def _load_buffers(self, state: dict[str, np.ndarray], prefix: str) -> None:
        for name in list(self._buffers):
            key = "buffer:" + prefix + name
            self._update_buffer(name, np.asarray(state[key]).copy())
        for name, module in self._modules.items():
            module._load_buffers(state, prefix + name + ".")

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, *args: object, **kwargs: object) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args: object, **kwargs: object) -> Tensor:
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain modules, feeding each output to the next."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
        self._layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]


class ModuleList(Module):
    """A list of sub-modules that registers each element."""

    def __init__(self, modules: list[Module] | None = None) -> None:
        super().__init__()
        self._items: list[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        setattr(self, f"item{len(self._items)}", module)
        self._items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
