"""Loss functions.

The flux CNN is trained with mean-squared error on magnitudes; the
classifiers with binary cross-entropy.  Losses are implemented as modules
so they can be swapped in trainer configs.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .module import Module
from .tensor import Tensor, as_tensor

__all__ = ["MSELoss", "L1Loss", "BCEWithLogitsLoss", "CrossEntropyLoss", "HuberLoss"]


class MSELoss(Module):
    """Mean squared error ``mean((pred - target)^2)``."""

    def forward(self, prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
        target_t = as_tensor(target)
        diff = prediction - target_t.detach()
        return (diff * diff).mean()


class L1Loss(Module):
    """Mean absolute error."""

    def forward(self, prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
        target_t = as_tensor(target)
        return (prediction - target_t.detach()).abs().mean()


class HuberLoss(Module):
    """Huber loss: quadratic near zero, linear in the tails.

    Useful for magnitude regression when a few very faint objects would
    otherwise dominate the MSE.
    """

    def __init__(self, delta: float = 1.0) -> None:
        super().__init__()
        self.delta = delta

    def forward(self, prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
        target_t = as_tensor(target)
        diff = prediction - target_t.detach()
        abs_diff = diff.abs()
        quadratic = abs_diff.clip(None, self.delta)
        linear = abs_diff - quadratic
        return (0.5 * quadratic * quadratic + self.delta * linear).mean()


class BCEWithLogitsLoss(Module):
    """Binary cross-entropy on raw logits (numerically stable).

    Uses the identity ``log(1 + exp(x)) = max(x, 0) + log(1 + exp(-|x|))``
    so large logits do not overflow.
    """

    def forward(self, logits: Tensor, target: Tensor | np.ndarray) -> Tensor:
        target_arr = np.asarray(target.data if isinstance(target, Tensor) else target)
        target_arr = target_arr.reshape(logits.shape).astype(logits.data.dtype)

        x = logits.data
        exp_neg_abs = np.exp(-np.abs(x))
        sig = np.where(x >= 0, 1.0 / (1.0 + exp_neg_abs), exp_neg_abs / (1.0 + exp_neg_abs))
        loss_data = np.maximum(x, 0.0) - x * target_arr + np.log1p(np.exp(-np.abs(x)))
        mean_loss = np.array(loss_data.mean(), dtype=x.dtype)
        scale = 1.0 / x.size

        def backward(grad: np.ndarray) -> None:
            if logits.requires_grad:
                logits._accumulate(grad * (sig - target_arr) * scale)

        return Tensor._make(mean_loss, (logits,), backward)


class CrossEntropyLoss(Module):
    """Multi-class cross-entropy on logits with integer class targets."""

    def forward(self, logits: Tensor, target: np.ndarray) -> Tensor:
        target_idx = np.asarray(target).astype(np.int64).reshape(-1)
        if logits.ndim != 2 or logits.shape[0] != target_idx.shape[0]:
            raise ValueError(
                f"logits {logits.shape} incompatible with targets {target_idx.shape}"
            )
        log_probs = F.log_softmax(logits, axis=1)
        batch = np.arange(target_idx.shape[0])
        picked = log_probs[batch, target_idx]
        return -picked.mean()
